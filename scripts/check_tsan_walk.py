"""ThreadSanitizer harness for the parallel compiled walk.

A TSan-instrumented ``.so`` cannot be dlopened into an uninstrumented
Python, so this script builds a *pure C executable*: the generated
kernel source (with the pthread task pool) plus a generated ``main()``
that fills the data arrays deterministically, runs the same interior
subtree through ``walk_subtree`` (serial) and ``walk_subtree_par``
(4 pool threads, data copies), and memcmps the results.  Compiled with
``-fsanitize=thread -pthread`` and run under
``TSAN_OPTIONS=halt_on_error=1``, it fails on

* any data race the sanitizer observes in the pool (exit 66),
* any bitwise divergence between the two walks (exit 1),
* a run that never spawned a pool task — which would mean the harness
  silently stopped exercising the pool (exit 2).

Hosts whose toolchain lacks libtsan (probed with a tiny compile) and
hosts with no compiler at all print a notice and exit 0: the harness
gates on capability, the CI job that invokes it never needs to.

Usage::

    python scripts/check_tsan_walk.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, ROOT)

from repro.compiler.codegen_c import find_c_compiler, generate_c_source  # noqa: E402
from repro.compiler.frontend import build_ir  # noqa: E402
from tests.conftest import make_heat_problem  # noqa: E402

#: Same bitwise-contract flags as build_shared_object, minus the
#: shared-object bits, plus the sanitizer.  -O1 keeps TSan's
#: instrumentation honest (higher levels may elide racy loads).
TSAN_FLAGS = (
    "-O1", "-g", "-ffp-contract=off", "-fno-math-errno",
    "-fsanitize=thread", "-pthread",
)

PROBE = "#include <pthread.h>\nint main(void){return 0;}\n"

#: The subtree under test: whole-lifetime interior on a 24x24 grid,
#: shrinking box (slopes 1), thresholds small enough that the recursion
#: spawns many same-level tasks for the 4-thread pool.
GRID = (24, 24)
TA, TB = 1, 6
LO, HI = (2, 2), (22, 22)
DLO, DHI = (1, 1), (-1, -1)
SLOPES, THRESH = (1, 1), (3, 3)
DT_TH, HYPER, NTHREADS = 1, 1, 4


def tsan_supported(cc: str, workdir: str) -> bool:
    probe_c = os.path.join(workdir, "probe.c")
    with open(probe_c, "w") as f:
        f.write(PROBE)
    probe_bin = os.path.join(workdir, "probe")
    res = subprocess.run(
        [cc, *TSAN_FLAGS, probe_c, "-o", probe_bin],
        capture_output=True,
        text=True,
    )
    return res.returncode == 0


def generate_main(ir) -> str:
    """A main() that exercises both walks on identical inputs."""
    names = [info.name for info in ir.array_infos]
    consts = sorted(ir.const_arrays)
    lines = [
        "#include <stdio.h>",
        "#include <stdlib.h>",
        "#include <string.h>",
        "",
        "/* Deterministic LCG fill: same bits every run, no libm. */",
        "static unsigned long long lcg_state = 0x243F6A8885A308D3ULL;",
        "static double lcg(void) {",
        "  lcg_state = lcg_state * 6364136223846793005ULL"
        " + 1442695040888963407ULL;",
        "  return (double)(lcg_state >> 11) / (double)(1ULL << 53);",
        "}",
        "",
        "int main(void) {",
    ]
    for info in ir.array_infos:
        n = info.slots
        for s in info.sizes:
            n *= s
        lines += [
            f"  const long long n_{info.name} = {n}LL;",
            f"  double* a_{info.name} = malloc(n_{info.name}"
            " * sizeof(double));",
            f"  double* b_{info.name} = malloc(n_{info.name}"
            " * sizeof(double));",
            f"  for (long long i = 0; i < n_{info.name}; ++i)"
            f" a_{info.name}[i] = lcg();",
            f"  memcpy(b_{info.name}, a_{info.name}, n_{info.name}"
            " * sizeof(double));",
        ]
    for c in consts:
        size = 1
        for s in ir.const_arrays[c].values.shape:
            size *= s
        lines += [
            f"  double* c_{c} = malloc({size}LL * sizeof(double));",
            f"  for (long long i = 0; i < {size}LL; ++i) c_{c}[i] = lcg();",
        ]
    scalar = ", ".join(
        str(v)
        for v in (TA, TB, *LO, *HI, *DLO, *DHI, *SLOPES, *THRESH,
                  DT_TH, HYPER)
    )
    a_ptrs = ", ".join(
        [f"a_{n}" for n in names] + [f"c_{c}" for c in consts]
    )
    b_ptrs = ", ".join(
        [f"b_{n}" for n in names] + [f"c_{c}" for c in consts]
    )
    lines += [
        "  long long wstats[3] = {0, 0, 0};",
        f"  walk_subtree({a_ptrs}, {scalar});",
        f"  walk_subtree_par({b_ptrs}, {scalar}, {NTHREADS}, wstats);",
        '  printf("spawned=%lld stolen=%lld barriers=%lld\\n",',
        "         wstats[0], wstats[1], wstats[2]);",
        "  if (wstats[0] == 0) {",
        '    fprintf(stderr, "pool spawned no tasks: harness is not'
        ' exercising the pool\\n");',
        "    return 2;",
        "  }",
    ]
    for n in names:
        lines += [
            f"  if (memcmp(a_{n}, b_{n}, n_{n} * sizeof(double)) != 0) {{",
            f'    fprintf(stderr, "parallel walk diverged on {n}\\n");',
            "    return 1;",
            "  }",
        ]
    lines += [
        '  printf("tsan walk check ok: serial == parallel, no races'
        ' reported\\n");',
        "  return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def main() -> int:
    cc = find_c_compiler()
    if cc is None:
        print("no C compiler found: tsan walk check skipped")
        return 0
    st_, u, k = make_heat_problem(GRID, seed=11)
    ir = build_ir(st_.prepare(TB, k))
    source = generate_c_source(ir, include_boundary=False,
                               include_parallel=True)
    source += "\n" + generate_main(ir)
    with tempfile.TemporaryDirectory(prefix="repro_tsan_") as workdir:
        if not tsan_supported(cc, workdir):
            print(
                f"{cc} cannot build -fsanitize=thread binaries "
                "(no libtsan?): tsan walk check skipped"
            )
            return 0
        src_path = os.path.join(workdir, "tsan_walk.c")
        with open(src_path, "w") as f:
            f.write(source)
        bin_path = os.path.join(workdir, "tsan_walk")
        res = subprocess.run(
            [cc, *TSAN_FLAGS, src_path, "-o", bin_path],
            capture_output=True,
            text=True,
        )
        if res.returncode != 0:
            print(res.stderr, file=sys.stderr)
            print("tsan walk harness failed to compile", file=sys.stderr)
            return 1
        env = dict(os.environ)
        # halt_on_error turns the first race into a nonzero exit even
        # if the program would have finished; the distinct exitcode
        # separates "race" from "divergence" in CI logs.
        env["TSAN_OPTIONS"] = (
            env.get("TSAN_OPTIONS", "") + " halt_on_error=1 exitcode=66"
        ).strip()
        run = subprocess.run(
            [bin_path], capture_output=True, text=True, env=env,
            timeout=600,
        )
        sys.stdout.write(run.stdout)
        sys.stderr.write(run.stderr)
        if run.returncode == 66:
            print("ThreadSanitizer reported a data race in the "
                  "parallel walk", file=sys.stderr)
        return run.returncode


if __name__ == "__main__":
    sys.exit(main())
