"""Tests for the util package: tables, timing, integer math, CPU count."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    Table,
    Timer,
    ceil_div,
    detect_cpu_count,
    ilog2,
    is_pow2,
    measure,
    next_pow2,
)


class TestIntMath:
    @given(a=st.integers(-1000, 1000), b=st.integers(1, 100))
    def test_ceil_div_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b

    @given(n=st.integers(1, 1 << 40))
    def test_ilog2_bounds(self, n):
        k = ilog2(n)
        assert 2**k <= n < 2 ** (k + 1)

    def test_ilog2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)

    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(64)
        assert not is_pow2(0) and not is_pow2(12) and not is_pow2(-4)

    @given(n=st.integers(1, 1 << 30))
    def test_next_pow2(self, n):
        p = next_pow2(n)
        assert is_pow2(p) and p >= n and (p == 1 or p // 2 < n)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "val"])
        t.add_row(["a", 1.0])
        t.add_row(["bbb", 22.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "22.50" in out

    def test_title(self):
        t = Table(["x"], title="hello")
        t.add_row([1])
        assert t.render().splitlines()[0] == "hello"

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        assert Table.format_cell(0.000123) == "0.000123"
        assert Table.format_cell(1234567.0) == "1.23e+06"
        assert Table.format_cell(1.5) == "1.50"
        assert Table.format_cell(0.0) == "0"


class TestDetectCpuCount:
    """The shared affinity-aware core count (executor default, walk
    pool auto, machine fingerprints, bench sweeps all consult it)."""

    def test_positive_int(self):
        n = detect_cpu_count()
        assert isinstance(n, int) and n >= 1

    def test_respects_affinity_mask(self, monkeypatch):
        import repro.util.cpus as cpus

        monkeypatch.setattr(
            cpus.os, "sched_getaffinity", lambda pid: {0, 2, 5}, raising=False
        )
        assert detect_cpu_count() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import repro.util.cpus as cpus

        def boom(pid):
            raise OSError("no affinity syscall here")

        monkeypatch.setattr(cpus.os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(cpus.os, "cpu_count", lambda: 7)
        assert detect_cpu_count() == 7

    def test_never_returns_zero(self, monkeypatch):
        import repro.util.cpus as cpus

        monkeypatch.setattr(
            cpus.os, "sched_getaffinity", lambda pid: set(), raising=False
        )
        assert detect_cpu_count() == 1


class TestTiming:
    def test_timer_accumulates(self):
        tm = Timer()
        with tm:
            pass
        first = tm.elapsed
        with tm:
            pass
        assert tm.elapsed >= first >= 0

    def test_measure_returns_positive(self):
        t = measure(lambda: sum(range(100)), repeat=2, warmup=1)
        assert t > 0


class TestAtomicWrites:
    def test_atomic_write_bytes_roundtrip(self, tmp_path):
        from repro.util import atomic_write_bytes

        path = tmp_path / "nested" / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"
        # Overwrite replaces wholesale, never appends.
        atomic_write_bytes(path, b"v2")
        assert path.read_bytes() == b"v2"

    def test_atomic_write_text_roundtrip(self, tmp_path):
        from repro.util import atomic_write_text

        path = tmp_path / "doc.json"
        atomic_write_text(path, '{"k": 1}\n')
        assert path.read_text() == '{"k": 1}\n'

    def test_no_temp_file_left_behind(self, tmp_path):
        from repro.util import atomic_write_bytes

        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        import repro.util.atomic as atomic

        path = tmp_path / "blob.bin"
        atomic.atomic_write_bytes(path, b"original")

        real_replace = atomic.os.replace

        def boom(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(atomic.os, "replace", boom)
        with pytest.raises(OSError):
            atomic.atomic_write_bytes(path, b"new")
        monkeypatch.setattr(atomic.os, "replace", real_replace)
        assert path.read_bytes() == b"original"
        # ... and the failed attempt's temp file is cleaned up.
        assert [p.name for p in path.parent.iterdir()] == ["blob.bin"]

    def test_durable_replace(self, tmp_path):
        from repro.util import durable_replace

        tmp = tmp_path / "incoming.tmp"
        dst = tmp_path / "final.bin"
        tmp.write_bytes(b"published")
        durable_replace(tmp, dst)
        assert dst.read_bytes() == b"published"
        assert not tmp.exists()
