"""The persistent tuned-config registry: correctness and robustness.

Two properties anchor this suite:

* **Equivalence** — a tuned config only moves *dispatch* knobs
  (thresholds, mode, fusion, workers), never semantics, so a run under
  any valid tuned config must be bitwise identical to the
  heuristic-default run.  Randomized configs (seeded RNG) sweep every
  registered app, every executor, and every concrete backend.
* **Robustness** — corrupt JSON, a schema-version bump, and a
  machine-fingerprint mismatch each degrade to the heuristics; no
  exception from the registry ever reaches ``Stencil.run``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro.apps import available_apps, build
from repro.autotune import registry
from repro.autotune.registry import SCHEMA_VERSION, TunedConfig
from tests.conftest import ALL_MODES, make_heat_problem

pytestmark = pytest.mark.usefixtures("isolated_registry")


@pytest.fixture
def isolated_registry(tmp_path, monkeypatch):
    """Every test gets a private registry file."""
    path = tmp_path / "registry.json"
    monkeypatch.setenv("REPRO_TUNE_REGISTRY", str(path))
    return path


def _heat_problem(sizes=(32, 32), steps=6):
    st, u, k = make_heat_problem(sizes)
    return st, u, k, st.prepare(steps, k)


def _random_config(rng, ndim, *, modes=("auto",)) -> TunedConfig:
    return TunedConfig(
        space_thresholds=tuple(int(rng.integers(3, 20)) for _ in range(ndim)),
        dt_threshold=int(rng.integers(1, 6)),
        mode=str(rng.choice(list(modes))),
        fuse_leaves=bool(rng.integers(0, 2)),
        n_workers=int(rng.integers(1, 4)),
    )


class TestTunedConfig:
    def test_json_roundtrip(self):
        cfg = TunedConfig(
            space_thresholds=(128, 64),
            dt_threshold=16,
            mode="c",
            fuse_leaves=False,
            n_workers=3,
            best_time=0.25,
            evaluations=17,
            tuned_unix_time=1.5e9,
        )
        assert TunedConfig.from_json(cfg.to_json()) == cfg

    @pytest.mark.parametrize(
        "broken",
        [
            "not a dict",
            {},
            {"space_thresholds": [], "dt_threshold": 4},
            {"space_thresholds": [0, 8], "dt_threshold": 4},
            {"space_thresholds": [8, 8], "dt_threshold": 0},
            {"space_thresholds": [8], "dt_threshold": 2, "mode": "cuda"},
            {"space_thresholds": [8], "dt_threshold": 2, "n_workers": 0},
        ],
    )
    def test_malformed_entries_rejected(self, broken):
        with pytest.raises((KeyError, TypeError, ValueError)):
            TunedConfig.from_json(broken)


class TestStoreLookup:
    def test_roundtrip(self):
        st, u, k, problem = _heat_problem()
        cfg = TunedConfig(space_thresholds=(12, 12), dt_threshold=3)
        assert registry.store(problem, "auto", cfg)
        got = registry.lookup(problem, "auto")
        assert got is not None
        assert got.space_thresholds == (12, 12)
        assert got.dt_threshold == 3

    def test_miss_on_different_backend(self):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        assert registry.lookup(problem, "split_pointer") is None

    def test_miss_on_different_problem(self):
        _, _, _, p_a = _heat_problem((32, 32))
        _, _, _, p_b = _heat_problem((32, 31))
        registry.store(p_a, "auto", TunedConfig((12, 12), 3))
        assert registry.lookup(p_b, "auto") is None

    def test_miss_on_fingerprint_change(self, monkeypatch):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        monkeypatch.setattr(
            registry, "machine_fingerprint", lambda: "cpu999|cc:other-box"
        )
        assert registry.lookup(problem, "auto") is None

    def test_signature_ignores_time_window_and_data(self):
        st, u, k = make_heat_problem((32, 32))
        sig_a = registry.problem_signature(st.prepare(4, k))
        u.set_initial(np.ones((32, 32)))
        sig_b = registry.problem_signature(st.prepare(9, k))
        assert sig_a == sig_b

    def test_clear_registry(self, isolated_registry):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        assert isolated_registry.exists()
        registry.clear_registry()
        assert not isolated_registry.exists()
        assert registry.lookup(problem, "auto") is None


class TestRobustness:
    """Damage of every kind degrades to heuristics, never an exception."""

    def test_corrupt_json_evicted_and_run_survives(self, isolated_registry):
        isolated_registry.write_text("{ this is not json")
        st, u, k, problem = _heat_problem()
        assert registry.lookup(problem, "auto") is None
        # the corpse was moved aside, so the next store starts clean
        assert not isolated_registry.exists()
        corpse = isolated_registry.with_name(isolated_registry.name + ".corrupt")
        assert corpse.exists()
        report = st.run(6, k, autotune="use")
        assert report.autotune_source == "heuristic"

    def test_schema_version_bump_discards_entries(self, isolated_registry):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        doc = json.loads(isolated_registry.read_text())
        doc["schema"] = SCHEMA_VERSION + 1
        isolated_registry.write_text(json.dumps(doc))
        assert registry.lookup(problem, "auto") is None
        report = st.run(6, k, autotune="use")
        assert report.autotune_source == "heuristic"

    def test_corrupt_entry_dropped_others_survive(self, isolated_registry):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        doc = json.loads(isolated_registry.read_text())
        doc["entries"]["bogus-key"] = {"space_thresholds": "nope"}
        isolated_registry.write_text(json.dumps(doc))
        assert registry.lookup(problem, "auto") is not None
        assert "bogus-key" not in registry.entries()

    def test_wrong_arity_entry_not_applied(self):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((8, 8, 8), 3))
        assert registry.lookup(problem, "auto") is None
        report = st.run(6, k, autotune="use")
        assert report.autotune_source == "heuristic"

    def test_unwritable_registry_never_reaches_run(self, monkeypatch, tmp_path):
        # Point the registry *file* at a directory: every read and write
        # fails with OSError, which must stay inside the registry layer.
        monkeypatch.setenv("REPRO_TUNE_REGISTRY", str(tmp_path))
        st, u, k, problem = _heat_problem()
        assert registry.store(problem, "auto", TunedConfig((12, 12), 3)) is False
        assert registry.lookup(problem, "auto") is None
        report = st.run(6, k, autotune="use")
        assert report.autotune_source == "heuristic"

    def test_registry_off_by_default(self, isolated_registry):
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        report = st.run(6, k)  # autotune defaults to "off"
        assert report.autotune_source == "heuristic"
        st2, u2, k2 = make_heat_problem((32, 32))
        with pytest.raises(Exception):
            st2.run(6, k2, autotune="sometimes")


class TestEquivalence:
    """Tuned configs change dispatch, never results."""

    def test_random_configs_bitwise_equal_heat(self):
        ref_st, ref_u, ref_k = make_heat_problem((32, 32))
        ref_st.run(8, ref_k)
        ref = ref_u.snapshot(ref_st.cursor)
        rng = np.random.default_rng(2026)
        for trial in range(6):
            registry.clear_registry()
            st, u, k = make_heat_problem((32, 32))
            cfg = _random_config(rng, 2, modes=["auto"] + ALL_MODES)
            registry.store(st.prepare(8, k), "auto", cfg)
            report = st.run(8, k, autotune="use")
            assert report.autotune_source == "registry", (trial, cfg)
            assert np.array_equal(u.snapshot(st.cursor), ref), (trial, cfg)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_explicit_backend_with_tuned_thresholds(self, mode):
        ref_st, ref_u, ref_k = make_heat_problem((24, 24))
        ref_st.run(6, ref_k, mode=mode)
        ref = ref_u.snapshot(ref_st.cursor)
        st, u, k = make_heat_problem((24, 24))
        registry.store(
            st.prepare(6, k), mode, TunedConfig((7, 9), 2, mode=mode)
        )
        report = st.run(6, k, mode=mode, autotune="use")
        assert report.autotune_source == "registry"
        assert report.mode == mode
        assert np.array_equal(u.snapshot(st.cursor), ref)

    @pytest.mark.parametrize("executor", ["serial", "threads", "dag"])
    def test_all_executors_under_tuned_config(self, executor):
        ref_st, ref_u, ref_k = make_heat_problem((32, 32))
        ref_st.run(8, ref_k)
        ref = ref_u.snapshot(ref_st.cursor)
        st, u, k = make_heat_problem((32, 32))
        registry.store(
            st.prepare(8, k), "auto", TunedConfig((9, 11), 2, n_workers=3)
        )
        report = st.run(8, k, executor=executor, autotune="use")
        assert report.autotune_source == "registry"
        assert np.array_equal(u.snapshot(st.cursor), ref)

    @pytest.mark.parametrize("name", available_apps())
    def test_all_apps_tuned_equals_heuristic(self, name):
        """All apps x a seeded random tuned config: bitwise equality
        against the heuristic-default run (the autotune analogue of the
        executor-equivalence safety net)."""
        ref_app = build(name, "tiny")
        ref_app.run()
        ref = ref_app.result()
        # crc32, not hash(): str hashing is salted per process, and a
        # failure must reproduce with the exact same config on rerun.
        rng = np.random.default_rng(zlib.crc32(name.encode()))
        app = build(name, "tiny")
        problem = app.stencil.prepare(app.steps, app.kernel)
        cfg = _random_config(rng, app.stencil.ndim, modes=["auto"] + ALL_MODES)
        registry.store(problem, "auto", cfg)
        report = app.run(autotune="use")
        assert report.autotune_source == "registry", (name, cfg)
        assert np.array_equal(app.result(), ref), (name, cfg)

    def test_explicit_knobs_beat_registry(self):
        st, u, k = make_heat_problem((32, 32))
        registry.store(
            st.prepare(8, k),
            "auto",
            TunedConfig((4, 4), 1, fuse_leaves=True, n_workers=3),
        )
        report = st.run(
            8, k, autotune="use", mode="split_pointer", n_workers=1,
            fuse_leaves=False, space_thresholds=(16, 16), dt_threshold=4,
        )
        # every knob the entry covers was pinned by the caller, so the
        # registry applied nothing and must not claim the run
        assert report.autotune_source == "explicit"
        assert report.n_workers == 1

    def test_partial_pinning_still_counts_as_registry(self):
        st, u, k = make_heat_problem((32, 32))
        registry.store(st.prepare(8, k), "auto", TunedConfig((4, 4), 1))
        report = st.run(8, k, autotune="use", space_thresholds=(16, 16))
        # dt_threshold still came from the registry entry
        assert report.autotune_source == "registry"

    def test_strap_never_served_a_trap_config(self):
        st, u, k = make_heat_problem((32, 32))
        registry.store(st.prepare(8, k), "auto", TunedConfig((4, 4), 1))
        report = st.run(8, k, algorithm="strap", autotune="use")
        # strap keys on "strap:auto", so the trap entry must not apply
        assert report.autotune_source == "heuristic"


class TestTuneOnMiss:
    def test_tune_on_miss_tunes_stores_and_applies(self):
        ref_st, ref_u, ref_k = make_heat_problem((32, 32))
        ref_st.run(8, ref_k)
        ref = ref_u.snapshot(ref_st.cursor)

        st, u, k = make_heat_problem((32, 32))
        report = st.run(8, k, autotune="tune-on-miss")
        assert report.autotune_source == "tuned"
        assert np.array_equal(u.snapshot(st.cursor), ref)
        assert len(registry.entries()) == 1

        # same process, second run: served from the registry
        st2, u2, k2 = make_heat_problem((32, 32))
        report2 = st2.run(8, k2, autotune="tune-on-miss")
        assert report2.autotune_source == "registry"
        assert np.array_equal(u2.snapshot(st2.cursor), ref)

    def test_tuning_leaves_user_arrays_untouched(self):
        st, u, k = make_heat_problem((32, 32))
        before = u.data.copy()
        st.prepare(0, k)  # no-op; just proves prepare alone is inert
        from repro.autotune.isat import tune_problem

        problem = st.prepare(6, k)
        result = tune_problem(problem, steps=4)
        assert result.evaluations >= 1
        assert np.array_equal(u.data, before)
        assert st.cursor is None  # tuning never advances the stencil


class TestSchemaMigration:
    """The schema-2 bump (``compiled_walk`` knob): old files read as
    empty, new entries round-trip, and the knob actually steers runs."""

    def test_compiled_walk_roundtrips_through_json(self):
        for cw in (None, True, False):
            cfg = TunedConfig((8, 8), 2, compiled_walk=cw)
            assert TunedConfig.from_json(cfg.to_json()).compiled_walk == cw

    def test_compiled_walk_roundtrips_through_store(self):
        st, u, k, problem = _heat_problem()
        registry.store(
            problem, "auto", TunedConfig((12, 12), 3, compiled_walk=False)
        )
        got = registry.lookup(problem, "auto")
        assert got is not None and got.compiled_walk is False

    @pytest.mark.parametrize("bad", ["yes", 0, 1])
    def test_bad_compiled_walk_rejected(self, bad):
        """Non-bool values are rejected — including 0/1, which equality
        checks would admit (0 == False) while the consumer's identity
        dispatch (`is False`) silently misread them as 'on'."""
        with pytest.raises(ValueError):
            TunedConfig.from_json(
                {
                    "space_thresholds": [8, 8],
                    "dt_threshold": 2,
                    "compiled_walk": bad,
                }
            )

    @pytest.mark.parametrize("old_schema", [1, 2])
    def test_pre_bump_file_reads_empty_then_rewrites_at_current(
        self, isolated_registry, old_schema
    ):
        """The migration contract: a pre-bump registry is discarded
        wholesale (its configs were tuned without the new knob in the
        search space), and the next store rewrites the file at the
        current schema.  Covers both historical layouts: schema 1
        (no ``compiled_walk``) and schema 2 (no ``walk_threads``)."""
        st, u, k, problem = _heat_problem()
        registry.store(problem, "auto", TunedConfig((12, 12), 3))
        doc = json.loads(isolated_registry.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        # Rewrite the same entries as the older layout: each bump only
        # added a key, so dropping the newer keys reproduces it exactly.
        for entry in doc["entries"].values():
            entry.pop("walk_threads", None)
            if old_schema < 2:
                entry.pop("compiled_walk", None)
        doc["schema"] = old_schema
        isolated_registry.write_text(json.dumps(doc))
        assert registry.lookup(problem, "auto") is None
        report = st.run(6, k, autotune="use")
        assert report.autotune_source == "heuristic"
        # the next store migrates the file forward
        registry.store(problem, "auto", TunedConfig((10, 10), 2))
        doc = json.loads(isolated_registry.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        got = registry.lookup(problem, "auto")
        assert got is not None and got.space_thresholds == (10, 10)

    def test_walk_threads_roundtrips_through_json(self):
        """The schema-3 knob survives serialization for every shape it
        can take: unset (defer to the run's auto rule), explicit serial,
        and an explicit thread count."""
        for wt in (None, 1, 4):
            cfg = TunedConfig((8, 8), 2, walk_threads=wt)
            assert TunedConfig.from_json(cfg.to_json()).walk_threads == wt

    def test_walk_threads_roundtrips_through_store(self):
        st, u, k, problem = _heat_problem()
        registry.store(
            problem, "auto", TunedConfig((12, 12), 3, walk_threads=2)
        )
        got = registry.lookup(problem, "auto")
        assert got is not None and got.walk_threads == 2

    @pytest.mark.parametrize("bad", [0, -1, "two"])
    def test_bad_walk_threads_rejected(self, bad):
        """A thread count below 1 (or a non-integer) can never steer the
        pool; such entries are evicted at parse time like any other
        malformed field."""
        with pytest.raises((TypeError, ValueError)):
            TunedConfig.from_json(
                {
                    "space_thresholds": [8, 8],
                    "dt_threshold": 2,
                    "walk_threads": bad,
                }
            )

    @pytest.mark.skipif("c" not in ALL_MODES, reason="no C compiler")
    def test_tuned_walk_threads_reaches_the_report(self):
        """A stored ``walk_threads`` must reach the executor: the
        RunReport's ``walk_threads`` field reflects the registry value
        when the caller leaves the knob unset, and the explicit knob
        wins when the caller pins it."""
        st, u, k = make_heat_problem((32, 32))
        problem = st.prepare(8, k)
        cfg = TunedConfig((8, 8), 2, mode="c", walk_threads=2)
        registry.store(problem, "c", cfg)
        report = st.run(8, k, mode="c", autotune="use")
        assert report.autotune_source == "registry"
        assert report.walk_threads == 2

        st2, u2, k2 = make_heat_problem((32, 32))
        registry.store(st2.prepare(8, k2), "c", cfg)
        report2 = st2.run(8, k2, mode="c", autotune="use", walk_threads=1)
        assert report2.walk_threads == 1

    @pytest.mark.skipif("c" not in ALL_MODES, reason="no C compiler")
    def test_tuned_compiled_walk_off_steers_the_planner(self):
        """A stored ``compiled_walk=False`` must reach the walker: the
        C-mode run plans no subtree tasks, while the default rule (knob
        unset) plans some on the same problem."""
        st, u, k = make_heat_problem((32, 32))
        problem = st.prepare(8, k)
        cfg = TunedConfig((8, 8), 2, mode="c", compiled_walk=False)
        registry.store(problem, "c", cfg)
        report = st.run(8, k, mode="c", autotune="use")
        assert report.autotune_source == "registry"
        assert report.subtree_tasks == 0

        st2, u2, k2 = make_heat_problem((32, 32))
        report2 = st2.run(
            8, k2, mode="c", space_thresholds=(8, 8), dt_threshold=2
        )
        assert report2.subtree_tasks > 0


KNOB_PROCESS_SCRIPT = """
from tests.conftest import make_heat_problem
st, u, k = make_heat_problem((32, 32))
report = st.run(8, k, mode="c", autotune="use")
print("SOURCE=" + report.autotune_source)
print("SUBTREES=%d" % report.subtree_tasks)
"""


WTHREADS_PROCESS_SCRIPT = """
from tests.conftest import make_heat_problem
st, u, k = make_heat_problem((32, 32))
report = st.run(8, k, mode="c", autotune="use")
print("SOURCE=" + report.autotune_source)
print("WTHREADS=%d" % report.walk_threads)
"""


FRESH_PROCESS_SCRIPT = """
import numpy as np
from tests.conftest import make_heat_problem
st, u, k = make_heat_problem((32, 32))
report = st.run(8, k, autotune="use")
print("SOURCE=" + report.autotune_source)
print("CHECKSUM=%.17g" % float(np.sum(u.snapshot(st.cursor))))
"""


class TestCrossProcess:
    def test_config_tuned_here_applies_in_a_fresh_process(
        self, isolated_registry
    ):
        """The acceptance criterion: tune in this process, verify via
        RunReport that a *fresh* interpreter loads and applies it."""
        st, u, k = make_heat_problem((32, 32))
        report = st.run(8, k, autotune="tune-on-miss")
        assert report.autotune_source == "tuned"
        checksum = float(np.sum(u.snapshot(st.cursor)))

        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", FRESH_PROCESS_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SOURCE=registry" in proc.stdout, proc.stdout
        line = [l for l in proc.stdout.splitlines() if l.startswith("CHECKSUM=")]
        assert line and float(line[0].split("=")[1]) == pytest.approx(checksum)

    @pytest.mark.skipif("c" not in ALL_MODES, reason="no C compiler")
    def test_compiled_walk_knob_roundtrips_across_processes(
        self, isolated_registry
    ):
        """The schema-2 acceptance criterion: a config carrying the new
        ``compiled_walk`` knob, stored here, must load and *steer the
        planner* in a fresh interpreter."""
        st, u, k = make_heat_problem((32, 32))
        problem = st.prepare(8, k)
        registry.store(
            problem,
            "c",
            TunedConfig((8, 8), 2, mode="c", compiled_walk=False),
        )
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", KNOB_PROCESS_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SOURCE=registry" in proc.stdout, proc.stdout
        assert "SUBTREES=0" in proc.stdout, proc.stdout

    @pytest.mark.skipif("c" not in ALL_MODES, reason="no C compiler")
    def test_walk_threads_knob_roundtrips_across_processes(
        self, isolated_registry
    ):
        """The schema-3 acceptance criterion: a config carrying the new
        ``walk_threads`` knob, stored here, must load and set the pool's
        thread count in a fresh interpreter."""
        st, u, k = make_heat_problem((32, 32))
        problem = st.prepare(8, k)
        registry.store(
            problem,
            "c",
            TunedConfig((8, 8), 2, mode="c", walk_threads=2),
        )
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", WTHREADS_PROCESS_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SOURCE=registry" in proc.stdout, proc.stdout
        assert "WTHREADS=2" in proc.stdout, proc.stdout
