"""Multiprocess registry stress: concurrent stores must merge, not drop.

Before the flock around ``store()``'s load→merge→dump, two processes
racing the read-modify-write would last-writer-wins each other's
entries — exactly the load a serving fleet of tune-on-miss workers
produces.  This test proves zero lost updates: N writer subprocesses
hammer one registry file through a file barrier (maximal overlap), and
every single entry must be present afterwards.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.autotune import registry

N_WRITERS = 8
ENTRIES_PER_WRITER = 16

_WRITER = """
import os, sys, time
sys.path.insert(0, "src")
from repro.autotune.registry import TunedConfig, store
from tests.conftest import make_heat_problem

wid, go_file = int(sys.argv[1]), sys.argv[2]
st, u, k = make_heat_problem((16, 16))
problem = st.prepare(4, k)
# Barrier: all writers spin here until the parent creates the go file,
# so the stores overlap as much as the scheduler allows.
while not os.path.exists(go_file):
    time.sleep(0.001)
ok = 0
for i in range({entries}):
    config = TunedConfig(space_thresholds=(8, 8), dt_threshold=2,
                         best_time=float(wid), evaluations=i)
    if store(problem, f"stress-w{{wid}}-e{{i}}", config):
        ok += 1
print(ok)
""".format(entries=ENTRIES_PER_WRITER)


def test_concurrent_stores_lose_nothing(tmp_path, monkeypatch):
    reg_path = tmp_path / "registry.json"
    go_file = tmp_path / "go"
    monkeypatch.setenv("REPRO_TUNE_REGISTRY", str(reg_path))
    env = dict(os.environ)
    env["REPRO_TUNE_REGISTRY"] = str(reg_path)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src", ".") if p
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(wid), str(go_file)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        for wid in range(N_WRITERS)
    ]
    time.sleep(0.3)  # let every writer reach the barrier
    go_file.write_text("go")
    stored = 0
    for proc in procs:
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0
        stored += int(out.strip())
    assert stored == N_WRITERS * ENTRIES_PER_WRITER

    entries = registry.entries()
    expected = {
        f"stress-w{wid}-e{i}"
        for wid in range(N_WRITERS)
        for i in range(ENTRIES_PER_WRITER)
    }
    # Every key embeds its backend string; recover the backend part.
    got = {key.split("|")[1] for key in entries}
    missing = expected - got
    assert not missing, (
        f"{len(missing)} of {len(expected)} concurrent stores were lost "
        f"(last-writer-wins race): {sorted(missing)[:5]}..."
    )
