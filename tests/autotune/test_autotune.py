"""Tests for the ISAT-style tuners and the Berkeley comparator."""

import numpy as np
import pytest

from repro.autotune import tune_blocked_loops, tune_coarsening, tune_dispatch
from repro.autotune.berkeley import run_blocked_loops
from repro.errors import AutotuneError
from tests.conftest import make_heat_problem, run_reference


def _maker(sizes=(48, 48)):
    def make():
        st_, u, k = make_heat_problem(sizes)
        return st_, k

    return make


class TestCoarseningTuner:
    def test_returns_candidate_values(self):
        result = tune_coarsening(
            _maker(), 8,
            space_candidates=(8, 16), dt_candidates=(2, 4), repeats=1,
        )
        assert result.space_threshold in (8, 16)
        assert result.dt_threshold in (2, 4)
        assert result.best_time > 0
        assert result.evaluations >= 3
        assert len(result.history) == result.evaluations

    def test_best_time_is_minimum_of_history(self):
        result = tune_coarsening(
            _maker(), 8,
            space_candidates=(8, 32), dt_candidates=(2, 8), repeats=1,
        )
        assert result.best_time == min(t for _, _, t in result.history)

    def test_empty_candidates_rejected(self):
        with pytest.raises(AutotuneError):
            tune_coarsening(_maker(), 4, space_candidates=(), dt_candidates=(2,))

    def test_as_options_roundtrip(self):
        result = tune_coarsening(
            _maker(), 4, space_candidates=(16,), dt_candidates=(4,), repeats=1
        )
        opts = result.as_options(2)
        st_, u, k = make_heat_problem((48, 48))
        st_.run(4, k, **opts)  # tuned thresholds are directly runnable
        assert st_.cursor == 4

    def test_memoization_skips_revisited_points(self):
        """Coordinate descent revisits the incumbent on every sweep; the
        memo must serve those repeats, so the distinct-evaluation count
        drops below the visit count and each distinct point is timed
        exactly ``repeats`` times (one make_problem call per repeat)."""
        calls = {"n": 0}
        base = _maker()

        def counted():
            calls["n"] += 1
            return base()

        result = tune_coarsening(
            counted, 4,
            space_candidates=(8, 16, 32), dt_candidates=(2, 4), repeats=1,
            max_sweeps=3,
        )
        assert result.visits > result.evaluations  # repeats were requested…
        assert calls["n"] == result.evaluations  # …but never re-run
        assert result.evaluations == len(result.history)


class TestDispatchTuner:
    def test_covers_full_dispatch_space(self):
        result = tune_dispatch(
            _maker((32, 32)), 4,
            modes=("split_pointer",),
            space_candidates=(8, 16),
            dt_candidates=(2, 4),
            worker_candidates=(1, 2),
            max_sweeps=1,
        )
        cfg = result.config
        assert cfg.space_thresholds[0] in (8, 16)
        assert cfg.space_thresholds[1] in (8, 16)
        assert cfg.dt_threshold in (2, 4)
        assert cfg.mode == "split_pointer"
        assert cfg.fuse_leaves in (True, False)
        assert cfg.n_workers in (1, 2)
        assert cfg.best_time == result.best_time > 0
        assert result.visits > result.evaluations  # memo served the sweeps
        assert result.evaluations == len(result.history)
        assert cfg.tuned_unix_time > 0

    def test_per_dimension_thresholds_tuned_independently(self):
        # An asymmetric candidate list can land different thresholds per
        # dimension — the config records one entry per dimension.
        result = tune_dispatch(
            _maker((32, 32)), 4,
            modes=("split_pointer",),
            space_candidates=(8, 32),
            dt_candidates=(4,),
            worker_candidates=(1,),
            fuse_candidates=(True,),
            max_sweeps=1,
        )
        assert len(result.config.space_thresholds) == 2

    def test_best_time_is_minimum_of_history(self):
        result = tune_dispatch(
            _maker((32, 32)), 4,
            modes=("split_pointer",),
            space_candidates=(8, 16),
            dt_candidates=(2,),
            worker_candidates=(1,),
            max_sweeps=1,
        )
        assert result.best_time == min(t for _, t in result.history)

    def test_no_modes_rejected(self):
        with pytest.raises(AutotuneError):
            tune_dispatch(_maker(), 4, modes=())


class TestBerkeleyComparator:
    def test_blocked_loops_match_reference(self):
        sizes, T = (20, 18), 6
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        run_blocked_loops(st_, T, k, block=(7, 1 << 30))
        assert np.array_equal(u.snapshot(st_.cursor), ref)

    def test_tuner_reports_throughput(self):
        result = tune_blocked_loops(
            _maker((32, 32)), 4, block_candidates=(8, 16)
        )
        assert result.configurations_tried == 2
        assert result.points_per_second > 0
        assert result.block[-1] == 1 << 30  # unit-stride never blocked

    def test_3d_blocks_two_outer_dims(self):
        def make():
            st_, u, k = make_heat_problem((12, 12, 12))
            return st_, k

        result = tune_blocked_loops(make, 2, block_candidates=(4, 8))
        assert result.configurations_tried == 4  # 2 outer dims x 2 options
