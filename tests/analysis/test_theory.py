"""Tests for the Theorems 3 & 5 closed forms and the Section-3 discussion."""

import math

import pytest

from repro.analysis.theory import (
    parallelism_growth_exponent,
    strap_parallelism_bound,
    strap_span_bound,
    trap_parallelism_bound,
    trap_span_bound,
)


def test_d1_both_algorithms_same_exponent():
    """Discussion after Theorem 5: for d=1 both give Theta(w^(2 - lg 3))."""
    e_trap = parallelism_growth_exponent(1, "trap")
    e_strap = parallelism_growth_exponent(1, "strap")
    assert e_trap == pytest.approx(2 - math.log2(3))
    assert e_strap == pytest.approx(2 - math.log2(3))


def test_d2_trap_linear_strap_sublinear():
    """For d=2, Theorem 3's formula gives TRAP w^(2 - lg 4 + 1) = w^1 and
    Theorem 5 gives STRAP w^(3 - lg 5) ~ w^0.68.

    Note: the paper's *discussion* paragraph says "for d = 2, TRAP has
    Theta(w^2)", which contradicts the Theorem 3 formula two paragraphs
    above it (3 - lg 4 = 1).  Our work/span analyzer empirically measures
    a 2D TRAP growth exponent of ~1.04 (see bench_fig9), confirming the
    theorem's formula; we follow the theorem.
    """
    assert parallelism_growth_exponent(2, "trap") == pytest.approx(1.0)
    assert parallelism_growth_exponent(2, "strap") == pytest.approx(
        3 - math.log2(5)
    )


def test_gap_grows_with_dimension():
    gaps = [
        parallelism_growth_exponent(d, "trap")
        - parallelism_growth_exponent(d, "strap")
        for d in (1, 2, 3, 4)
    ]
    assert gaps[0] == pytest.approx(0.0)
    assert all(gaps[i] < gaps[i + 1] for i in range(len(gaps) - 1))


def test_span_bounds_lemma_exponents():
    # Lemma 2: d * h^lg(d+2); Lemma 4: h^lg(2d+1).
    assert trap_span_bound(16, 2) == pytest.approx(2 * 16**2)
    assert strap_span_bound(16, 2) == pytest.approx(16 ** math.log2(5))


def test_parallelism_bounds_monotone_in_w():
    for d in (1, 2, 3):
        assert trap_parallelism_bound(256, d) > trap_parallelism_bound(64, d)
        assert strap_parallelism_bound(256, d) > strap_parallelism_bound(64, d)


def test_trap_dominates_strap_for_large_w():
    for d in (2, 3, 4):
        assert trap_parallelism_bound(4096, d) > strap_parallelism_bound(4096, d)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        parallelism_growth_exponent(2, "quantum")
