"""Tests for paper-style report rendering."""

from repro.analysis.reporting import Fig3Row, fig3_table, series_table


def _row(name="heat2d"):
    return Fig3Row(
        benchmark=name,
        dims="2",
        grid="512x512",
        steps=128,
        pochoir_1core=1.0,
        pochoir_pcore=0.12,
        speedup=8.3,
        serial_loops=2.5,
        serial_ratio=20.8,
        parallel_loops=0.4,
        parallel_ratio=3.3,
    )


def test_fig3_table_contains_all_columns():
    out = fig3_table([_row()], processors=12)
    assert "heat2d" in out
    assert "512x512" in out
    assert "12c sim" in out
    assert "greedy-scheduler model" in out  # honesty label


def test_fig3_table_multiple_rows():
    out = fig3_table([_row("a"), _row("b")], processors=4)
    assert out.count("512x512") == 2


def test_series_table_shape():
    out = series_table(
        "demo", "N", [100, 200], {"trap": [1.0, 2.0], "strap": [0.5, 0.7]}
    )
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "trap" in lines[1] and "strap" in lines[1]
    assert len(lines) == 2 + 1 + 2  # title, header, rule, two rows
