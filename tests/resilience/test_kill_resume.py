"""SIGKILL a checkpointing run mid-history, resume, demand bitwise
equality with the uninterrupted run.

The child process arms ``REPRO_FAULTS="checkpoint.kill:1@1"`` — the
resilience runner SIGKILLs its own process right after the *second*
checkpoint lands, exactly the way a power cut would land between block
boundaries (SIGKILL cannot be caught, so no cleanup code can mask a
durability bug).  The parent then resumes from the surviving
checkpoint directory in-process and compares grids bit for bit.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.apps.registry import build

from tests.conftest import has_c_backend

_CHILD = """\
import sys
from repro.apps.registry import build
from repro import CheckpointPolicy

app_name, mode, ckpt_dir, every_dt = sys.argv[1:5]
app = build(app_name, scale="tiny")
app.run(
    mode=mode,
    checkpoint=CheckpointPolicy(dir=ckpt_dir, every_dt=int(every_dt), keep=10),
)
print("COMPLETED-WITHOUT-KILL")  # the kill fault must prevent this
"""

APPS = ["heat1d", "heat2d", "life"]
MODES = ["auto"] + (["c"] if has_c_backend() else [])


def _child_env():
    env = dict(os.environ)
    env["REPRO_FAULTS"] = "checkpoint.kill:1@1"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src") if p
    )
    return env


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("app_name", APPS)
def test_kill_then_resume_bitwise_identical(app_name, mode, tmp_path):
    ref_app = build(app_name, scale="tiny")
    ref_app.run(mode=mode)
    ref = ref_app.result()

    every_dt = max(1, ref_app.steps // 4)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, app_name, mode, str(tmp_path),
         str(every_dt)],
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"child should die by SIGKILL, got rc={proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    assert "COMPLETED-WITHOUT-KILL" not in proc.stdout
    survivors = list(tmp_path.iterdir())
    assert survivors, "the killed run must leave durable checkpoints"

    app = build(app_name, scale="tiny")
    report = app.run(mode=mode, resume_from=tmp_path)
    assert report.resumed_from is not None
    assert report.resumed_from < ref_app.stencil.cursor + 1  # mid-history
    np.testing.assert_array_equal(app.result(), ref)


_SIGTERM_CHILD = """\
import os
import signal
import sys
import threading
from repro.apps.registry import build
from repro import CheckpointPolicy

app_name, mode, ckpt_dir, every_dt, scale, delay = sys.argv[1:7]
app = build(app_name, scale=scale)

# Deliver SIGTERM from a thread once the run is underway; the runner's
# handler must turn it into a flush-and-exit, not a traceback.
threading.Timer(float(delay), os.kill, (os.getpid(), signal.SIGTERM)).start()
app.run(
    mode=mode,
    checkpoint=CheckpointPolicy(dir=ckpt_dir, every_dt=int(every_dt), keep=10),
)
print("COMPLETED-WITHOUT-SIGNAL")
"""


def test_sigterm_flushes_final_checkpoint_and_resumes(tmp_path):
    """Graceful shutdown: SIGTERM mid-run exits ``128+15``, leaves a
    valid durable history, and a resumed run finishes bitwise equal."""
    ref_app = build("heat2d", scale="small")
    ref_app.run(mode="auto")
    ref = ref_app.result()

    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src") if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SIGTERM_CHILD, "heat2d", "auto",
         str(tmp_path), "1", "small", "1.5"],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if "COMPLETED-WITHOUT-SIGNAL" in proc.stdout:
        pytest.skip("run finished before the signal landed")
    assert proc.returncode == 128 + signal.SIGTERM, (
        f"graceful shutdown must exit 128+SIGTERM, got rc={proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    assert list(tmp_path.iterdir()), (
        "the terminated run must flush durable checkpoints"
    )

    app = build("heat2d", scale="small")
    report = app.run(mode="auto", resume_from=tmp_path)
    assert report.resumed_from is not None
    np.testing.assert_array_equal(app.result(), ref)


def test_kill_resume_under_dag_executor(tmp_path):
    """Same contract with the parallel executor on both sides of the
    kill."""
    ref_app = build("heat2d", scale="tiny")
    ref_app.run(mode="auto", executor="dag", n_workers=2)
    ref = ref_app.result()

    proc = subprocess.run(
        [sys.executable, "-c", _CHILD.replace(
            'mode=mode,', 'mode=mode, executor="dag", n_workers=2,'
        ), "heat2d", "auto", str(tmp_path), "2"],
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    app = build("heat2d", scale="tiny")
    report = app.run(mode="auto", executor="dag", n_workers=2,
                     resume_from=tmp_path)
    assert report.resumed_from is not None
    np.testing.assert_array_equal(app.result(), ref)
