"""Runner-level surfacing: a dead checkpoint-writer thread must be
reported as a degradation at the point of failure, never hang the run
or hide the lost durability."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CheckpointPolicy
from repro.apps.registry import build
from repro.resilience import runner


@pytest.fixture()
def reference():
    app = build("heat2d", scale="tiny")
    app.run(mode="auto")
    return app.result()


def test_writer_death_is_surfaced_not_fatal(tmp_path, monkeypatch, reference):
    """The writer thread dying outright (bug, MemoryError, ...) notes
    ``checkpoint:writer-died`` and the run still completes correctly —
    silently-stopped durability is the failure this surfaces."""

    def _explode(self):
        raise RuntimeError("injected writer death")

    monkeypatch.setattr(runner._CheckpointWriter, "_loop", _explode)
    app = build("heat2d", scale="tiny")
    report = app.run(
        mode="auto",
        checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=3),
    )
    assert "checkpoint:writer-died" in report.degradations
    assert report.checkpoints_written == 0
    np.testing.assert_array_equal(app.result(), reference)


def test_writer_death_mid_history_keeps_prefix(
    tmp_path, monkeypatch, reference
):
    """Death after the first durable write: the run keeps its prefix,
    notes the loss, and later boundaries drop their snapshots instead of
    blocking on a queue nobody drains."""
    real_loop = runner._CheckpointWriter._loop
    state = {"writes": 0}

    def _loop_once_then_die(self):
        real_get = self._queue.get

        def counting_get(*a, **kw):
            item = real_get(*a, **kw)
            if state["writes"] >= 1:
                raise RuntimeError("injected writer death")
            state["writes"] += 1
            return item

        self._queue.get = counting_get
        real_loop(self)

    monkeypatch.setattr(runner._CheckpointWriter, "_loop", _loop_once_then_die)
    app = build("heat2d", scale="tiny")
    report = app.run(
        mode="auto",
        checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=2),
    )
    assert "checkpoint:writer-died" in report.degradations
    assert report.checkpoints_written == 1
    assert list(tmp_path.iterdir()), "the first write must survive"
    np.testing.assert_array_equal(app.result(), reference)
