"""The fault-plan registry: parsing, budgets, env arming, walk.pool."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def test_spec_parse_forms():
    assert FaultSpec.parse("cc.fail") == FaultSpec("cc.fail")
    assert FaultSpec.parse("cc.fail:3") == FaultSpec("cc.fail", times=3)
    assert FaultSpec.parse("cc.fail:*") == FaultSpec("cc.fail", times=None)
    assert FaultSpec.parse("checkpoint.kill:1@2") == FaultSpec(
        "checkpoint.kill", times=1, skip=2
    )
    with pytest.raises(ValueError):
        FaultSpec.parse(":3")


def test_plan_parse_multiple():
    plan = FaultPlan.parse("cc.fail:1, so.load , dag.worker:2@1")
    assert set(plan.specs) == {"cc.fail", "so.load", "dag.worker"}
    assert plan.specs["dag.worker"].times == 2
    assert plan.specs["dag.worker"].skip == 1


def test_fire_respects_times_and_skip():
    faults.install(FaultPlan().add("cc.fail", times=2, skip=1))
    assert faults.fire("cc.fail") is False  # skipped
    assert faults.fire("cc.fail") is True
    assert faults.fire("cc.fail") is True
    assert faults.fire("cc.fail") is False  # budget spent
    assert faults.fired("cc.fail") == 2
    assert faults.fire("so.load") is False  # known but unarmed


def test_injected_composes_and_restores():
    faults.install(FaultPlan().add("so.load"))
    with faults.injected("dag.worker", times=1):
        assert set(faults.active_sites()) == {"so.load", "dag.worker"}
        assert faults.fire("dag.worker") is True
        assert faults.fire("so.load") is True
    assert faults.active_sites() == ("so.load",)


class TestSpecValidation:
    """Malformed specs and unknown sites fail loudly at install time —
    a typo'd ``REPRO_FAULTS`` that silently arms nothing would report a
    resilience test green without testing anything."""

    def test_unknown_site_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec.parse("not.a.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("not.a.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("cc.fail, not.a.site:2")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().add("not.a.site")
        with pytest.raises(ValueError, match="unknown fault site"):
            with faults.injected("not.a.site"):
                pass

    def test_unknown_site_error_lists_known_sites(self):
        with pytest.raises(ValueError, match="cc.fail"):
            FaultSpec.parse("not.a.site")

    @pytest.mark.parametrize(
        "text",
        [
            "",
            ":3",
            "@2",
            "cc.fail:",
            "cc.fail:x",
            "cc.fail:-1",
            "cc.fail:1@",
            "cc.fail:1@x",
            "cc.fail:1@-2",
            "cc.fail:1@2@3",
            "cc.fail:1:2",
        ],
    )
    def test_malformed_spec_strings(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_direct_construction_validates_counts(self):
        with pytest.raises(ValueError):
            FaultSpec("cc.fail", times=-1)
        with pytest.raises(ValueError):
            FaultSpec("cc.fail", skip=-1)

    def test_worker_sites_are_known(self):
        for site in ("worker.segfault", "worker.hang", "shm.attach"):
            plan = FaultPlan().add(site)
            assert site in plan.specs


def test_walk_pool_site_arms_env(monkeypatch):
    monkeypatch.delenv("REPRO_WALK_POOL_FAIL", raising=False)
    with faults.injected("walk.pool"):
        assert os.environ.get("REPRO_WALK_POOL_FAIL") == "1"
    assert "REPRO_WALK_POOL_FAIL" not in os.environ


def test_walk_pool_site_keeps_user_env(monkeypatch):
    # A user-set hook must survive the plan's exit.
    monkeypatch.setenv("REPRO_WALK_POOL_FAIL", "1")
    with faults.injected("walk.pool"):
        pass
    assert os.environ.get("REPRO_WALK_POOL_FAIL") == "1"


def test_env_arming_in_subprocess():
    # The env path is what CI's kill-resume leg uses: a child process
    # must pick the plan up with no code changes.
    code = (
        "from repro.resilience import faults; "
        "print(faults.fire('cc.fail'), faults.fire('cc.fail'), "
        "faults.fire('so.load'))"
    )
    env = dict(
        os.environ,
        REPRO_FAULTS="cc.fail:1",
        PYTHONPATH=os.pathsep.join(
            p for p in (os.environ.get("PYTHONPATH", ""), "src") if p
        ),
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["True", "False", "False"]
