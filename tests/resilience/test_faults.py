"""The fault-plan registry: parsing, budgets, env arming, walk.pool."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def test_spec_parse_forms():
    assert FaultSpec.parse("cc.fail") == FaultSpec("cc.fail")
    assert FaultSpec.parse("cc.fail:3") == FaultSpec("cc.fail", times=3)
    assert FaultSpec.parse("cc.fail:*") == FaultSpec("cc.fail", times=None)
    assert FaultSpec.parse("checkpoint.kill:1@2") == FaultSpec(
        "checkpoint.kill", times=1, skip=2
    )
    with pytest.raises(ValueError):
        FaultSpec.parse(":3")


def test_plan_parse_multiple():
    plan = FaultPlan.parse("cc.fail:1, so.load , dag.worker:2@1")
    assert set(plan.specs) == {"cc.fail", "so.load", "dag.worker"}
    assert plan.specs["dag.worker"].times == 2
    assert plan.specs["dag.worker"].skip == 1


def test_fire_respects_times_and_skip():
    faults.install(FaultPlan().add("x.site", times=2, skip=1))
    assert faults.fire("x.site") is False  # skipped
    assert faults.fire("x.site") is True
    assert faults.fire("x.site") is True
    assert faults.fire("x.site") is False  # budget spent
    assert faults.fired("x.site") == 2
    assert faults.fire("unarmed.site") is False


def test_injected_composes_and_restores():
    faults.install(FaultPlan().add("a.site"))
    with faults.injected("b.site", times=1):
        assert set(faults.active_sites()) == {"a.site", "b.site"}
        assert faults.fire("b.site") is True
        assert faults.fire("a.site") is True
    assert faults.active_sites() == ("a.site",)


def test_walk_pool_site_arms_env(monkeypatch):
    monkeypatch.delenv("REPRO_WALK_POOL_FAIL", raising=False)
    with faults.injected("walk.pool"):
        assert os.environ.get("REPRO_WALK_POOL_FAIL") == "1"
    assert "REPRO_WALK_POOL_FAIL" not in os.environ


def test_walk_pool_site_keeps_user_env(monkeypatch):
    # A user-set hook must survive the plan's exit.
    monkeypatch.setenv("REPRO_WALK_POOL_FAIL", "1")
    with faults.injected("walk.pool"):
        pass
    assert os.environ.get("REPRO_WALK_POOL_FAIL") == "1"


def test_env_arming_in_subprocess():
    # The env path is what CI's kill-resume leg uses: a child process
    # must pick the plan up with no code changes.
    code = (
        "from repro.resilience import faults; "
        "print(faults.fire('cc.fail'), faults.fire('cc.fail'), "
        "faults.fire('so.load'))"
    )
    env = dict(
        os.environ,
        REPRO_FAULTS="cc.fail:1",
        PYTHONPATH=os.pathsep.join(
            p for p in (os.environ.get("PYTHONPATH", ""), "src") if p
        ),
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["True", "False", "False"]
