"""Checkpoint format, loader fallback, pruning, and the resume API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CheckpointError, CheckpointPolicy, RunOptions, resume
from repro.language.stencil import Stencil  # noqa: F401  (re-export check)
from repro.resilience import checkpoint as cp

from tests.conftest import make_heat_problem


def _prepared(steps=6, sizes=(12, 12), seed=3):
    st, u, kern = make_heat_problem(sizes, seed=seed)
    problem = st.prepare(steps, kern)
    return st, u, kern, problem


# -- policy / options validation ---------------------------------------------


def test_policy_validates():
    with pytest.raises(Exception):
        CheckpointPolicy(dir="x", every_dt=0)
    with pytest.raises(Exception):
        CheckpointPolicy(dir="x", keep=0)
    pol = CheckpointPolicy(dir="x", every_dt=4, keep=2)
    assert pol.every_dt == 4 and pol.keep == 2


def test_run_options_reject_bad_checkpoint():
    with pytest.raises(Exception):
        RunOptions(checkpoint="not-a-policy")
    with pytest.raises(Exception):
        RunOptions(algorithm="phase1", checkpoint=CheckpointPolicy(dir="x"))
    with pytest.raises(Exception):
        RunOptions(algorithm="phase1", resume_from="somewhere")


# -- file format --------------------------------------------------------------


def test_roundtrip(tmp_path):
    st, u, kern, problem = _prepared()
    st.run(4, kern)  # levels 1..4 exist; t_next=5 is a block boundary
    path = cp.write_checkpoint(tmp_path, problem, 5)
    ck = cp.load_checkpoint(path)
    assert ck.t_next == 5
    assert ck.signature == cp.problem_signature_of(problem)
    assert ck.schema == cp.CHECKPOINT_SCHEMA_VERSION
    np.testing.assert_array_equal(ck.arrays["u"], u.data)


def test_restore_into_fresh_arrays(tmp_path):
    st, u, kern, problem = _prepared(seed=7)
    st.run(4, kern)
    path = cp.write_checkpoint(tmp_path, problem, 5)
    want = u.data.copy()

    st2, u2, kern2 = make_heat_problem((12, 12), seed=7)
    problem2 = st2.prepare(6, kern2)
    buf_before = u2.data
    cp.load_checkpoint(path).restore_into(problem2)
    assert u2.data is buf_before  # in-place: compiled kernels prebind this
    np.testing.assert_array_equal(u2.data, want)
    assert u2._latest == 4


def test_restore_refuses_wrong_problem(tmp_path):
    st, u, kern, problem = _prepared()
    path = cp.write_checkpoint(tmp_path, problem, 3)
    st2, u2, kern2 = make_heat_problem((16, 16))  # different grid
    other = st2.prepare(6, kern2)
    with pytest.raises(CheckpointError):
        cp.load_checkpoint(path).restore_into(other)


@pytest.mark.parametrize(
    "damage",
    ["truncate", "flip", "magic", "empty"],
)
def test_damage_is_detected(tmp_path, damage):
    st, u, kern, problem = _prepared()
    path = cp.write_checkpoint(tmp_path, problem, 3)
    raw = bytearray(path.read_bytes())
    if damage == "truncate":
        raw = raw[: len(raw) // 2]
    elif damage == "flip":
        raw[len(raw) // 2] ^= 0xFF
    elif damage == "magic":
        raw[:4] = b"XXXX"
    elif damage == "empty":
        raw = bytearray()
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointError):
        cp.load_checkpoint(path)


def test_schema_mismatch_rejected(tmp_path, monkeypatch):
    st, u, kern, problem = _prepared()
    path = cp.write_checkpoint(tmp_path, problem, 3)
    monkeypatch.setattr(cp, "CHECKPOINT_SCHEMA_VERSION", 999)
    with pytest.raises(CheckpointError, match="schema"):
        cp.load_checkpoint(path)


# -- directory scanning, fallback, pruning ------------------------------------


def test_newest_valid_skips_corrupt(tmp_path):
    st, u, kern, problem = _prepared()
    p3 = cp.write_checkpoint(tmp_path, problem, 3)
    p5 = cp.write_checkpoint(tmp_path, problem, 5)
    assert cp.newest_valid(tmp_path, problem).t_next == 5
    raw = bytearray(p5.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    p5.write_bytes(bytes(raw))
    ck = cp.newest_valid(tmp_path, problem)
    assert ck is not None and ck.t_next == 3 and ck.path == p3


def test_newest_valid_respects_time_range(tmp_path):
    st, u, kern, problem = _prepared(steps=6)  # range (1, 7]
    cp.write_checkpoint(tmp_path, problem, 5)
    ck = cp.newest_valid(tmp_path, problem)
    assert ck.t_next == 5
    import dataclasses

    # A shorter horizon than the checkpoint: it must not be applied.
    short = dataclasses.replace(problem, t_end=4)
    assert cp.newest_valid(tmp_path, short) is None
    # t_next == t_end is valid: the run already completed.
    done = dataclasses.replace(problem, t_end=5)
    assert cp.newest_valid(tmp_path, done).t_next == 5


def test_prune_keeps_newest(tmp_path):
    st, u, kern, problem = _prepared()
    sig = cp.problem_signature_of(problem)
    for t in (2, 3, 4, 5):
        cp.write_checkpoint(tmp_path, problem, t)
    removed = cp.prune(tmp_path, sig, keep=2)
    assert removed == 2
    left = cp.list_checkpoints(tmp_path, sig)
    assert [int(p.name.split("-t")[1].split(".")[0]) for p in left] == [5, 4]


def test_resume_api(tmp_path):
    st, u, kern, problem = _prepared()
    path = cp.write_checkpoint(tmp_path, problem, 4)
    assert resume(tmp_path).t_next == 4  # directory: newest valid
    assert resume(path).t_next == 4  # explicit file
    with pytest.raises(CheckpointError):
        resume(tmp_path / "empty-does-not-exist")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(CheckpointError):
        resume(empty)


# -- end-to-end through Stencil.run ------------------------------------------


@pytest.mark.parametrize("every_dt", [1, 3, 100])
def test_checkpointed_run_bitwise_equal(tmp_path, every_dt):
    st_ref, u_ref, kern_ref = make_heat_problem((12, 12), seed=11)
    st_ref.run(7, kern_ref)
    ref = u_ref.snapshot(st_ref.cursor)

    st, u, kern = make_heat_problem((12, 12), seed=11)
    report = st.run(
        7, kern, checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=every_dt)
    )
    np.testing.assert_array_equal(u.snapshot(st.cursor), ref)
    import math

    assert report.checkpoints_written == math.ceil(7 / every_dt)
    assert report.points_updated == 7 * 12 * 12


def test_resume_mid_history_bitwise_equal(tmp_path):
    st_ref, u_ref, kern_ref = make_heat_problem((12, 12), seed=13)
    st_ref.run(8, kern_ref)
    ref = u_ref.snapshot(st_ref.cursor)

    st1, u1, kern1 = make_heat_problem((12, 12), seed=13)
    st1.run(8, kern1, checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=2, keep=10))
    # Resume from each stored boundary; all must reproduce the same bits.
    for path in cp.list_checkpoints(tmp_path):
        st2, u2, kern2 = make_heat_problem((12, 12), seed=13)
        report = st2.run(8, kern2, resume_from=path)
        np.testing.assert_array_equal(u2.snapshot(st2.cursor), ref)
        assert report.resumed_from == cp.load_checkpoint(path).t_next


def test_resume_from_empty_dir_is_cold_start(tmp_path):
    st_ref, u_ref, kern_ref = make_heat_problem((12, 12), seed=17)
    st_ref.run(5, kern_ref)
    ref = u_ref.snapshot(st_ref.cursor)

    st, u, kern = make_heat_problem((12, 12), seed=17)
    report = st.run(5, kern, resume_from=tmp_path)
    np.testing.assert_array_equal(u.snapshot(st.cursor), ref)
    assert report.resumed_from is None
    assert "checkpoint:no-valid-checkpoint->cold-start" in report.degradations


def test_resume_covering_whole_run_recomputes_nothing(tmp_path):
    st1, u1, kern1 = make_heat_problem((12, 12), seed=19)
    st1.run(6, kern1, checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=3))
    ref = u1.snapshot(st1.cursor)

    st2, u2, kern2 = make_heat_problem((12, 12), seed=19)
    report = st2.run(6, kern2, resume_from=tmp_path)
    assert report.resumed_from == 7  # == t_end: zero blocks re-run
    assert report.base_cases == 0
    np.testing.assert_array_equal(u2.snapshot(st2.cursor), ref)


def test_checkpointed_loops_algorithm(tmp_path):
    st_ref, u_ref, kern_ref = make_heat_problem((12, 12), seed=23)
    st_ref.run(6, kern_ref)
    ref = u_ref.snapshot(st_ref.cursor)

    st, u, kern = make_heat_problem((12, 12), seed=23)
    report = st.run(
        6,
        kern,
        algorithm="serial_loops",
        checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=2),
    )
    np.testing.assert_array_equal(u.snapshot(st.cursor), ref)
    assert report.checkpoints_written == 3

    st2, u2, kern2 = make_heat_problem((12, 12), seed=23)
    cp.list_checkpoints(tmp_path)[0].unlink()  # force a mid-history resume
    r2 = st2.run(6, kern2, algorithm="serial_loops", resume_from=tmp_path)
    assert r2.resumed_from == 5
    np.testing.assert_array_equal(u2.snapshot(st2.cursor), ref)
