"""The degradation matrix: every fault combination must yield bitwise-
identical results and record its fired fallbacks — never crash, never
silently corrupt.

Crossed axes: missing C toolchain (``REPRO_NO_CC``) x compiled-walk
pthread-pool start failure x corrupt autotune registry x corrupt
checkpoint, across executors — plus an app-breadth leg running the
all-faults-on combination over several benchmark apps.  Every run asks
for the most demanding configuration (``mode="c"``, parallel walk,
autotune, resume) so each armed fault actually lies on the requested
path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CheckpointPolicy
from repro.apps.registry import build
from repro.autotune.registry import SCHEMA_VERSION
from repro.resilience import checkpoint as cp
from repro.resilience import faults

from tests.conftest import has_c_backend

_REFS: dict[str, np.ndarray] = {}


def reference(app_name: str) -> np.ndarray:
    """Clean single-backend reference result, computed once per app."""
    if app_name not in _REFS:
        app = build(app_name, scale="tiny")
        app.run(mode="auto")
        _REFS[app_name] = app.result()
    return _REFS[app_name]


@pytest.fixture(autouse=True)
def _isolated_stores(tmp_path, monkeypatch):
    """Fresh registry file and fault plan per test."""
    monkeypatch.setenv("REPRO_TUNE_REGISTRY", str(tmp_path / "registry.json"))
    faults.clear()
    yield
    faults.clear()


def _seed_registry(tmp_path):
    (tmp_path / "registry.json").write_text(
        json.dumps({"schema": SCHEMA_VERSION, "entries": {}})
    )


def _seed_corrupt_checkpoint(ckpt_dir, app):
    """A correctly-named checkpoint file full of garbage: the loader
    must skip it (note) and cold-start (note)."""
    ckpt_dir.mkdir(exist_ok=True)
    problem = app.stencil.prepare(app.steps, app.kernel)
    sig = cp.problem_signature_of(problem)
    name = cp.checkpoint_filename(sig, problem.t_start + 1)
    (ckpt_dir / name).write_bytes(b"garbage, definitely not a checkpoint")


def _run_combo(app_name, executor, *, no_cc, pool_fail, reg_corrupt,
               ckpt_corrupt, tmp_path, monkeypatch):
    if no_cc:
        monkeypatch.setenv("REPRO_NO_CC", "1")
    plan = faults.FaultPlan()
    if pool_fail:
        plan.add("walk.pool")
    if reg_corrupt:
        _seed_registry(tmp_path)
        plan.add("registry.corrupt")
    faults.install(plan)

    app = build(app_name, scale="tiny")
    options = dict(
        mode="c",  # the most degradable request; falls back without cc
        executor=executor,
        autotune="use",
        checkpoint=CheckpointPolicy(dir=tmp_path / "ckpt", every_dt=3),
    )
    if executor == "dag":
        options["n_workers"] = 2
        options["walk_threads"] = 2
    if ckpt_corrupt:
        _seed_corrupt_checkpoint(tmp_path / "ckpt", app)
        options["resume_from"] = tmp_path / "ckpt"

    report = app.run(**options)

    np.testing.assert_array_equal(app.result(), reference(app_name))
    degr = set(report.degradations)
    if no_cc:
        assert "cc:compile-failed->split_pointer" in degr
        assert report.mode == "split_pointer"
    elif has_c_backend():
        assert report.mode == "c"
    if pool_fail and not no_cc and has_c_backend() and executor == "dag":
        assert "walk-pool:start-failed->serial" in degr
    if reg_corrupt:
        assert "registry:corrupt-evicted" in degr
    if ckpt_corrupt:
        assert "checkpoint:corrupt-skipped" in degr
        assert "checkpoint:no-valid-checkpoint->cold-start" in degr
        assert report.resumed_from is None
    assert report.checkpoints_written > 0
    return report


@pytest.mark.parametrize("executor", ["serial", "dag"])
@pytest.mark.parametrize("no_cc", [False, True])
@pytest.mark.parametrize("pool_fail", [False, True])
@pytest.mark.parametrize("reg_corrupt", [False, True])
@pytest.mark.parametrize("ckpt_corrupt", [False, True])
def test_full_cross_heat2d(
    executor, no_cc, pool_fail, reg_corrupt, ckpt_corrupt, tmp_path, monkeypatch
):
    _run_combo(
        "heat2d",
        executor,
        no_cc=no_cc,
        pool_fail=pool_fail,
        reg_corrupt=reg_corrupt,
        ckpt_corrupt=ckpt_corrupt,
        tmp_path=tmp_path,
        monkeypatch=monkeypatch,
    )


@pytest.mark.parametrize("app_name", ["heat1d", "heat3d", "life", "psa"])
def test_all_faults_at_once_across_apps(app_name, tmp_path, monkeypatch):
    _run_combo(
        app_name,
        "dag",
        no_cc=True,
        pool_fail=True,
        reg_corrupt=True,
        ckpt_corrupt=True,
        tmp_path=tmp_path,
        monkeypatch=monkeypatch,
    )


def test_dag_worker_death_is_retried(tmp_path):
    """A DAG worker dying mid-block rolls the block back and re-runs it
    (requires a checkpoint policy: the runner owns the rollback)."""
    ref = reference("heat2d")
    app = build("heat2d", scale="tiny")
    with faults.injected("dag.worker", times=1):
        report = app.run(
            mode="auto",
            executor="dag",
            n_workers=2,
            dt_threshold=2,
            space_thresholds=(8, 8),
            checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=4),
        )
    np.testing.assert_array_equal(app.result(), ref)
    assert "executor:block-retried" in report.degradations


def test_dag_worker_death_propagates_without_policy():
    """No checkpoint policy means no rollback state: the injected
    failure must surface as an error, not silent corruption."""
    app = build("heat2d", scale="tiny")
    with faults.injected("dag.worker", times=1):
        with pytest.raises(Exception):
            app.run(
                mode="auto",
                executor="dag",
                n_workers=2,
                dt_threshold=2,
                space_thresholds=(8, 8),
            )


@pytest.mark.skipif(not has_c_backend(), reason="needs a C toolchain")
def test_cc_timeout_retry_then_success(tmp_path, monkeypatch):
    """One hung cc invocation: the timeout + retry path still delivers
    the C backend."""
    monkeypatch.setenv("REPRO_CC_CACHE", str(tmp_path / "cc"))
    monkeypatch.setenv("REPRO_CC_TIMEOUT", "2")
    ref = reference("heat2d")
    app = build("heat2d", scale="tiny")
    with faults.injected("cc.hang", times=1):
        report = app.run(mode="c")
    assert report.mode == "c"
    assert "cc:timeout-retry" in report.degradations
    np.testing.assert_array_equal(app.result(), ref)


@pytest.mark.skipif(not has_c_backend(), reason="needs a C toolchain")
def test_cc_persistent_hang_degrades_to_numpy(tmp_path, monkeypatch):
    """Both attempts hang: CompileError inside, NumPy backend outside."""
    monkeypatch.setenv("REPRO_CC_CACHE", str(tmp_path / "cc"))
    monkeypatch.setenv("REPRO_CC_TIMEOUT", "1")
    ref = reference("heat2d")
    app = build("heat2d", scale="tiny")
    with faults.injected("cc.hang"):
        report = app.run(mode="c")
    assert report.mode == "split_pointer"
    assert "cc:compile-failed->split_pointer" in report.degradations
    np.testing.assert_array_equal(app.result(), ref)


@pytest.mark.skipif(not has_c_backend(), reason="needs a C toolchain")
def test_so_load_evict_rebuild(tmp_path, monkeypatch):
    """One load failure: evicted and rebuilt, C backend survives."""
    monkeypatch.setenv("REPRO_CC_CACHE", str(tmp_path / "cc"))
    ref = reference("heat2d")
    app = build("heat2d", scale="tiny")
    with faults.injected("so.load", times=1):
        report = app.run(mode="c")
    assert report.mode == "c"
    assert "so-cache:evicted-rebuilt" in report.degradations
    np.testing.assert_array_equal(app.result(), ref)
