"""Cross-process compile dedup: one cc invocation per kernel digest.

``build_shared_object`` holds an ``fcntl.flock`` on a per-digest
lockfile around write-source→cc→durable-replace, so a thundering herd
of processes compiling the same kernel (a server fanning one stencil
out to many workers) pays for exactly one compiler run — the rest wait
on the lock, re-check the cache, and load the winner's object.  The
``$REPRO_CC_COUNT_FILE`` hook appends one line per actual cc
invocation (O_APPEND, atomic across processes), making "exactly one"
directly observable.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from tests.conftest import has_c_backend

pytestmark = pytest.mark.skipif(
    not has_c_backend(), reason="needs a C toolchain"
)

N_PROCS = 4

_SOURCE = r"""
#include <stdint.h>
int64_t repro_race_probe(int64_t x) { return x * 2654435761LL + %d; }
"""

_CHILD = """
import os, sys, time
sys.path.insert(0, "src")
from repro.compiler.codegen_c import build_shared_object

go_file, source_path = sys.argv[1], sys.argv[2]
source = open(source_path).read()
while not os.path.exists(go_file):
    time.sleep(0.001)
path = build_shared_object(source)
assert path.exists(), path
print(path)
"""


def test_racing_builds_invoke_cc_exactly_once(tmp_path):
    count_file = tmp_path / "cc_count"
    go_file = tmp_path / "go"
    source_path = tmp_path / "probe.c"
    # A salt unique to this test run keeps the digest out of any
    # pre-existing cache even though the cache dir is fresh anyway.
    source_path.write_text(_SOURCE % (os.getpid(),))
    env = dict(os.environ)
    env["REPRO_CC_CACHE"] = str(tmp_path / "cache")
    env["REPRO_CC_COUNT_FILE"] = str(count_file)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src", ".") if p
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(go_file), str(source_path)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(N_PROCS)
    ]
    time.sleep(0.3)  # everyone at the barrier
    go_file.write_text("go")
    so_paths = set()
    for proc in procs:
        out, err = proc.communicate(timeout=180)
        assert proc.returncode == 0, err
        so_paths.add(out.strip())
    assert len(so_paths) == 1, "all processes must load the same object"
    cc_runs = count_file.read_text().splitlines()
    assert len(cc_runs) == 1, (
        f"{len(cc_runs)} cc invocations for one digest across "
        f"{N_PROCS} racing processes — the per-digest lock failed"
    )
