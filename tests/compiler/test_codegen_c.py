"""The C backend's source structure and shared-object cache behavior.

Equivalence of the generated kernels is covered by
``tests/compiler/test_codegen.py`` (cross-backend construct sweep) and
``tests/trap/test_c_leaf_fusion.py`` (fused-vs-per-step property tests);
this file checks what the postsource *looks like* (fused clones, scalar
signatures) and that the on-disk ``.so`` cache is keyed on the compiler
identity and self-heals on load failure.
"""

from __future__ import annotations

import ctypes

import pytest

from repro.compiler import codegen_c
from repro.compiler.codegen_c import (
    build_shared_object,
    compiler_identity,
    find_c_compiler,
    generate_c_source,
    load_shared_object,
)
from repro.compiler.frontend import build_ir
from tests.conftest import has_c_backend, make_heat_problem

pytestmark = pytest.mark.skipif(not has_c_backend(), reason="no C compiler")


def _heat_ir(sizes=(8, 8)):
    st_, u, k = make_heat_problem(sizes)
    return build_ir(st_.prepare(1, k))


@pytest.fixture
def cc_cache(tmp_path, monkeypatch):
    """Point the on-disk cache at a fresh directory."""
    monkeypatch.setenv("REPRO_CC_CACHE", str(tmp_path))
    return tmp_path


class TestGeneratedSource:
    def test_all_four_clones_present(self):
        src = generate_c_source(_heat_ir())
        for name in ("interior_step", "boundary_step", "leaf", "leaf_boundary"):
            assert f"void {name}(" in src

    def test_leaf_fuses_whole_trapezoid(self):
        """The fused clone owns the time loop, the per-step slot
        arithmetic, and the slope shift — the whole Figure-2 base case."""
        src = generate_c_source(_heat_ir())
        assert "for (i64 t = ta; t < tb; ++t)" in src
        assert "l0 += dl0; h0 += dh0;" in src
        assert "MOD(t+0, 2L)" in src or "MOD(t-1, 2L)" in src

    def test_scalar_bounds_no_pointer_arrays(self):
        """Bounds are scalar i64 parameters: calls marshal plain ints
        (no per-call ctypes array construction, nothing for concurrent
        DAG workers to contend on)."""
        src = generate_c_source(_heat_ir())
        assert "i64 l0" in src and "i64 h1" in src
        assert "const i64* lo" not in src and "const i64* hi" not in src

    def test_boundary_leaf_reduces_virtual_coordinates(self):
        src = generate_c_source(_heat_ir())
        assert "MOD(v0, 8L)" in src  # virtual -> true reduction per point

    def test_pointer_params_are_restrict_qualified(self):
        """Every data pointer is ``restrict``: arrays own distinct
        buffers, so the qualifier is sound and frees the optimizer from
        cross-array aliasing assumptions."""
        src = generate_c_source(_heat_ir())
        assert "double* restrict D_u" in src
        assert "double* D_u" not in src  # no unqualified data pointer

    def test_walk_subtree_present_with_scalar_recursion_params(self):
        """The compiled interior recursion: a static recursive helper,
        the exported entry point with scalar threshold/slope arguments,
        and a bottom-out into the fused leaf."""
        src = generate_c_source(_heat_ir())
        assert "static void walk_rec(" in src
        assert "void walk_subtree(" in src
        assert "i64 th0" in src and "i64 s0" in src and "i64 hyper" in src
        assert "leaf(D_u," in src  # recursion bottoms out in the fused leaf
        # walk is generated even when the boundary clones are not: it
        # only ever touches interior zoids.
        assert "walk_subtree" in generate_c_source(
            _heat_ir(), include_boundary=False
        )

    def test_parallel_walk_section_is_opt_in(self):
        """The pthread pool is emitted only on request (the serial-only
        source must stay buildable on toolchains without -pthread), and
        both recursions share one decomposition helper — the structural
        guarantee behind the bitwise-identity contract."""
        src = generate_c_source(_heat_ir())
        assert "walk_subtree_par" not in src
        assert "pthread.h" not in src
        par = generate_c_source(_heat_ir(), include_parallel=True)
        assert "void walk_subtree_par(" in par
        assert "#include <pthread.h>" in par
        assert "static void walk_rec_par(" in par
        assert "wq_ensure_pool" in par
        # one walk_cuts, used by both walk_rec and walk_rec_par: the
        # parallel walk cannot drift from the serial decomposition.
        assert par.count("static int walk_cuts(") == 1

    def test_walk_clone_matches_per_leaf_bitwise(self):
        """One subtree through walk_subtree vs the same recursion
        replayed in Python over the fused leaf — bitwise identical (the
        restrict/-fno-math-errno audit would surface here first)."""
        from dataclasses import replace

        import numpy as np

        from repro.compiler.pipeline import compile_kernel
        from repro.trap.executor import run_base_region
        from repro.trap.plan import BaseRegion

        region = BaseRegion(
            1, 4, ((1, 7, 0, 0), (1, 7, 1, -1)), interior=True,
            walk=((1, 1), (2, 2), 1, True),
        )
        st_a, u_a, k_a = make_heat_problem((8, 8), seed=3)
        compiled = compile_kernel(st_a.prepare(5, k_a), "c")
        assert compiled.walk is not None
        run_base_region(region, compiled)
        st_b, u_b, k_b = make_heat_problem((8, 8), seed=3)
        compiled_b = compile_kernel(st_b.prepare(5, k_b), "c")
        run_base_region(region, replace(compiled_b, walk=None))
        assert np.array_equal(u_a.data, u_b.data)


class TestSharedObjectCache:
    SRC = "double kernel_probe(double x) { return x * 2.0; }\n"

    def test_cache_reuses_identical_source(self, cc_cache):
        p1 = build_shared_object(self.SRC)
        mtime = p1.stat().st_mtime_ns
        p2 = build_shared_object(self.SRC)
        assert p1 == p2 and p2.stat().st_mtime_ns == mtime

    def test_cache_keyed_on_compiler_identity(self, cc_cache, monkeypatch):
        """A toolchain upgrade (different identity banner) must map to a
        different cache entry — never load the old compiler's object."""
        p1 = build_shared_object(self.SRC)
        monkeypatch.setattr(
            codegen_c, "compiler_identity", lambda cc: "upgraded-cc|99.0"
        )
        p2 = build_shared_object(self.SRC)
        assert p1 != p2
        assert p1.exists() and p2.exists()

    def test_identity_names_compiler_and_memoizes(self):
        import os

        cc = find_c_compiler()
        ident = compiler_identity(cc)
        assert ident.split("|", 1)[0] == os.path.basename(cc)
        # Memoized: the subprocess runs once per compiler path.
        assert codegen_c._CC_IDENTITY[cc] == ident

    def test_load_failure_evicts_and_rebuilds(self, cc_cache):
        """A corrupt cached object (truncated write, foreign arch) is
        evicted and rebuilt instead of erroring forever."""
        path = build_shared_object(self.SRC)
        path.write_bytes(b"not an ELF object")
        with pytest.raises(OSError):
            ctypes.CDLL(str(path))  # precondition: it really is broken
        lib = load_shared_object(self.SRC)
        fn = lib.kernel_probe
        fn.restype = ctypes.c_double
        fn.argtypes = [ctypes.c_double]
        assert fn(21.0) == 42.0
        # and the cache entry is healthy again
        ctypes.CDLL(str(build_shared_object(self.SRC)))


class TestNoCompilerGate:
    def test_repro_no_cc_hides_the_toolchain(self, monkeypatch):
        """The CI no-toolchain leg sets REPRO_NO_CC to prove degradation;
        the gate must make every discovery path report 'no compiler'."""
        monkeypatch.setenv("REPRO_NO_CC", "1")
        assert find_c_compiler() is None
        from repro.compiler.pipeline import available_modes

        assert "c" not in available_modes()
