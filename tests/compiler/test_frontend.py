"""Tests for the compiler frontend (IR lowering)."""

import pytest

from repro.compiler.frontend import build_ir
from repro.errors import CompileError
from repro.expr.nodes import Const, Param
from tests.conftest import make_heat_problem


def test_ir_basic_fields():
    st_, u, k = make_heat_problem((8, 10))
    ir = build_ir(st_.prepare(2, k))
    assert ir.ndim == 2
    assert ir.sizes == (8, 10)
    assert ir.write_arrays == ("u",)
    assert ir.min_off == (-1, -1)
    assert ir.max_off == (1, 1)
    assert ir.depth == 1
    (info,) = ir.array_infos
    assert info.name == "u"
    assert info.slots == 2
    assert set(info.dts) == {-1, 0}


def test_params_substituted_and_folded():
    import numpy as np
    from repro import Kernel, PeriodicBoundary, PochoirArray, Stencil

    u = PochoirArray("u", (8,)).register_boundary(PeriodicBoundary())
    st_ = Stencil(1)
    st_.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) * Param("a") + Param("b"))
    u.set_initial(np.zeros(8))
    st_.set_param("a", 2.0)
    st_.set_param("b", 3.0)
    ir = build_ir(st_.prepare(1, k))
    assert not ir.unbound_params
    # Params are gone from the statements.
    from repro.expr.analysis import walk

    for stmt in ir.statements:
        for node in walk(stmt.expr):
            assert not isinstance(node, Param)


def test_unbound_params_reported():
    import numpy as np
    from repro import Kernel, PeriodicBoundary, PochoirArray, Stencil

    u = PochoirArray("u", (8,)).register_boundary(PeriodicBoundary())
    st_ = Stencil(1)
    st_.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) * Param("gamma"))
    u.set_initial(np.zeros(8))
    ir = build_ir(st_.prepare(1, k))
    assert ir.unbound_params == {"gamma"}


def test_cache_key_stable_and_distinct():
    st1, _, k1 = make_heat_problem((8, 8))
    st2, _, k2 = make_heat_problem((8, 8))
    ir1 = build_ir(st1.prepare(1, k1))
    ir2 = build_ir(st2.prepare(1, k2))
    assert ir1.cache_key() == ir2.cache_key()  # same program shape

    st3, _, k3 = make_heat_problem((8, 16))
    ir3 = build_ir(st3.prepare(1, k3))
    assert ir3.cache_key() != ir1.cache_key()  # sizes are baked into code


def test_boundary_kind_in_cache_key():
    st1, _, k1 = make_heat_problem((8, 8), boundary="periodic")
    st2, _, k2 = make_heat_problem((8, 8), boundary="neumann")
    ir1 = build_ir(st1.prepare(1, k1))
    ir2 = build_ir(st2.prepare(1, k2))
    assert ir1.cache_key() != ir2.cache_key()
