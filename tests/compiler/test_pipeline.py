"""Tests for the compile pipeline: mode dispatch, caching, fallbacks."""

import numpy as np
import pytest

from repro import (
    Kernel,
    PeriodicBoundary,
    PochoirArray,
    PythonBoundary,
    Stencil,
)
from repro.compiler.pipeline import (
    available_modes,
    clear_cache,
    compile_kernel,
)
from repro.errors import CompileError
from tests.conftest import has_c_backend, make_heat_problem


def test_available_modes_minimum():
    modes = available_modes()
    assert "interp" in modes
    assert "macro_shadow" in modes
    assert "split_pointer" in modes


def test_auto_is_split_pointer():
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "auto")
    assert compiled.mode == "split_pointer"


def test_unknown_mode_rejected():
    st, u, k = make_heat_problem((8, 8))
    problem = st.prepare(1, k)
    with pytest.raises(CompileError):
        compile_kernel(problem, "jit")


def test_cache_hits_for_same_problem():
    st, u, k = make_heat_problem((8, 8))
    p1 = st.prepare(1, k)
    c1 = compile_kernel(p1, "split_pointer")
    c2 = compile_kernel(st.prepare(1, k), "split_pointer")
    assert c1 is c2


def test_cache_distinguishes_arrays():
    st1, u1, k1 = make_heat_problem((8, 8), seed=0)
    st2, u2, k2 = make_heat_problem((8, 8), seed=1)
    c1 = compile_kernel(st1.prepare(1, k1), "split_pointer")
    c2 = compile_kernel(st2.prepare(1, k2), "split_pointer")
    assert c1 is not c2  # different backing buffers


def test_python_boundary_forces_per_point_boundary_clone():
    n = 10

    def edge(arr, t, X):
        return 2.0 * t  # arbitrary python logic: not vectorizable

    u = PochoirArray("u", (n,)).register_boundary(PythonBoundary(edge))
    st = Stencil(1)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1)))
    u.set_initial(np.zeros(n))
    compiled = compile_kernel(st.prepare(3, k), "split_pointer")
    assert compiled.mode == "split_pointer"
    assert compiled.boundary_mode == "macro_shadow"  # fallback clone


def test_python_boundary_runs_correctly():
    """End-to-end with an arbitrary Python boundary function."""
    n, T = 10, 4

    def edge(arr, t, X):
        return 100.0 + X  # depends on the off-domain coordinate

    def make():
        u = PochoirArray("u", (n,)).register_boundary(PythonBoundary(edge))
        st = Stencil(1)
        st.register_array(u)
        k = Kernel(
            1, lambda t, x: u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1))
        )
        u.set_initial(np.arange(float(n)))
        return st, u, k

    from repro import run_phase1

    st1, u1, k1 = make()
    run_phase1(st1, T, k1)
    ref = u1.snapshot(T)

    for mode in ("split_pointer", "macro_shadow"):
        st2, u2, k2 = make()
        st2.run(T, k2, mode=mode)
        assert np.array_equal(u2.snapshot(T), ref), mode


def test_sources_recorded():
    st, u, k = make_heat_problem((8, 8))
    clear_cache()
    compiled = compile_kernel(st.prepare(1, k), "split_pointer")
    assert "interior" in compiled.sources
    assert "def interior" in compiled.sources["interior"]


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
def test_c_mode_reports_c():
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "c")
    assert compiled.mode == "c"
    assert compiled.boundary_mode == "c"
    assert "interior_step" in compiled.sources["c"]
