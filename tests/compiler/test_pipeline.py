"""Tests for the compile pipeline: mode dispatch, caching, fallbacks."""

import numpy as np
import pytest

from repro import (
    Kernel,
    PeriodicBoundary,
    PochoirArray,
    PythonBoundary,
    Stencil,
)
from repro.compiler.pipeline import (
    available_modes,
    clear_cache,
    compile_kernel,
)
from repro.errors import CompileError
from tests.conftest import has_c_backend, make_heat_problem


def test_available_modes_minimum():
    modes = available_modes()
    assert "interp" in modes
    assert "macro_shadow" in modes
    assert "split_pointer" in modes


def test_available_modes_includes_auto():
    """The documented default mode must pass validation against the list
    of usable modes (callers gate user-supplied modes on it)."""
    modes = available_modes()
    assert "auto" in modes
    # Every advertised mode must be accepted by RunOptions.
    from repro.language.stencil import RunOptions

    for mode in modes:
        RunOptions(mode=mode)


def test_auto_is_split_pointer():
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "auto")
    assert compiled.mode == "split_pointer"


def test_unknown_mode_rejected():
    st, u, k = make_heat_problem((8, 8))
    problem = st.prepare(1, k)
    with pytest.raises(CompileError):
        compile_kernel(problem, "jit")


def test_cache_hits_for_same_problem():
    st, u, k = make_heat_problem((8, 8))
    p1 = st.prepare(1, k)
    c1 = compile_kernel(p1, "split_pointer")
    c2 = compile_kernel(st.prepare(1, k), "split_pointer")
    assert c1 is c2


def test_cache_distinguishes_arrays():
    st1, u1, k1 = make_heat_problem((8, 8), seed=0)
    st2, u2, k2 = make_heat_problem((8, 8), seed=1)
    c1 = compile_kernel(st1.prepare(1, k1), "split_pointer")
    c2 = compile_kernel(st2.prepare(1, k2), "split_pointer")
    assert c1 is not c2  # different backing buffers


def test_cache_is_bounded():
    """Tokens are never reused, so without an eviction bound the cache
    would pin one compiled kernel (and its arrays' buffers) per
    short-lived stencil forever."""
    import repro.compiler.pipeline as pipeline

    clear_cache()
    for _ in range(pipeline._CACHE_LIMIT + 8):
        st, u, k = make_heat_problem((8, 8))
        compile_kernel(st.prepare(1, k), "interp")
    assert len(pipeline._CACHE) <= pipeline._CACHE_LIMIT


def test_cache_distinguishes_const_arrays():
    """Regression: kernels close over ConstArray values, but the IR cache
    key carries only const-array *names* — two stencils with same-named
    const arrays holding different values must not share a kernel."""
    import numpy as np

    from repro import ConstArray, Kernel, PochoirArray, Stencil

    # One shared state array (same cache token) so only the const arrays
    # can tell the two compilations apart.
    u = PochoirArray("u", (4,))
    u.set_initial(np.zeros(4))

    def make(cval):
        c = ConstArray("c", np.full(4, cval))
        st = Stencil(1)
        st.register_array(u)
        st.register_const_array(c)
        k = Kernel(1, lambda t, x: u(t + 1, x) << c(x) + 0.0 * u(t, x))
        return st, k

    st1, k1 = make(1.0)
    st1.run(1, k1, mode="split_pointer")
    assert np.allclose(u.snapshot(st1.cursor), 1.0)
    st2, k2 = make(2.0)
    st2.run(1, k2, mode="split_pointer")
    assert np.allclose(u.snapshot(st2.cursor), 2.0), (
        "second stencil was served the first stencil's kernel "
        "(stale const-array closure)"
    )


def test_array_cache_tokens_never_reused():
    """Tokens stay unique even when arrays (and their buffers) die and
    CPython reuses the heap addresses — the id()-reuse hazard the cache
    key must not have."""
    import gc

    from repro import PochoirArray

    seen = set()
    for _ in range(50):
        u = PochoirArray("u", (8, 8))
        assert u.cache_token not in seen
        seen.add(u.cache_token)
        del u
        gc.collect()


def test_cache_never_serves_stale_kernel_for_new_array(monkeypatch):
    """Regression: keying on id(a.data) hands a *new* array the compiled
    kernel of a dead one whenever CPython recycles the address.  Address
    reuse is nondeterministic, so simulate the collision: shadow id() in
    the pipeline module with a constant.  A key with any id() dependence
    then collides across distinct arrays and serves the stale kernel."""
    import repro.compiler.pipeline as pipeline

    monkeypatch.setattr(pipeline, "id", lambda obj: 0xDEAD, raising=False)
    st1, u1, k1 = make_heat_problem((8, 8), seed=0)
    c1 = compile_kernel(st1.prepare(1, k1), "split_pointer")
    st2, u2, k2 = make_heat_problem((8, 8), seed=1)
    c2 = compile_kernel(st2.prepare(1, k2), "split_pointer")
    assert c2 is not c1
    assert c1.ir.arrays["u"] is u1
    assert c2.ir.arrays["u"] is u2


def test_python_boundary_forces_per_point_boundary_clone():
    n = 10

    def edge(arr, t, X):
        return 2.0 * t  # arbitrary python logic: not vectorizable

    u = PochoirArray("u", (n,)).register_boundary(PythonBoundary(edge))
    st = Stencil(1)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1)))
    u.set_initial(np.zeros(n))
    compiled = compile_kernel(st.prepare(3, k), "split_pointer")
    assert compiled.mode == "split_pointer"
    assert compiled.boundary_mode == "macro_shadow"  # fallback clone


def test_python_boundary_runs_correctly():
    """End-to-end with an arbitrary Python boundary function."""
    n, T = 10, 4

    def edge(arr, t, X):
        return 100.0 + X  # depends on the off-domain coordinate

    def make():
        u = PochoirArray("u", (n,)).register_boundary(PythonBoundary(edge))
        st = Stencil(1)
        st.register_array(u)
        k = Kernel(
            1, lambda t, x: u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1))
        )
        u.set_initial(np.arange(float(n)))
        return st, u, k

    from repro import run_phase1

    st1, u1, k1 = make()
    run_phase1(st1, T, k1)
    ref = u1.snapshot(T)

    for mode in ("split_pointer", "macro_shadow"):
        st2, u2, k2 = make()
        st2.run(T, k2, mode=mode)
        assert np.array_equal(u2.snapshot(T), ref), mode


def test_sources_recorded():
    st, u, k = make_heat_problem((8, 8))
    clear_cache()
    compiled = compile_kernel(st.prepare(1, k), "split_pointer")
    assert "interior" in compiled.sources
    assert "def interior" in compiled.sources["interior"]


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
def test_c_mode_reports_c():
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "c")
    assert compiled.mode == "c"
    assert compiled.boundary_mode == "c"
    assert "interior_step" in compiled.sources["c"]


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
def test_c_mode_has_fused_leaves():
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "c")
    assert compiled.leaf is not None
    assert compiled.leaf_boundary is not None
    assert "void leaf(" in compiled.sources["c"]


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
def test_c_mode_python_boundary_keeps_fused_interior():
    """A PythonBoundary kills the C boundary clones (per-point Python
    fallback, per-step stepping) but the *interior* leaf must survive:
    interior regions never consult the boundary."""

    def edge(arr, t, X):
        return 2.0 * t

    u = PochoirArray("u", (10,)).register_boundary(PythonBoundary(edge))
    st = Stencil(1)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1)))
    u.set_initial(np.zeros(10))
    compiled = compile_kernel(st.prepare(3, k), "c")
    assert compiled.boundary_mode == "macro_shadow"
    assert compiled.leaf is not None
    assert compiled.leaf_boundary is None


def test_no_compiler_degrades_to_split_pointer(monkeypatch):
    """The no-toolchain degradation contract: with REPRO_NO_CC set (the
    CI no-compiler job leg), "c" drops out of available_modes and the
    default "auto" mode still compiles — via split_pointer."""
    monkeypatch.setenv("REPRO_NO_CC", "1")
    assert "c" not in available_modes()
    st, u, k = make_heat_problem((8, 8))
    compiled = compile_kernel(st.prepare(1, k), "auto")
    assert compiled.mode == "split_pointer"
