"""Cross-backend equivalence and generated-source tests.

The compiled backends must agree with the tree-walking reference bit for
bit on every expressible kernel construct — this is the mechanized form
of the Pochoir Guarantee.  A hypothesis test builds random arithmetic
kernels and checks all backends against the interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConstantBoundary,
    Kernel,
    NeumannBoundary,
    PeriodicBoundary,
    PochoirArray,
    Stencil,
    eq_,
    fmath,
    let,
    local,
    maximum,
    where,
)
from repro.compiler.frontend import build_ir
from repro.compiler import codegen_numpy, codegen_python
from tests.conftest import ALL_MODES, has_c_backend


def run_all_modes(make, T, modes=None):
    """Run a fresh problem in each mode; assert all results identical."""
    modes = modes or ALL_MODES
    results = {}
    for mode in modes:
        stencil, arrays, kernel = make()
        stencil.run(T, kernel, mode=mode, dt_threshold=2,
                    space_thresholds=tuple(4 for _ in stencil.sizes))
        results[mode] = [a.snapshot(stencil.cursor) for a in arrays]
    reference = results[modes[0]]
    for mode, snaps in results.items():
        for ref, got in zip(reference, snaps):
            assert np.array_equal(ref, got), f"{mode} diverged"
    return reference


class TestConstructEquivalence:
    """Each DSL construct, swept across every backend."""

    def test_where_and_comparisons(self):
        def make():
            u = PochoirArray("u", (13,)).register_boundary(PeriodicBoundary())
            s = Stencil(1)
            s.register_array(u)
            k = Kernel(
                1,
                lambda t, x: u(t + 1, x)
                << where(
                    (u(t, x - 1) > u(t, x + 1)) & ~(u(t, x) < 0.3),
                    u(t, x) * 2.0,
                    u(t, x) - 1.0,
                ),
            )
            u.set_initial(np.random.default_rng(3).random(13))
            return s, [u], k

        run_all_modes(make, 5)

    def test_math_calls(self):
        def make():
            u = PochoirArray("u", (11,)).register_boundary(NeumannBoundary())
            s = Stencil(1)
            s.register_array(u)
            k = Kernel(
                1,
                lambda t, x: u(t + 1, x)
                << 0.3 * fmath.exp(-u(t, x)) + 0.2 * fmath.sqrt(
                    fmath.fabs(u(t, x - 1))
                ) + 0.1 * fmath.cos(u(t, x + 1)),
            )
            u.set_initial(np.random.default_rng(4).random(11))
            return s, [u], k

        run_all_modes(make, 4)

    def test_min_max_mod_pow(self):
        def make():
            u = PochoirArray("u", (12,)).register_boundary(ConstantBoundary(0.5))
            s = Stencil(1)
            s.register_array(u)
            k = Kernel(
                1,
                lambda t, x: u(t + 1, x)
                << maximum(u(t, x - 1) % 0.7, u(t, x)) ** 2.0
                + (u(t, x + 1) * 0.5),
            )
            u.set_initial(np.random.default_rng(5).random(12) + 0.1)
            return s, [u], k

        run_all_modes(make, 4)

    def test_lets_and_locals(self):
        def make():
            u = PochoirArray("u", (10,)).register_boundary(PeriodicBoundary())
            v = PochoirArray("v", (10,)).register_boundary(PeriodicBoundary())
            s = Stencil(1)
            s.register_array(u)
            s.register_array(v)

            def body(t, x):
                return [
                    let("avg", 0.5 * (u(t, x - 1) + u(t, x + 1))),
                    u(t + 1, x) << local("avg"),
                    v(t + 1, x) << local("avg") - v(t, x) * 0.1,
                ]

            k = Kernel(1, body)
            rng = np.random.default_rng(6)
            u.set_initial(rng.random(10))
            v.set_initial(rng.random(10))
            return s, [u, v], k

        run_all_modes(make, 4)

    def test_same_level_read_after_write(self):
        def make():
            u = PochoirArray("u", (10,)).register_boundary(PeriodicBoundary())
            w = PochoirArray("w", (10,)).register_boundary(PeriodicBoundary())
            s = Stencil(1)
            s.register_array(u)
            s.register_array(w)

            def body(t, x):
                return [
                    u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1)),
                    # reads u's *just written* level at the home point
                    w(t + 1, x) << u(t + 1, x) * 2.0 + w(t, x) * 0.25,
                ]

            k = Kernel(1, body)
            rng = np.random.default_rng(7)
            u.set_initial(rng.random(10))
            w.set_initial(rng.random(10))
            return s, [u, w], k

        run_all_modes(make, 5)

    def test_index_values_in_expressions(self):
        def make():
            u = PochoirArray("u", (9, 7)).register_boundary(PeriodicBoundary())
            s = Stencil(2)
            s.register_array(u)
            k = Kernel(
                2,
                lambda t, x, y: u(t + 1, x, y)
                << u(t, x, y) * 0.5 + 0.001 * (x + 2 * y) + 0.01 * t,
            )
            u.set_initial(np.random.default_rng(8).random((9, 7)))
            return s, [u], k

        run_all_modes(make, 4)

    def test_dirichlet_time_varying_boundary(self):
        from repro import DirichletBoundary

        def make():
            u = PochoirArray("u", (9,)).register_boundary(
                DirichletBoundary(base=10.0, per_step=0.5)
            )
            s = Stencil(1)
            s.register_array(u)
            k = Kernel(
                1, lambda t, x: u(t + 1, x) << 0.25 * u(t, x - 1)
                + 0.5 * u(t, x) + 0.25 * u(t, x + 1)
            )
            u.set_initial(np.zeros(9))
            return s, [u], k

        result = run_all_modes(make, 4)
        assert result[0].max() > 0  # boundary heat leaked in


# Expression specs are drawn eagerly as nested tuples, then materialized
# deterministically per backend — every backend sees the *same* kernel.
_leaf = st.one_of(
    st.integers(min_value=-1, max_value=1).map(lambda o: ("read", o)),
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False).map(
        lambda c: ("const", c)
    ),
)


def _exprs(depth: int):
    if depth == 0:
        return _leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        _leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "min", "max"]), sub, sub),
    )


def _materialize(spec, u, t, x):
    from repro.expr.builder import maximum as mx, minimum as mn
    from repro.expr.nodes import BinOp, as_expr

    if spec[0] == "read":
        return u(t, x + spec[1])
    if spec[0] == "const":
        return as_expr(spec[1])
    op, l_spec, r_spec = spec
    left = as_expr(_materialize(l_spec, u, t, x))
    right = as_expr(_materialize(r_spec, u, t, x))
    if op == "min":
        return mn(left, right)
    if op == "max":
        return mx(left, right)
    return BinOp(op, left, right)


@given(spec=_exprs(3), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_random_kernels_agree_across_backends(spec, seed):
    """Property: arbitrary arithmetic kernels produce identical results in
    every backend (interp / macro_shadow / split_pointer [/ c])."""

    def make():
        u = PochoirArray("u", (9,)).register_boundary(PeriodicBoundary())
        s = Stencil(1)
        s.register_array(u)
        k = Kernel(
            1,
            lambda t, x: u(t + 1, x) << _materialize(spec, u, t, x) * 0.4,
        )
        u.set_initial(np.random.default_rng(seed).random(9))
        return s, [u], k

    # Exclude C from the hypothesis sweep to keep it fast (the C backend
    # is exercised by the parametrized construct tests above).
    run_all_modes(make, 3, modes=["interp", "macro_shadow", "split_pointer"])


class TestGeneratedSources:
    def test_macro_shadow_interior_has_no_checked_access(self):
        from tests.conftest import make_heat_problem

        st_, u, k = make_heat_problem((8, 8))
        ir = build_ir(st_.prepare(1, k))
        _, src = codegen_python.make_macro_shadow_interior(ir)
        assert "read_at" not in src  # the point of the macro trick
        assert "R_u" not in src
        assert "D_u[" in src

    def test_macro_shadow_boundary_uses_checked_access(self):
        from tests.conftest import make_heat_problem

        st_, u, k = make_heat_problem((8, 8))
        ir = build_ir(st_.prepare(1, k))
        _, src = codegen_python.make_macro_shadow_boundary(ir)
        assert "R_u(" in src
        assert "% 8" in src  # virtual -> true coordinate reduction

    def test_numpy_interior_is_sliced(self):
        from tests.conftest import make_heat_problem

        st_, u, k = make_heat_problem((8, 8))
        ir = build_ir(st_.prepare(1, k))
        _, src = codegen_numpy.make_numpy_interior(ir)
        assert "l0:h0" in src or "l0+1:h0+1" in src
        assert "for " not in src  # fully vectorized: no python loops

    @pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
    def test_c_source_structure(self):
        from repro.compiler.codegen_c import generate_c_source
        from tests.conftest import make_heat_problem

        st_, u, k = make_heat_problem((8, 8))
        ir = build_ir(st_.prepare(1, k))
        src = generate_c_source(ir)
        assert "void interior_step(" in src
        assert "void boundary_step(" in src
        assert "#define MOD" in src
        assert "for (i64 x0" in src
