"""Executor equivalence across every registered app.

The trapezoidal decomposition partitions space-time and each point is
written exactly once from reads of strictly earlier levels, so *any*
dependency-respecting schedule — serial elision, barrier waves, or the
ready-queue task DAG — must produce bit-identical grids and run the
identical set of base cases.  This is the safety net for the task-DAG
runtime: a missing dependency edge would show up here as a bitwise
mismatch on some app.
"""

import numpy as np
import pytest

from repro.apps import available_apps, build

EXECUTORS = ("serial", "threads", "dag")


@pytest.mark.parametrize("name", available_apps())
def test_all_executors_bit_identical(name):
    results = {}
    for executor in EXECUTORS:
        app = build(name, "tiny")
        # A low time-cut threshold forces a real multi-region plan even at
        # tiny scale, so the parallel executors schedule actual DAGs.
        report = app.run(
            executor=executor,
            n_workers=None if executor == "serial" else 3,
            dt_threshold=2,
        )
        results[executor] = (app.result(), report)
        assert report.executor == executor
        if executor == "serial":
            assert report.n_workers == 1
        else:
            # Degenerate plans (a single base case) honestly report the
            # one worker that ran; otherwise the requested count shows up.
            assert report.n_workers in (1, 3)

    ref_grid, ref_report = results["serial"]
    for executor in EXECUTORS[1:]:
        grid, report = results[executor]
        assert np.array_equal(grid, ref_grid), (
            f"{name}: {executor} grid differs from serial"
        )
        assert report.base_cases == ref_report.base_cases, (
            f"{name}: {executor} ran a different decomposition"
        )
