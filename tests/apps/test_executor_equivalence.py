"""Executor equivalence across every registered app.

The trapezoidal decomposition partitions space-time and each point is
written exactly once from reads of strictly earlier levels, so *any*
dependency-respecting schedule — serial elision, barrier waves, or the
ready-queue task DAG — must produce bit-identical grids and run the
identical set of base cases.  This is the safety net for the task-DAG
runtime: a missing dependency edge would show up here as a bitwise
mismatch on some app.

The same argument covers the autotune registry: a tuned config moves
only dispatch knobs, so a registry-served run must match the heuristic
run bit for bit under every executor — the second sweep here seeds a
randomized (seeded RNG) tuned config per app and checks exactly that.
"""

import zlib

import numpy as np
import pytest

from repro.apps import available_apps, build
from repro.autotune import registry
from repro.autotune.registry import TunedConfig

EXECUTORS = ("serial", "threads", "dag")


@pytest.mark.parametrize("name", available_apps())
def test_all_executors_bit_identical(name):
    results = {}
    for executor in EXECUTORS:
        app = build(name, "tiny")
        # A low time-cut threshold forces a real multi-region plan even at
        # tiny scale, so the parallel executors schedule actual DAGs.
        report = app.run(
            executor=executor,
            n_workers=None if executor == "serial" else 3,
            dt_threshold=2,
        )
        results[executor] = (app.result(), report)
        assert report.executor == executor
        if executor == "serial":
            assert report.n_workers == 1
        else:
            # Degenerate plans (a single base case) honestly report the
            # one worker that ran; otherwise the requested count shows up.
            assert report.n_workers in (1, 3)

    ref_grid, ref_report = results["serial"]
    for executor in EXECUTORS[1:]:
        grid, report = results[executor]
        assert np.array_equal(grid, ref_grid), (
            f"{name}: {executor} grid differs from serial"
        )
        assert report.base_cases == ref_report.base_cases, (
            f"{name}: {executor} ran a different decomposition"
        )


@pytest.mark.parametrize("name", available_apps())
def test_tuned_config_bit_identical_across_executors(
    name, tmp_path, monkeypatch
):
    """A registry-served tuned config must be invisible to results: for
    each app, a seeded random (valid) config, applied under every
    executor, reproduces the heuristic-default serial run bitwise."""
    monkeypatch.setenv("REPRO_TUNE_REGISTRY", str(tmp_path / "registry.json"))
    ref_app = build(name, "tiny")
    ref_app.run(dt_threshold=2)
    ref = ref_app.result()

    # crc32, not hash(): str hashing is salted per process, and a failure
    # must reproduce with the exact same config on rerun.
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    seeded_app = build(name, "tiny")
    problem = seeded_app.stencil.prepare(seeded_app.steps, seeded_app.kernel)
    config = TunedConfig(
        space_thresholds=tuple(
            int(rng.integers(3, 16)) for _ in range(seeded_app.stencil.ndim)
        ),
        dt_threshold=int(rng.integers(1, 5)),
        fuse_leaves=bool(rng.integers(0, 2)),
        n_workers=int(rng.integers(1, 4)),
    )
    assert registry.store(problem, "auto", config)

    for executor in EXECUTORS:
        app = build(name, "tiny")
        report = app.run(executor=executor, dt_threshold=2, autotune="use")
        assert report.autotune_source == "registry", (name, executor)
        assert np.array_equal(app.result(), ref), (
            f"{name}: tuned config under {executor!r} diverged from the "
            f"heuristic run (config={config})"
        )
