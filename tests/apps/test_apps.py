"""Integration tests for every benchmark application.

Each app is checked two ways: cross-backend bit-equality (TRAP/NumPy vs
serial-loops/interp) and, where a textbook algorithm exists, semantic
agreement with an independent reference implementation.
"""

import numpy as np
import pytest

from repro.apps import available_apps, build
from repro.apps.apop import reference_apop
from repro.apps.lcs import lcs_length, reference_lcs
from repro.apps.psa import alignment_score, reference_psa
from repro.apps.rna import reference_rna

ALL_APPS = available_apps()


class TestRegistry:
    def test_all_paper_benchmarks_present(self):
        for name in ("heat2d", "heat2dp", "heat4d", "life", "wave3d", "lbm",
                     "rna", "psa", "lcs", "apop", "pt7", "pt27"):
            assert name in ALL_APPS

    def test_unknown_app_rejected(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError, match="unknown app"):
            build("warp_drive")

    def test_unknown_scale_rejected(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError, match="scale"):
            build("heat2d", "galactic")


@pytest.mark.parametrize("name", ALL_APPS)
def test_trap_equals_loops_bitwise(name):
    """The central cross-check: TRAP + vectorized kernels produce exactly
    the result of the loop baseline with the interpreted kernels."""
    app1 = build(name, "tiny")
    app1.run(algorithm="trap", mode="split_pointer")
    r1 = app1.result()
    app2 = build(name, "tiny")
    app2.run(algorithm="serial_loops", mode="interp")
    r2 = app2.result()
    assert np.array_equal(r1, r2)


@pytest.mark.parametrize("name", ["heat2dp", "life", "wave3d", "lcs", "apop"])
def test_strap_also_agrees(name):
    app1 = build(name, "tiny")
    app1.run(algorithm="strap", mode="split_pointer")
    app2 = build(name, "tiny")
    app2.run(algorithm="trap", mode="macro_shadow")
    assert np.array_equal(app1.result(), app2.result())


class TestSemantics:
    def test_rna_matches_interval_dp(self):
        app = build("rna", "tiny")
        app.run()
        S = app.result()
        seq = app.stencil.const_arrays["seq"].values.astype(int)
        ref = reference_rna(seq)
        iu = np.triu_indices(len(seq), k=1)
        assert np.array_equal(S[iu], ref[iu])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lcs_matches_textbook(self, seed):
        from repro.apps.lcs import build_lcs

        app = build_lcs(18, seed=seed)
        app.run()
        assert lcs_length(app) == reference_lcs(app.meta["a"], app.meta["b"])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_psa_matches_gotoh(self, seed):
        from repro.apps.psa import build_psa

        app = build_psa(14, seed=seed)
        app.run()
        got = alignment_score(app)
        want = reference_psa(app.meta["a"], app.meta["b"])
        assert got == pytest.approx(want, abs=1e-9)

    def test_psa_identical_sequences_score_perfect(self):
        from repro.apps.dputil import doubled
        from repro.apps.psa import build_psa
        import repro.apps.psa as psa_mod

        app = build_psa(10, seed=5)
        a = app.meta["a"]
        # Rebuild with b == a via the reference: perfect match score.
        assert reference_psa(a, a) == 2.0 * len(a)

    def test_apop_matches_direct_induction(self):
        app = build("apop", "tiny")
        app.run()
        ref = reference_apop(build("apop", "tiny"), app.steps)
        assert np.allclose(app.result(), ref, rtol=1e-13)

    def test_apop_value_dominates_payoff(self):
        app = build("apop", "tiny")
        app.run()
        pay = app.stencil.const_arrays["payoff"].values
        assert np.all(app.result() >= pay - 1e-12)

    def test_life_conserves_nothing_but_stays_binary(self):
        app = build("life", "tiny")
        app.run()
        r = app.result()
        assert set(np.unique(r)).issubset({0.0, 1.0})

    def test_life_blinker_oscillates(self):
        from repro.apps.life import build_life, life_kernel, life_shape
        from repro.language.array import PochoirArray
        from repro.language.boundary import PeriodicBoundary
        from repro.language.stencil import Stencil

        n = 12
        grid = np.zeros((n, n))
        grid[5, 4:7] = 1.0  # horizontal blinker
        u = PochoirArray("u", (n, n)).register_boundary(PeriodicBoundary())
        st_ = Stencil(2, life_shape())
        st_.register_array(u)
        u.set_initial(grid)
        st_.run(2, life_kernel(u))
        assert np.array_equal(u.snapshot(2), grid)  # period 2

    def test_heat_diffusion_smooths(self):
        app = build("heat2dp", "tiny")
        before_var = np.var(app.stencil.arrays["u"].snapshot(0))
        app.run()
        after_var = np.var(app.result())
        assert after_var < before_var  # diffusion reduces variance

    def test_wave_energy_reasonable(self):
        app = build("wave3d", "tiny")
        app.run()
        assert np.all(np.isfinite(app.result()))

    def test_lbm_conserves_mass(self):
        """BGK collisions conserve density; periodic streaming moves it."""
        app = build("lbm", "tiny")
        rho0 = sum(
            app.stencil.arrays[f"f{i}"].snapshot(0).sum() for i in range(9)
        )
        app.run()
        cursor = app.stencil.cursor
        rho1 = sum(
            app.stencil.arrays[f"f{i}"].snapshot(cursor).sum() for i in range(9)
        )
        assert rho1 == pytest.approx(rho0, rel=1e-12)

    def test_pt7_matches_manual_convolution(self):
        app = build("pt7", "tiny")
        u0 = app.stencil.arrays["u"].snapshot(0)
        app.run()
        # One manual step (zero ghost): alpha*u + beta*sum(face neighbors)
        alpha, beta = 0.4, 0.1
        v = u0.copy()
        for _ in range(app.steps):
            padded = np.pad(v, 1)
            s = (
                padded[2:, 1:-1, 1:-1] + padded[:-2, 1:-1, 1:-1]
                + padded[1:-1, 2:, 1:-1] + padded[1:-1, :-2, 1:-1]
                + padded[1:-1, 1:-1, 2:] + padded[1:-1, 1:-1, :-2]
            )
            v = alpha * v + beta * s
        assert np.allclose(app.result(), v, rtol=1e-13)
