"""Tests for the diamond-DP helpers."""

import numpy as np
from hypothesis import given, strategies as st

from repro.apps.dputil import doubled, is_even
from repro.expr.evalexpr import EvalEnv, eval_expr
from repro.expr.nodes import Const


def _env():
    return EvalEnv(t=0, point=(0,), read=lambda *_: 0.0, write=lambda *_: None)


@given(v=st.integers(min_value=-100, max_value=100))
def test_is_even_matches_python(v):
    expr = is_even(Const(float(v)))
    assert eval_expr(expr, _env()) == (1.0 if v % 2 == 0 else 0.0)


def test_doubled_layout():
    a = doubled(np.array([3, 1, 4]))
    assert list(a) == [3, 3, 1, 1, 4, 4]
    # a[k] == seq[k // 2] — the half-integer index trick.
    for k in range(6):
        assert a[k] == [3, 1, 4][k // 2]
