"""The Pochoir Guarantee, mechanized.

Phase 1 (checked interpreter) is the semantic oracle; every algorithm x
codegen-mode x boundary-kind combination must reproduce its output bit
for bit.  This module is the broadest net in the suite: full cross
products on fixed problems, plus hypothesis sweeps over problem geometry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import run_phase1
from tests.conftest import ALL_MODES, BOUNDARY_FACTORIES, make_heat_problem

ALGORITHMS = ("trap", "strap", "loops", "serial_loops")


@pytest.mark.parametrize("boundary", sorted(BOUNDARY_FACTORIES))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cross_product_2d(boundary, algorithm):
    sizes, T = (14, 17), 7
    st1, u1, k1 = make_heat_problem(sizes, boundary=boundary)
    run_phase1(st1, T, k1)
    ref = u1.snapshot(T)
    for mode in ALL_MODES:
        st2, u2, k2 = make_heat_problem(sizes, boundary=boundary)
        st2.run(
            T, k2,
            algorithm=algorithm, mode=mode,
            dt_threshold=2, space_thresholds=(5, 5),
        )
        assert np.array_equal(u2.snapshot(T), ref), (boundary, algorithm, mode)


@pytest.mark.parametrize("sizes", [(29,), (9, 8, 7)])
def test_cross_product_other_dims(sizes):
    T = 5
    st1, u1, k1 = make_heat_problem(sizes)
    run_phase1(st1, T, k1)
    ref = u1.snapshot(T)
    for algorithm in ("trap", "strap"):
        for mode in ALL_MODES:
            st2, u2, k2 = make_heat_problem(sizes)
            st2.run(
                T, k2,
                algorithm=algorithm, mode=mode,
                dt_threshold=2,
                space_thresholds=tuple(3 for _ in sizes),
                protect_unit_stride=len(sizes) >= 3,
            )
            assert np.array_equal(u2.snapshot(T), ref), (sizes, algorithm, mode)


@given(
    nx=st.integers(min_value=2, max_value=24),
    ny=st.integers(min_value=2, max_value=24),
    T=st.integers(min_value=1, max_value=8),
    dt_thr=st.integers(min_value=1, max_value=6),
    s_thr=st.integers(min_value=0, max_value=12),
    boundary=st.sampled_from(sorted(BOUNDARY_FACTORIES)),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_geometry_sweep_trap_vs_loops(nx, ny, T, dt_thr, s_thr, boundary, seed):
    """Property: for random grid shapes, step counts, coarsening settings
    and boundary kinds, TRAP (vectorized) equals serial loops (interp)."""
    sizes = (nx, ny)
    st1, u1, k1 = make_heat_problem(sizes, boundary=boundary, seed=seed)
    st1.run(T, k1, algorithm="serial_loops", mode="interp")
    ref = u1.snapshot(st1.cursor)

    st2, u2, k2 = make_heat_problem(sizes, boundary=boundary, seed=seed)
    st2.run(
        T, k2,
        algorithm="trap", mode="split_pointer",
        dt_threshold=dt_thr, space_thresholds=(s_thr, s_thr),
    )
    assert np.array_equal(u2.snapshot(st2.cursor), ref)


@given(
    n=st.integers(min_value=2, max_value=48),
    T=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_geometry_sweep_strap_1d(n, T, seed):
    sizes = (n,)
    st1, u1, k1 = make_heat_problem(sizes, seed=seed)
    st1.run(T, k1, algorithm="serial_loops", mode="interp")
    ref = u1.snapshot(st1.cursor)

    st2, u2, k2 = make_heat_problem(sizes, seed=seed)
    st2.run(T, k2, algorithm="strap", mode="split_pointer",
            dt_threshold=1, space_thresholds=(0,))
    assert np.array_equal(u2.snapshot(st2.cursor), ref)
