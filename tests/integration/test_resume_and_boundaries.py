"""Integration tests: resumable runs and boundary re-registration.

Section 2 of the paper specifies both behaviours: `Run` may be called
repeatedly ("the programmer may resume the running of the stencil after
examining the result"), and "the programmer can change boundary functions
by registering a new one".
"""

import numpy as np
import pytest

from repro import (
    ConstantBoundary,
    Kernel,
    PeriodicBoundary,
    PochoirArray,
    Stencil,
)
from repro.apps.heat import heat_kernel, heat_shape


def _build(boundary):
    u = PochoirArray("u", (24, 24)).register_boundary(boundary)
    st = Stencil(2, heat_shape(2))
    st.register_array(u)
    k = heat_kernel(u, (0.1, 0.1))
    u.set_initial(np.random.default_rng(0).random((24, 24)))
    return st, u, k


def test_many_small_runs_equal_one_big_run():
    st1, u1, k1 = _build(PeriodicBoundary())
    st1.run(12, k1)
    ref = u1.snapshot(12)

    st2, u2, k2 = _build(PeriodicBoundary())
    for chunk in (1, 2, 3, 6):
        st2.run(chunk, k2)
    assert st2.cursor == 12
    assert np.array_equal(u2.snapshot(12), ref)


def test_resume_across_algorithms():
    """Resuming with a different algorithm/mode continues correctly —
    state lives in the arrays, not the execution engine."""
    st1, u1, k1 = _build(PeriodicBoundary())
    st1.run(10, k1)
    ref = u1.snapshot(10)

    st2, u2, k2 = _build(PeriodicBoundary())
    st2.run(4, k2, algorithm="trap", mode="split_pointer")
    st2.run(3, k2, algorithm="serial_loops", mode="interp")
    st2.run(3, k2, algorithm="strap", mode="macro_shadow")
    assert np.array_equal(u2.snapshot(10), ref)


def test_boundary_reregistration_changes_behavior():
    st, u, k = _build(ConstantBoundary(0.0))
    st.run(5, k)
    cold_mean = u.snapshot(st.cursor).mean()

    # Re-register a hot boundary and continue: heat flows in.
    u.register_boundary(ConstantBoundary(50.0))
    st.run(25, k)
    hot_mean = u.snapshot(st.cursor).mean()
    assert hot_mean > cold_mean


def test_intermediate_results_readable_between_runs():
    st, u, k = _build(PeriodicBoundary())
    total_before = u.snapshot(0).sum()
    st.run(3, k)
    mid = u.snapshot(3)
    # Periodic heat conserves total mass.
    assert mid.sum() == pytest.approx(total_before, rel=1e-12)
    st.run(3, k)
    assert u.snapshot(6).sum() == pytest.approx(total_before, rel=1e-12)
