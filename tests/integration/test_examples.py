"""Smoke tests: every shipped example runs to completion.

Examples double as acceptance tests for the public API; they carry their
own internal assertions, so a clean exit is a meaningful check.  Grid
sizes are shrunk via environment-free monkeypatching where the stock
example would be slow for CI.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


@pytest.mark.slow
def test_quickstart():
    run_example("quickstart.py")


@pytest.mark.slow
def test_life_glider():
    run_example("life_glider.py")


@pytest.mark.slow
def test_option_pricing():
    run_example("option_pricing.py")


@pytest.mark.slow
def test_heat_cylinder():
    run_example("heat_cylinder.py")


@pytest.mark.slow
def test_sequence_alignment():
    run_example("sequence_alignment.py")
