"""Tests for the Cilkview-style work/span analyzer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.theory import parallelism_growth_exponent
from repro.runtime.workspan import analyze_loops, analyze_walk


class TestWork:
    @given(
        n=st.integers(min_value=2, max_value=64),
        T=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_work_equals_volume_1d(self, n, T):
        ws = analyze_walk((n,), (1,), T)
        assert ws.work == n * T

    def test_work_equals_volume_2d(self):
        ws = analyze_walk((24, 18), (1, 1), 12)
        assert ws.work == 24 * 18 * 12

    def test_work_equals_volume_strap(self):
        ws = analyze_walk((24, 18), (1, 1), 12, algorithm="strap")
        assert ws.work == 24 * 18 * 12

    def test_base_unit_scales_work(self):
        a = analyze_walk((16,), (1,), 8)
        b = analyze_walk((16,), (1,), 8, base_unit=2.0)
        assert b.work == 2 * a.work


class TestSpan:
    def test_span_at_most_work(self):
        ws = analyze_walk((64, 64), (1, 1), 32)
        assert ws.span <= ws.work

    def test_trap_span_not_worse_than_strap(self):
        for n in (32, 64, 128):
            trap = analyze_walk((n, n), (1, 1), n)
            strap = analyze_walk((n, n), (1, 1), n, algorithm="strap")
            assert trap.span <= strap.span

    def test_parallelism_grows_with_n(self):
        pars = [
            analyze_walk((n, n), (1, 1), 64).parallelism
            for n in (64, 128, 256)
        ]
        assert pars[0] < pars[1] < pars[2]

    def test_trap_beats_strap_parallelism_2d(self):
        """The Figure 9(a) ordering, and the gap grows with N."""
        gaps = []
        for n in (64, 128, 256):
            trap = analyze_walk((n, n), (1, 1), 128).parallelism
            strap = analyze_walk((n, n), (1, 1), 128,
                                 algorithm="strap").parallelism
            assert trap > strap
            gaps.append(trap / strap)
        assert gaps[-1] > gaps[0]

    def test_growth_exponent_ordering_matches_theorems(self):
        """Theorems 3 & 5: TRAP parallelism grows ~w^2 in 2D, STRAP
        ~w^(3 - lg 5) ~ w^0.68.  Check the measured exponents respect
        the predicted ordering with a healthy margin."""
        import math

        def fit_exponent(algorithm):
            n1, n2 = 128, 512
            p1 = analyze_walk((n1, n1), (1, 1), n1,
                              algorithm=algorithm).parallelism
            p2 = analyze_walk((n2, n2), (1, 1), n2,
                              algorithm=algorithm).parallelism
            return math.log(p2 / p1) / math.log(n2 / n1)

        e_trap = fit_exponent("trap")
        e_strap = fit_exponent("strap")
        assert e_trap > e_strap
        want_trap = parallelism_growth_exponent(2, "trap")  # 2.0
        want_strap = parallelism_growth_exponent(2, "strap")  # ~0.678
        # Coarse agreement: correct side of 1 and correct order.
        assert e_trap > 1.0 >= e_strap or e_trap > e_strap

    def test_memoization_handles_paper_scale(self):
        import time

        t0 = time.time()
        ws = analyze_walk((1600, 1600), (1, 1), 1000)
        assert time.time() - t0 < 30
        assert ws.work == 1600 * 1600 * 1000
        assert ws.parallelism > 100


class TestLoops:
    def test_loops_work(self):
        ws = analyze_loops((32, 16), 8)
        assert ws.work == 32 * 16 * 8

    def test_loops_parallelism_saturates_at_rows(self):
        # Parallel-for over the outer dim only: parallelism ~ O(rows).
        ws = analyze_loops((64, 64), 16)
        assert ws.parallelism <= 64

    def test_grain_reduces_parallelism(self):
        fine = analyze_loops((64, 64), 4, grain=1)
        coarse = analyze_loops((64, 64), 4, grain=16)
        assert fine.parallelism > coarse.parallelism
