"""Tests for greedy-schedule simulation (the Figure 3 '12-core' model)."""

import pytest

from repro.errors import ExecutionError
from repro.runtime.scheduler import brent_time, simulate_greedy, simulated_speedup
from repro.trap.plan import BaseRegion, PlanNode


def _region(vol, t0=0):
    return BaseRegion(ta=t0, tb=t0 + 1, dims=((0, vol, 0, 0),), interior=True)


def test_brent_bound_limits():
    # Fully serial computation: span == work, so T_P ~= T1 regardless of P.
    assert brent_time(10.0, 100.0, 100.0, 12) == pytest.approx(10.0 + 10.0 / 12)
    # Embarrassingly parallel: span ~ 0, so T_P ~ T1/P.
    assert brent_time(12.0, 100.0, 1e-9, 12) == pytest.approx(1.0, rel=1e-6)


def test_brent_validates_processors():
    with pytest.raises(ExecutionError):
        brent_time(1.0, 1.0, 1.0, 0)


def test_greedy_single_wave_balances():
    plan = PlanNode.par([PlanNode.base(_region(10)) for _ in range(4)])
    assert simulate_greedy(plan, 1) == 40
    assert simulate_greedy(plan, 2) == 20
    assert simulate_greedy(plan, 4) == 10
    # More processors than tasks: bounded by the largest task.
    assert simulate_greedy(plan, 100) == 10


def test_greedy_respects_barriers():
    # Two sequential waves of 2 tasks each: P=2 gives 2 steps of 10.
    wave = lambda t: PlanNode.par(
        [PlanNode.base(_region(10, t)), PlanNode.base(_region(10, t))]
    )
    plan = PlanNode.seq([wave(0), wave(1)])
    assert simulate_greedy(plan, 2) == 20
    assert simulate_greedy(plan, 4) == 20  # barrier prevents overlap


def test_greedy_lpt_imbalance():
    # Tasks 5, 3, 3, 3 on 2 procs: LPT packs {5,3} and {3,3} -> makespan 8
    # (which is also optimal: no subset sums to 7).
    plan = PlanNode.par(
        [PlanNode.base(_region(v)) for v in (5, 3, 3, 3)]
    )
    assert simulate_greedy(plan, 2) == 8


def test_speedup_monotone_in_processors():
    plan = PlanNode.par([PlanNode.base(_region(v)) for v in range(1, 9)])
    s2 = simulated_speedup(plan, 2)
    s4 = simulated_speedup(plan, 4)
    assert 1.0 < s2 <= s4
