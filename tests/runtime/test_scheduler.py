"""Tests for schedule simulation: barrier waves and the true task DAG."""

import pytest

from repro.errors import ExecutionError
from repro.runtime.scheduler import (
    brent_time,
    simulate_dag,
    simulate_greedy,
    simulated_dag_speedup,
    simulated_speedup,
)
from repro.trap.plan import BaseRegion, PlanNode


def _region(vol, t0=0):
    return BaseRegion(ta=t0, tb=t0 + 1, dims=((0, vol, 0, 0),), interior=True)


def test_brent_bound_limits():
    # Fully serial computation: span == work, so T_P ~= T1 regardless of P.
    assert brent_time(10.0, 100.0, 100.0, 12) == pytest.approx(10.0 + 10.0 / 12)
    # Embarrassingly parallel: span ~ 0, so T_P ~ T1/P.
    assert brent_time(12.0, 100.0, 1e-9, 12) == pytest.approx(1.0, rel=1e-6)


def test_brent_validates_processors():
    with pytest.raises(ExecutionError):
        brent_time(1.0, 1.0, 1.0, 0)


def test_greedy_single_wave_balances():
    plan = PlanNode.par([PlanNode.base(_region(10)) for _ in range(4)])
    assert simulate_greedy(plan, 1) == 40
    assert simulate_greedy(plan, 2) == 20
    assert simulate_greedy(plan, 4) == 10
    # More processors than tasks: bounded by the largest task.
    assert simulate_greedy(plan, 100) == 10


def test_greedy_respects_barriers():
    # Two sequential waves of 2 tasks each: P=2 gives 2 steps of 10.
    wave = lambda t: PlanNode.par(
        [PlanNode.base(_region(10, t)), PlanNode.base(_region(10, t))]
    )
    plan = PlanNode.seq([wave(0), wave(1)])
    assert simulate_greedy(plan, 2) == 20
    assert simulate_greedy(plan, 4) == 20  # barrier prevents overlap


def test_greedy_lpt_imbalance():
    # Tasks 5, 3, 3, 3 on 2 procs: LPT packs {5,3} and {3,3} -> makespan 8
    # (which is also optimal: no subset sums to 7).
    plan = PlanNode.par(
        [PlanNode.base(_region(v)) for v in (5, 3, 3, 3)]
    )
    assert simulate_greedy(plan, 2) == 8


def test_speedup_monotone_in_processors():
    plan = PlanNode.par([PlanNode.base(_region(v)) for v in range(1, 9)])
    s2 = simulated_speedup(plan, 2)
    s4 = simulated_speedup(plan, 4)
    assert 1.0 < s2 <= s4


class TestSimulateDag:
    def test_validates_processors(self):
        with pytest.raises(ExecutionError):
            simulate_dag(PlanNode.base(_region(1)), 0)

    def test_serial_equals_total_work(self):
        plan = PlanNode.par([PlanNode.base(_region(10)) for _ in range(4)])
        assert simulate_dag(plan, 1) == 40

    def test_matches_waves_on_flat_plan(self):
        plan = PlanNode.par([PlanNode.base(_region(10)) for _ in range(4)])
        assert simulate_dag(plan, 2) == simulate_greedy(plan, 2) == 20

    def test_chain_is_fully_serial(self):
        plan = PlanNode.seq([PlanNode.base(_region(5, t)) for t in range(4)])
        assert simulate_dag(plan, 8) == 20

    def test_overlaps_independent_chains_across_barriers(self):
        # Par of an imbalanced chain (10,10) and a short task (1) followed
        # by another short task: waves barrier after the first front, so
        # P=2 waves take max(10,1) + max(10,1) = 20; the DAG runs the
        # second chain's steps during the first chain's slack: makespan 20
        # only for the long chain, total still 20 -- sharpen with costs
        # where the barrier genuinely hurts:
        left = PlanNode.seq([PlanNode.base(_region(10, 0)), PlanNode.base(_region(1, 1))])
        right = PlanNode.seq([PlanNode.base(_region(1, 2)), PlanNode.base(_region(10, 3))])
        plan = PlanNode.par([left, right])
        # Waves: [10, 1] then [1, 10] -> barrier makespan 10 + 10 = 20.
        assert simulate_greedy(plan, 2) == 20
        # DAG: the two chains are independent; each worker runs one chain
        # end to end -> 11.
        assert simulate_dag(plan, 2) == 11

    def test_never_worse_than_waves_on_real_decompositions(self):
        """The barrier-removal acceptance property on real TRAP plans:
        DAG makespan <= wave makespan everywhere, strictly less
        somewhere."""
        from repro.trap.plan import dependency_graph
        from repro.trap.walker import decompose, default_options, walk_spec_for
        from repro.trap.zoid import full_grid_zoid

        strict_win = False
        for n, t, thr, dt in ((40, 12, 8, 3), (64, 16, 12, 4)):
            spec = walk_spec_for((n, n), (1, 1), (-1, -1), (1, 1))
            opts = default_options(
                2, (n, n), dt_threshold=dt, space_thresholds=(thr, thr),
                protect_unit_stride=False,
            )
            plan = decompose(full_grid_zoid(1, 1 + t, (n, n)), spec, opts)
            graph = dependency_graph(plan)  # build once, sweep P over it
            for p in (2, 4, 8, 12):
                wave = simulate_greedy(plan, p)
                dag = simulate_dag(graph, p)
                assert dag <= wave, (n, p, dag, wave)
                if dag < wave:
                    strict_win = True
        assert strict_win, "DAG should beat the barriers somewhere"

    def test_dag_speedup_monotone(self):
        plan = PlanNode.par([PlanNode.base(_region(v)) for v in range(1, 9)])
        s2 = simulated_dag_speedup(plan, 2)
        s4 = simulated_dag_speedup(plan, 4)
        assert 1.0 < s2 <= s4
