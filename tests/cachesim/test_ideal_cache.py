"""Tests for the LRU ideal-cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachesim.ideal_cache import IdealCache
from repro.errors import SpecificationError


class TestBasics:
    def test_cold_misses(self):
        c = IdealCache(capacity_points=64, line_points=8)
        c.access_range(0, 16)
        assert c.refs == 16
        assert c.misses == 2

    def test_warm_hits(self):
        c = IdealCache(capacity_points=64, line_points=8)
        c.access_range(0, 16)
        c.access_range(0, 16)
        assert c.misses == 2
        assert c.refs == 32

    def test_unaligned_range_touches_extra_line(self):
        c = IdealCache(capacity_points=64, line_points=8)
        c.access_range(4, 8)  # spans lines 0 and 1
        assert c.misses == 2

    def test_eviction_lru_order(self):
        c = IdealCache(capacity_points=16, line_points=8)  # 2 lines
        c.access_range(0, 8)    # line 0
        c.access_range(8, 8)    # line 1
        c.access_range(0, 8)    # touch line 0 (now MRU)
        c.access_range(16, 8)   # line 2 evicts line 1
        c.access_range(0, 8)    # line 0 still resident: hit
        assert c.misses == 3
        c.access_range(8, 8)    # line 1 was evicted: miss
        assert c.misses == 4

    def test_zero_length_ignored(self):
        c = IdealCache(capacity_points=64, line_points=8)
        c.access_range(0, 0)
        assert c.refs == 0 and c.misses == 0

    def test_miss_ratio(self):
        c = IdealCache(capacity_points=64, line_points=8)
        assert c.miss_ratio == 0.0
        c.access_range(0, 8)
        assert c.miss_ratio == 1 / 8

    def test_reset_and_flush(self):
        c = IdealCache(capacity_points=64, line_points=8)
        c.access_range(0, 8)
        c.reset_counters()
        assert c.refs == 0
        c.access_range(0, 8)
        assert c.misses == 0  # still resident
        c.flush()
        c.access_range(0, 8)
        assert c.misses == 1

    def test_validation(self):
        with pytest.raises(SpecificationError):
            IdealCache(capacity_points=4, line_points=8)
        with pytest.raises(SpecificationError):
            IdealCache(capacity_points=8, line_points=0)


@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=512),
            st.integers(min_value=1, max_value=64),
        ),
        min_size=1,
        max_size=60,
    ),
    small_m=st.integers(min_value=1, max_value=8),
    extra_m=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_lru_miss_count_monotone_in_capacity(accesses, small_m, extra_m):
    """LRU inclusion property: a bigger cache never misses more."""
    B = 8
    small = IdealCache(capacity_points=small_m * B, line_points=B)
    big = IdealCache(capacity_points=(small_m + extra_m) * B, line_points=B)
    for start, length in accesses:
        small.access_range(start, length)
        big.access_range(start, length)
    assert big.misses <= small.misses
    assert big.refs == small.refs


@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=256),
            st.integers(min_value=1, max_value=32),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_miss_count_bounded_by_lines_touched(accesses):
    B = 4
    c = IdealCache(capacity_points=8 * B, line_points=B)
    lines = 0
    for start, length in accesses:
        lines += (start + length - 1) // B - start // B + 1
        c.access_range(start, length)
    assert c.misses <= lines
    distinct = {
        line
        for start, length in accesses
        for line in range(start // B, (start + length - 1) // B + 1)
    }
    assert c.misses >= len(distinct)  # at least the compulsory misses
