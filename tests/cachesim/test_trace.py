"""Tests for the cache-trace generator and the Figure 10 ordering."""

import pytest

from repro.cachesim import (
    loops_miss_bound,
    simulate_loops_cache,
    simulate_plan_cache,
    trap_miss_bound,
)
from repro.language.stencil import RunOptions
from repro.trap.driver import build_plan
from tests.conftest import make_heat_problem


def _problem_and_plans(n, T, algorithms=("trap", "strap")):
    st_, u, k = make_heat_problem((n, n))
    problem = st_.prepare(T, k)
    plans = {
        alg: build_plan(
            problem,
            RunOptions(algorithm=alg, dt_threshold=1, space_thresholds=(0, 0)),
        )
        for alg in algorithms
    }
    return problem, plans


class TestRefCounting:
    def test_refs_equal_points_times_cells(self):
        n, T = 16, 8
        problem, plans = _problem_and_plans(n, T, ("trap",))
        stats = simulate_plan_cache(
            problem, plans["trap"], capacity_points=256, line_points=8
        )
        # Heat kernel: 5 reads + 1 write per point.
        assert stats.points == n * n * T
        assert stats.refs == stats.points * 6

    def test_loops_refs_match(self):
        n, T = 16, 8
        problem, _ = _problem_and_plans(n, T, ())
        stats = simulate_loops_cache(
            problem, capacity_points=256, line_points=8
        )
        assert stats.points == n * n * T
        assert stats.refs == stats.points * 6


class TestFigure10Ordering:
    def test_trap_beats_loops_out_of_cache(self):
        """The central Figure 10 claim: cache-oblivious algorithms miss far
        less than loops once the grid exceeds the cache."""
        n, T = 48, 24
        M, B = 1024, 8  # grid (2 copies x 2304 points) >> M
        problem, plans = _problem_and_plans(n, T)
        trap = simulate_plan_cache(
            problem, plans["trap"], capacity_points=M, line_points=B
        )
        strap = simulate_plan_cache(
            problem, plans["strap"], capacity_points=M, line_points=B
        )
        loops = simulate_loops_cache(problem, capacity_points=M, line_points=B)
        assert trap.miss_ratio < loops.miss_ratio / 2
        assert strap.miss_ratio < loops.miss_ratio / 2
        # TRAP and STRAP are in the same class (paper: identical
        # asymptotics; constants differ by the cut order).
        ratio = trap.miss_ratio / strap.miss_ratio
        assert 1 / 4 < ratio < 4

    def test_loops_miss_rate_matches_streaming_model(self):
        n, T = 32, 8
        M, B = 512, 8
        problem, _ = _problem_and_plans(n, T, ())
        loops = simulate_loops_cache(problem, capacity_points=M, line_points=B)
        # Streaming sweep: ~2 lines fetched per B points per step (read row
        # + write row in different time slots).
        predicted = loops_miss_bound((n, n), T, capacity_points=M,
                                     line_points=B) * 2
        assert loops.misses == pytest.approx(predicted, rel=0.35)

    def test_everything_hits_when_cache_is_huge(self):
        n, T = 16, 8
        problem, plans = _problem_and_plans(n, T, ("trap",))
        stats = simulate_plan_cache(
            problem, plans["trap"], capacity_points=1 << 20, line_points=8
        )
        # Only compulsory misses: both time copies fetched once.
        assert stats.misses <= 2 * n * n / 8 + n  # small slack for edges

    def test_trap_within_constant_of_theory_bound(self):
        n, T = 48, 24
        M, B = 1024, 8
        problem, plans = _problem_and_plans(n, T, ("trap",))
        stats = simulate_plan_cache(
            problem, plans["trap"], capacity_points=M, line_points=B
        )
        bound = trap_miss_bound((n, n), T, capacity_points=M, line_points=B)
        assert stats.misses < 40 * bound  # generous constant, right order
        assert stats.misses > bound / 40
