"""Tests for the closed-form cache bounds."""

import pytest

from repro.cachesim.metrics import loops_miss_bound, trap_miss_bound


def test_trap_bound_scaling_in_cache_size():
    # Misses scale as M^(-1/d): quadrupling M halves 2D misses.
    b1 = trap_miss_bound((64, 64), 64, capacity_points=1024, line_points=8)
    b2 = trap_miss_bound((64, 64), 64, capacity_points=4096, line_points=8)
    assert b1 / b2 == pytest.approx(2.0)


def test_trap_bound_scaling_in_line_size():
    b1 = trap_miss_bound((64, 64), 64, capacity_points=1024, line_points=4)
    b2 = trap_miss_bound((64, 64), 64, capacity_points=1024, line_points=8)
    assert b1 / b2 == pytest.approx(2.0)


def test_loops_bound_regimes():
    # In cache: compulsory only (independent of height).
    small = loops_miss_bound((16, 16), 100, capacity_points=4096, line_points=8)
    assert small == pytest.approx(16 * 16 / 8)
    # Out of cache: one streaming sweep per step.
    big = loops_miss_bound((128, 128), 100, capacity_points=4096, line_points=8)
    assert big == pytest.approx(100 * 128 * 128 / 8)


def test_trap_below_loops_out_of_cache():
    sizes, h = (256, 256), 256
    kw = dict(capacity_points=4096, line_points=8)
    assert trap_miss_bound(sizes, h, **kw) < loops_miss_bound(sizes, h, **kw)
