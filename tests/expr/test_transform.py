"""Tests for constant folding, parameter substitution and time shifting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr.builder import where
from repro.expr.evalexpr import EvalEnv, eval_expr
from repro.expr.nodes import (
    BinOp,
    Call,
    Const,
    GridRead,
    Param,
    UnOp,
    Where,
)
from repro.expr.transform import (
    collect_params,
    count_nodes,
    fold_constants,
    shift_time,
    substitute_params,
)
from repro.expr.nodes import Assign, GridWrite, Let


def _const_env():
    return EvalEnv(
        t=0,
        point=(0,),
        read=lambda *_: 0.0,
        write=lambda *_: None,
    )


class TestFoldConstants:
    @pytest.mark.parametrize(
        "op,expect",
        [("+", 5.0), ("-", -1.0), ("*", 6.0), ("/", 2.0 / 3.0),
         ("min", 2.0), ("max", 3.0), ("**", 8.0)],
    )
    def test_binops_fold(self, op, expect):
        e = fold_constants(BinOp(op, Const(2.0), Const(3.0)))
        assert e == Const(expect)

    def test_fmod_folds(self):
        e = fold_constants(BinOp("%", Const(7.0), Const(3.0)))
        assert e == Const(math.fmod(7.0, 3.0))

    def test_division_by_zero_not_folded(self):
        e = fold_constants(BinOp("/", Const(1.0), Const(0.0)))
        assert isinstance(e, BinOp)  # preserved for runtime semantics

    def test_unop_folds(self):
        assert fold_constants(UnOp("neg", Const(2.0))) == Const(-2.0)
        assert fold_constants(UnOp("abs", Const(-2.0))) == Const(2.0)

    def test_call_folds(self):
        e = fold_constants(Call("sqrt", (Const(4.0),)))
        assert e == Const(2.0)

    def test_call_domain_error_not_folded(self):
        e = fold_constants(Call("sqrt", (Const(-1.0),)))
        assert isinstance(e, Call)

    def test_where_const_cond_folds(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(Where(Const(1.0), g, Const(9.0))) == g
        assert fold_constants(Where(Const(0.0), g, Const(9.0))) == Const(9.0)

    def test_identity_add_zero(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(g + 0.0) == g
        assert fold_constants(0.0 + g) == g

    def test_identity_mul_one(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(g * 1.0) == g
        assert fold_constants(1.0 * g) == g

    def test_nested_folding(self):
        e = fold_constants((Const(2.0) + Const(3.0)) * (Const(1.0) + Const(1.0)))
        assert e == Const(10.0)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.sampled_from(["+", "-", "*", "min", "max"]),
    )
    def test_folding_matches_evaluation(self, a, b, op):
        e = BinOp(op, Const(a), Const(b))
        folded = fold_constants(e)
        assert isinstance(folded, Const)
        assert folded.value == eval_expr(e, _const_env())


class TestSubstituteParams:
    def test_bound_param_becomes_const(self):
        e = substitute_params(Param("alpha") + Const(1.0), {"alpha": 0.5})
        assert fold_constants(e) == Const(1.5)

    def test_unbound_param_survives(self):
        e = substitute_params(Param("alpha"), {"beta": 1.0})
        assert e == Param("alpha")

    def test_collect_params(self):
        stmts = [
            Let("a", Param("p") + Param("q")),
            Assign(GridWrite("u", 0), Param("p")),
        ]
        assert collect_params(stmts) == {"p", "q"}


class TestShiftTime:
    def test_grid_read_shifted(self):
        st_in = Assign(GridWrite("u", 1), GridRead("u", 0, (0,)))
        out = shift_time(st_in, -1)
        assert out.target.dt == 0
        assert out.expr == GridRead("u", -1, (0,))

    def test_count_nodes(self):
        e = Const(1.0) + Const(2.0) * Const(3.0)
        assert count_nodes(e) == 5
