"""Tests for constant folding, parameter substitution and time shifting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr.builder import where
from repro.expr.evalexpr import EvalEnv, eval_expr
from repro.expr.nodes import (
    BinOp,
    Call,
    Const,
    GridRead,
    Param,
    UnOp,
    Where,
)
from repro.expr.transform import (
    collect_params,
    count_nodes,
    cse_statements,
    fold_constants,
    shift_time,
    substitute_params,
)
from repro.expr.nodes import Assign, GridWrite, Let, LocalRead


def _const_env():
    return EvalEnv(
        t=0,
        point=(0,),
        read=lambda *_: 0.0,
        write=lambda *_: None,
    )


class TestFoldConstants:
    @pytest.mark.parametrize(
        "op,expect",
        [("+", 5.0), ("-", -1.0), ("*", 6.0), ("/", 2.0 / 3.0),
         ("min", 2.0), ("max", 3.0), ("**", 8.0)],
    )
    def test_binops_fold(self, op, expect):
        e = fold_constants(BinOp(op, Const(2.0), Const(3.0)))
        assert e == Const(expect)

    def test_fmod_folds(self):
        e = fold_constants(BinOp("%", Const(7.0), Const(3.0)))
        assert e == Const(math.fmod(7.0, 3.0))

    def test_division_by_zero_not_folded(self):
        e = fold_constants(BinOp("/", Const(1.0), Const(0.0)))
        assert isinstance(e, BinOp)  # preserved for runtime semantics

    def test_unop_folds(self):
        assert fold_constants(UnOp("neg", Const(2.0))) == Const(-2.0)
        assert fold_constants(UnOp("abs", Const(-2.0))) == Const(2.0)

    def test_call_folds(self):
        e = fold_constants(Call("sqrt", (Const(4.0),)))
        assert e == Const(2.0)

    def test_call_domain_error_not_folded(self):
        e = fold_constants(Call("sqrt", (Const(-1.0),)))
        assert isinstance(e, Call)

    def test_where_const_cond_folds(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(Where(Const(1.0), g, Const(9.0))) == g
        assert fold_constants(Where(Const(0.0), g, Const(9.0))) == Const(9.0)

    def test_identity_add_zero(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(g + 0.0) == g
        assert fold_constants(0.0 + g) == g

    def test_identity_mul_one(self):
        g = GridRead("u", -1, (0,))
        assert fold_constants(g * 1.0) == g
        assert fold_constants(1.0 * g) == g

    def test_nested_folding(self):
        e = fold_constants((Const(2.0) + Const(3.0)) * (Const(1.0) + Const(1.0)))
        assert e == Const(10.0)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.sampled_from(["+", "-", "*", "min", "max"]),
    )
    def test_folding_matches_evaluation(self, a, b, op):
        e = BinOp(op, Const(a), Const(b))
        folded = fold_constants(e)
        assert isinstance(folded, Const)
        assert folded.value == eval_expr(e, _const_env())


class TestSubstituteParams:
    def test_bound_param_becomes_const(self):
        e = substitute_params(Param("alpha") + Const(1.0), {"alpha": 0.5})
        assert fold_constants(e) == Const(1.5)

    def test_unbound_param_survives(self):
        e = substitute_params(Param("alpha"), {"beta": 1.0})
        assert e == Param("alpha")

    def test_collect_params(self):
        stmts = [
            Let("a", Param("p") + Param("q")),
            Assign(GridWrite("u", 0), Param("p")),
        ]
        assert collect_params(stmts) == {"p", "q"}


class TestShiftTime:
    def test_grid_read_shifted(self):
        st_in = Assign(GridWrite("u", 1), GridRead("u", 0, (0,)))
        out = shift_time(st_in, -1)
        assert out.target.dt == 0
        assert out.expr == GridRead("u", -1, (0,))

    def test_count_nodes(self):
        e = Const(1.0) + Const(2.0) * Const(3.0)
        assert count_nodes(e) == 5


def _subtree_occurrences(stmts, needle):
    """How many times ``needle`` appears as a subtree of ``stmts``."""
    count = 0
    stack = [st.expr for st in stmts]
    while stack:
        node = stack.pop()
        if node == needle:
            count += 1
        stack.extend(node.children())
    return count


def _eval_with_store(stmts, store, t_val=0, point=(0,)):
    """Run a kernel body against a mutable grid store, so writes are
    visible to later statements of the same body (the aliasing semantics
    the compiled clones implement)."""

    def read(name, dt, pt):
        return store[(name, t_val + dt, pt)]

    def write(name, dt, pt, v):
        store[(name, t_val + dt, pt)] = v

    from repro.expr.evalexpr import eval_statements

    eval_statements(
        stmts, EvalEnv(t=t_val, point=point, read=read, write=write)
    )
    return store


class TestCSE:
    nbr = GridRead("u", -1, (-1,)) + GridRead("u", -1, (1,))

    def test_repeated_subexpression_hoisted_once(self):
        stmts = [
            Assign(GridWrite("u", 0), self.nbr * Const(0.5)),
            Assign(GridWrite("v", 0), self.nbr + Const(1.0)),
        ]
        out = cse_statements(stmts)
        lets = [st for st in out if isinstance(st, Let)]
        assert len(lets) == 1
        assert lets[0].expr == self.nbr
        assert _subtree_occurrences(out, self.nbr) == 1
        assert _subtree_occurrences(out, LocalRead(lets[0].name)) == 2

    def test_unrepeated_body_unchanged(self):
        stmts = [
            Assign(GridWrite("u", 0), self.nbr * Const(0.5)),
            Assign(GridWrite("v", 0), GridRead("v", -1, (0,))),
        ]
        assert cse_statements(stmts) == stmts

    def test_values_never_hoisted(self):
        two = Const(2.0)
        stmts = [Assign(GridWrite("u", 0), two * GridRead("u", -1, (0,)) + two)]
        out = cse_statements(stmts)
        assert not any(isinstance(st, Let) for st in out)

    def test_nested_repeat_hoists_only_the_parent(self):
        # ``nbr`` repeats only *inside* the repeated parent, so hoisting
        # the parent alone suffices (DAG counting, not tree counting).
        parent = self.nbr * Const(0.25)
        stmts = [
            Assign(GridWrite("u", 0), parent + Const(1.0)),
            Assign(GridWrite("v", 0), parent + Const(2.0)),
        ]
        out = cse_statements(stmts)
        lets = [st for st in out if isinstance(st, Let)]
        assert len(lets) == 1
        assert lets[0].expr == parent

    def test_assign_invalidates_written_level_reads(self):
        # ``w`` reads u at the *written* level, so the Let cached before
        # the write to u cannot be reused after it.
        aliased = GridRead("u", 0, (0,)) + Const(1.0)
        stmts = [
            Assign(GridWrite("v", 0), aliased),
            Assign(GridWrite("u", 0), Const(0.0)),
            Assign(GridWrite("w", 0), aliased),
        ]
        out = cse_statements(stmts)
        lets = [st for st in out if isinstance(st, Let)]
        assert len(lets) == 2
        assert lets[0].name != lets[1].name

    def test_assign_keeps_earlier_level_reads(self):
        # dt == -1 reads are unaffected by a write to the dt == 0 level.
        stmts = [
            Assign(GridWrite("v", 0), self.nbr),
            Assign(GridWrite("u", 0), Const(0.0)),
            Assign(GridWrite("w", 0), self.nbr),
        ]
        out = cse_statements(stmts)
        assert len([st for st in out if isinstance(st, Let)]) == 1

    def test_prefix_avoids_user_let_names(self):
        stmts = [
            Let("_cse0", self.nbr),
            Assign(GridWrite("u", 0), LocalRead("_cse0") * self.nbr),
        ]
        out = cse_statements(stmts)
        names = {st.name for st in out if isinstance(st, Let)}
        assert "_cse0" in names and len(names) == 2

    def test_aliasing_semantics_preserved(self):
        # Read-after-write kernel: v consumes the value just written to
        # u.  CSE'd execution must match the original bit for bit.
        aliased = GridRead("u", 0, (0,)) * Const(2.0)
        stmts = [
            Assign(GridWrite("v", 0), aliased + self.nbr),
            Assign(GridWrite("u", 0), self.nbr * Const(0.5)),
            Assign(GridWrite("w", 0), aliased + self.nbr),
        ]
        out = cse_statements(stmts)
        assert out != stmts  # CSE actually rewrote something

        def fresh_store():
            return {
                ("u", -1, (-1,)): 1.25,
                ("u", -1, (1,)): -0.75,
                ("u", 0, (0,)): 3.5,
            }

        expect = _eval_with_store(stmts, fresh_store())
        got = _eval_with_store(out, fresh_store())
        assert got == expect
