"""Tests for the diagnostic pretty-printer."""

from repro.expr.builder import eq_, fmath, let, where
from repro.expr.nodes import (
    Assign,
    Axis,
    Const,
    GridRead,
    GridWrite,
    Param,
    TIME_AXIS,
)
from repro.expr.printer import statement_source, to_source


def test_grid_read_rendering():
    assert to_source(GridRead("u", -1, (1, 0))) == "u(t-1, x+1, y)"
    assert to_source(GridRead("u", 0, (0,))) == "u(t, x)"


def test_precedence_parenthesization():
    e = (Const(1.0) + Const(2.0)) * Const(3.0)
    assert to_source(e) == "(1 + 2) * 3"
    e2 = Const(1.0) + Const(2.0) * Const(3.0)
    assert to_source(e2) == "1 + 2 * 3"


def test_where_and_calls():
    e = where(eq_(Const(1.0), 2.0), fmath.sqrt(Const(4.0)), 0.0)
    assert to_source(e) == "where(1 == 2, sqrt(4), 0)"


def test_param_rendering():
    assert to_source(Param("alpha")) == "$alpha"


def test_statement_rendering():
    st = Assign(GridWrite("u", 1), GridRead("u", 0, (0,)))
    assert statement_source(st) == "u(t+1, .) = u(t, x)"
    assert statement_source(let("a", Const(1.0))) == "a = 1"


def test_min_max_render_as_calls():
    from repro.expr.builder import maximum

    assert to_source(maximum(Const(1.0), 2.0)) == "max(1, 2)"
