"""Unit tests for the AST node layer: index arithmetic, operator
overloading, canonical forms, and construction-time validation."""

import pytest

from repro.errors import KernelError
from repro.expr.nodes import (
    AffineIndex,
    Axis,
    BinOp,
    BoolOp,
    Compare,
    Const,
    GridRead,
    IndexValue,
    NotOp,
    Param,
    TIME_AXIS,
    UnOp,
    Where,
    as_affine,
    as_expr,
)

t = Axis("t", TIME_AXIS)
x = Axis("x", 0)
y = Axis("y", 1)


class TestAffineIndex:
    def test_axis_plus_constant(self):
        idx = as_affine(x + 3)
        assert idx.single_axis_offset() == (x, 3)

    def test_axis_minus_constant(self):
        idx = as_affine(x - 2)
        assert idx.single_axis_offset() == (x, -2)

    def test_reverse_add(self):
        assert as_affine(5 + x).single_axis_offset() == (x, 5)

    def test_pure_constant(self):
        assert AffineIndex.constant(7).single_axis_offset() == (None, 7)

    def test_multi_axis_combination(self):
        idx = as_affine(x + y - 4)
        coefs = dict(idx.terms)
        assert coefs == {x: 1, y: 1}
        assert idx.const == -4

    def test_multi_axis_not_single_offset(self):
        with pytest.raises(KernelError):
            as_affine(x + y).single_axis_offset()

    def test_scaled_axis_not_single_offset(self):
        with pytest.raises(KernelError):
            as_affine(2 * x).single_axis_offset()

    def test_cancellation_is_canonical(self):
        idx = as_affine((x + y) - y)
        assert idx.single_axis_offset() == (x, 0)

    def test_negation(self):
        idx = as_affine(-(x - 3))
        coefs = dict(idx.terms)
        assert coefs == {x: -1}
        assert idx.const == 3

    def test_integer_scaling(self):
        idx = as_affine(x * 3 + 1)
        assert dict(idx.terms) == {x: 3}
        assert idx.const == 1

    def test_subtraction_of_axes(self):
        idx = as_affine(y - x)
        assert dict(idx.terms) == {x: -1, y: 1}

    def test_equality_is_canonical(self):
        assert as_affine(x + 1 + 1) == as_affine(x + 2)
        assert as_affine(x + y) == as_affine(y + x)

    def test_float_scaling_lifts_to_value(self):
        e = x * 0.5
        assert isinstance(e, BinOp)

    def test_non_integer_index_arith_rejected(self):
        with pytest.raises(KernelError):
            as_affine("hello")  # type: ignore[arg-type]


class TestValueOperators:
    def test_add_builds_binop(self):
        e = Const(1.0) + Const(2.0)
        assert isinstance(e, BinOp) and e.op == "+"

    def test_scalar_coercion_both_sides(self):
        left = 1 + Const(2.0)
        right = Const(2.0) + 1
        assert isinstance(left, BinOp) and isinstance(right, BinOp)
        assert left.left == Const(1.0)
        assert right.right == Const(1.0)

    def test_comparison_builds_compare(self):
        e = Const(1.0) < Const(2.0)
        assert isinstance(e, Compare) and e.op == "<"

    def test_structural_equality_not_compare(self):
        # == on nodes is structural, by design.
        assert Const(1.0) == Const(1.0)
        assert Const(1.0) != Const(2.0)

    def test_bool_operators(self):
        e = (Const(1.0) > 0) & (Const(2.0) > 1)
        assert isinstance(e, BoolOp) and e.op == "and"
        e2 = (Const(1.0) > 0) | (Const(2.0) > 1)
        assert isinstance(e2, BoolOp) and e2.op == "or"
        e3 = ~(Const(1.0) > 0)
        assert isinstance(e3, NotOp)

    def test_negation_and_abs(self):
        assert isinstance(-Const(1.0), UnOp)
        assert isinstance(abs(Const(-1.0)), UnOp)

    def test_axis_comparison_lifts(self):
        e = x < 5
        assert isinstance(e, Compare)
        assert isinstance(e.left, IndexValue)

    def test_nodes_are_hashable(self):
        e1 = Const(1.0) + Const(2.0)
        e2 = Const(1.0) + Const(2.0)
        assert hash(e1) == hash(e2)
        assert len({e1, e2}) == 1

    def test_as_expr_rejects_junk(self):
        with pytest.raises(KernelError):
            as_expr(object())

    def test_as_expr_bool(self):
        assert as_expr(True) == Const(1.0)
        assert as_expr(False) == Const(0.0)


class TestNodeValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(KernelError):
            BinOp("@", Const(1.0), Const(2.0))

    def test_unknown_cmp_rejected(self):
        with pytest.raises(KernelError):
            Compare("<>", Const(1.0), Const(2.0))

    def test_unknown_call_rejected(self):
        from repro.expr.nodes import Call

        with pytest.raises(KernelError):
            Call("gamma", (Const(1.0),))

    def test_where_children(self):
        w = Where(Const(1.0), Const(2.0), Const(3.0))
        assert w.children() == (Const(1.0), Const(2.0), Const(3.0))

    def test_grid_read_fields(self):
        g = GridRead("u", -1, (1, 0))
        assert g.array == "u" and g.dt == -1 and g.offsets == (1, 0)

    def test_param_name(self):
        assert Param("alpha").name == "alpha"
