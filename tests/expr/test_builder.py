"""Tests for the user-facing expression builder helpers."""

import pytest

from repro.errors import KernelError
from repro.expr.builder import (
    eq_,
    fmath,
    let,
    local,
    maximum,
    minimum,
    ne_,
    sum_of,
    where,
)
from repro.expr.nodes import BinOp, Call, Compare, Const, Let, LocalRead, Where


def test_where_coerces_scalars():
    w = where(Const(1.0) > 0, 2, 3.5)
    assert isinstance(w, Where)
    assert w.if_true == Const(2.0)
    assert w.if_false == Const(3.5)


def test_eq_ne_build_compares():
    assert eq_(Const(1.0), 1).op == "=="
    assert ne_(Const(1.0), 1).op == "!="


def test_minimum_maximum_chain():
    m = minimum(1, 2, 3, 4)
    # ((1 min 2) min 3) min 4
    assert isinstance(m, BinOp) and m.op == "min"
    assert isinstance(m.left, BinOp) and m.left.op == "min"
    M = maximum(1, 2)
    assert isinstance(M, BinOp) and M.op == "max"


def test_fmath_known_function():
    c = fmath.exp(Const(1.0))
    assert isinstance(c, Call) and c.func == "exp"


def test_fmath_unknown_function_rejected():
    with pytest.raises(KernelError, match="unsupported math function"):
        fmath.bessel(Const(1.0))


def test_let_local_roundtrip():
    stmt = let("tmp", Const(1.0))
    assert isinstance(stmt, Let) and stmt.name == "tmp"
    r = local("tmp")
    assert isinstance(r, LocalRead) and r.name == "tmp"


def test_let_requires_identifier():
    with pytest.raises(KernelError, match="identifier"):
        let("not valid", Const(1.0))


def test_sum_of():
    s = sum_of([Const(1.0), Const(2.0), Const(3.0)])
    assert isinstance(s, BinOp)
    with pytest.raises(KernelError):
        sum_of([])
