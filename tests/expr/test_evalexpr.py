"""Tests for the tree-walking evaluator (the semantic reference)."""

import math

import pytest

from repro.errors import ExecutionError
from repro.expr.builder import eq_, fmath, let, local, maximum, minimum, where
from repro.expr.evalexpr import EvalEnv, eval_expr, eval_statements
from repro.expr.nodes import (
    AffineIndex,
    Assign,
    Axis,
    Const,
    GridRead,
    GridWrite,
    IndexValue,
    Param,
    TIME_AXIS,
)

t = Axis("t", TIME_AXIS)
x = Axis("x", 0)


def env_with(store=None, params=None, t_val=3, point=(5,)):
    store = store if store is not None else {}
    writes = {}

    def read(name, dt, pt):
        return store[(name, t_val + dt, pt)]

    def write(name, dt, pt, v):
        writes[(name, t_val + dt, pt)] = v

    env = EvalEnv(
        t=t_val, point=point, read=read, write=write, params=params or {}
    )
    return env, writes


class TestScalarEvaluation:
    def test_const(self):
        env, _ = env_with()
        assert eval_expr(Const(2.5), env) == 2.5

    def test_param(self):
        env, _ = env_with(params={"a": 1.5})
        assert eval_expr(Param("a"), env) == 1.5

    def test_unbound_param_raises(self):
        env, _ = env_with()
        with pytest.raises(ExecutionError, match="unbound parameter"):
            eval_expr(Param("nope"), env)

    def test_index_value(self):
        env, _ = env_with(t_val=7, point=(2,))
        e = IndexValue(AffineIndex(terms=((t, 1), (x, 2)), const=3))
        assert eval_expr(e, env) == 7 + 2 * 2 + 3

    def test_grid_read_applies_offsets(self):
        env, _ = env_with(store={("u", 2, (6,)): 42.0})
        assert eval_expr(GridRead("u", -1, (1,)), env) == 42.0

    def test_arithmetic(self):
        env, _ = env_with()
        assert eval_expr(Const(2.0) + Const(3.0) * Const(4.0), env) == 14.0
        assert eval_expr(Const(2.0) ** Const(3.0), env) == 8.0
        assert eval_expr(Const(7.0) % Const(3.0), env) == math.fmod(7.0, 3.0)

    def test_min_max(self):
        env, _ = env_with()
        assert eval_expr(minimum(3.0, Const(1.0), 2.0), env) == 1.0
        assert eval_expr(maximum(3.0, Const(1.0), 5.0), env) == 5.0

    def test_comparisons_return_01(self):
        env, _ = env_with()
        assert eval_expr(Const(1.0) < 2.0, env) == 1.0
        assert eval_expr(Const(3.0) < 2.0, env) == 0.0
        assert eval_expr(eq_(Const(2.0), 2.0), env) == 1.0

    def test_boolean_combinators(self):
        env, _ = env_with()
        true, false = Const(1.0) > 0.0, Const(1.0) < 0.0
        assert eval_expr(true & true, env) == 1.0
        assert eval_expr(true & false, env) == 0.0
        assert eval_expr(false | true, env) == 1.0
        assert eval_expr(~true, env) == 0.0

    def test_where_is_lazy(self):
        # The false branch would divide by zero; laziness avoids it.
        env, _ = env_with()
        e = where(Const(1.0) > 0.0, 5.0, Const(1.0) / Const(0.0))
        assert eval_expr(e, env) == 5.0

    def test_math_calls(self):
        env, _ = env_with()
        assert eval_expr(fmath.exp(Const(0.0)), env) == 1.0
        assert eval_expr(fmath.sqrt(Const(9.0)), env) == 3.0
        assert eval_expr(fmath.fabs(Const(-2.0)), env) == 2.0


class TestStatements:
    def test_let_then_assign(self):
        env, writes = env_with()
        stmts = [
            let("a", Const(2.0)),
            Assign(GridWrite("u", 0), local("a") * 3.0),
        ]
        eval_statements(stmts, env)
        assert writes == {("u", 3, (5,)): 6.0}

    def test_locals_cleared_between_points(self):
        env, _ = env_with()
        eval_statements([let("a", Const(1.0)),
                         Assign(GridWrite("u", 0), local("a"))], env)
        with pytest.raises(ExecutionError, match="before let-binding"):
            eval_statements([Assign(GridWrite("u", 0), local("a"))], env)
