"""Tests for kernel access analysis, normalization and validation."""

import pytest

from repro.errors import KernelError, ShapeViolationError
from repro.expr.analysis import (
    infer_shape,
    kernel_accesses,
    normalize_statements,
    validate_kernel,
)
from repro.expr.builder import let, local, where
from repro.expr.nodes import (
    Assign,
    Axis,
    Const,
    GridRead,
    GridWrite,
    IndexValue,
    TIME_AXIS,
)
from repro.language.array import PochoirArray
from repro.language.kernel import Kernel, make_axes


def heat_1d_statements(write_at_plus_one: bool = True):
    u = PochoirArray("u", (16,))
    t, x = make_axes(1)
    if write_at_plus_one:
        return [u(t + 1, x) << 0.5 * (u(t, x - 1) + u(t, x + 1))]
    return [u(t, x) << 0.5 * (u(t - 1, x - 1) + u(t - 1, x + 1))]


class TestAccessExtraction:
    def test_reads_and_writes(self):
        stmts = normalize_statements(heat_1d_statements())
        s = kernel_accesses(stmts)
        assert s.writes == {"u": {0}}
        assert s.reads["u"] == {(-1, (-1,)), (-1, (1,))}

    def test_depth_slope(self):
        stmts = normalize_statements(heat_1d_statements())
        s = kernel_accesses(stmts)
        assert s.depth() == 1
        assert s.slopes() == (1,)

    def test_slope_rounds_up(self):
        # offset 3 at dt -2 gives slope ceil(3/2) = 2
        u = PochoirArray("u", (32,), depth=2)
        t, x = make_axes(1)
        stmts = normalize_statements(
            [u(t + 1, x) << u(t - 1, x + 3) + u(t, x)]
        )
        assert kernel_accesses(stmts).slopes() == (2,)

    def test_min_max_offsets(self):
        u = PochoirArray("u", (16, 16))
        t, x, y = make_axes(2)
        stmts = normalize_statements(
            [u(t + 1, x, y) << u(t, x - 2, y) + u(t, x, y + 3)]
        )
        lo, hi = kernel_accesses(stmts).min_max_offsets()
        assert lo == (-2, 0)
        assert hi == (0, 3)


class TestNormalization:
    def test_both_frames_agree(self):
        a = normalize_statements(heat_1d_statements(True))
        b = normalize_statements(heat_1d_statements(False))
        assert a == b

    def test_write_lands_at_zero(self):
        stmts = normalize_statements(heat_1d_statements())
        assert all(st.target.dt == 0 for st in stmts if isinstance(st, Assign))

    def test_mixed_write_levels_rejected(self):
        u = PochoirArray("u", (16,), depth=2)
        v = PochoirArray("v", (16,), depth=2)
        t, x = make_axes(1)
        with pytest.raises(KernelError, match="one time level"):
            normalize_statements(
                [u(t + 1, x) << u(t, x), v(t + 2, x) << v(t, x)]
            )

    def test_no_assignment_rejected(self):
        with pytest.raises(KernelError, match="no assignment"):
            normalize_statements([let("a", Const(1.0))])

    def test_index_value_shifted_with_frame(self):
        # In the t+1 frame, bare t must still mean the invocation time.
        u = PochoirArray("u", (16,))
        t, x = make_axes(1)
        stmts = normalize_statements([u(t + 1, x) << u(t, x) + 1.0 * t])
        (assign,) = stmts
        # After normalization home is dt=0, so the IndexValue must be t-1.
        ivs = [
            n
            for n in _walk_expr(assign.expr)
            if isinstance(n, IndexValue)
        ]
        assert len(ivs) == 1
        assert ivs[0].index.const == -1


def _walk_expr(e):
    yield e
    for c in e.children():
        yield from _walk_expr(c)


class TestValidation:
    def test_future_read_rejected(self):
        u = PochoirArray("u", (16,), depth=2)
        t, x = make_axes(1)
        stmts = [Assign(GridWrite("u", 0), GridRead("u", 1, (0,)))]
        with pytest.raises(ShapeViolationError, match="future"):
            validate_kernel(stmts, ndim=1)

    def test_same_level_offset_read_rejected(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("u", 0, (1,)))]
        with pytest.raises(KernelError, match="home cell"):
            validate_kernel(stmts, ndim=1)

    def test_same_level_read_before_write_rejected(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("v", 0, (0,)))]
        with pytest.raises(KernelError, match="before any statement writes"):
            validate_kernel(stmts, ndim=1)

    def test_same_level_read_after_write_allowed(self):
        stmts = [
            Assign(GridWrite("v", 0), GridRead("v", -1, (0,))),
            Assign(GridWrite("u", 0), GridRead("v", 0, (0,))),
        ]
        validate_kernel(stmts, ndim=1)

    def test_wrong_arity_rejected(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("u", -1, (0, 0)))]
        with pytest.raises(KernelError, match="spatial subscripts"):
            validate_kernel(stmts, ndim=1)

    def test_unregistered_array_rejected(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("u", -1, (0,)))]
        with pytest.raises(KernelError, match="unregistered"):
            validate_kernel(stmts, ndim=1, known_arrays=["w"])

    def test_undeclared_cell_rejected(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("u", -1, (2,)))]
        with pytest.raises(ShapeViolationError, match="outside the declared"):
            validate_kernel(
                stmts, ndim=1, declared_cells=[(0, 0), (-1, 0), (-1, 1)]
            )

    def test_declared_cell_accepted(self):
        stmts = [Assign(GridWrite("u", 0), GridRead("u", -1, (1,)))]
        validate_kernel(stmts, ndim=1, declared_cells=[(0, 0), (-1, 1)])

    def test_local_before_binding_rejected(self):
        u = PochoirArray("u", (16,))
        t, x = make_axes(1)
        stmts = [
            Assign(GridWrite("u", 0), local("tmp")),
            let("tmp", Const(1.0)),
        ]
        with pytest.raises(KernelError, match="before its let-binding"):
            validate_kernel(stmts, ndim=1)

    def test_double_let_rejected(self):
        stmts = [
            let("a", Const(1.0)),
            let("a", Const(2.0)),
            Assign(GridWrite("u", 0), local("a")),
        ]
        with pytest.raises(KernelError, match="let-bound twice"):
            validate_kernel(stmts, ndim=1)


class TestInferShape:
    def test_heat_shape_inferred(self):
        stmts = normalize_statements(heat_1d_statements())
        cells = infer_shape(stmts)
        assert cells[0] == (0, 0)
        assert set(cells) == {(0, 0), (-1, -1), (-1, 1)}

    def test_home_first(self):
        u = PochoirArray("u", (8, 8))
        t, x, y = make_axes(2)
        stmts = normalize_statements(
            [u(t + 1, x, y) << u(t, x - 1, y + 1)]
        )
        cells = infer_shape(stmts)
        assert cells[0] == (0, 0, 0)
