"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstantBoundary,
    Kernel,
    NeumannBoundary,
    PeriodicBoundary,
    PochoirArray,
    Stencil,
)
from repro.compiler.pipeline import available_modes


def has_c_backend() -> bool:
    return "c" in available_modes()


#: Concrete codegen modes to sweep in equivalence tests (C included when
#: a toolchain exists).  "auto" is excluded: it is an alias for one of
#: the concrete modes, not a distinct backend.
ALL_MODES = [m for m in available_modes() if m != "auto"]

BOUNDARY_FACTORIES = {
    "periodic": PeriodicBoundary,
    "neumann": NeumannBoundary,
    "dirichlet": lambda: ConstantBoundary(1.25),
}


def make_heat_problem(
    sizes: tuple[int, ...],
    *,
    boundary: str = "periodic",
    seed: int = 0,
    alpha: float = 0.1,
):
    """A fresh d-dimensional heat stencil with random initial data."""
    from repro.apps.heat import heat_kernel, heat_shape

    ndim = len(sizes)
    u = PochoirArray("u", sizes).register_boundary(BOUNDARY_FACTORIES[boundary]())
    st = Stencil(ndim, heat_shape(ndim))
    st.register_array(u)
    kern = heat_kernel(u, (alpha,) * ndim)
    u.set_initial(np.random.default_rng(seed).random(sizes))
    return st, u, kern


def run_reference(sizes, steps, *, boundary="periodic", seed=0):
    """Phase-1 reference result for a heat problem."""
    from repro import run_phase1

    st, u, kern = make_heat_problem(sizes, boundary=boundary, seed=seed)
    run_phase1(st, steps, kern)
    return u.snapshot(st.cursor)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
