"""Tests for the dependency-counted task DAG (repro.trap.graph)."""

import pytest

from repro.errors import ExecutionError
from repro.trap.graph import (
    TaskGraphBuilder,
    build_task_graph,
    critical_path_lengths,
)
from repro.trap.plan import (
    BaseRegion,
    PlanNode,
    dependency_graph,
    iter_base_serial,
    linearize_waves,
    plan_events,
)
from repro.trap.walker import decompose, decompose_events, default_options, walk_spec_for
from repro.trap.zoid import full_grid_zoid


def region(ta=0, tb=1, lo=0, hi=4, interior=True):
    return BaseRegion(ta=ta, tb=tb, dims=((lo, hi, 0, 0),), interior=interior)


def heat_decomposition(n=40, t=12, threshold=8, dt=3):
    spec = walk_spec_for((n, n), (1, 1), (-1, -1), (1, 1))
    opts = default_options(
        2,
        (n, n),
        dt_threshold=dt,
        space_thresholds=(threshold, threshold),
        protect_unit_stride=False,
    )
    top = full_grid_zoid(1, 1 + t, (n, n))
    return top, spec, opts


class TestHandBuiltPlans:
    def test_single_base(self):
        g = dependency_graph(PlanNode.base(region()))
        assert g.n_tasks == 1
        assert g.npred == [0]
        assert g.succs == [[]]

    def test_seq_chain(self):
        rs = [region(i, i + 1) for i in range(3)]
        plan = PlanNode.seq([PlanNode.base(r) for r in rs])
        g = dependency_graph(plan)
        assert g.npred == [0, 1, 1]
        assert g.succs == [[1], [2], []]

    def test_par_has_no_edges(self):
        plan = PlanNode.par([PlanNode.base(region(i, i + 1)) for i in range(4)])
        g = dependency_graph(plan)
        assert g.npred == [0, 0, 0, 0]
        assert g.n_edges == 0

    def test_seq_of_pars_orders_sinks_before_sources(self):
        # 2 parallel regions, then 2 parallel regions: full biclique (2x2
        # direct edges beat a join node at this width).
        wave = lambda t: PlanNode.par(
            [PlanNode.base(region(t, t + 1, 0, 4)), PlanNode.base(region(t, t + 1, 4, 8))]
        )
        g = dependency_graph(PlanNode.seq([wave(0), wave(1)]))
        assert g.n_joins == 0
        assert g.npred == [0, 0, 2, 2]
        assert sorted(g.succs[0]) == [2, 3]
        assert sorted(g.succs[1]) == [2, 3]

    def test_wide_seq_boundary_contracts_through_join(self):
        wide = lambda t: PlanNode.par(
            [PlanNode.base(region(t, t + 1, 8 * i, 8 * i + 8)) for i in range(6)]
        )
        g = dependency_graph(PlanNode.seq([wide(0), wide(1)]))
        # 6x6 biclique would be 36 edges; the join contracts it to 6 + 6.
        assert g.n_joins == 1
        assert g.n_tasks == 12
        assert g.n_edges == 12
        g.validate()

    def test_independent_subtrees_do_not_synchronize(self):
        # Par of two seq chains: waves would barrier them level by level;
        # the DAG keeps the chains fully independent.
        chain = lambda lo: PlanNode.seq(
            [PlanNode.base(region(t, t + 1, lo, lo + 4)) for t in range(3)]
        )
        g = dependency_graph(PlanNode.par([chain(0), chain(4)]))
        assert g.n_edges == 4  # two chains of 3 nodes: 2 edges each
        assert sum(1 for n in g.npred if n == 0) == 2


class TestBuilderErrors:
    def test_truncated_stream(self):
        b = TaskGraphBuilder()
        b.feed(("open", "seq"))
        b.feed(("base", region()))
        with pytest.raises(ExecutionError, match="truncated"):
            b.finish()

    def test_unbalanced_close(self):
        b = TaskGraphBuilder()
        b.feed(("open", "seq"))
        with pytest.raises(ExecutionError, match="unbalanced"):
            b.feed(("close", "par"))

    def test_multiple_roots(self):
        b = TaskGraphBuilder()
        b.feed(("base", region()))
        with pytest.raises(ExecutionError, match="multiple roots"):
            b.feed(("base", region(1, 2)))

    def test_unknown_event(self):
        with pytest.raises(ExecutionError, match="unknown plan event"):
            TaskGraphBuilder().feed(("jump", "seq"))


class TestRealDecompositions:
    def test_graph_invariants_and_region_order(self):
        top, spec, opts = heat_decomposition()
        plan = decompose(top, spec, opts)
        g = build_task_graph(decompose_events(top, spec, opts))
        g.validate()  # edges forward, npred consistent
        # Real tasks appear in the serial (depth-first) order.
        assert list(g.iter_regions()) == list(iter_base_serial(plan))
        assert g.n_tasks == len(list(iter_base_serial(plan)))

    def test_streaming_builder_matches_tree_path(self):
        top, spec, opts = heat_decomposition(n=24, t=8, threshold=6)
        plan = decompose(top, spec, opts)
        from_tree = build_task_graph(plan_events(plan))
        from_walker = build_task_graph(decompose_events(top, spec, opts))
        assert from_tree.regions == from_walker.regions
        assert from_tree.npred == from_walker.npred
        assert from_tree.succs == from_walker.succs

    def test_dag_weaker_than_waves(self):
        """Every wave-order constraint implies a DAG path, and the DAG
        never orders two same-wave regions: the wave schedule is one
        valid DAG schedule, with barriers on top."""
        top, spec, opts = heat_decomposition(n=32, t=10, threshold=8)
        plan = decompose(top, spec, opts)
        g = dependency_graph(plan)
        wave_of = {}
        for wi, wave in enumerate(linearize_waves(plan)):
            for r in wave:
                wave_of[r] = wi
        for u, succ in enumerate(g.succs):
            for v in succ:
                ru, rv = g.regions[u], g.regions[v]
                if ru is not None and rv is not None:
                    assert wave_of[ru] < wave_of[rv]

    def test_wave_order_satisfies_pred_counts(self):
        """Executing wave by wave drives every predecessor count to zero
        before its task runs — the DAG is consistent with Lemma 1."""
        top, spec, opts = heat_decomposition(n=28, t=9, threshold=7)
        plan = decompose(top, spec, opts)
        g = dependency_graph(plan)
        node_of = {g.regions[i]: i for i in range(len(g.regions)) if g.regions[i]}
        npred = list(g.npred)

        def complete(nid):
            for s in g.succs[nid]:
                npred[s] -= 1
                assert npred[s] >= 0
                if npred[s] == 0 and g.regions[s] is None:
                    complete(s)

        for wave in linearize_waves(plan):
            ids = [node_of[r] for r in wave]
            for nid in ids:
                assert npred[nid] == 0, "region ran before its dependencies"
            for nid in ids:
                complete(nid)
        assert all(
            n == 0 for i, n in enumerate(npred) if g.regions[i] is not None
        )


class TestCriticalPath:
    def test_chain_accumulates(self):
        rs = [region(i, i + 1) for i in range(3)]  # each volume 4
        g = dependency_graph(PlanNode.seq([PlanNode.base(r) for r in rs]))
        assert critical_path_lengths(g) == [12.0, 8.0, 4.0]

    def test_par_takes_max(self):
        plan = PlanNode.par(
            [PlanNode.base(region(0, 1, 0, 4)), PlanNode.base(region(0, 2, 0, 4))]
        )
        g = dependency_graph(plan)
        assert critical_path_lengths(g) == [4.0, 8.0]
