"""Fused C leaf clones vs per-step execution and vs the NumPy backend.

The ``c`` backend's ``leaf``/``leaf_boundary`` clones run a base
region's whole trapezoid — time loop, slope-shifted bounds, ping-pong
slot arithmetic, per-point MOD/CLAMP/fill boundary resolution — inside
one compiled C function invoked once per base case with the GIL
released.  Fusion must be invisible: for any zoid the fused C clone must
produce exactly the grid the per-step clones produce, and the whole
``c`` backend must agree bitwise with ``split_pointer`` on every
registered app.  Mirrors ``tests/trap/test_leaf_fusion.py``; the zoid
strategy here fixes the grid sizes so the C property sweep compiles a
bounded set of shared objects (sizes are codegen-time constants).

Skips cleanly when no C compiler is present.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import available_apps, build
from repro.compiler.pipeline import compile_kernel
from repro.trap.executor import run_base_region
from repro.trap.plan import BaseRegion
from tests.conftest import has_c_backend, make_heat_problem

pytestmark = pytest.mark.skipif(not has_c_backend(), reason="no C compiler")

T_MAX = 8  # time window prepared for region-level tests

#: Fixed grids (one per dimensionality): sizes bake into the generated C
#: source, so fixing them bounds the number of distinct compilations the
#: randomized sweep can trigger.
GRIDS = {1: (9,), 2: (8, 7)}


def _fresh_compiled(sizes, boundary):
    stencil, u, kern = make_heat_problem(sizes, boundary=boundary, seed=11)
    problem = stencil.prepare(T_MAX, kern)
    return u, compile_kernel(problem, "c")


def _run_region(sizes, boundary, region, fused):
    u, compiled = _fresh_compiled(sizes, boundary)
    if not fused:
        compiled = compiled.without_fused_leaves()
    run_base_region(region, compiled)
    return u.data.copy()


@st.composite
def _zoids(draw, interior):
    """A random valid zoid over one of the fixed grids.

    Boundary zoids may start anywhere in virtual coordinates (straddling
    or wholly past the periodic seam); interior zoids keep every read of
    the slope-shifted box in-domain, as the planner guarantees.  Extents
    are linear in the step, so endpoint checks cover every step.
    """
    ndim = draw(st.integers(1, 2))
    sizes = GRIDS[ndim]
    ta = draw(st.integers(1, 3))
    h = draw(st.integers(1, 4))
    dims = []
    for n in sizes:
        for _ in range(40):
            lo = draw(st.integers(1 if interior else -n, n - 2))
            width = draw(st.integers(1, n - 2 if interior else n))
            dlo = draw(st.integers(-1, 1))
            dhi = draw(st.integers(-1, 1))
            hi, flo, fhi = lo + width, lo + dlo * (h - 1), lo + width + dhi * (h - 1)
            if fhi - flo < 0:
                continue
            if interior and not (min(lo, flo) >= 1 and max(hi, fhi) <= n - 1):
                continue
            if not interior and not (
                -n <= min(lo, flo) and max(hi, fhi) - min(lo, flo) <= n
            ):
                continue
            dims.append((lo, hi, dlo, dhi))
            break
        else:
            dims.append((1, 2, 0, 0))
    return sizes, BaseRegion(ta, ta + h, tuple(dims), interior=interior)


class TestRandomZoids:
    # derandomize pins hypothesis' RNG so a red run reproduces exactly
    # (same zoids, same order) on any machine or CI rerun.
    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(_zoids(interior=True))
    def test_interior_leaf_matches_per_step(self, case):
        sizes, region = case
        fused = _run_region(sizes, "periodic", region, fused=True)
        steps = _run_region(sizes, "periodic", region, fused=False)
        assert np.array_equal(fused, steps)

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(
        _zoids(interior=False),
        st.sampled_from(["periodic", "neumann", "dirichlet"]),
    )
    def test_boundary_leaf_matches_per_step(self, case, boundary):
        sizes, region = case
        fused = _run_region(sizes, boundary, region, fused=True)
        steps = _run_region(sizes, boundary, region, fused=False)
        assert np.array_equal(fused, steps)

    @pytest.mark.parametrize("boundary", ["periodic", "neumann", "dirichlet"])
    def test_c_leaf_runs_wrapped_home_range(self, boundary):
        """Unlike the NumPy snapshot leaf (which declines clip/fill
        regions whose home range leaves the domain), the C leaf resolves
        boundaries per point and must *run* — and match per-step — on a
        seam-straddling region under every boundary kind."""
        region = BaseRegion(1, 3, ((-2, 3, 0, 0),), interior=False)
        u, compiled = _fresh_compiled((8,), boundary)
        assert compiled.leaf_boundary(
            region.ta, region.tb, (-2,), (3,), (0,), (0,)
        ), f"C leaf declined a wrapped home range under {boundary}"
        fused = _run_region((8,), boundary, region, fused=True)
        steps = _run_region((8,), boundary, region, fused=False)
        assert np.array_equal(fused, steps)


class TestCrossBackend:
    """The C backend against split_pointer, end to end."""

    @pytest.mark.parametrize("boundary", ["periodic", "neumann", "dirichlet"])
    def test_heat_boundary_kinds_match_split_pointer(self, boundary):
        sizes, T = (13, 11), 6
        st_c, u_c, k_c = make_heat_problem(sizes, boundary=boundary, seed=5)
        st_c.run(T, k_c, mode="c", dt_threshold=2, space_thresholds=(5, 5))
        st_n, u_n, k_n = make_heat_problem(sizes, boundary=boundary, seed=5)
        st_n.run(T, k_n, mode="split_pointer", dt_threshold=2,
                 space_thresholds=(5, 5))
        assert np.array_equal(
            u_c.snapshot(st_c.cursor), u_n.snapshot(st_n.cursor)
        ), f"c diverged from split_pointer under {boundary}"


EXECUTORS = ("serial", "threads", "dag")


@pytest.mark.parametrize("name", available_apps())
def test_all_apps_c_fused_equals_per_step_and_numpy(name):
    """Every registered app: the fused C backend must reproduce both the
    per-step C path and the split_pointer backend bit for bit, under
    every executor."""
    ref_app = build(name, "tiny")
    ref_app.run(dt_threshold=2, mode="c", fuse_leaves=False)
    ref = ref_app.result()

    np_app = build(name, "tiny")
    np_app.run(dt_threshold=2, mode="split_pointer")
    assert np.array_equal(np_app.result(), ref), (
        f"{name}: split_pointer diverged from the per-step C path"
    )

    for executor in EXECUTORS:
        app = build(name, "tiny")
        app.run(
            executor=executor,
            mode="c",
            n_workers=None if executor == "serial" else 3,
            dt_threshold=2,
        )
        assert np.array_equal(app.result(), ref), (
            f"{name}: fused C leaves under {executor!r} diverged from the "
            f"per-step C path"
        )
