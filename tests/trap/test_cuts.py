"""Tests for space cuts, circular cuts, hyperspace cuts and Lemma 1.

The partition property tests are the load-bearing correctness checks of
the whole decomposition: every cut must split a zoid into subzoids whose
point sets partition the parent exactly.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.trap.cuts import (
    CutDecision,
    choose_cut,
    circular_cut,
    cut_dimension,
    hyperspace_cut,
    time_cut_children,
    trisect,
)
from repro.trap.zoid import Zoid


def points_of(z: Zoid) -> Counter:
    return Counter(z.points())


def assert_partition(parent: Zoid, pieces: list[Zoid]):
    total = Counter()
    for p in pieces:
        total.update(points_of(p))
    expected = points_of(parent)
    assert total == expected, (
        f"partition mismatch: {len(+ (total - expected))} extra, "
        f"{len(+ (expected - total))} missing"
    )


class TestTrisect:
    def test_upright_pieces(self):
        z = Zoid(0, 2, ((0, 12, 0, 0),))
        pieces = trisect(z, 0, 1)
        assert pieces is not None
        assert len(pieces) == 3
        bits = [b for _, b in pieces]
        assert bits == [0, 1, 0]  # black, gray, black

    def test_upright_partition(self):
        z = Zoid(0, 2, ((0, 12, 0, 0),))
        pieces = trisect(z, 0, 1)
        subs = [Zoid(z.ta, z.tb, (ext,)) for ext, _ in pieces]
        assert_partition(z, subs)

    def test_inverted_partition(self):
        z = Zoid(0, 2, ((4, 8, -1, 1),))  # bottom 4, top 8
        pieces = trisect(z, 0, 1)
        assert pieces is not None
        bits = [b for _, b in pieces]
        assert bits == [1, 0, 1]  # gray processed first when inverted
        subs = [Zoid(z.ta, z.tb, (ext,)) for ext, _ in pieces]
        assert_partition(z, subs)

    def test_infeasible_returns_none(self):
        z = Zoid(0, 4, ((0, 6, 1, -1),))  # too narrow for sigma=1, dt=4
        assert trisect(z, 0, 1) is None

    def test_sigma_zero_bisects(self):
        z = Zoid(0, 3, ((0, 8, 0, 0),))
        pieces = trisect(z, 0, 0)
        assert len(pieces) == 2
        assert all(b == 0 for _, b in pieces)
        subs = [Zoid(z.ta, z.tb, (ext,)) for ext, _ in pieces]
        assert_partition(z, subs)

    @given(
        dt=st.integers(min_value=1, max_value=3),
        width=st.integers(min_value=2, max_value=24),
        sigma=st.integers(min_value=1, max_value=2),
        dxa=st.integers(min_value=-2, max_value=2),
        dxb=st.integers(min_value=-2, max_value=2),
    )
    @settings(max_examples=200)
    def test_partition_property(self, dt, width, sigma, dxa, dxb):
        if abs(dxa) > sigma or abs(dxb) > sigma:
            return
        z = Zoid(0, dt, ((0, width, dxa, dxb),))
        if not z.well_defined():
            return
        pieces = trisect(z, 0, sigma)
        if pieces is None:
            return
        subs = [Zoid(z.ta, z.tb, (ext,)) for ext, _ in pieces]
        for s in subs:
            assert s.well_defined() or s.volume() == 0
        assert_partition(z, subs)


class TestCircularCut:
    def test_full_dim_gets_four_pieces(self):
        z = Zoid(0, 2, ((0, 16, 0, 0),))
        pieces = circular_cut(z, 0, 1, 16)
        assert pieces is not None
        assert len(pieces) == 4
        assert [b for _, b in pieces] == [0, 0, 1, 1]

    def test_partition_with_wraparound(self):
        n = 16
        z = Zoid(0, 2, ((0, n, 0, 0),))
        pieces = circular_cut(z, 0, 1, n)
        subs = [Zoid(z.ta, z.tb, (ext,)) for ext, _ in pieces]
        # Count points modulo n: the seam gray wraps in virtual coords.
        total = Counter()
        for s in subs:
            for t, (x,) in s.points():
                total[(t, x % n)] += 1
        expected = Counter((t, x) for t, (x,) in z.points())
        assert total == expected

    def test_not_applicable_to_partial_extent(self):
        z = Zoid(0, 2, ((0, 8, 0, 0),))
        assert circular_cut(z, 0, 1, 16) is None

    def test_too_small_returns_none(self):
        z = Zoid(0, 4, ((0, 8, 0, 0),))  # need half >= 2*sigma*dt = 8
        assert circular_cut(z, 0, 1, 8) is None

    def test_cut_dimension_prefers_circular_for_full_width(self):
        z = Zoid(0, 2, ((0, 16, 0, 0),))
        pieces = cut_dimension(z, 0, 1, 16)
        assert len(pieces) == 4  # circular, not trisection


class TestHyperspaceCut:
    def test_lemma1_piece_and_level_counts(self):
        """A hyperspace cut on k dims makes 3^k subzoids on k+1 levels."""
        z = Zoid(0, 2, ((0, 12, 0, 0), (0, 12, 0, 0)))
        pieces = {
            0: trisect(z, 0, 1),
            1: trisect(z, 1, 1),
        }
        decision = hyperspace_cut(z, pieces)
        all_subs = [s for level in decision.levels for s in level]
        assert len(all_subs) == 9  # 3^2
        assert len(decision.levels) == 3  # k+1 = 3

    def test_lemma1_level_sizes(self):
        # For k=2 upright cuts: levels have 4 (bb), 4 (bg+gb), 1 (gg).
        z = Zoid(0, 2, ((0, 12, 0, 0), (0, 12, 0, 0)))
        decision = hyperspace_cut(
            z, {0: trisect(z, 0, 1), 1: trisect(z, 1, 1)}
        )
        assert [len(lv) for lv in decision.levels] == [4, 4, 1]

    def test_partition_2d(self):
        z = Zoid(0, 2, ((0, 12, 0, 0), (0, 10, 0, 0)))
        decision = hyperspace_cut(
            z, {0: trisect(z, 0, 1), 1: trisect(z, 1, 1)}
        )
        assert_partition(z, [s for lv in decision.levels for s in lv])

    def test_antichain_within_levels(self):
        """Lemma 1: same-level subzoids are independent — no grid point of
        one can influence a point of another within the zoid's height,
        i.e. their slope-expanded extents never overlap at any time."""
        z = Zoid(0, 2, ((0, 12, 0, 0), (0, 12, 0, 0)))
        sigma = 1
        decision = hyperspace_cut(
            z, {0: trisect(z, 0, sigma), 1: trisect(z, 1, sigma)}
        )
        for level in decision.levels:
            for i, a in enumerate(level):
                for b in level[i + 1 :]:
                    assert _independent(a, b, sigma), (a, b)

    def test_mixed_cut_and_uncut_dims(self):
        z = Zoid(0, 2, ((0, 12, 0, 0), (0, 3, 0, 0)))
        decision = hyperspace_cut(z, {0: trisect(z, 0, 1)})
        assert_partition(z, [s for lv in decision.levels for s in lv])
        # dim 1 untouched
        for lv in decision.levels:
            for s in lv:
                assert s.dims[1] == (0, 3, 0, 0)


def _independent(a: Zoid, b: Zoid, sigma: int) -> bool:
    """True if no point of b reads a point of a (or vice versa) during
    their common lifetime, given per-step influence radius sigma."""
    for ta, pa in a.points():
        for tb, pb in b.points():
            if ta == tb:
                continue
            gap = abs(ta - tb)
            dist = max(abs(x - y) for x, y in zip(pa, pb))
            if dist <= sigma * gap:
                return False
    return True


class TestTimeCut:
    def test_halves_partition(self):
        z = Zoid(0, 4, ((0, 10, 1, -1),))
        lower, upper = time_cut_children(z, 2)
        assert_partition(z, [lower, upper])

    def test_upper_base_advanced(self):
        z = Zoid(0, 4, ((0, 10, 1, -1),))
        _, upper = time_cut_children(z, 2)
        assert upper.dims == ((2, 8, 1, -1),)

    def test_invalid_cut_point_rejected(self):
        from repro.errors import ExecutionError

        z = Zoid(0, 4, ((0, 10, 0, 0),))
        with pytest.raises(ExecutionError):
            time_cut_children(z, 0)
        with pytest.raises(ExecutionError):
            time_cut_children(z, 4)


class TestChooseCut:
    COMMON = dict(
        sizes=(32,),
        slopes=(1,),
        space_thresholds=(0,),
        protect_dims=(False,),
        hyperspace=True,
    )

    def test_wide_zoid_space_cut(self):
        z = Zoid(0, 2, ((0, 20, 0, 0),))
        d = choose_cut(z, dt_threshold=1, **self.COMMON)
        assert d.kind == "space"

    def test_tall_narrow_zoid_time_cut(self):
        z = Zoid(0, 8, ((0, 3, 0, 0),))
        d = choose_cut(z, dt_threshold=1, **self.COMMON)
        assert d.kind == "time"
        assert d.tm == 4

    def test_small_zoid_base(self):
        # Width 1 cannot be trisected (a black would be empty) and height
        # 1 cannot be time cut: base case.
        z = Zoid(0, 1, ((0, 1, 0, 0),))
        d = choose_cut(z, dt_threshold=1, **self.COMMON)
        assert d.kind == "base"

    def test_coarsening_thresholds_respected(self):
        z = Zoid(0, 4, ((0, 20, 0, 0),))
        d = choose_cut(
            z,
            sizes=(32,),
            slopes=(1,),
            space_thresholds=(64,),
            dt_threshold=8,
            protect_dims=(False,),
            hyperspace=True,
        )
        assert d.kind == "base"

    def test_protected_dim_not_cut(self):
        z = Zoid(0, 2, ((0, 20, 0, 0), (0, 20, 0, 0)))
        d = choose_cut(
            z,
            sizes=(32, 32),
            slopes=(1, 1),
            space_thresholds=(0, 0),
            dt_threshold=1,
            protect_dims=(False, True),
            hyperspace=True,
        )
        assert d.kind == "space"
        assert d.cut_dims == (0,)

    def test_strap_cuts_one_dim_only(self):
        z = Zoid(0, 2, ((0, 20, 0, 0), (0, 20, 0, 0)))
        d = choose_cut(
            z,
            sizes=(32, 32),
            slopes=(1, 1),
            space_thresholds=(0, 0),
            dt_threshold=1,
            protect_dims=(False, False),
            hyperspace=False,
        )
        assert d.kind == "space"
        assert d.cut_dims == (0,)

    def test_trap_cuts_both_dims(self):
        z = Zoid(0, 2, ((0, 20, 0, 0), (0, 20, 0, 0)))
        d = choose_cut(
            z,
            sizes=(32, 32),
            slopes=(1, 1),
            space_thresholds=(0, 0),
            dt_threshold=1,
            protect_dims=(False, False),
            hyperspace=True,
        )
        assert d.cut_dims == (0, 1)
        assert len(d.levels) == 3
