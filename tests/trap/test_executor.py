"""Tests for plan executors (serial, waves, task DAG) and the driver."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.language.stencil import RunOptions
from repro.trap.driver import build_plan
from repro.trap.executor import execute_plan, get_pool
from tests.conftest import ALL_MODES, make_heat_problem, run_reference


class _CountingKernel:
    """A fake CompiledKernel whose clones just count invocations."""

    leaf = leaf_boundary = None  # per-step path only

    def __init__(self):
        self.calls = 0

    def interior(self, t, lo, hi):
        self.calls += 1

    boundary = interior


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "threads", "dag"])
    @pytest.mark.parametrize("algorithm", ["trap", "strap"])
    def test_matches_reference(self, executor, algorithm):
        sizes, T = (15, 14), 7
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        rep = st_.run(
            T,
            k,
            algorithm=algorithm,
            executor=executor,
            n_workers=3,
            dt_threshold=2,
            space_thresholds=(5, 5),
        )
        assert np.array_equal(u.snapshot(st_.cursor), ref)
        assert rep.executor == executor
        assert rep.n_workers == (1 if executor == "serial" else 3)

    def test_unknown_executor_rejected(self):
        from repro.trap.plan import PlanNode, BaseRegion

        plan = PlanNode.base(
            BaseRegion(0, 1, ((0, 1, 0, 0),), interior=True)
        )
        with pytest.raises(ExecutionError):
            execute_plan(plan, compiled=None, executor="quantum")

    def test_thread_worker_validation(self):
        from repro.trap.executor import execute_threads
        from repro.trap.plan import PlanNode, BaseRegion

        plan = PlanNode.base(BaseRegion(0, 1, ((0, 1, 0, 0),), interior=True))
        with pytest.raises(ExecutionError):
            execute_threads(plan, None, 0)

    def test_dag_worker_validation(self):
        from repro.trap.executor import execute_dag
        from repro.trap.graph import TaskGraph

        with pytest.raises(ExecutionError):
            execute_dag(TaskGraph(), None, 0)

    def test_dag_stall_raises_instead_of_hanging(self):
        """An inconsistent graph (a predecessor count that never reaches
        zero) must error out, not leave the workers blocked forever."""
        from repro.trap.executor import execute_dag
        from repro.trap.graph import TaskGraph
        from repro.trap.plan import BaseRegion

        r = BaseRegion(0, 1, ((0, 2, 0, 0),), interior=True)
        broken = TaskGraph(
            regions=[r, r], npred=[0, 2], succs=[[1], []], n_tasks=2
        )
        with pytest.raises(ExecutionError, match="stalled"):
            execute_dag(broken, _CountingKernel(), 2)

    def test_dag_kernel_error_propagates(self):
        st_, u, k = make_heat_problem((16, 16))
        problem = st_.prepare(4, k)
        from repro.trap.driver import build_events
        from repro.trap.executor import execute_dag
        from repro.trap.graph import build_task_graph

        class Boom(RuntimeError):
            pass

        class BrokenKernel:
            leaf = leaf_boundary = None

            def _fail(self, *a):
                raise Boom("kernel exploded")

            interior = boundary = property(lambda self: self._fail)

        opts = RunOptions(dt_threshold=2, space_thresholds=(5, 5))
        graph = build_task_graph(build_events(problem, opts))
        with pytest.raises(Boom):
            execute_dag(graph, BrokenKernel(), 3)


class TestAutoExecutor:
    def test_auto_defaults_to_serial_without_workers(self):
        assert RunOptions().resolve_executor() == ("serial", 1)
        assert RunOptions(n_workers=1).resolve_executor() == ("serial", 1)

    def test_auto_picks_dag_for_parallel_trap(self):
        assert RunOptions(n_workers=4).resolve_executor() == ("dag", 4)

    def test_auto_picks_waves_for_parallel_strap(self):
        opts = RunOptions(algorithm="strap", n_workers=4)
        assert opts.resolve_executor() == ("threads", 4)

    def test_explicit_executor_wins(self):
        opts = RunOptions(executor="threads", n_workers=2)
        assert opts.resolve_executor() == ("threads", 2)

    def test_invalid_options_rejected(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            RunOptions(executor="quantum")
        with pytest.raises(SpecificationError):
            RunOptions(n_workers=0)

    def test_run_report_records_dag_execution(self):
        sizes, T = (15, 14), 7
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        rep = st_.run(T, k, n_workers=3, dt_threshold=2, space_thresholds=(5, 5))
        assert np.array_equal(u.snapshot(st_.cursor), ref)
        assert rep.executor == "dag"
        assert rep.n_workers == 3
        assert rep.base_cases > 0
        assert 0.0 < rep.busy_time
        assert 0.0 <= rep.idle_fraction < 1.0


class TestSharedPool:
    def test_wave_executor_respects_worker_cap(self):
        """The shared pool may be wider than this run's request (it holds
        the largest count ever asked for); the per-run n_workers cap must
        still bind."""
        import threading
        import time as _time

        from repro.trap.executor import execute_waves
        from repro.trap.plan import BaseRegion, PlanNode

        get_pool(6)  # an earlier run grew the pool

        lock = threading.Lock()
        state = {"now": 0, "max": 0}

        class SlowKernel:
            leaf = leaf_boundary = None

            def interior(self, t, lo, hi):
                with lock:
                    state["now"] += 1
                    state["max"] = max(state["max"], state["now"])
                _time.sleep(0.01)
                with lock:
                    state["now"] -= 1

            boundary = interior

        wave = PlanNode.par(
            [
                PlanNode.base(
                    BaseRegion(0, 1, ((4 * i, 4 * i + 4, 0, 0),), interior=True)
                )
                for i in range(8)
            ]
        )
        stats = execute_waves(wave, SlowKernel(), 2)
        assert stats.base_cases == 8
        assert state["max"] <= 2


    def test_pool_reused_across_runs(self):
        p1 = get_pool(2)
        p2 = get_pool(2)
        assert p1 is p2

    def test_pool_grows_when_needed(self):
        p_small = get_pool(1)
        p_big = get_pool(max(3, p_small._max_workers + 1))
        assert p_big._max_workers >= 3
        assert get_pool(2) is p_big  # smaller requests keep the big pool

    def test_nested_parallel_run_does_not_deadlock(self):
        """A kernel/boundary callback may invoke Stencil.run; a nested
        parallel run must not wait on the pool that is executing it."""
        from concurrent.futures import TimeoutError as FuturesTimeout

        from repro.trap.executor import execute_dag, execute_waves
        from repro.trap.graph import build_task_graph
        from repro.trap.plan import BaseRegion, PlanNode, plan_events

        plan = PlanNode.par(
            [
                PlanNode.base(
                    BaseRegion(0, 1, ((4 * i, 4 * i + 4, 0, 0),), interior=True)
                )
                for i in range(4)
            ]
        )
        graph = build_task_graph(plan_events(plan))
        kernel = _CountingKernel()

        def nested_waves():
            return execute_waves(plan, kernel, 2).base_cases

        def nested_dag():
            return execute_dag(graph, kernel, 2).base_cases

        pool = get_pool(2)
        futures = [pool.submit(nested_waves), pool.submit(nested_dag)]
        try:
            results = [f.result(timeout=30) for f in futures]
        except FuturesTimeout:
            pytest.fail("nested parallel run deadlocked on the shared pool")
        assert results == [4, 4]

    def test_repeated_runs_share_threads(self):
        st_, u, k = make_heat_problem((16, 16))
        st_.run(2, k, executor="threads", n_workers=2)
        pool = get_pool(2)
        st_.run(2, k, executor="threads", n_workers=2)
        assert get_pool(2) is pool

    def test_retired_pools_do_not_accumulate(self):
        """Regression: outgrown pools used to pile up in _retired_pools
        (threads stranded until interpreter exit).  With no lease held,
        growth must shut the old pool down and drop it immediately."""
        import repro.trap.executor as ex
        from repro.trap.executor import acquire_pool, release_pool

        ex.shutdown_pool()
        pools = []
        for n in (2, 3, 5, 7):
            pool = acquire_pool(n)
            release_pool(pool)
            pools.append(pool)
        assert ex._retired_pools == []
        for old in pools[:-1]:
            assert old._shutdown, "retired pool left holding threads"
        assert not pools[-1]._shutdown
        ex.shutdown_pool()

    def test_bare_get_pool_survives_growth(self):
        """A pool handed out via bare get_pool has no lease to signal
        drain, so growth must retire it intact (never shut it down);
        only shutdown_pool may reclaim it."""
        import repro.trap.executor as ex

        ex.shutdown_pool()
        bare = get_pool(2)
        bigger = get_pool(4)
        assert bigger is not bare
        assert bare in ex._retired_pools
        assert not bare._shutdown
        assert bare.submit(lambda: 42).result(timeout=10) == 42
        ex.shutdown_pool()
        assert bare._shutdown

    def test_leased_pool_survives_growth_until_drained(self):
        """A pool leased by an in-flight run must stay usable across a
        concurrent regrowth, and be shut down + dropped by its final
        release (the in-flight work has drained)."""
        import repro.trap.executor as ex
        from repro.trap.executor import acquire_pool, release_pool

        ex.shutdown_pool()
        small = acquire_pool(2)
        big = get_pool(small._max_workers + 2)  # concurrent run outgrows it
        assert big is not small
        assert small in ex._retired_pools
        assert not small._shutdown
        # the leased pool still accepts work (the old failure mode was
        # "cannot schedule new futures after shutdown" mid-flight)
        assert small.submit(lambda: 41 + 1).result(timeout=10) == 42
        release_pool(small)
        assert small._shutdown
        assert small not in ex._retired_pools
        ex.shutdown_pool()

    def test_parallel_runs_drain_retired_pools(self):
        """End to end: runs that grow the pool leave no retired pools
        and no stranded threads behind."""
        import repro.trap.executor as ex

        ex.shutdown_pool()
        st_, u, k = make_heat_problem((16, 16))
        for n in (2, 3, 4):
            st_.run(2, k, executor="dag", n_workers=n, dt_threshold=2)
        assert ex._retired_pools == []
        assert ex._pool_leases == {}
        ex.shutdown_pool()


class TestDriver:
    def test_build_plan_rejects_loops(self):
        from repro.errors import SpecificationError

        st_, u, k = make_heat_problem((8, 8))
        problem = st_.prepare(2, k)
        with pytest.raises(SpecificationError):
            build_plan(problem, RunOptions(algorithm="loops"))

    def test_collect_stats_toggle(self):
        st_, u, k = make_heat_problem((16, 16))
        rep = st_.run(4, k, collect_stats=False)
        assert rep.points_updated == 16 * 16 * 4
        st2, u2, k2 = make_heat_problem((16, 16))
        rep2 = st2.run(4, k2, collect_stats=True)
        assert rep2.points_updated == rep.points_updated
        assert rep2.base_cases > 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_through_driver(self, mode):
        sizes, T = (12, 12), 5
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        rep = st_.run(T, k, mode=mode, dt_threshold=2, space_thresholds=(4, 4))
        assert rep.mode == mode
        assert np.array_equal(u.snapshot(st_.cursor), ref)
