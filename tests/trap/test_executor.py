"""Tests for plan executors (serial, threaded) and the driver."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.language.stencil import RunOptions
from repro.trap.driver import build_plan
from repro.trap.executor import execute_plan
from tests.conftest import ALL_MODES, make_heat_problem, run_reference


class TestExecutors:
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    @pytest.mark.parametrize("algorithm", ["trap", "strap"])
    def test_matches_reference(self, executor, algorithm):
        sizes, T = (15, 14), 7
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        st_.run(
            T,
            k,
            algorithm=algorithm,
            executor=executor,
            n_workers=3,
            dt_threshold=2,
            space_thresholds=(5, 5),
        )
        assert np.array_equal(u.snapshot(st_.cursor), ref)

    def test_unknown_executor_rejected(self):
        from repro.trap.plan import PlanNode, BaseRegion

        plan = PlanNode.base(
            BaseRegion(0, 1, ((0, 1, 0, 0),), interior=True)
        )
        with pytest.raises(ExecutionError):
            execute_plan(plan, compiled=None, executor="quantum")

    def test_thread_worker_validation(self):
        from repro.trap.executor import execute_threads
        from repro.trap.plan import PlanNode, BaseRegion

        plan = PlanNode.base(BaseRegion(0, 1, ((0, 1, 0, 0),), interior=True))
        with pytest.raises(ExecutionError):
            execute_threads(plan, None, 0)


class TestDriver:
    def test_build_plan_rejects_loops(self):
        from repro.errors import SpecificationError

        st_, u, k = make_heat_problem((8, 8))
        problem = st_.prepare(2, k)
        with pytest.raises(SpecificationError):
            build_plan(problem, RunOptions(algorithm="loops"))

    def test_collect_stats_toggle(self):
        st_, u, k = make_heat_problem((16, 16))
        rep = st_.run(4, k, collect_stats=False)
        assert rep.points_updated == 16 * 16 * 4
        st2, u2, k2 = make_heat_problem((16, 16))
        rep2 = st2.run(4, k2, collect_stats=True)
        assert rep2.points_updated == rep.points_updated
        assert rep2.base_cases > 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_through_driver(self, mode):
        sizes, T = (12, 12), 5
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        rep = st_.run(T, k, mode=mode, dt_threshold=2, space_thresholds=(4, 4))
        assert rep.mode == mode
        assert np.array_equal(u.snapshot(st_.cursor), ref)
