"""The parallel compiled walk: bitwise equivalence and degradation.

The C backend can emit a second walk entry point, ``walk_subtree_par``,
that runs the same trapezoidal recursion over an embedded pthread task
pool: the independent same-level pieces of each hyperspace cut (Lemma 1)
become tasks, levels join at a barrier, and every task bottoms out in
the unchanged fused leaf.  Because the parallel recursion shares the
serial walk's decomposition helpers and never splits a leaf, the
schedule may vary but the arithmetic per point cannot — so the contract
under test is *bitwise identity*, not approximate agreement:

* **Equivalence** — randomized interior subtrees, every registered app,
  and every heat boundary kind must produce identical bits under the
  parallel walk, the serial walk, and the Python replay, for every
  thread count, and across repeated runs (scheduling nondeterminism
  must not leak into results).
* **Degradation** — ``walk_threads=1`` takes the serial clone verbatim;
  a failed pool init (``REPRO_WALK_POOL_FAIL``) falls back to the
  serial recursion inside the same call; a hidden toolchain degrades to
  the NumPy path with the knob silently inert.  No API surface changes
  in any of these.

C-specific tests skip cleanly without a compiler; the option-validation
and no-toolchain tests run everywhere.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import available_apps, build
from repro.compiler.pipeline import compile_kernel
from repro.errors import SpecificationError
from repro.language.stencil import RunOptions
from repro.trap.executor import run_base_region
from repro.trap.plan import BaseRegion
from tests.conftest import has_c_backend, make_heat_problem

T_MAX = 8

#: Fixed grids (sizes bake into generated C, so fixing them bounds the
#: number of distinct compilations the randomized sweep can trigger).
GRIDS = {1: (16,), 2: (12, 11)}

THREAD_COUNTS = (2, 3, 4)


def _fresh_compiled(sizes, boundary="periodic", seed=11):
    stencil, u, kern = make_heat_problem(sizes, boundary=boundary, seed=seed)
    problem = stencil.prepare(T_MAX, kern)
    return u, compile_kernel(problem, "c")


def _with_threads(region: BaseRegion, threads: int) -> BaseRegion:
    """The same subtree task with the thread count swapped in the
    5-tuple WalkParams (4-tuple regions read as serial)."""
    walk = region.walk[:4] + (threads,)
    return replace(region, walk=walk)


@st.composite
def _interior_subtrees(draw):
    """A random whole-lifetime-interior subtree task over a fixed grid.

    Same invariant as ``test_compiled_walk._interior_subtrees`` (every
    read stays in-domain at both time endpoints), with small thresholds
    so the subtree recursion actually spawns same-level tasks.
    """
    ndim = draw(st.integers(1, 2))
    sizes = GRIDS[ndim]
    ta = draw(st.integers(1, 3))
    h = draw(st.integers(2, 5))
    dims = []
    for n in sizes:
        for _ in range(60):
            lo = draw(st.integers(1, n - 3))
            width = draw(st.integers(2, n - 2))
            dlo = draw(st.integers(-1, 1))
            dhi = draw(st.integers(-1, 1))
            hi = lo + width
            flo, fhi = lo + dlo * (h - 1), hi + dhi * (h - 1)
            if fhi - flo < 0:
                continue
            if width + (dhi - dlo) * h < 0:
                continue
            if min(lo, flo) >= 1 and max(hi, fhi) <= n - 1:
                dims.append((lo, hi, dlo, dhi))
                break
        else:
            dims.append((1, 3, 0, 0))
    th = tuple(draw(st.integers(2, 5)) for _ in sizes)
    dt_th = draw(st.integers(1, 3))
    hyper = draw(st.booleans())
    threads = draw(st.sampled_from(THREAD_COUNTS))
    region = BaseRegion(
        ta,
        ta + h,
        tuple(dims),
        interior=True,
        walk=((1,) * ndim, th, dt_th, hyper, threads),
    )
    return sizes, region


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
class TestRandomSubtrees:
    """Parallel walk vs serial walk vs Python replay, randomized."""

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(_interior_subtrees())
    def test_parallel_matches_serial_walk(self, case):
        sizes, region = case
        u_p, compiled = _fresh_compiled(sizes)
        assert compiled.walk_par is not None
        run_base_region(region, compiled)
        got_par = u_p.data.copy()

        u_s, compiled_s = _fresh_compiled(sizes)
        run_base_region(_with_threads(region, 1), compiled_s)
        assert np.array_equal(got_par, u_s.data)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(_interior_subtrees())
    def test_parallel_matches_python_replay(self, case):
        sizes, region = case
        u_p, compiled = _fresh_compiled(sizes)
        run_base_region(region, compiled)
        got_par = u_p.data.copy()

        u_py, compiled_py = _fresh_compiled(sizes)
        run_base_region(
            region, replace(compiled_py, walk=None, walk_par=None)
        )
        assert np.array_equal(got_par, u_py.data)

    def test_repeated_runs_are_bitwise_stable(self):
        """Thirty runs of one task-rich subtree at 3 threads: work
        stealing reorders execution, never results (each point is
        written exactly once, from already-complete neighbors)."""
        region = BaseRegion(
            1, 7, ((1, 11, 0, 0), (1, 10, 1, -1)), interior=True,
            walk=((1, 1), (2, 2), 1, True, 3),
        )
        u0, compiled = _fresh_compiled(GRIDS[2])
        run_base_region(region, compiled)
        ref = u0.data.copy()
        for trial in range(30):
            u, compiled = _fresh_compiled(GRIDS[2])
            run_base_region(region, compiled)
            assert np.array_equal(u.data, ref), f"trial {trial} diverged"


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name", available_apps())
def test_all_apps_parallel_walk_equals_serial(name, threads):
    """Every registered app, end to end through ``Stencil.run``: the
    parallel walk must reproduce the serial walk bit for bit."""
    ref_app = build(name, "tiny")
    ref_app.run(mode="c", dt_threshold=2, walk_threads=1)
    ref = ref_app.result()

    app = build(name, "tiny")
    app.run(mode="c", dt_threshold=2, walk_threads=threads)
    assert np.array_equal(app.result(), ref), (
        f"{name}: parallel walk at {threads} threads diverged from serial"
    )


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
@pytest.mark.parametrize("threads", THREAD_COUNTS)
@pytest.mark.parametrize("boundary", ["periodic", "neumann", "dirichlet"])
def test_heat_boundary_kinds_parallel_equals_serial(boundary, threads):
    """Boundary handling is untouched by the pool (only interior
    subtrees are delegated), but the sweep proves the full run —
    boundary leaves interleaved with parallel interior subtrees — stays
    bitwise identical for every boundary kind."""
    sizes, T = (29, 23), 12
    st_p, u_p, k_p = make_heat_problem(sizes, boundary=boundary, seed=5)
    st_p.run(T, k_p, mode="c", dt_threshold=2, space_thresholds=(5, 5),
             walk_threads=threads)
    st_s, u_s, k_s = make_heat_problem(sizes, boundary=boundary, seed=5)
    st_s.run(T, k_s, mode="c", dt_threshold=2, space_thresholds=(5, 5),
             walk_threads=1)
    assert np.array_equal(
        u_p.snapshot(st_p.cursor), u_s.snapshot(st_s.cursor)
    ), f"parallel walk diverged from serial under {boundary}"


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
@pytest.mark.parametrize("executor", ["serial", "threads", "dag"])
def test_executors_compose_with_parallel_walk(executor):
    """Outer DAG/wave workers and the inner pool are independent layers;
    stacking them must not change results."""
    st_ref, u_ref, k_ref = make_heat_problem((32, 32), seed=7)
    st_ref.run(10, k_ref, mode="c", dt_threshold=2, space_thresholds=(8, 8),
               walk_threads=1)
    ref = u_ref.snapshot(st_ref.cursor)

    st_x, u_x, k_x = make_heat_problem((32, 32), seed=7)
    st_x.run(10, k_x, mode="c", dt_threshold=2, space_thresholds=(8, 8),
             walk_threads=3, executor=executor,
             n_workers=None if executor == "serial" else 2)
    assert np.array_equal(u_x.snapshot(st_x.cursor), ref)


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
class TestReportCounters:
    """Pool activity surfaces in the RunReport; silence when serial."""

    def _run(self, **kw):
        st_, u, k = make_heat_problem((48, 50), seed=13)
        report = st_.run(10, k, mode="c", dt_threshold=2,
                         space_thresholds=(4, 4), **kw)
        return u.snapshot(st_.cursor), report

    def test_parallel_run_reports_pool_activity(self):
        ref, _ = self._run(walk_threads=1)
        got, report = self._run(walk_threads=3)
        assert np.array_equal(got, ref)
        assert report.walk_threads == 3
        assert report.walk_spawned > 0
        assert report.walk_barriers > 0
        assert report.walk_stolen >= 0  # timing-dependent, but never negative

    def test_serial_run_reports_zero_counters(self):
        _, report = self._run(walk_threads=1)
        assert report.walk_threads == 1
        assert (report.walk_spawned, report.walk_stolen,
                report.walk_barriers) == (0, 0, 0)


class TestDegradation:
    """Every fallback path keeps the API and the bits."""

    @pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
    def test_pool_init_failure_degrades_to_serial(self, monkeypatch):
        """``REPRO_WALK_POOL_FAIL`` makes ``wq_ensure_pool`` report zero
        workers: ``walk_subtree_par`` must run the serial recursion
        in-call — same bits, no pool counters.  A unique grid keeps this
        kernel's (static, per-.so) pool unpopulated by earlier tests."""
        sizes = (17, 13)
        region = BaseRegion(
            1, 6, ((1, 15, 0, 0), (1, 11, 1, -1)), interior=True,
            walk=((1, 1), (2, 2), 1, True, 3),
        )
        monkeypatch.setenv("REPRO_WALK_POOL_FAIL", "1")
        u_f, compiled = _fresh_compiled(sizes)
        assert compiled.walk_par is not None
        before = compiled.walk_stats_snapshot()
        run_base_region(region, compiled)
        after = compiled.walk_stats_snapshot()
        assert after == before  # no pool, no counters
        got = u_f.data.copy()

        monkeypatch.delenv("REPRO_WALK_POOL_FAIL")
        u_s, compiled_s = _fresh_compiled(sizes)
        run_base_region(_with_threads(region, 1), compiled_s)
        assert np.array_equal(got, u_s.data)

    @pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
    def test_walk_threads_one_never_touches_the_pool(self):
        """``walk_threads=1`` dispatches to the serial clone directly —
        the parallel entry point is not even called."""
        u, compiled = _fresh_compiled(GRIDS[2])
        region = BaseRegion(
            1, 6, ((1, 11, 0, 0), (1, 10, 1, -1)), interior=True,
            walk=((1, 1), (2, 2), 1, True, 1),
        )
        before = compiled.walk_stats_snapshot()
        run_base_region(region, compiled)
        assert compiled.walk_stats_snapshot() == before

    def test_no_cc_accepts_walk_threads_silently(self, monkeypatch):
        """With the toolchain hidden the knob is inert, not an error:
        the run degrades to the NumPy path and matches the reference."""
        st_ref, u_ref, k_ref = make_heat_problem((32, 32), seed=9)
        st_ref.run(10, k_ref, dt_threshold=2)
        ref = u_ref.snapshot(st_ref.cursor)

        monkeypatch.setenv("REPRO_NO_CC", "1")
        from repro.compiler.pipeline import clear_cache

        clear_cache()
        try:
            st_n, u_n, k_n = make_heat_problem((32, 32), seed=9)
            report = st_n.run(10, k_n, dt_threshold=2, walk_threads=4)
            assert report.mode == "split_pointer"
            assert (report.walk_spawned, report.walk_stolen,
                    report.walk_barriers) == (0, 0, 0)
            assert np.array_equal(u_n.snapshot(st_n.cursor), ref)
        finally:
            monkeypatch.delenv("REPRO_NO_CC")
            clear_cache()

    def test_fuse_leaves_off_composes_with_walk_threads(self):
        """``fuse_leaves=False`` strips every walk clone; the thread
        knob must ride along harmlessly."""
        st_ref, u_ref, k_ref = make_heat_problem((24, 24), seed=4)
        st_ref.run(8, k_ref, dt_threshold=2, fuse_leaves=False)
        ref = u_ref.snapshot(st_ref.cursor)
        st_x, u_x, k_x = make_heat_problem((24, 24), seed=4)
        st_x.run(8, k_x, dt_threshold=2, fuse_leaves=False, walk_threads=3)
        assert np.array_equal(u_x.snapshot(st_x.cursor), ref)


class TestOptionSurface:
    """RunOptions validation and resolution for the new knob."""

    @pytest.mark.parametrize("bad", [0, -1, False])
    def test_invalid_walk_threads_rejected(self, bad):
        with pytest.raises(SpecificationError):
            RunOptions(walk_threads=bad)

    def test_none_resolves_to_detected_cores(self):
        from repro.util import detect_cpu_count

        assert RunOptions().resolve_walk_threads() == max(
            1, detect_cpu_count()
        )

    def test_explicit_count_resolves_verbatim(self):
        assert RunOptions(walk_threads=5).resolve_walk_threads() == 5
        assert RunOptions(walk_threads=1).resolve_walk_threads() == 1

    def test_four_tuple_walk_params_read_as_serial(self):
        """Pre-knob WalkParams (4-tuple) must keep executing — the
        executor reads a missing fifth element as one thread."""
        if not has_c_backend():
            pytest.skip("no C compiler")
        region = BaseRegion(
            1, 4, ((1, 7, 0, 0), (1, 7, 1, -1)), interior=True,
            walk=((1, 1), (2, 2), 1, True),
        )
        u_old, compiled = _fresh_compiled(GRIDS[2])
        before = compiled.walk_stats_snapshot()
        run_base_region(region, compiled)
        assert compiled.walk_stats_snapshot() == before
        u_new, compiled_n = _fresh_compiled(GRIDS[2])
        run_base_region(_with_threads(region, 1), compiled_n)
        assert np.array_equal(u_old.data, u_new.data)
