"""Tests for plan trees, the event-stream form, waves and statistics."""

import pytest

from repro.errors import ExecutionError
from repro.trap.plan import (
    BaseRegion,
    PlanNode,
    iter_base_events,
    iter_base_serial,
    linearize_waves,
    map_base_regions,
    plan_events,
    plan_from_events,
    plan_stats,
    stats_from_regions,
)


def region(ta=0, tb=1, lo=0, hi=4, interior=True):
    return BaseRegion(ta=ta, tb=tb, dims=((lo, hi, 0, 0),), interior=interior)


class TestNodes:
    def test_single_child_collapsed(self):
        b = PlanNode.base(region())
        assert PlanNode.seq([b]) is b
        assert PlanNode.par([b]) is b

    def test_serial_iteration_order(self):
        r1, r2, r3 = region(0, 1), region(1, 2), region(2, 3)
        plan = PlanNode.seq(
            [PlanNode.base(r1), PlanNode.par([PlanNode.base(r2), PlanNode.base(r3)])]
        )
        assert list(iter_base_serial(plan)) == [r1, r2, r3]


class TestWaves:
    def test_seq_concatenates(self):
        r1, r2 = region(), region(1, 2)
        plan = PlanNode.seq([PlanNode.base(r1), PlanNode.base(r2)])
        assert linearize_waves(plan) == [[r1], [r2]]

    def test_par_merges_elementwise(self):
        r1, r2, r3 = region(), region(1, 2), region(2, 3)
        left = PlanNode.seq([PlanNode.base(r1), PlanNode.base(r2)])
        right = PlanNode.base(r3)
        plan = PlanNode.par([left, right])
        waves = linearize_waves(plan)
        assert waves == [[r1, r3], [r2]]

    def test_nested_structure(self):
        rs = [region(i, i + 1) for i in range(4)]
        plan = PlanNode.seq(
            [
                PlanNode.par([PlanNode.base(rs[0]), PlanNode.base(rs[1])]),
                PlanNode.par([PlanNode.base(rs[2]), PlanNode.base(rs[3])]),
            ]
        )
        waves = linearize_waves(plan)
        assert len(waves) == 2
        assert set(id(r) for r in waves[0]) == {id(rs[0]), id(rs[1])}

    def test_waves_cover_all_regions(self):
        rs = [region(i, i + 1) for i in range(5)]
        plan = PlanNode.seq(
            [
                PlanNode.base(rs[0]),
                PlanNode.par(
                    [
                        PlanNode.seq([PlanNode.base(rs[1]), PlanNode.base(rs[2])]),
                        PlanNode.base(rs[3]),
                    ]
                ),
                PlanNode.base(rs[4]),
            ]
        )
        flat = [r for wave in linearize_waves(plan) for r in wave]
        assert sorted(id(r) for r in flat) == sorted(id(r) for r in rs)


class TestEvents:
    def _sample_plan(self):
        rs = [region(i, i + 1) for i in range(5)]
        return rs, PlanNode.seq(
            [
                PlanNode.base(rs[0]),
                PlanNode.par(
                    [
                        PlanNode.seq([PlanNode.base(rs[1]), PlanNode.base(rs[2])]),
                        PlanNode.base(rs[3]),
                    ]
                ),
                PlanNode.base(rs[4]),
            ]
        )

    def test_round_trip(self):
        _, plan = self._sample_plan()
        assert plan_from_events(plan_events(plan)) == plan

    def test_events_match_serial_order(self):
        rs, plan = self._sample_plan()
        assert list(iter_base_events(plan_events(plan))) == list(
            iter_base_serial(plan)
        )

    def test_single_base_round_trip(self):
        plan = PlanNode.base(region())
        assert plan_from_events(plan_events(plan)) == plan

    def test_truncated_stream_rejected(self):
        _, plan = self._sample_plan()
        events = list(plan_events(plan))[:-1]
        with pytest.raises(ExecutionError, match="truncated"):
            plan_from_events(events)

    def test_unbalanced_close_rejected(self):
        with pytest.raises(ExecutionError, match="unbalanced"):
            plan_from_events(
                [("open", "seq"), ("base", region()), ("close", "par")]
            )

    def test_multiple_roots_rejected(self):
        with pytest.raises(ExecutionError, match="multiple roots"):
            plan_from_events([("base", region()), ("base", region(1, 2))])


class TestStats:
    def test_counts(self):
        r_int = region(interior=True)
        r_bnd = region(interior=False)
        plan = PlanNode.seq(
            [PlanNode.base(r_int), PlanNode.par([PlanNode.base(r_bnd),
                                                 PlanNode.base(r_int)])]
        )
        stats = plan_stats(plan)
        assert stats.base_cases == 3
        assert stats.interior_base_cases == 2
        assert stats.boundary_base_cases == 1
        assert stats.points == 12
        assert stats.max_par_width == 2
        assert 0 < stats.boundary_fraction < 1

    def test_stats_from_regions_matches_plan_stats(self):
        r_int = region(interior=True)
        r_bnd = region(interior=False)
        plan = PlanNode.seq([PlanNode.base(r_int), PlanNode.base(r_bnd)])
        streamed = stats_from_regions(iter_base_serial(plan))
        full = plan_stats(plan)
        assert streamed.base_cases == full.base_cases
        assert streamed.points == full.points
        assert streamed.boundary_points == full.boundary_points
        assert streamed.interior_base_cases == full.interior_base_cases

    def test_map_base_regions(self):
        plan = PlanNode.seq([PlanNode.base(region()), PlanNode.base(region(1, 2))])
        flipped = map_base_regions(
            plan,
            lambda r: BaseRegion(r.ta, r.tb, r.dims, interior=False),
        )
        assert all(not r.interior for r in iter_base_serial(flipped))
