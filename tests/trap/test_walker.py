"""Tests for the TRAP/STRAP walkers: the exact-cover and dependency-order
properties that make the decomposition correct."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.trap.plan import iter_base_serial, linearize_waves, plan_stats
from repro.trap.walker import WalkOptions, decompose, default_options, walk_spec_for
from repro.trap.zoid import Zoid, full_grid_zoid


def spec_1d(n, sigma=1, off=1):
    return walk_spec_for((n,), (sigma,), (-off,), (off,))


def spec_2d(nx, ny, sigma=1):
    return walk_spec_for((nx, ny), (sigma, sigma), (-1, -1), (1, 1))


def uncoarsened_opts(ndim, hyperspace=True):
    return WalkOptions(
        dt_threshold=1,
        space_thresholds=(0,) * ndim,
        protect_unit_stride=False,
        hyperspace=hyperspace,
    )


def collect_updates(plan, sizes):
    """Multiset of (t, true point) updates emitted by the plan."""
    updates = Counter()
    for region in iter_base_serial(plan):
        for t, pt in region.zoid().points():
            true = tuple(p % n for p, n in zip(pt, sizes))
            updates[(t, true)] += 1
    return updates


def expected_updates(t0, t1, sizes):
    from itertools import product

    return Counter(
        (t, pt)
        for t in range(t0, t1)
        for pt in product(*[range(n) for n in sizes])
    )


class TestExactCover:
    """Every space-time point is updated exactly once."""

    @pytest.mark.parametrize("hyperspace", [True, False])
    @pytest.mark.parametrize("n,T", [(16, 8), (13, 5), (32, 16)])
    def test_1d(self, n, T, hyperspace):
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n,)),
            spec_1d(n),
            uncoarsened_opts(1, hyperspace),
        )
        assert collect_updates(plan, (n,)) == expected_updates(1, 1 + T, (n,))

    @pytest.mark.parametrize("hyperspace", [True, False])
    def test_2d(self, hyperspace):
        n, T = 12, 6
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n, n)),
            spec_2d(n, n),
            uncoarsened_opts(2, hyperspace),
        )
        assert collect_updates(plan, (n, n)) == expected_updates(
            1, 1 + T, (n, n)
        )

    @given(
        n=st.integers(min_value=2, max_value=40),
        T=st.integers(min_value=1, max_value=12),
        sigma=st.integers(min_value=1, max_value=2),
        dt_thr=st.integers(min_value=1, max_value=4),
        s_thr=st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_1d_property(self, n, T, sigma, dt_thr, s_thr):
        spec = spec_1d(n, sigma=sigma, off=sigma)
        opts = WalkOptions(
            dt_threshold=dt_thr, space_thresholds=(s_thr,), hyperspace=True
        )
        plan = decompose(full_grid_zoid(1, 1 + T, (n,)), spec, opts)
        assert collect_updates(plan, (n,)) == expected_updates(1, 1 + T, (n,))


class TestDependencyOrder:
    """In serial order, every read's producer appears before the reader:
    when point (t, x) is updated, all points (t - j, x +- sigma*j) it may
    read have already been updated (or belong to the initial levels)."""

    @pytest.mark.parametrize("hyperspace", [True, False])
    def test_1d_serial_order_valid(self, hyperspace):
        n, T, sigma = 16, 8, 1
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n,)),
            spec_1d(n),
            uncoarsened_opts(1, hyperspace),
        )
        self._check_order(plan, (n,), sigma, t0=1)

    def test_2d_serial_order_valid(self):
        n, T = 10, 5
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n, n)),
            spec_2d(n, n),
            uncoarsened_opts(2),
        )
        self._check_order(plan, (n, n), 1, t0=1)

    @staticmethod
    def _check_order(plan, sizes, sigma, t0):
        from itertools import product as iproduct

        done: set = set()
        for region in iter_base_serial(plan):
            for t, pt in region.zoid().points():
                true = tuple(p % n for p, n in zip(pt, sizes))
                if t > t0:
                    offs = range(-sigma, sigma + 1)
                    for delta in iproduct(*[offs for _ in sizes]):
                        nb = tuple(
                            (p + d) % n for p, d, n in zip(true, delta, sizes)
                        )
                        assert (t - 1, nb) in done, (
                            f"point {(t, true)} updated before its input "
                            f"{(t - 1, nb)}"
                        )
                done.add((t, true))

    def test_wave_order_valid_too(self):
        """The threaded executor's wave linearization also respects
        dependencies (any serialization of each wave is safe)."""
        n, T, sigma = 16, 8, 1
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n,)), spec_1d(n), uncoarsened_opts(1)
        )
        done: set = set()
        for wave in linearize_waves(plan):
            wave_points = []
            for region in wave:
                for t, (x,) in region.zoid().points():
                    wave_points.append((t, x % n))
            for t, x in wave_points:
                if t > 1:
                    for d in (-1, 0, 1):
                        assert (t - 1, (x + d) % n) in done
            done.update(wave_points)


class TestClassification:
    def test_interior_inherited_and_correct(self):
        n, T = 32, 8
        spec = spec_2d(n, n)
        plan = decompose(
            full_grid_zoid(1, 1 + T, (n, n)),
            spec,
            uncoarsened_opts(2),
        )
        for region in iter_base_serial(plan):
            z = region.zoid()
            if region.interior:
                # Every read of every point stays inside the grid.
                for t, pt in z.points():
                    for i, p in enumerate(pt):
                        assert 0 <= p - 1 and p + 1 <= n - 1

    def test_boundary_fraction_shrinks_with_n(self):
        fractions = []
        for n in (16, 32, 64):
            plan = decompose(
                full_grid_zoid(1, 9, (n, n)),
                spec_2d(n, n),
                default_options(2, (n, n), dt_threshold=4,
                                space_thresholds=(8, 8)),
            )
            stats = plan_stats(plan)
            fractions.append(stats.boundary_fraction)
        assert fractions[0] > fractions[-1]


class TestStructure:
    def test_strap_has_more_seq_depth(self):
        """STRAP's serial space cuts produce strictly more waves
        (synchronization points) than TRAP's hyperspace cuts."""
        n, T = 32, 16
        trap_plan = decompose(
            full_grid_zoid(1, 1 + T, (n, n)), spec_2d(n, n),
            uncoarsened_opts(2, True),
        )
        strap_plan = decompose(
            full_grid_zoid(1, 1 + T, (n, n)), spec_2d(n, n),
            uncoarsened_opts(2, False),
        )
        assert len(linearize_waves(strap_plan)) > len(
            linearize_waves(trap_plan)
        )

    def test_same_base_points_both_algorithms(self):
        n, T = 24, 8
        kw = dict(sizes=(n,))
        trap_plan = decompose(
            full_grid_zoid(1, 1 + T, (n,)), spec_1d(n), uncoarsened_opts(1, True)
        )
        strap_plan = decompose(
            full_grid_zoid(1, 1 + T, (n,)), spec_1d(n), uncoarsened_opts(1, False)
        )
        assert plan_stats(trap_plan).points == plan_stats(strap_plan).points == n * T

    def test_default_options_fill_heuristics(self):
        opts = default_options(3, (64, 64, 64))
        assert opts.protect_unit_stride  # >= 3D never cuts unit stride
        opts2 = default_options(2, (64, 64))
        assert not opts2.protect_unit_stride

    def test_default_options_validates_thresholds(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            default_options(2, (64, 64), space_thresholds=(1, 2, 3))
