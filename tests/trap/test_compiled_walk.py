"""Compiled-walk subtree tasks: planning, execution, and degradation.

The walker (``WalkOptions.compiled_walk``) plans whole interior
subtrees as single atomic tasks; ``run_base_region`` executes one
either through the C ``walk_subtree`` clone (one GIL-released call) or
through the Python replay of the identical recursion when no walk
clone exists.  Three properties anchor this suite:

* **Equivalence** — compiled-walk on must be bitwise identical to off,
  for randomized interior zoids (C walk vs Python replay vs per-step),
  for every registered app under every executor, and for every heat
  boundary kind.
* **Eligibility** — only whole-lifetime-interior zoids are ever
  delegated: a wrapped (virtual-coordinate) home range or any
  boundary-touching zoid must keep the per-leaf path, mirroring the
  decline discipline of ``tests/trap/test_c_leaf_fusion.py``.
* **Degradation** — without a walk clone (``fuse_leaves=False``, the
  NumPy backend, or a hidden toolchain) subtree plans still run, via
  the Python walk, with identical results.

The C-specific tests skip cleanly when no C compiler is present; the
planning and degradation tests run everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import available_apps, build
from repro.compiler.pipeline import compile_kernel
from repro.language.stencil import RunOptions
from repro.trap.driver import build_events, build_plan
from repro.trap.executor import run_base_region
from repro.trap.graph import build_task_graph
from repro.trap.plan import BaseRegion, iter_base_events, iter_base_serial
from repro.trap.walker import (
    NEVER_CUT,
    WALK_GRAIN_SPACE,
    WALK_GRAIN_TIME,
    WalkOptions,
    WalkSpec,
    decompose_events,
)
from tests.conftest import has_c_backend, make_heat_problem

T_MAX = 8

#: Fixed grids (sizes bake into generated C, so fixing them bounds the
#: number of distinct compilations the randomized sweep can trigger).
GRIDS = {1: (16,), 2: (12, 11)}


def _fresh_compiled(sizes, boundary="periodic"):
    stencil, u, kern = make_heat_problem(sizes, boundary=boundary, seed=11)
    problem = stencil.prepare(T_MAX, kern)
    return u, compile_kernel(problem, "c")


@st.composite
def _interior_subtrees(draw):
    """A random whole-lifetime-interior subtree task over a fixed grid.

    Every read of the slope-shifted box stays in-domain at both time
    endpoints (extents are linear in t, so endpoints suffice), exactly
    the invariant the planner guarantees before delegating.  Thresholds
    and the dt threshold are drawn small so the subtree really recurses.
    """
    ndim = draw(st.integers(1, 2))
    sizes = GRIDS[ndim]
    ta = draw(st.integers(1, 3))
    h = draw(st.integers(2, 5))
    dims = []
    for n in sizes:
        for _ in range(60):
            lo = draw(st.integers(1, n - 3))
            width = draw(st.integers(2, n - 2))
            dlo = draw(st.integers(-1, 1))
            dhi = draw(st.integers(-1, 1))
            hi = lo + width
            flo, fhi = lo + dlo * (h - 1), hi + dhi * (h - 1)
            if fhi - flo < 0:
                continue
            # Well-defined all the way to the zoid's top time (height h,
            # one past the last computed slice) — the walker never
            # produces a zoid whose top length goes negative, and the
            # cut logic is entitled to assume it.
            if width + (dhi - dlo) * h < 0:
                continue
            if min(lo, flo) >= 1 and max(hi, fhi) <= n - 1:
                dims.append((lo, hi, dlo, dhi))
                break
        else:
            dims.append((1, 3, 0, 0))
    th = tuple(draw(st.integers(2, 5)) for _ in sizes)
    dt_th = draw(st.integers(1, 3))
    hyper = draw(st.booleans())
    region = BaseRegion(
        ta,
        ta + h,
        tuple(dims),
        interior=True,
        walk=((1,) * ndim, th, dt_th, hyper),
    )
    return sizes, region


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
class TestRandomSubtrees:
    """The compiled walk vs the Python replay vs per-step execution."""

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(_interior_subtrees())
    def test_walk_clone_matches_python_replay(self, case):
        sizes, region = case
        u_c, compiled = _fresh_compiled(sizes)
        assert compiled.walk is not None
        run_base_region(region, compiled)
        got_walk = u_c.data.copy()

        u_py, compiled_py = _fresh_compiled(sizes)
        from dataclasses import replace

        run_base_region(region, replace(compiled_py, walk=None))
        assert np.array_equal(got_walk, u_py.data)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(_interior_subtrees())
    def test_walk_clone_matches_per_step(self, case):
        sizes, region = case
        u_c, compiled = _fresh_compiled(sizes)
        run_base_region(region, compiled)
        got_walk = u_c.data.copy()

        u_s, compiled_s = _fresh_compiled(sizes)
        run_base_region(region, compiled_s.without_fused_leaves())
        assert np.array_equal(got_walk, u_s.data)


class TestEligibility:
    """Only whole-lifetime-interior zoids are ever delegated."""

    def _subtree_regions(self, options, sizes=(24, 24), boundary="periodic"):
        stencil, u, kern = make_heat_problem(sizes, boundary=boundary)
        problem = stencil.prepare(12, kern)
        events = build_events(problem, options)
        return sizes, list(iter_base_events(events))

    @pytest.mark.parametrize("boundary", ["periodic", "neumann", "dirichlet"])
    def test_subtrees_are_interior_and_in_domain(self, boundary):
        """No subtree task may be boundary-classified or carry a wrapped
        (virtual-coordinate) home range: the compiled walker has no MOD
        resolution, so delegation of either would read garbage.  This is
        the compiled-walk counterpart of the NumPy snapshot leaf's
        wrapped-home-range decline."""
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=True,  # force planning even without C
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        sizes, regions = self._subtree_regions(options, boundary=boundary)
        subtrees = [r for r in regions if r.walk is not None]
        assert subtrees, "plan produced no subtree tasks to check"
        for r in subtrees:
            assert r.interior
            z = r.zoid()
            for t in (z.ta, z.tb - 1):
                for (lo, hi), n in zip(z.bounds_at(t), sizes):
                    assert 0 <= lo and hi <= n, (
                        f"subtree home range [{lo},{hi}) leaves the "
                        f"{n}-wide domain (wrapped/virtual coordinates)"
                    )

    def test_boundary_regions_never_delegated(self):
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=True,
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        _, regions = self._subtree_regions(options)
        for r in regions:
            if not r.interior:
                assert r.walk is None

    def test_compiled_walk_off_emits_no_subtrees(self):
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=False,
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        _, regions = self._subtree_regions(options)
        assert all(r.walk is None for r in regions)

    def test_subtrees_respect_the_walk_grain(self):
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=True,
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        _, regions = self._subtree_regions(options)
        for r in regions:
            if r.walk is None:
                continue
            z = r.zoid()
            assert z.height <= WALK_GRAIN_TIME * 2
            for i in range(z.ndim):
                assert z.width(i) <= WALK_GRAIN_SPACE * 6

    @pytest.mark.parametrize("bad", ["yes", 0, 1, 2])
    def test_non_bool_knob_rejected(self, bad):
        """0/1 must be rejected, not coerced: RunOptions validation
        would pass them under an equality check (0 == False) while
        resolve_compiled_walk's identity test (`is False`) then forced
        the walk ON for a caller who asked for it off."""
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            RunOptions(compiled_walk=bad)

    def test_protected_dims_ride_as_never_cut_thresholds(self):
        opts = WalkOptions(
            dt_threshold=2,
            space_thresholds=(4, 4, 8),
            protect_unit_stride=True,
            compiled_walk=True,
        )
        assert opts.effective_thresholds(3) == (4, 4, NEVER_CUT)

    def test_graph_counts_subtree_tasks(self):
        stencil, u, kern = make_heat_problem((24, 24))
        problem = stencil.prepare(12, kern)
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=True,
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        graph = build_task_graph(build_events(problem, options))
        n = sum(1 for r in graph.iter_regions() if r.walk is not None)
        assert graph.n_subtree_tasks == n > 0


class TestDegradation:
    """Subtree plans execute without a walk clone, bitwise identically."""

    def test_numpy_backend_replays_subtrees_in_python(self):
        st_ref, u_ref, k_ref = make_heat_problem((32, 32), seed=7)
        st_ref.run(12, k_ref, mode="split_pointer", compiled_walk=False,
                   dt_threshold=2, space_thresholds=(8, 8))
        ref = u_ref.snapshot(st_ref.cursor)

        st_w, u_w, k_w = make_heat_problem((32, 32), seed=7)
        report = st_w.run(12, k_w, mode="split_pointer", compiled_walk=True,
                          dt_threshold=2, space_thresholds=(8, 8))
        assert report.subtree_tasks > 0  # the plan really was coarse
        assert np.array_equal(u_w.snapshot(st_w.cursor), ref)

    def test_no_cc_degrades_cleanly(self, monkeypatch):
        """With the toolchain hidden, ``auto`` resolves to split_pointer
        and the auto rule keeps compiled_walk off — the run must succeed
        and match the C-planned result bitwise (same points, same
        arithmetic).  This is the REPRO_NO_CC CI leg's contract."""
        st_ref, u_ref, k_ref = make_heat_problem((32, 32), seed=9)
        st_ref.run(10, k_ref, dt_threshold=2)
        ref = u_ref.snapshot(st_ref.cursor)

        monkeypatch.setenv("REPRO_NO_CC", "1")
        from repro.compiler.pipeline import clear_cache

        clear_cache()
        try:
            st_n, u_n, k_n = make_heat_problem((32, 32), seed=9)
            report = st_n.run(10, k_n, dt_threshold=2)
            assert report.mode == "split_pointer"
            assert report.subtree_tasks == 0
            assert np.array_equal(u_n.snapshot(st_n.cursor), ref)
        finally:
            monkeypatch.delenv("REPRO_NO_CC")
            clear_cache()

    def test_fuse_leaves_off_disables_delegation(self):
        stencil, u, kern = make_heat_problem((24, 24))
        problem = stencil.prepare(12, kern)
        options = RunOptions(
            mode="split_pointer",
            compiled_walk=True,
            fuse_leaves=False,
            dt_threshold=2,
            space_thresholds=(6, 6),
        )
        plan = build_plan(problem, options)
        assert all(r.walk is None for r in iter_base_serial(plan))


EXECUTORS = ("serial", "threads", "dag")


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
@pytest.mark.parametrize("name", available_apps())
def test_all_apps_compiled_walk_equals_per_leaf(name):
    """Every registered app: compiled-walk plans must reproduce the
    per-leaf C path bit for bit, under every executor."""
    ref_app = build(name, "tiny")
    ref_app.run(dt_threshold=2, mode="c", compiled_walk=False)
    ref = ref_app.result()

    for executor in EXECUTORS:
        app = build(name, "tiny")
        app.run(
            executor=executor,
            mode="c",
            n_workers=None if executor == "serial" else 3,
            dt_threshold=2,
        )
        assert np.array_equal(app.result(), ref), (
            f"{name}: compiled walk under {executor!r} diverged from the "
            f"per-leaf C path"
        )


@pytest.mark.skipif(not has_c_backend(), reason="no C compiler")
@pytest.mark.parametrize("boundary", ["periodic", "neumann", "dirichlet"])
def test_heat_boundary_kinds_walk_equals_per_leaf(boundary):
    sizes, T = (29, 23), 12
    st_w, u_w, k_w = make_heat_problem(sizes, boundary=boundary, seed=5)
    st_w.run(T, k_w, mode="c", dt_threshold=2, space_thresholds=(5, 5))
    st_p, u_p, k_p = make_heat_problem(sizes, boundary=boundary, seed=5)
    st_p.run(T, k_p, mode="c", dt_threshold=2, space_thresholds=(5, 5),
             compiled_walk=False)
    assert np.array_equal(
        u_w.snapshot(st_w.cursor), u_p.snapshot(st_p.cursor)
    ), f"compiled walk diverged from per-leaf under {boundary}"
