"""Tests for zoid geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.trap.zoid import Zoid, full_grid_zoid


class TestBasics:
    def test_full_grid(self):
        z = full_grid_zoid(2, 6, (8, 10))
        assert z.height == 4
        assert z.dims == ((0, 8, 0, 0), (0, 10, 0, 0))
        assert z.well_defined()

    def test_widths_and_uprightness(self):
        # Shrinking zoid: bottom 10, top 10 - 2*3 = 4.
        z = Zoid(0, 3, ((0, 10, 1, -1),))
        assert z.bottom_len(0) == 10
        assert z.top_len(0) == 4
        assert z.width(0) == 10
        assert z.upright(0)

    def test_inverted(self):
        z = Zoid(0, 3, ((0, 4, -1, 1),))
        assert z.top_len(0) == 10
        assert not z.upright(0)

    def test_minimal_upright_triangle(self):
        z = Zoid(0, 2, ((0, 4, 1, -1),))  # top length 0
        assert z.minimal(0)
        assert z.is_minimal()

    def test_minimal_inverted_triangle(self):
        z = Zoid(0, 2, ((3, 3, -1, 1),))  # bottom length 0
        assert z.minimal(0)

    def test_non_minimal(self):
        z = Zoid(0, 2, ((0, 10, 0, 0),))
        assert not z.minimal(0)

    def test_ill_defined_zero_height(self):
        assert not Zoid(0, 0, ((0, 4, 0, 0),)).well_defined()

    def test_ill_defined_negative_base(self):
        assert not Zoid(0, 3, ((0, 2, 1, -1),)).well_defined()  # top = -4

    def test_bounds_at(self):
        z = Zoid(0, 3, ((0, 10, 1, -1),))
        assert z.bounds_at(0) == ((0, 10),)
        assert z.bounds_at(2) == ((2, 8),)


class TestVolume:
    def test_box_volume(self):
        z = Zoid(0, 4, ((0, 5, 0, 0), (0, 3, 0, 0)))
        assert z.volume() == 4 * 5 * 3

    def test_triangle_volume(self):
        z = Zoid(0, 3, ((0, 6, 1, -1),))  # lengths 6, 4, 2
        assert z.volume() == 12

    @given(
        dt=st.integers(min_value=1, max_value=4),
        base=st.integers(min_value=1, max_value=6),
        dxa=st.integers(min_value=-1, max_value=1),
        dxb=st.integers(min_value=-1, max_value=1),
        base2=st.integers(min_value=1, max_value=5),
    )
    def test_volume_matches_point_enumeration(self, dt, base, dxa, dxb, base2):
        z = Zoid(0, dt, ((0, base, dxa, dxb), (0, base2, 0, 0)))
        assert z.volume() == sum(1 for _ in z.points())


class TestSignature:
    def test_translation_invariance(self):
        a = Zoid(0, 3, ((0, 10, 1, -1),))
        b = Zoid(7, 10, ((100, 110, 1, -1),))
        assert a.signature() == b.signature()

    def test_distinguishes_slopes(self):
        a = Zoid(0, 3, ((0, 10, 1, -1),))
        b = Zoid(0, 3, ((0, 10, -1, 1),))
        assert a.signature() != b.signature()

    def test_replace_dim(self):
        z = Zoid(0, 3, ((0, 10, 0, 0), (0, 5, 0, 0)))
        z2 = z.replace_dim(1, (1, 4, 1, -1))
        assert z2.dims[1] == (1, 4, 1, -1)
        assert z2.dims[0] == z.dims[0]
