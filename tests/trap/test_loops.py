"""Tests for the LOOPS baseline, including the shell partition."""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trap.loops import _shell_boxes
from tests.conftest import make_heat_problem, run_reference


class TestShellBoxes:
    @given(
        sizes=st.lists(st.integers(min_value=2, max_value=9), min_size=1,
                       max_size=3).map(tuple),
        halo=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_property(self, sizes, halo):
        lo = tuple(min(halo, n) for n in sizes)
        hi = tuple(max(n - halo, 0) for n in sizes)
        if any(l >= h for l, h in zip(lo, hi)):
            return  # degenerate: no interior; loops handle separately
        boxes = _shell_boxes(sizes, lo, hi)
        counts: dict = {}
        for b_lo, b_hi in boxes:
            for pt in product(*[range(a, b) for a, b in zip(b_lo, b_hi)]):
                counts[pt] = counts.get(pt, 0) + 1
        exterior = [
            pt
            for pt in product(*[range(n) for n in sizes])
            if not all(l <= p < h for p, l, h in zip(pt, lo, hi))
        ]
        assert sorted(counts) == sorted(exterior)
        assert all(c == 1 for c in counts.values())

    def test_no_shell_when_box_is_grid(self):
        assert _shell_boxes((4, 4), (0, 0), (4, 4)) == []


class TestLoopExecution:
    def test_serial_loops_match_reference(self):
        sizes, T = (17, 13), 6
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        st_.run(T, k, algorithm="serial_loops")
        assert np.array_equal(u.snapshot(st_.cursor), ref)

    def test_parallel_loops_match_reference(self):
        sizes, T = (17, 13), 6
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        st_.run(T, k, algorithm="loops", n_workers=3)
        assert np.array_equal(u.snapshot(st_.cursor), ref)

    def test_modulo_everywhere_matches(self):
        from repro.compiler.pipeline import compile_kernel
        from repro.trap.loops import run_loops

        sizes, T = (11, 9), 5
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        problem = st_.prepare(T, k)
        compiled = compile_kernel(problem, "split_pointer")
        run_loops(problem, compiled, modulo_everywhere=True)
        final_level = problem.t_end - 1
        assert np.array_equal(u.data[final_level % u.slots], ref)

    def test_tiny_grid_all_boundary(self):
        # Grid smaller than the halo: no interior box at all.
        sizes, T = (2, 2), 3
        ref = run_reference(sizes, T)
        st_, u, k = make_heat_problem(sizes)
        st_.run(T, k, algorithm="serial_loops")
        assert np.array_equal(u.snapshot(st_.cursor), ref)
