"""Walker correctness for deep stencils (depth 2, higher slopes).

The wave equation's depth-2 dependence and slopes > 1 stress the
dependency-order argument differently from the depth-1 heat kernels: a
point reads two time levels back, and influence cones widen faster than
one cell per step.
"""

from collections import Counter
from itertools import product as iproduct

import pytest
from hypothesis import given, settings, strategies as st

from repro.trap.plan import iter_base_serial
from repro.trap.walker import WalkOptions, decompose, walk_spec_for
from repro.trap.zoid import full_grid_zoid


def _collect(plan, sizes):
    updates = Counter()
    for region in iter_base_serial(plan):
        for t, pt in region.zoid().points():
            true = tuple(p % n for p, n in zip(pt, sizes))
            updates[(t, true)] += 1
    return updates


@given(
    n=st.integers(min_value=4, max_value=32),
    T=st.integers(min_value=1, max_value=10),
    sigma=st.integers(min_value=1, max_value=3),
    depth=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, deadline=None)
def test_exact_cover_any_depth_slope(n, T, sigma, depth):
    """Every output level [depth, depth+T) updated exactly once, for any
    stencil depth and slope."""
    spec = walk_spec_for((n,), (sigma,), (-sigma,), (sigma,))
    opts = WalkOptions(dt_threshold=1, space_thresholds=(0,), hyperspace=True)
    plan = decompose(full_grid_zoid(depth, depth + T, (n,)), spec, opts)
    updates = _collect(plan, (n,))
    expected = Counter(
        ((t, (x,)) for t in range(depth, depth + T) for x in range(n))
    )
    assert updates == expected


@pytest.mark.parametrize("sigma", [1, 2])
def test_dependency_order_depth2(sigma):
    """Serial order validity with reads reaching back 2 levels: when
    (t, x) is updated, (t-1, x +- sigma) and (t-2, x +- 2 sigma) exist."""
    n, T, depth = 24, 8, 2
    spec = walk_spec_for((n,), (sigma,), (-sigma,), (sigma,))
    opts = WalkOptions(dt_threshold=1, space_thresholds=(0,), hyperspace=True)
    plan = decompose(full_grid_zoid(depth, depth + T, (n,)), spec, opts)

    done: set = set()
    for region in iter_base_serial(plan):
        for t, (x,) in region.zoid().points():
            xt = x % n
            for back in (1, 2):
                if t - back < depth:
                    continue  # initial levels
                reach = sigma * back
                for d in range(-reach, reach + 1):
                    nb = (xt + d) % n
                    assert (t - back, nb) in done, (
                        f"({t},{xt}) before input ({t - back},{nb})"
                    )
            done.add((t, xt))


def test_2d_wave_cover():
    """2D depth-2 wave-style stencil: exact cover through hyperspace cuts."""
    n, T, depth = 10, 6, 2
    spec = walk_spec_for((n, n), (1, 1), (-1, -1), (1, 1))
    opts = WalkOptions(
        dt_threshold=1, space_thresholds=(0, 0), hyperspace=True
    )
    plan = decompose(full_grid_zoid(depth, depth + T, (n, n)), spec, opts)
    updates = _collect(plan, (n, n))
    expected = Counter(
        (t, pt)
        for t in range(depth, depth + T)
        for pt in iproduct(range(n), range(n))
    )
    assert updates == expected
