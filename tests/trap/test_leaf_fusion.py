"""Fused leaf clones vs per-step clone execution.

The ``split_pointer`` backend's ``leaf``/``leaf_boundary`` clones run a
base region's whole time loop inside generated code (three-address body,
scratch-pool temporaries, blockwise halo snapshots).  Fusion must be
invisible: for any zoid the fused clone must produce exactly the grid
the per-step clones produce.  A hypothesis test drives randomized zoids
(slopes, heights, boxes straddling the periodic seam) straight through
``run_base_region`` both ways, and a registry sweep checks every app
end-to-end under every executor against the per-step reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import available_apps, build
from repro.compiler.pipeline import compile_kernel
from repro.trap.executor import run_base_region
from repro.trap.plan import BaseRegion
from tests.conftest import make_heat_problem

T_MAX = 8  # time window prepared for region-level tests


def _fresh_compiled(sizes, boundary):
    """A fresh heat problem compiled in split_pointer mode; returns the
    PochoirArray (whose raw slotted buffer we compare) and the kernel."""
    stencil, u, kern = make_heat_problem(sizes, boundary=boundary, seed=11)
    problem = stencil.prepare(T_MAX, kern)
    return u, compile_kernel(problem, "split_pointer")


def _run_region(sizes, boundary, region, fused):
    u, compiled = _fresh_compiled(sizes, boundary)
    if not fused:
        compiled = compiled.without_fused_leaves()
    run_base_region(region, compiled)
    return u.data.copy()


@st.composite
def _zoids(draw, interior):
    """A random valid zoid over a random small grid.

    Boundary zoids may start anywhere in virtual coordinates (straddling
    or wholly past the periodic seam); interior zoids keep every read of
    the slope-shifted box in-domain, as the planner guarantees.  Extents
    are linear in the step, so endpoint checks cover every step.
    """
    ndim = draw(st.integers(1, 2))
    sizes = tuple(draw(st.integers(6, 12)) for _ in range(ndim))
    ta = draw(st.integers(1, 3))
    h = draw(st.integers(1, 4))
    dims = []
    for n in sizes:
        for _ in range(40):
            lo = draw(st.integers(1 if interior else -n, n - 2))
            width = draw(st.integers(1, n - 2 if interior else n))
            dlo = draw(st.integers(-1, 1))
            dhi = draw(st.integers(-1, 1))
            hi, flo, fhi = lo + width, lo + dlo * (h - 1), lo + width + dhi * (h - 1)
            if fhi - flo < 0:
                continue
            if interior and not (
                min(lo, flo) >= 1 and max(hi, fhi) <= n - 1
            ):
                continue
            if not interior and not (
                -n <= min(lo, flo) and max(hi, fhi) - min(lo, flo) <= n
            ):
                continue
            dims.append((lo, hi, dlo, dhi))
            break
        else:
            dims.append((1, 2, 0, 0))
    return sizes, BaseRegion(ta, ta + h, tuple(dims), interior=interior)


class TestRandomZoids:
    # derandomize pins hypothesis' RNG so a red run reproduces exactly
    # (same zoids, same order) on any machine or CI rerun.
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(_zoids(interior=True))
    def test_interior_leaf_matches_per_step(self, case):
        sizes, region = case
        fused = _run_region(sizes, "periodic", region, fused=True)
        steps = _run_region(sizes, "periodic", region, fused=False)
        assert np.array_equal(fused, steps)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        _zoids(interior=False),
        st.sampled_from(["periodic", "neumann", "dirichlet"]),
    )
    def test_boundary_leaf_matches_per_step(self, case, boundary):
        sizes, region = case
        fused = _run_region(sizes, boundary, region, fused=True)
        steps = _run_region(sizes, boundary, region, fused=False)
        assert np.array_equal(fused, steps)

    def test_periodic_leaf_accepts_wrapped_home_range(self):
        # mod-remap snapshots are exact for any virtual box: the leaf
        # must run (not decline) a seam-straddling region.
        u, compiled = _fresh_compiled((8,), "periodic")
        region = BaseRegion(1, 3, ((-2, 3, 0, 0),), interior=False)
        assert compiled.leaf_boundary(
            region.ta, region.tb, (-2,), (3,), (0,), (0,)
        )

    def test_clip_leaf_declines_wrapped_home_range(self):
        # clip snapshots are only exact for in-domain home boxes; the
        # generated prologue must return False so the caller falls back.
        u, compiled = _fresh_compiled((8,), "neumann")
        assert not compiled.leaf_boundary(1, 3, (-2,), (3,), (0,), (0,))
        assert compiled.leaf_boundary(1, 3, (0,), (8,), (0,), (0,))


EXECUTORS = ("serial", "threads", "dag")


@pytest.mark.parametrize("name", available_apps())
def test_all_apps_fused_equals_per_step(name):
    """Every registered app, every executor: fused leaves on (default)
    must reproduce the per-step clone path bit for bit."""
    ref_app = build(name, "tiny")
    ref_app.run(dt_threshold=2, fuse_leaves=False)
    ref = ref_app.result()
    for executor in EXECUTORS:
        app = build(name, "tiny")
        app.run(
            executor=executor,
            n_workers=None if executor == "serial" else 3,
            dt_threshold=2,
        )
        assert np.array_equal(app.result(), ref), (
            f"{name}: fused leaves under {executor!r} diverged from the "
            f"per-step clone path"
        )
