"""Tests for base-case coarsening heuristics."""

from repro.trap.coarsening import (
    default_dt_threshold,
    default_space_thresholds,
    paper_thresholds,
    uncoarsened,
)


def test_defaults_cover_dimensions():
    for ndim in (1, 2, 3, 4, 5):
        sizes = (64,) * ndim
        thr = default_space_thresholds(ndim, sizes)
        assert len(thr) == ndim
        assert all(t >= 1 for t in thr)
        assert default_dt_threshold(ndim) >= 1


def test_defaults_clamped_to_grid():
    thr = default_space_thresholds(2, (16, 16))
    assert all(t <= 16 for t in thr)


def test_unit_stride_kept_wide_for_3d():
    thr = default_space_thresholds(3, (1024, 1024, 1024))
    assert thr[-1] > thr[0]  # paper: never cut the unit-stride dimension


def test_paper_constants_verbatim():
    assert paper_thresholds(2) == ((100, 100), 5)
    space, dt = paper_thresholds(3)
    assert space == (3, 3, 1000) and dt == 3


def test_uncoarsened_all_zero():
    space, dt = uncoarsened(3)
    assert space == (0, 0, 0) and dt == 1
