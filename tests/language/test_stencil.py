"""Tests for the Stencil object: registration, preparation, execution."""

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import PeriodicBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import RunOptions, Stencil

HEAT_1D = Shape.from_cells([(1, 0), (0, 0), (0, 1), (0, -1)])


def simple_1d(n=16, shape=HEAT_1D):
    u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
    st = Stencil(1, shape)
    st.register_array(u)
    k = Kernel(
        1, lambda t, x: u(t + 1, x) << 0.25 * u(t, x - 1) + 0.5 * u(t, x)
        + 0.25 * u(t, x + 1)
    )
    u.set_initial(np.arange(float(n)))
    return st, u, k


class TestRegistration:
    def test_dim_mismatch_rejected(self):
        st = Stencil(2)
        with pytest.raises(SpecificationError, match="2-D"):
            st.register_array(PochoirArray("u", (4,)))

    def test_size_mismatch_rejected(self):
        st = Stencil(1)
        st.register_array(PochoirArray("u", (4,)))
        with pytest.raises(SpecificationError, match="share spatial sizes"):
            st.register_array(PochoirArray("v", (5,)))

    def test_duplicate_name_rejected(self):
        st = Stencil(1)
        st.register_array(PochoirArray("u", (4,)))
        with pytest.raises(SpecificationError, match="twice"):
            st.register_array(PochoirArray("u", (4,)))

    def test_const_array_name_collision_rejected(self):
        st = Stencil(1)
        st.register_array(PochoirArray("u", (4,)))
        with pytest.raises(SpecificationError, match="in use"):
            st.register_const_array(ConstArray("u", np.zeros(4)))

    def test_shape_dim_mismatch_rejected(self):
        with pytest.raises(SpecificationError):
            Stencil(2, HEAT_1D)

    def test_no_arrays_rejected(self):
        st = Stencil(1, HEAT_1D)
        k = Kernel(1, lambda t, x: None)
        with pytest.raises(SpecificationError, match="no arrays"):
            st.prepare(1, k)


class TestPrepare:
    def test_time_levels(self):
        st, u, k = simple_1d()
        p = st.prepare(5, k)
        assert (p.t_start, p.t_end) == (1, 6)

    def test_depth_capacity_checked(self):
        # Depth-2 shape needs 3 slots; a default array has only 2.
        shape = Shape.from_cells([(1, 0), (0, 0), (-1, 0)])
        u = PochoirArray("u", (8,)).register_boundary(PeriodicBoundary())
        st = Stencil(1, shape)
        st.register_array(u)
        k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) + u(t - 1, x))
        with pytest.raises(SpecificationError, match="time slots"):
            st.prepare(1, k)

    def test_kernel_dim_mismatch(self):
        st, u, k1 = simple_1d()
        k2 = Kernel(2, lambda t, x, y: None)
        with pytest.raises(SpecificationError, match="2-D"):
            st.prepare(1, k2)

    def test_negative_steps_rejected(self):
        st, u, k = simple_1d()
        with pytest.raises(SpecificationError):
            st.prepare(-1, k)

    def test_shape_inferred_when_undeclared(self):
        st, u, k = simple_1d(shape=None)
        st.shape = None
        p = st.prepare(1, k)
        assert p.shape.slopes == (1,)


class TestRun:
    def test_zero_steps_noop(self):
        st, u, k = simple_1d()
        before = u.snapshot(0)
        report = st.run(0, k)
        assert report.points_updated == 0
        assert np.array_equal(u.snapshot(0), before)

    def test_resume_equals_single_run(self):
        st1, u1, k1 = simple_1d()
        st1.run(10, k1)
        one_shot = u1.snapshot(10)

        st2, u2, k2 = simple_1d()
        st2.run(4, k2)
        st2.run(6, k2)
        assert st2.cursor == 10
        assert np.array_equal(u2.snapshot(10), one_shot)

    def test_report_fields(self):
        st, u, k = simple_1d()
        rep = st.run(4, k)
        assert rep.algorithm == "trap"
        assert rep.points_updated == 16 * 4
        assert rep.base_cases >= 1
        assert rep.t_start == 1 and rep.t_end == 5
        assert rep.points_per_second > 0

    def test_kwarg_overrides(self):
        st, u, k = simple_1d()
        rep = st.run(2, k, algorithm="serial_loops", mode="interp")
        assert rep.algorithm == "serial_loops"
        assert rep.mode == "interp"

    def test_phase1_algorithm_option(self):
        st, u, k = simple_1d()
        rep = st.run(2, k, algorithm="phase1")
        assert rep.algorithm == "phase1"
        assert st.cursor == 2


class TestRunOptions:
    def test_unknown_algorithm(self):
        with pytest.raises(SpecificationError, match="algorithm"):
            RunOptions(algorithm="magic")

    def test_unknown_mode(self):
        with pytest.raises(SpecificationError, match="mode"):
            RunOptions(mode="llvm")

    def test_unknown_executor(self):
        with pytest.raises(SpecificationError, match="executor"):
            RunOptions(executor="gpu")

    def test_params_flow_to_kernel(self):
        from repro.expr.nodes import Param

        n = 8
        u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
        st = Stencil(1)
        st.register_array(u)
        k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) * Param("decay"))
        u.set_initial(np.ones(n))
        st.set_param("decay", 0.5)
        st.run(2, k)
        assert np.allclose(u.snapshot(2), 0.25)
