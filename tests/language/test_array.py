"""Tests for PochoirArray: time windows, accessors, symbolic building."""

import numpy as np
import pytest

from repro.errors import BoundaryError, KernelError, SpecificationError
from repro.expr.nodes import Assign
from repro.language.array import ConstArray, GridAccess, PochoirArray
from repro.language.boundary import ConstantBoundary, PeriodicBoundary
from repro.language.kernel import make_axes


class TestConstruction:
    def test_basic(self):
        u = PochoirArray("u", (4, 6))
        assert u.sizes == (4, 6)
        assert u.slots == 2
        assert u.data.shape == (2, 4, 6)

    def test_depth_two_gets_three_slots(self):
        u = PochoirArray("u", (4,), depth=2)
        assert u.slots == 3

    @pytest.mark.parametrize("bad", ["", "not valid", "1u"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(SpecificationError):
            PochoirArray(bad, (4,))

    def test_bad_sizes_rejected(self):
        with pytest.raises(SpecificationError):
            PochoirArray("u", ())
        with pytest.raises(SpecificationError):
            PochoirArray("u", (0,))

    def test_bad_depth_rejected(self):
        with pytest.raises(SpecificationError):
            PochoirArray("u", (4,), depth=0)


class TestConcreteAccess:
    def test_set_get_roundtrip(self):
        u = PochoirArray("u", (4,))
        u[0, 2] = 7.0
        assert u[0, 2] == 7.0
        assert u(0, 2) == 7.0  # concrete call is a read

    def test_time_window_enforced(self):
        u = PochoirArray("u", (4,))
        u[0, 0] = 1.0
        u[1, 0] = 2.0
        u[2, 0] = 3.0  # overwrote slot of level 0
        with pytest.raises(SpecificationError, match="not live"):
            u.get(0, (0,))
        assert u[1, 0] == 2.0
        assert u[2, 0] == 3.0

    def test_future_read_rejected(self):
        u = PochoirArray("u", (4,))
        with pytest.raises(SpecificationError, match="not live"):
            u.get(5, (0,))

    def test_off_domain_concrete_access_rejected(self):
        u = PochoirArray("u", (4,))
        with pytest.raises(BoundaryError):
            u[0, 9] = 1.0
        with pytest.raises(BoundaryError):
            u.get(0, (9,))

    def test_set_initial_and_snapshot(self):
        u = PochoirArray("u", (3, 3))
        vals = np.arange(9.0).reshape(3, 3)
        u.set_initial(vals)
        assert np.array_equal(u.snapshot(0), vals)

    def test_set_initial_shape_mismatch(self):
        u = PochoirArray("u", (3, 3))
        with pytest.raises(SpecificationError, match="shape"):
            u.set_initial(np.zeros((2, 2)))

    def test_fill_initial(self):
        u = PochoirArray("u", (3, 4))
        u.fill_initial(lambda i, j: 10 * i + j)
        assert u[0, 2, 3] == 23.0


class TestCheckedAccess:
    def test_read_at_in_domain(self):
        u = PochoirArray("u", (4,))
        u[0, 1] = 5.0
        assert u.read_at(0, (1,)) == 5.0

    def test_read_at_off_domain_uses_boundary(self):
        u = PochoirArray("u", (4,)).register_boundary(ConstantBoundary(9.0))
        assert u.read_at(0, (-1,)) == 9.0
        assert u.read_at(0, (4,)) == 9.0

    def test_read_at_off_domain_without_boundary_raises(self):
        u = PochoirArray("u", (4,))
        with pytest.raises(BoundaryError, match="no\\s+boundary"):
            u.read_at(0, (-1,))

    def test_periodic_read_at(self):
        u = PochoirArray("u", (4,)).register_boundary(PeriodicBoundary())
        u[0, 3] = 2.5
        assert u.read_at(0, (-1,)) == 2.5
        assert u.read_at(0, (7,)) == 2.5

    def test_register_boundary_type_checked(self):
        u = PochoirArray("u", (4,))
        with pytest.raises(SpecificationError):
            u.register_boundary(lambda *a: 0.0)  # not a Boundary


class TestSymbolicAccess:
    def test_symbolic_call_builds_access(self):
        u = PochoirArray("u", (4, 4))
        t, x, y = make_axes(2)
        node = u(t + 1, x - 1, y + 2)
        assert isinstance(node, GridAccess)
        assert node.dt == 1
        assert node.offsets == (-1, 2)

    def test_write_via_lshift(self):
        u = PochoirArray("u", (4,))
        t, x = make_axes(1)
        st = u(t + 1, x) << u(t, x)
        assert isinstance(st, Assign)
        assert st.target.array == "u" and st.target.dt == 1

    def test_write_off_home_rejected(self):
        u = PochoirArray("u", (4,))
        t, x = make_axes(1)
        with pytest.raises(KernelError, match="home cell"):
            u(t + 1, x + 1) << u(t, x)

    def test_wrong_arity_rejected(self):
        u = PochoirArray("u", (4, 4))
        t, x, y = make_axes(2)
        with pytest.raises(KernelError, match="subscripts"):
            u(t, x)

    def test_time_axis_required_first(self):
        u = PochoirArray("u", (4,))
        t, x = make_axes(1)
        with pytest.raises(KernelError, match="time axis"):
            u(x, x)

    def test_axis_order_enforced(self):
        u = PochoirArray("u", (4, 4))
        t, x, y = make_axes(2)
        with pytest.raises(KernelError, match="declaration order"):
            u(t, y, x)

    def test_constant_spatial_subscript_rejected(self):
        u = PochoirArray("u", (4,))
        t, x = make_axes(1)
        with pytest.raises(KernelError, match="bare constant"):
            u(t, 3)


class TestConstArray:
    def test_concrete_read(self):
        c = ConstArray("c", np.array([1.0, 2.0, 3.0]))
        assert c(1) == 2.0

    def test_clamped_read(self):
        c = ConstArray("c", np.array([1.0, 2.0, 3.0]))
        assert c.read((-5,)) == 1.0
        assert c.read((99,)) == 3.0

    def test_symbolic_read_any_affine(self):
        c = ConstArray("c", np.arange(8.0))
        t, x = make_axes(1)
        node = c(t + x - 2)  # multi-axis affine is fine for const arrays
        from repro.expr.nodes import ConstArrayRead

        assert isinstance(node, ConstArrayRead)

    def test_arity_checked(self):
        c = ConstArray("c", np.zeros((2, 2)))
        t, x = make_axes(1)
        with pytest.raises(KernelError):
            c(x)
