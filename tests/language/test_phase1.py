"""Tests for the Phase-1 checked interpreter (the template library)."""

import numpy as np
import pytest

from repro.errors import ShapeViolationError
from repro import (
    Kernel,
    PeriodicBoundary,
    PochoirArray,
    Shape,
    Stencil,
    run_phase1,
)


def test_matches_direct_numpy_reference():
    """Phase 1 equals a hand-rolled NumPy update for the periodic 1D heat."""
    n, T = 12, 5
    u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
    st = Stencil(1)
    st.register_array(u)
    k = Kernel(
        1,
        lambda t, x: u(t + 1, x)
        << 0.25 * u(t, x - 1) + 0.5 * u(t, x) + 0.25 * u(t, x + 1),
    )
    init = np.random.default_rng(0).random(n)
    u.set_initial(init)
    run_phase1(st, T, k)

    v = init.copy()
    for _ in range(T):
        v = 0.25 * np.roll(v, 1) + 0.5 * v + 0.25 * np.roll(v, -1)
    assert np.allclose(u.snapshot(T), v, rtol=0, atol=0)


def test_shape_violation_detected():
    """An access outside the declared shape raises ShapeViolationError —
    the compliance check the Pochoir Guarantee is built on."""
    n = 8
    shape = Shape.from_cells([(1, 0), (0, 0), (0, 1)])  # no (0,-1)!
    u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
    st = Stencil(1, shape)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) + u(t, x - 1))
    u.set_initial(np.zeros(n))
    with pytest.raises(ShapeViolationError):
        run_phase1(st, 1, k)


def test_phase2_rejects_what_phase1_rejects():
    """The same undeclared-cell program is rejected statically by Phase 2:
    both phases enforce the same contract."""
    n = 8
    shape = Shape.from_cells([(1, 0), (0, 0), (0, 1)])
    u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
    st = Stencil(1, shape)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x) + u(t, x - 1))
    u.set_initial(np.zeros(n))
    with pytest.raises(ShapeViolationError):
        st.run(1, k)


def test_cursor_advances():
    n = 8
    u = PochoirArray("u", (n,)).register_boundary(PeriodicBoundary())
    st = Stencil(1)
    st.register_array(u)
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x))
    u.set_initial(np.ones(n))
    run_phase1(st, 3, k)
    assert st.cursor == 3
    run_phase1(st, 2, k)
    assert st.cursor == 5
