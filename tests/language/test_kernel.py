"""Tests for Kernel construction and tracing."""

import pytest

from repro.errors import KernelError
from repro.language.array import PochoirArray
from repro.language.kernel import Kernel, make_axes


def test_make_axes_names_and_positions():
    t, x, y, z = make_axes(3)
    assert t.is_time
    assert (x.name, x.position) == ("x", 0)
    assert (y.name, y.position) == ("y", 1)
    assert (z.name, z.position) == ("z", 2)


def test_make_axes_high_dims():
    axes = make_axes(6)
    assert axes[-1].name == "x5"


def test_make_axes_zero_rejected():
    with pytest.raises(KernelError):
        make_axes(0)


def test_build_is_cached():
    u = PochoirArray("u", (8,))
    calls = []

    def body(t, x):
        calls.append(1)
        return u(t + 1, x) << u(t, x)

    k = Kernel(1, body)
    b1 = k.build()
    b2 = k.build()
    assert b1 is b2
    assert len(calls) == 1


def test_single_statement_coerced_to_list():
    u = PochoirArray("u", (8,))
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x))
    assert len(k.build().statements) == 1


def test_non_statement_return_rejected():
    u = PochoirArray("u", (8,))
    # Missing '<<': the lambda returns an expression, not a statement.
    k = Kernel(1, lambda t, x: u(t, x) + 1.0)
    with pytest.raises(KernelError, match="statement"):
        k.build()


def test_list_with_non_statement_rejected():
    u = PochoirArray("u", (8,))
    k = Kernel(1, lambda t, x: [u(t + 1, x) << u(t, x), 42])
    with pytest.raises(KernelError, match="forget '<<'"):
        k.build()


def test_empty_list_rejected():
    k = Kernel(1, lambda t, x: [])
    with pytest.raises(KernelError, match="no statements"):
        k.build()


def test_only_lets_rejected():
    from repro.expr.builder import let

    k = Kernel(1, lambda t, x: [let("a", 1.0)])
    with pytest.raises(KernelError, match="no assignment"):
        k.build()


def test_dim_mismatch_detected():
    u = PochoirArray("u", (8, 8))
    t, x = make_axes(1)
    # 1-D kernel touching a 2-D array: the array call itself raises.
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x))
    with pytest.raises(KernelError):
        k.build()


def test_inferred_cells_and_source():
    u = PochoirArray("u", (8,))
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x - 1) + u(t, x + 1))
    built = k.build()
    assert built.inferred_cells()[0] == (0, 0)
    assert "u(t-1, x-1)" in built.source() or "u(t-1, x+1)" in built.source()


def test_kernel_name_default():
    u = PochoirArray("u", (8,))
    k = Kernel(1, lambda t, x: u(t + 1, x) << u(t, x))
    assert k.name == "kernel"  # lambdas get a stable default

    def my_heat(t, x):
        return u(t + 1, x) << u(t, x)

    assert Kernel(1, my_heat).name == "my_heat"
