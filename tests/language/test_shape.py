"""Tests for Pochoir shape declarations."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecificationError
from repro.language.shape import Shape

HEAT_2D = [(1, 0, 0), (0, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, -1), (0, 0, 1)]


class TestConstruction:
    def test_figure6_shape(self):
        s = Shape.from_cells(HEAT_2D)
        assert s.ndim == 2
        assert s.depth == 1
        assert s.slopes == (1, 1)

    def test_home_at_zero_frame(self):
        # Section 2 frame: home at t, reads at t-1.
        s = Shape.from_cells(
            [(0, 0, 0), (-1, 1, 0), (-1, 0, 0), (-1, -1, 0), (-1, 0, 1),
             (-1, 0, -1)]
        )
        assert s.depth == 1
        assert s.slopes == (1, 1)

    def test_two_frames_normalize_identically(self):
        a = Shape.from_cells(HEAT_2D)
        b = Shape.from_cells(
            [(0, 0, 0), (-1, 0, 0), (-1, 1, 0), (-1, -1, 0), (-1, 0, -1),
             (-1, 0, 1)]
        )
        assert set(a.cells) == set(b.cells)

    def test_nonzero_home_spatial_rejected(self):
        with pytest.raises(SpecificationError, match="home cell"):
            Shape.from_cells([(1, 1, 0), (0, 0, 0)])

    def test_future_cell_rejected(self):
        with pytest.raises(SpecificationError, match="future|earlier"):
            Shape.from_cells([(0, 0), (1, 1)])

    def test_same_time_offset_cell_rejected(self):
        # A non-home cell at the home's own time level is read-write hazard.
        with pytest.raises(SpecificationError, match="earlier"):
            Shape.from_cells([(1, 0), (1, 1)])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            Shape.from_cells([])

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(SpecificationError, match="arity"):
            Shape.from_cells([(1, 0, 0), (0, 0)])

    def test_duplicate_cells_deduplicated(self):
        s = Shape.from_cells([(1, 0), (0, 1), (0, 1)])
        assert len(s) == 2


class TestProperties:
    def test_depth_two(self):
        s = Shape.from_cells([(1, 0), (0, 0), (-1, 0)])
        assert s.depth == 2

    def test_slope_ceil_division(self):
        # offset 3 two steps back -> slope ceil(3/2) == 2
        s = Shape.from_cells([(1, 0), (-1, 3)])
        assert s.slopes == (2,)

    def test_min_max_offsets(self):
        s = Shape.from_cells([(1, 0, 0), (0, -2, 0), (0, 0, 3)])
        lo, hi = s.min_max_offsets
        assert lo == (-2, 0)
        assert hi == (0, 3)

    def test_contains(self):
        s = Shape.from_cells(HEAT_2D)
        assert s.contains(-1, (1, 0))
        assert not s.contains(-1, (1, 1))

    def test_union(self):
        a = Shape.from_cells([(1, 0), (0, 1)])
        b = Shape.from_cells([(1, 0), (0, -1)])
        u = a.union(b)
        assert u.contains(-1, (1,)) and u.contains(-1, (-1,))

    def test_union_dim_mismatch(self):
        a = Shape.from_cells([(1, 0)])
        b = Shape.from_cells([(1, 0, 0)])
        with pytest.raises(SpecificationError):
            a.union(b)

    def test_infer_from(self):
        s = Shape.infer_from([(-1, 1), (-1, -1)], ndim=1)
        assert s.cells[0] == (0, 0)
        assert s.slopes == (1,)


@given(
    cells=st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=-1),
            st.integers(min_value=-4, max_value=4),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_slopes_bound_offsets(cells):
    """For every cell, |offset| <= slope * (-dt): the slope definition."""
    shape = Shape.from_cells([(0, 0)] + [(dt, o) for dt, o in cells])
    (sigma,) = shape.slopes
    for dt, off in cells:
        assert abs(off) <= sigma * (-dt)
    # And the slope is tight: some cell achieves ceil equality.
    if sigma > 0:
        assert any(
            -((-abs(off)) // (-dt)) == sigma for dt, off in cells
        )
