"""Concurrent shared-memory attach must not corrupt the tracker shim.

On Python < 3.13, ``PochoirArray.__setstate__`` attaches to a shared
segment by temporarily replacing ``resource_tracker.register`` with a
no-op (there is no ``track=False``).  That replacement is process-global
state: without the module lock, two interleaved attaches could restore
the *shim* as the permanent ``register`` (leaking tracker registrations
forever) or register a mere attachment (the tracker then unlinks live
state at exit).  This test forces the legacy path, widens the race
window with a sleep inside the constructor, attaches from many threads,
and asserts the tracker function survives intact.
"""

from __future__ import annotations

import pickle
import threading
import time
from multiprocessing import resource_tracker, shared_memory

import numpy as np
import pytest

from repro import PochoirArray


@pytest.fixture
def legacy_untracked_shm(monkeypatch):
    """Force the pre-3.13 attach path with an enlarged race window."""

    real = shared_memory.SharedMemory

    class LegacySharedMemory(real):
        def __init__(self, name=None, create=False, size=0, **kwargs):
            if "track" in kwargs:
                raise TypeError("track is not supported")  # pre-3.13
            if not create:
                time.sleep(0.002)  # widen the patch/attach/restore window
            super().__init__(name=name, create=create, size=size)

    monkeypatch.setattr(shared_memory, "SharedMemory", LegacySharedMemory)
    return real


def test_threaded_attach_preserves_resource_tracker(legacy_untracked_shm):
    orig_register = resource_tracker.register
    arr = PochoirArray("u", (8, 8))
    arr.set_initial(np.arange(64, dtype=np.float64).reshape(8, 8))
    arr.share()
    try:
        blob = pickle.dumps(arr)
        errors: list[BaseException] = []
        attached: list[PochoirArray] = []
        lock = threading.Lock()

        def attach_many() -> None:
            try:
                for _ in range(10):
                    clone = pickle.loads(blob)
                    assert np.array_equal(clone.data, arr.data)
                    with lock:
                        attached.append(clone)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=attach_many) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(attached) == 80
        # The invariant the lock protects: after every attach settles,
        # the real tracker function is back — not a leaked no-op shim.
        assert resource_tracker.register is orig_register
        for clone in attached:
            clone.data = np.array(clone.data)  # drop the buffer view
            clone._shm.close()
    finally:
        arr.unshare()
        assert resource_tracker.register is orig_register
