"""Tests for boundary functions (each kind, both protocols)."""

import numpy as np
import pytest

from repro.errors import BoundaryError
from repro.language.boundary import (
    ConstantBoundary,
    DirichletBoundary,
    MixedBoundary,
    NeumannBoundary,
    PeriodicBoundary,
    PythonBoundary,
    ZeroBoundary,
)

STORE = {
    (0, (0, 0)): 1.0,
    (0, (0, 2)): 3.0,
    (0, (2, 0)): 5.0,
    (0, (2, 2)): 7.0,
}
SIZES = (3, 3)


def reader(t, pt):
    return STORE.get((t, pt), 0.0)


class TestPeriodic:
    def test_wraps_negative(self):
        b = PeriodicBoundary()
        assert b.resolve(reader, 0, (-1, 0), SIZES) == 5.0  # -1 % 3 == 2

    def test_wraps_positive(self):
        b = PeriodicBoundary()
        assert b.resolve(reader, 0, (3, 5), SIZES) == 3.0  # (0, 2)

    def test_vector_map(self):
        b = PeriodicBoundary()
        out = b.map_index(np.array([-1, 0, 3]), 3, 0)
        assert list(out) == [2, 0, 0]

    def test_is_remap(self):
        assert PeriodicBoundary().is_index_remap
        assert not PeriodicBoundary().is_fill


class TestNeumann:
    def test_clamps(self):
        b = NeumannBoundary()
        assert b.resolve(reader, 0, (-5, 0), SIZES) == 1.0
        assert b.resolve(reader, 0, (9, 9), SIZES) == 7.0

    def test_vector_map(self):
        out = NeumannBoundary().map_index(np.array([-2, 1, 7]), 3, 0)
        assert list(out) == [0, 1, 2]


class TestConstantAndDirichlet:
    def test_constant(self):
        b = ConstantBoundary(4.5)
        assert b.resolve(reader, 0, (-1, -1), SIZES) == 4.5
        assert b.fill_value(10) == 4.5

    def test_zero_helper(self):
        assert ZeroBoundary().fill_value(0) == 0.0

    def test_dirichlet_time_varying(self):
        # Figure 11(a): return 100 + 0.2 * t
        b = DirichletBoundary(base=100.0, per_step=0.2)
        assert b.resolve(reader, 5, (-1, 0), SIZES) == 101.0
        assert b.fill_value(10) == 102.0

    def test_fill_kinds_not_remaps(self):
        with pytest.raises(BoundaryError):
            ConstantBoundary(1.0).map_index(np.array([0]), 3, 0)
        with pytest.raises(BoundaryError):
            PeriodicBoundary().fill_value(0)


class TestMixed:
    def test_cylinder(self):
        b = MixedBoundary(modes=("periodic", "clamp"))
        # x wraps, y clamps
        assert b.resolve(reader, 0, (-1, 5), SIZES) == 7.0  # (2, 2)

    def test_vector_maps_per_dim(self):
        b = MixedBoundary(modes=("periodic", "clamp"))
        assert list(b.map_index(np.array([-1]), 3, 0)) == [2]
        assert list(b.map_index(np.array([-1]), 3, 1)) == [0]

    def test_bad_mode_rejected(self):
        with pytest.raises(BoundaryError):
            MixedBoundary(modes=("bouncy",))


class TestPythonBoundary:
    def test_arbitrary_function(self):
        # Figure 11(b)-style Neumann written as user code.
        def bv(arr, t, X, Y):
            nx = min(max(X, 0), arr.size(1) - 1)
            ny = min(max(Y, 0), arr.size(0) - 1)
            return arr.get(t, nx, ny)

        b = PythonBoundary(bv)
        assert b.resolve(reader, 0, (-3, 2), SIZES) == 3.0

    def test_size_convention_matches_paper(self):
        # a.size(1) is x (slowest), a.size(0) is y (unit stride) in 2D.
        sizes = (3, 7)

        def bv(arr, t, X, Y):
            assert arr.size(1) == 3 and arr.size(0) == 7
            return 0.0

        PythonBoundary(bv).resolve(reader, 0, (-1, 0), sizes)

    def test_off_domain_get_rejected(self):
        def bv(arr, t, X, Y):
            return arr.get(t, -1, 0)  # off-domain read inside boundary fn

        with pytest.raises(BoundaryError, match="in-domain"):
            PythonBoundary(bv).resolve(reader, 0, (-1, 0), SIZES)

    def test_non_scalar_return_rejected(self):
        with pytest.raises(BoundaryError, match="non-scalar"):
            PythonBoundary(lambda arr, t, X, Y: "hot").resolve(
                reader, 0, (-1, 0), SIZES
            )

    def test_not_vectorizable(self):
        b = PythonBoundary(lambda arr, t, X, Y: 0.0)
        assert not b.is_index_remap and not b.is_fill
