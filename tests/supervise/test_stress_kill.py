"""SIGKILL random worker subprocesses mid-run, repeatedly, and demand
bitwise equality with the serial result every single time.

This is the supervised executor's core promise stated as a test: worker
processes are disposable.  An external SIGKILL is indistinguishable
from a segfault in generated code (same watchdog path: dead process,
kill-all, rollback, respawn, re-run), so surviving a killer thread
proves the isolation boundary for every crash class at once.

A kill can land anywhere in the session's lifetime — mid-dispatch,
mid-kernel, or in the teardown drain after the last task completed (in
which case no respawn is needed and none happens).  Every landing spot
must leave the grid bitwise correct; the test additionally insists that
across its attempts at least one kill provably hit *compute* (respawn
counters moved), so the stress cannot silently degenerate into only
exercising teardown.
"""

from __future__ import annotations

import os
import random
import signal
import threading

import numpy as np
import pytest

from repro import CheckpointPolicy
from repro.apps.registry import build
from repro.supervise import live_worker_pids

from tests.conftest import has_c_backend

MODES = ["split_pointer"] + (["c"] if has_c_backend() else [])
MIN_RUNS = 3  # every case stress-runs at least this often
MAX_RUNS = 8  # ... and keeps going until a kill lands mid-compute


class _Killer:
    """Background thread that SIGKILLs one random live worker as soon as
    a supervised session is up, mimicking an OOM killer or an operator's
    stray ``kill -9``."""

    def __init__(self):
        self.killed = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            pids = live_worker_pids()
            if pids:
                try:
                    os.kill(random.choice(pids), signal.SIGKILL)
                    self.killed += 1
                except (ProcessLookupError, PermissionError):
                    pass
                return
            if self._stop.wait(0.002):
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("app_name", ["heat2d", "life", "psa"])
def test_random_worker_sigkill_never_corrupts(app_name, mode, tmp_path):
    ref_app = build(app_name, scale="tiny")
    ref_app.run(executor="serial", mode=mode)
    ref = ref_app.result()

    random.seed(f"{app_name}:{mode}")  # reproducible kill victims
    kills = respawns = 0
    for i in range(MAX_RUNS):
        app = build(app_name, scale="tiny")
        killer = _Killer()
        try:
            # Checkpoint blocks multiply the supervised compute windows,
            # so the instant-kill usually lands inside one of them.
            report = app.run(
                executor="procs",
                n_workers=2,
                mode=mode,
                checkpoint=CheckpointPolicy(
                    dir=tmp_path / f"run{i}", every_dt=2
                ),
            )
        finally:
            killer.stop()
        kills += killer.killed
        assert report.executor == "procs"
        if report.workers_respawned:
            respawns += 1
            assert "supervise:worker-crashed->respawned" in report.degradations
        np.testing.assert_array_equal(app.result(), ref)
        if i + 1 >= MIN_RUNS and respawns > 0:
            break
    assert kills > 0, "the killer never fired; the stress proved nothing"
    assert respawns > 0, "no kill landed mid-compute across all runs"
