"""The grid-as-view refactor: PochoirArray state can migrate between
private memory and shared-memory segments, and pickling a shared array
transfers a descriptor, not the data."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import PochoirArray, ZeroBoundary


@pytest.fixture()
def arr():
    a = PochoirArray("u", (8, 8)).register_boundary(ZeroBoundary())
    a.set_initial(np.arange(64, dtype=np.float64).reshape(8, 8))
    yield a
    a.unshare()  # idempotent; never leaves segments behind on failure


def test_share_preserves_contents_and_bumps_token(arr):
    before = arr.data.copy()
    token0 = arr.cache_token
    assert not arr.is_shared
    arr.share()
    assert arr.is_shared
    np.testing.assert_array_equal(arr.data, before)
    # Any kernel compiled against the private buffer is now stale: the
    # compile cache must key on a new token.
    assert arr.cache_token != token0


def test_share_is_idempotent(arr):
    arr.share()
    token1 = arr.cache_token
    data1 = arr.data
    arr.share()
    assert arr.data is data1
    assert arr.cache_token == token1


def test_unshare_returns_to_private_memory(arr):
    arr.share()
    arr.data[...] = 7.0
    token_shared = arr.cache_token
    arr.unshare()
    assert not arr.is_shared
    assert arr.cache_token != token_shared
    np.testing.assert_array_equal(arr.data, np.full(arr.data.shape, 7.0))
    # Private again: writable without any segment backing it.
    arr.data[0, 0, 0] = -1.0


def test_unshare_without_share_is_noop(arr):
    token0 = arr.cache_token
    arr.unshare()
    assert arr.cache_token == token0


def test_pickle_of_shared_array_is_zero_copy_descriptor(arr):
    arr.share()
    blob = pickle.dumps(arr)
    # The payload must carry the segment name, not 64 float64s.
    assert len(blob) < arr.data.nbytes

    attached = pickle.loads(blob)
    np.testing.assert_array_equal(attached.data, arr.data)
    # Same physical memory: writes through either view are visible in
    # the other (this is what lets workers execute in place).
    attached.data[0, 3, 3] = 1234.5
    assert arr.data[0, 3, 3] == 1234.5
    assert not attached._shm_owner


def test_pickle_of_private_array_carries_data(arr):
    clone = pickle.loads(pickle.dumps(arr))
    np.testing.assert_array_equal(clone.data, arr.data)
    clone.data[0, 0, 0] = 99.0  # independent copy
    assert arr.data[0, 0, 0] != 99.0
