"""The supervised out-of-process executor: bitwise equivalence with
serial runs, real-SIGSEGV isolation, hang watchdog, and graceful
degradation when supervision is unavailable."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RunOptions, SuperviseOptions, SpecificationError
from repro.apps.registry import build
from repro.resilience import faults

from tests.conftest import has_c_backend

MODES = ["split_pointer"] + (["c"] if has_c_backend() else [])

_REFS: dict[tuple, np.ndarray] = {}


def reference(app_name: str, mode: str) -> np.ndarray:
    key = (app_name, mode)
    if key not in _REFS:
        app = build(app_name, scale="tiny")
        app.run(executor="serial", mode=mode)
        _REFS[key] = app.result()
    return _REFS[key]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestOptions:
    def test_procs_is_a_valid_executor(self):
        RunOptions(executor="procs")

    def test_supervise_implies_procs_under_auto(self):
        opts = RunOptions(supervise=SuperviseOptions())
        executor, _ = opts.resolve_executor()
        assert executor == "procs"

    def test_supervise_must_be_supervise_options(self):
        with pytest.raises(SpecificationError):
            RunOptions(supervise={"heartbeat_timeout": 1.0})

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(heartbeat_interval=0.0),
            dict(heartbeat_timeout=-1.0),
            dict(task_deadline_floor=0.0),
            dict(max_block_retries=-1),
            dict(retry_backoff=-0.5),
            dict(attach_timeout=0.0),
            dict(start_method="fork-bomb"),
        ],
    )
    def test_supervise_options_validate(self, kwargs):
        with pytest.raises(SpecificationError):
            SuperviseOptions(**kwargs)

    def test_deadline_scales_with_volume(self):
        sup = SuperviseOptions(
            task_deadline_floor=10.0, task_deadline_per_mpoint=5.0
        )
        assert sup.deadline_for(0) == 10.0
        assert sup.deadline_for(2_000_000) == 20.0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("app_name", ["heat2d", "life", "psa"])
def test_supervised_bitwise_identical_to_serial(app_name, mode):
    app = build(app_name, scale="tiny")
    report = app.run(executor="procs", n_workers=2, mode=mode)
    assert report.executor == "procs"
    assert report.n_workers == 2
    assert report.workers_respawned == 0
    assert report.tasks_retried == 0
    assert not [d for d in report.degradations if d.startswith("supervise")]
    np.testing.assert_array_equal(
        app.result(), reference(app_name, mode)
    )


@pytest.mark.parametrize("mode", MODES)
def test_worker_segfault_never_kills_the_driver(mode):
    """A real SIGSEGV (null write in native code) inside a worker: the
    driver survives, respawns the worker set, rolls the block back, and
    finishes bitwise identical to serial."""
    faults.install(faults.FaultPlan.parse("worker.segfault:1"))
    app = build("heat2d", scale="tiny")
    report = app.run(executor="procs", n_workers=2, mode=mode)
    assert report.executor == "procs"
    assert report.workers_respawned >= 2  # the whole set, not one
    assert report.tasks_retried >= 1
    degr = set(report.degradations)
    assert "supervise:worker-crashed->respawned" in degr
    assert "supervise:block-rolled-back" in degr
    np.testing.assert_array_equal(app.result(), reference("heat2d", mode))


def test_worker_hang_trips_the_watchdog():
    """A hung worker (sleeping forever in the task loop) is detected by
    the per-task deadline, killed, and the block re-run."""
    faults.install(faults.FaultPlan.parse("worker.hang:1"))
    sup = SuperviseOptions(
        task_deadline_floor=2.0,
        task_deadline_per_mpoint=2.0,
        heartbeat_timeout=60.0,  # isolate the deadline path
        retry_backoff=0.0,
    )
    app = build("heat2d", scale="tiny")
    report = app.run(
        executor="procs", n_workers=2, mode="split_pointer", supervise=sup
    )
    assert report.executor == "procs"
    assert report.workers_respawned >= 2
    degr = set(report.degradations)
    assert "supervise:worker-hung->respawned" in degr
    assert "supervise:block-rolled-back" in degr
    np.testing.assert_array_equal(
        app.result(), reference("heat2d", "split_pointer")
    )


def test_repeated_segfaults_exhaust_retry_budget():
    """Every dispatch segfaults: after max_block_retries respawns the
    run must fail loudly, not loop forever."""
    from repro.errors import ExecutionError

    faults.install(faults.FaultPlan.parse("worker.segfault:*"))
    sup = SuperviseOptions(max_block_retries=1, retry_backoff=0.0)
    app = build("heat2d", scale="tiny")
    with pytest.raises(ExecutionError, match="retry budget exhausted"):
        app.run(
            executor="procs", n_workers=2, mode="split_pointer",
            supervise=sup,
        )


def test_shm_unavailable_degrades_to_dag():
    """The shm.attach fault stands in for a host without usable shared
    memory: the run must complete in-process with a recorded note."""
    faults.install(faults.FaultPlan.parse("shm.attach:1"))
    app = build("heat2d", scale="tiny")
    report = app.run(executor="procs", n_workers=2, mode="split_pointer")
    assert report.executor == "dag"
    assert "supervise:shm-unavailable->dag" in report.degradations
    np.testing.assert_array_equal(
        app.result(), reference("heat2d", "split_pointer")
    )


def test_degrade_then_recover_same_process():
    """A degraded run must not poison the next one: after a forced
    fallback the following supervised run works normally (the grids were
    unshared and the kernels recompiled against consistent buffers)."""
    faults.install(faults.FaultPlan.parse("shm.attach:1"))
    app = build("heat2d", scale="tiny")
    report = app.run(executor="procs", n_workers=2, mode="split_pointer")
    assert report.executor == "dag"
    faults.clear()

    app2 = build("heat2d", scale="tiny")
    report2 = app2.run(executor="procs", n_workers=2, mode="split_pointer")
    assert report2.executor == "procs"
    np.testing.assert_array_equal(
        app2.result(), reference("heat2d", "split_pointer")
    )


def test_supervised_run_with_checkpointing(tmp_path):
    """Supervision composes with PR 7's checkpoint runner: each time
    block executes out of process and the boundaries still land."""
    from repro import CheckpointPolicy

    app = build("heat2d", scale="tiny")
    report = app.run(
        executor="procs",
        n_workers=2,
        mode="split_pointer",
        checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=3),
    )
    assert report.executor == "procs"
    assert report.checkpoints_written > 0
    np.testing.assert_array_equal(
        app.result(), reference("heat2d", "split_pointer")
    )
