"""The TCP front-end: framed protocol, client robustness, replay.

The networked contract mirrors the in-process one bit for bit: a job
submitted through :class:`StencilClient` must leave the local arrays
exactly as ``stencil.run`` would, no matter how many wire attempts it
took.  Around that core: health probes answer, deadlines shed typed,
``ServerBusy`` crosses the wire with its backpressure fields, malformed
or oversized frames poison one connection but never the server, and the
bounded result journal deduplicates retried idempotency keys so a job
executes exactly once.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro import RunOptions
from repro.apps.heat import build_heat
from repro.serve import (
    DeadlineExceeded,
    JobExpired,
    LoopbackServer,
    ServeOptions,
    ServerBusy,
    StencilClient,
)
from repro.serve import protocol
from repro.serve.protocol import T_ERROR, T_RESULT, T_SUBMIT
from tests.conftest import has_c_backend

MODE = "c" if has_c_backend() else "split_pointer"


def _build(seed):
    return build_heat((16, 16), 4, seed=seed)


def _ref(seed):
    app = _build(seed)
    app.run(mode=MODE)
    return app.result()


def _client(lb, **kw):
    kw.setdefault("request_timeout", 60.0)
    kw.setdefault("backoff", 0.02)
    return StencilClient(lb.host, lb.port, **kw)


def _raw(lb, timeout=15.0):
    sock = socket.create_connection((lb.host, lb.port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def _submit_frame(app, key, *, deadline=None, options=None):
    problem = app.stencil.prepare(app.steps, app.kernel)
    frame = protocol.encode_frame(
        T_SUBMIT,
        protocol.pack(
            {
                "key": key,
                "deadline": deadline,
                "problem": problem,
                "options": options,
            }
        ),
    )
    return problem, frame


# -- round trips are bitwise-identical to local runs ----------------------


def test_loopback_submit_matches_local_run():
    with LoopbackServer(ServeOptions(max_batch=4, batch_window=0.02)) as lb:
        app = _build(0)
        with _client(lb) as client:
            report = client.submit(
                app.stencil, app.steps, app.kernel, RunOptions(mode=MODE)
            )
        assert np.array_equal(app.result(), _ref(0))
        assert report.transport == "tcp"
        assert report.attempts == 1
        assert not report.replayed
        assert report.mode == MODE
        assert lb.server.stats["completed"] == 1
        assert lb.net.stats["requests"] == 1


def test_submit_many_pipelines_into_one_batched_dispatch():
    K = 4
    with LoopbackServer(ServeOptions(max_batch=8, batch_window=0.2)) as lb:
        apps = [_build(s) for s in range(K)]
        with _client(lb) as client:
            reports = client.submit_many(
                [(a.stencil, a.steps, a.kernel) for a in apps],
                RunOptions(mode=MODE),
            )
        # Remote options arrive as distinct unpickled objects per
        # request; value-keyed batching must still group the jobs.
        assert lb.server.stats["batches"] == 1
        assert lb.server.stats["batched_jobs"] == K
        for rep in reports:
            assert rep.batch_size == K
            assert rep.transport == "tcp"
        for s, app in enumerate(apps):
            assert np.array_equal(app.result(), _ref(s))


def test_health_probe():
    with LoopbackServer() as lb:
        with _client(lb) as client:
            health = client.health()
        assert health["accepting"] is True
        assert health["draining"] is False
        assert health["pending_jobs"] == 0
        assert health["retry_after"] > 0.0
        assert health["stats"]["completed"] == 0
        assert health["net_stats"]["health_probes"] == 1


# -- deadlines and backpressure over the wire -----------------------------


def test_remote_deadline_sheds_queued_job_typed():
    # The window is far wider than the job's budget: the deadline timer
    # must shed it while queued, answering a typed "expired" error.
    with LoopbackServer(ServeOptions(max_batch=8, batch_window=1.0)) as lb:
        app = _build(0)
        _, frame = _submit_frame(app, "deadline-key", deadline=0.05)
        sock = _raw(lb)
        try:
            sock.sendall(frame)
            ftype, payload = protocol.recv_frame(sock)
        finally:
            sock.close()
        assert ftype == T_ERROR
        msg = protocol.unpack(payload)
        assert msg["code"] == "expired"
        assert msg["key"] == "deadline-key"
        assert lb.server.stats["expired"] == 1
        assert lb.server.stats["completed"] == 0


def test_server_busy_crosses_the_wire_with_fields():
    opts = ServeOptions(max_batch=8, batch_window=0.3, max_pending=1)
    with LoopbackServer(opts) as lb:
        first, second = _build(0), _build(1)
        _, f1 = _submit_frame(first, "busy-1")
        _, f2 = _submit_frame(second, "busy-2")
        sock = _raw(lb)
        try:
            sock.sendall(f1 + f2)
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_ERROR
            busy = protocol.unpack(payload)
            assert busy["key"] == "busy-2"
            assert busy["code"] == "busy"
            assert busy["pending_jobs"] == 1
            assert busy["pending_points"] > 0
            assert busy["retry_after"] > 0.0
            # The accepted job is not a casualty: its result follows.
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_RESULT
            assert protocol.unpack(payload)["key"] == "busy-1"
        finally:
            sock.close()


def test_client_retries_busy_until_accepted():
    opts = ServeOptions(max_batch=1, batch_window=0.01, max_pending=1)
    with LoopbackServer(opts) as lb:
        apps = [_build(s) for s in range(3)]
        with _client(lb, retries=10) as client:
            reports = client.submit_many(
                [(a.stencil, a.steps, a.kernel) for a in apps],
                RunOptions(mode=MODE),
            )
        assert len(reports) == 3
        # Busy rejections were retried, not re-executed: exactly once.
        assert lb.server.stats["completed"] == 3
        for s, app in enumerate(apps):
            assert np.array_equal(app.result(), _ref(s))
        assert any(r.attempts > 1 for r in reports)
        assert any("net:retried" in r.degradations for r in reports)


def test_client_deadline_exhaustion_is_typed():
    with LoopbackServer() as lb:
        app = _build(0)
        with _client(lb, retries=10, backoff=0.2) as client:
            with pytest.raises(DeadlineExceeded):
                # A budget this small expires in the retry machinery
                # before any server answer can land.
                client.submit(
                    app.stencil, app.steps, app.kernel, timeout=0.0005
                )


def test_client_connection_refused_after_retries():
    # Bind-then-close yields a port with no listener.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    app = _build(0)
    with StencilClient(
        "127.0.0.1", port, retries=2, backoff=0.01, request_timeout=10.0
    ) as client:
        with pytest.raises(ConnectionError):
            client.submit(app.stencil, app.steps, app.kernel)


# -- malformed input poisons one connection, never the server -------------


def _assert_poisoned_then_healthy(lb, bad_bytes):
    sock = _raw(lb)
    try:
        sock.sendall(bad_bytes)
        ftype, payload = protocol.recv_frame(sock)
        assert ftype == T_ERROR
        assert protocol.unpack(payload)["code"] == "protocol"
        # The connection is dead: the server hung up after answering.
        with pytest.raises((ConnectionError, TimeoutError, OSError)):
            protocol.recv_frame(sock)
    finally:
        sock.close()
    # The server survived: a fresh connection serves a real job.
    app = _build(0)
    with _client(lb) as client:
        client.submit(app.stencil, app.steps, app.kernel, RunOptions(mode=MODE))
    assert np.array_equal(app.result(), _ref(0))
    assert lb.net.stats["protocol_errors"] >= 1


def test_garbage_magic_poisons_connection_only():
    with LoopbackServer() as lb:
        _assert_poisoned_then_healthy(lb, b"GET / HTTP/1.1\r\n\r\n" * 2)


def test_oversized_frame_poisons_connection_only():
    with LoopbackServer(max_frame=64 * 1024) as lb:
        huge = protocol.HEADER.pack(protocol.MAGIC, T_SUBMIT, 2**31 - 1)
        _assert_poisoned_then_healthy(lb, huge)


def test_garbage_payload_in_valid_frame_poisons_connection_only():
    with LoopbackServer() as lb:
        frame = protocol.encode_frame(T_SUBMIT, b"\x80\x05 not a pickle")
        _assert_poisoned_then_healthy(lb, frame)


def test_poisoned_connection_leaves_neighbor_untouched():
    with LoopbackServer(ServeOptions(max_batch=4, batch_window=0.1)) as lb:
        app = _build(0)
        _, good_frame = _submit_frame(app, "neighbor-good")
        healthy, poisoned = _raw(lb), _raw(lb)
        try:
            # The healthy connection's job is queued, THEN the neighbor
            # sends garbage; its death must not disturb the queued job.
            healthy.sendall(good_frame)
            poisoned.sendall(b"\x00" * 64)
            ftype, payload = protocol.recv_frame(poisoned)
            assert ftype == T_ERROR
            ftype, payload = protocol.recv_frame(healthy)
            assert ftype == T_RESULT
            assert protocol.unpack(payload)["key"] == "neighbor-good"
        finally:
            healthy.close()
            poisoned.close()
        assert lb.server.stats["completed"] == 1


# -- idempotent replay from the bounded journal ---------------------------


def test_duplicate_key_replays_without_reexecution():
    with LoopbackServer(ServeOptions(max_batch=1, batch_window=0.01)) as lb:
        app = _build(0)
        _, frame = _submit_frame(app, "replay-key")
        sock = _raw(lb)
        try:
            sock.sendall(frame)
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_RESULT
            first = protocol.unpack(payload)
            assert first["replayed"] is False
            # Same idempotency key again (a client retry): the recorded
            # response replays — the job does NOT run twice.
            sock.sendall(frame)
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_RESULT
            second = protocol.unpack(payload)
        finally:
            sock.close()
        assert second["replayed"] is True
        assert second["arrays"] == first["arrays"]
        assert lb.server.stats["completed"] == 1
        assert lb.net.stats["requests"] == 2
        assert lb.net.stats["replayed"] == 1


def test_journal_is_bounded_lru():
    opts = ServeOptions(max_batch=1, batch_window=0.01)
    with LoopbackServer(opts, journal_limit=2) as lb:
        frames = {}
        sock = _raw(lb)
        try:
            for i, key in enumerate(["j-1", "j-2", "j-3"]):
                _, frames[key] = _submit_frame(_build(i), key)
                sock.sendall(frames[key])
                ftype, _ = protocol.recv_frame(sock)
                assert ftype == T_RESULT
            assert lb.server.stats["completed"] == 3
            # "j-1" was evicted by the 2-entry bound: its retry is a
            # fresh execution (the frame carries pristine input state,
            # so the result is still correct), not a replay.
            sock.sendall(frames["j-1"])
            ftype, _ = protocol.recv_frame(sock)
            assert ftype == T_RESULT
        finally:
            sock.close()
        assert lb.server.stats["completed"] == 4
        assert lb.net.stats["replayed"] == 0


def test_busy_rejection_is_not_journaled():
    # A pre-execution rejection must not be replayed to a retry: the
    # retry deserves a fresh admission decision.
    opts = ServeOptions(max_batch=8, batch_window=0.2, max_pending=1)
    with LoopbackServer(opts) as lb:
        blocker, rejected = _build(0), _build(1)
        _, f1 = _submit_frame(blocker, "adm-1")
        _, f2 = _submit_frame(rejected, "adm-2")
        sock = _raw(lb)
        try:
            sock.sendall(f1 + f2)
            ftype, payload = protocol.recv_frame(sock)
            assert protocol.unpack(payload)["code"] == "busy"
            # Drain the blocker's result; capacity is now free.
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_RESULT
            # The SAME key retries and is admitted this time.
            sock.sendall(f2)
            ftype, payload = protocol.recv_frame(sock)
            assert ftype == T_RESULT
            msg = protocol.unpack(payload)
            assert msg["key"] == "adm-2"
            assert msg["replayed"] is False
        finally:
            sock.close()
        assert lb.server.stats["completed"] == 2
