"""Graceful drain on SIGTERM: accepted jobs finish, futures resolve.

A server process with installed signal handlers receives SIGTERM while
jobs are queued/running.  The contract: stop admitting, flush every
pending group, finish every accepted job, resolve every awaiting
future — then exit cleanly.  Verified end to end in a subprocess
(real signal delivery, not a handler called by hand).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

_SERVER = """
import asyncio, os, signal, sys
sys.path.insert(0, "src")
import numpy as np
from repro.apps.heat import build_heat
from repro.serve import ServeOptions, ServerClosed, StencilServer

K = 6

async def main():
    apps = [build_heat((20, 20), 10, seed=s) for s in range(K)]
    # A wide window keeps jobs queued (not yet flushed) when the
    # signal lands, so drain must flush them itself.
    opts = ServeOptions(max_batch=64, batch_window=5.0)
    srv = StencilServer(opts)
    await srv.start()
    srv.install_signal_handlers()
    tasks = [
        asyncio.ensure_future(srv.submit(a.stencil, a.steps, a.kernel))
        for a in apps
    ]
    await asyncio.sleep(0)          # let every submit reach its queue
    print("READY", flush=True)      # parent sends SIGTERM now
    reports = await asyncio.gather(*tasks)
    assert len(reports) == K and all(r is not None for r in reports)
    assert all(a.result() is not None for a in apps)
    # Post-drain submissions are rejected, not queued into the void.
    try:
        await srv.submit(apps[0].stencil, apps[0].steps, apps[0].kernel)
    except ServerClosed:
        print("DRAINED", srv.stats["completed"], flush=True)
    else:
        print("NOT_CLOSED", flush=True)

asyncio.run(main())
"""


def test_sigterm_drains_accepted_jobs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src") if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVER],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line == "READY", line
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    except Exception:
        proc.kill()
        raise
    assert proc.returncode == 0, err
    assert "DRAINED 6" in out, (out, err)
