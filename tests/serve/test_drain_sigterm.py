"""Graceful drain on SIGTERM: accepted jobs finish, futures resolve.

A server process with installed signal handlers receives SIGTERM while
jobs are queued/running.  The contract: stop admitting, flush every
pending group, finish every accepted job, resolve every awaiting
future — then exit cleanly.  Verified end to end in a subprocess
(real signal delivery, not a handler called by hand).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

_SERVER = """
import asyncio, os, signal, sys
sys.path.insert(0, "src")
import numpy as np
from repro.apps.heat import build_heat
from repro.serve import ServeOptions, ServerClosed, StencilServer

K = 6

async def main():
    apps = [build_heat((20, 20), 10, seed=s) for s in range(K)]
    # A wide window keeps jobs queued (not yet flushed) when the
    # signal lands, so drain must flush them itself.
    opts = ServeOptions(max_batch=64, batch_window=5.0)
    srv = StencilServer(opts)
    await srv.start()
    srv.install_signal_handlers()
    tasks = [
        asyncio.ensure_future(srv.submit(a.stencil, a.steps, a.kernel))
        for a in apps
    ]
    await asyncio.sleep(0)          # let every submit reach its queue
    print("READY", flush=True)      # parent sends SIGTERM now
    reports = await asyncio.gather(*tasks)
    assert len(reports) == K and all(r is not None for r in reports)
    assert all(a.result() is not None for a in apps)
    # Post-drain submissions are rejected, not queued into the void.
    try:
        await srv.submit(apps[0].stencil, apps[0].steps, apps[0].kernel)
    except ServerClosed:
        print("DRAINED", srv.stats["completed"], flush=True)
    else:
        print("NOT_CLOSED", flush=True)

asyncio.run(main())
"""


def _spawn(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""), "src") if p
    )
    return subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_sigterm_drains_accepted_jobs():
    proc = _spawn(_SERVER)
    try:
        line = proc.stdout.readline().strip()
        assert line == "READY", line
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    except Exception:
        proc.kill()
        raise
    assert proc.returncode == 0, err
    assert "DRAINED 6" in out, (out, err)


# -- the networked variant: SIGTERM with live connected clients -----------

_NET_SERVER = """
import asyncio, sys
sys.path.insert(0, "src")
from repro.serve import ServeOptions, StencilServer, serve_tcp

K = 4

async def main():
    # A wide window keeps remote jobs queued (not yet flushed) when the
    # signal lands, so the drain must flush, run, and ANSWER them.
    srv = StencilServer(ServeOptions(max_batch=64, batch_window=5.0))
    await srv.start()
    net = await serve_tcp(srv, "127.0.0.1", 0)
    net.install_signal_handlers()
    print("PORT", net.port, flush=True)
    while srv.stats["submitted"] < K:
        await asyncio.sleep(0.01)
    print("QUEUED", flush=True)     # parent sends SIGTERM now
    await net.serve_forever()       # released when the drain completes
    print("DRAINED", srv.stats["completed"], flush=True)

asyncio.run(main())
"""


def test_sigterm_drains_networked_clients():
    import threading

    import numpy as np

    from repro.apps.heat import build_heat
    from repro.serve import StencilClient

    K = 4
    proc = _spawn(_NET_SERVER)
    apps = [build_heat((20, 20), 10, seed=s) for s in range(K)]
    outcome = {}

    def call(port):
        try:
            with StencilClient(
                "127.0.0.1", port, request_timeout=90.0
            ) as client:
                outcome["reports"] = client.submit_many(
                    [(a.stencil, a.steps, a.kernel) for a in apps]
                )
        except BaseException as exc:  # surfaced in the main thread
            outcome["error"] = exc

    try:
        line = proc.stdout.readline().split()
        assert line[:1] == ["PORT"], line
        port = int(line[1])
        caller = threading.Thread(target=call, args=(port,))
        caller.start()
        line = proc.stdout.readline().strip()
        assert line == "QUEUED", line
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        caller.join(timeout=120)
        assert not caller.is_alive(), "client never got its answers"
    except Exception:
        proc.kill()
        raise
    # The server finished and ANSWERED every accepted remote job before
    # closing, then exited cleanly.
    assert proc.returncode == 0, err
    assert f"DRAINED {K}" in out, (out, err)
    if "error" in outcome:
        raise outcome["error"]
    reports = outcome["reports"]
    assert len(reports) == K
    refs = [build_heat((20, 20), 10, seed=s) for s in range(K)]
    for r in refs:
        r.run()
    for app, ref in zip(apps, refs):
        assert np.array_equal(app.result(), ref.result())
    for rep in reports:
        assert rep.transport == "tcp"
    # The listener is gone with the process.
    import socket

    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=2).close()
