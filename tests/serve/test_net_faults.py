"""The client×server fault matrix: exactly-once under every wire fault.

Every combination of the ``net.*`` sites (listener flap, torn response
frame, connection drop after execution, slow peer) is armed against a
live loopback endpoint while a retrying client pipelines a batch of
jobs.  The acceptance contract, asserted per combination:

* every job completes with results bitwise-identical to a local run
  (zero silent drops),
* ``server.stats["completed"]`` equals the number of distinct jobs
  (zero duplicate executions across however many wire attempts the
  client needed — retried keys replay from the journal), and
* the server itself never dies: stats stay consistent and the drain on
  teardown is clean.

A final leg arms ``worker.segfault`` *behind* the server (supervised
out-of-process execution), proving an execution-layer fault composes
with the wire ones.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import RunOptions
from repro.apps.heat import build_heat
from repro.resilience import faults
from repro.serve import LoopbackServer, ServeOptions, StencilClient
from tests.conftest import has_c_backend

MODE = "c" if has_c_backend() else "split_pointer"

SITES = ("net.accept", "net.torn", "net.drop", "net.slow")
COMBOS = [
    combo
    for r in range(1, len(SITES) + 1)
    for combo in itertools.combinations(SITES, r)
]


def _build(seed):
    return build_heat((16, 16), 4, seed=seed)


def _refs(n):
    out = []
    for s in range(n):
        app = _build(s)
        app.run(mode=MODE)
        out.append(app.result())
    return out


def _run_jobs(lb, apps, *, retries=8, options=None):
    client = StencilClient(
        lb.host,
        lb.port,
        retries=retries,
        backoff=0.02,
        request_timeout=60.0,
    )
    with client:
        return client.submit_many(
            [(a.stencil, a.steps, a.kernel) for a in apps],
            options if options is not None else RunOptions(mode=MODE),
        )


@pytest.mark.parametrize(
    "combo", COMBOS, ids=["+".join(s.split(".")[1] for s in c) for c in COMBOS]
)
def test_fault_matrix_exactly_once_bitwise(combo):
    K = 3
    with LoopbackServer(ServeOptions(max_batch=8, batch_window=0.05)) as lb:
        try:
            plan = faults.FaultPlan()
            for site in combo:
                plan.add(site, times=1)
            faults.install(plan)
            apps = [_build(s) for s in range(K)]
            reports = _run_jobs(lb, apps)
        finally:
            faults.clear()
        fired = sum(faults.fired(s) for s in combo)  # 0 after clear()
        assert len(reports) == K
        # Zero silent drops, zero duplicate executions: each distinct
        # job ran exactly once, whatever the wire did.
        assert lb.server.stats["submitted"] == K
        assert lb.server.stats["completed"] == K
        assert lb.net.stats["wire_faults"] >= len(combo) - fired
        for rep in reports:
            assert rep.transport == "tcp"
            assert 1 <= rep.attempts <= 9
            if rep.replayed:
                # A replay proves the dedup path: the journal answered
                # the retry of an already-executed job.
                assert rep.attempts > 1
    for app, ref in zip(apps, _refs(K)):
        assert np.array_equal(app.result(), ref)


def test_repeated_faults_under_sustained_load():
    # Every site armed to fire twice against a larger pipelined batch:
    # the retry/replay machinery absorbs eight wire faults in a row.
    K = 4
    with LoopbackServer(ServeOptions(max_batch=8, batch_window=0.05)) as lb:
        try:
            plan = faults.FaultPlan()
            for site in SITES:
                plan.add(site, times=2)
            faults.install(plan)
            apps = [_build(s) for s in range(K)]
            reports = _run_jobs(lb, apps, retries=12)
        finally:
            faults.clear()
        assert len(reports) == K
        assert lb.server.stats["completed"] == K
        assert lb.net.stats["wire_faults"] >= 4
        assert lb.net.stats["replayed"] >= 1
        assert any("net:retried" in r.degradations for r in reports)
    for app, ref in zip(apps, _refs(K)):
        assert np.array_equal(app.result(), ref)


def test_worker_segfault_behind_the_server():
    # An execution-layer fault (a supervised worker dies on a real
    # SIGSEGV) composes with a wire fault on the response path: the
    # supervisor respawns and retries, the journal replays, the caller
    # still sees one bitwise-correct result.
    with LoopbackServer(ServeOptions(max_batch=4, batch_window=0.05)) as lb:
        try:
            plan = faults.FaultPlan()
            plan.add("worker.segfault", times=1)
            plan.add("net.drop", times=1)
            faults.install(plan)
            app = _build(0)
            (report,) = _run_jobs(
                lb, [app], options=RunOptions(mode=MODE, executor="procs")
            )
        finally:
            faults.clear()
        assert lb.server.stats["completed"] == 1
        assert lb.server.stats["unbatched_jobs"] == 1
        assert report.attempts > 1  # net.drop forced a wire retry
        assert "serve:supervised->unbatched" in report.degradations
        assert "supervise:worker-crashed->respawned" in report.degradations
    assert np.array_equal(app.result(), _refs(1)[0])
