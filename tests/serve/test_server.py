"""The serving layer: batched execution equivalence and server control.

The load-bearing guarantee is **bitwise equivalence**: a job served
through a batched compiled dispatch (K problems, one outer-batch-loop
clone call per region) must produce exactly the bytes a direct
``stencil.run`` produces — across apps (heat2d, life, psa: const
arrays, non-periodic boundaries), backends (NumPy and, when a toolchain
exists, C), and batch sizes.  On top of that: admission backpressure
rejects (never drops), drain finishes every accepted job, and the
per-job telemetry fields are populated.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import RunOptions, SpecificationError
from repro.apps.heat import build_heat
from repro.apps.life import build_life
from repro.apps.psa import build_psa
from repro.serve import (
    JobExpired,
    ServeOptions,
    ServerBusy,
    ServerClosed,
    StencilServer,
)
from repro.trap.driver import execute_batch
from tests.conftest import has_c_backend

BATCH_MODES = ["split_pointer"] + (["c"] if has_c_backend() else [])

APP_BUILDERS = {
    "heat2d": lambda seed: build_heat((20, 20), 8, seed=seed),
    "heat2d_dirichlet": lambda seed: build_heat(
        (20, 20), 8, seed=seed, periodic=False
    ),
    "life": lambda seed: build_life(18, 6, seed=seed),
    "psa": lambda seed: build_psa(10, seed=seed),
}


def _finish(app, problem):
    """The post-run bookkeeping Stencil.run (and the server) performs."""
    for arr in problem.arrays.values():
        arr.note_written_through(problem.t_end - 1)
    app.stencil.advance_cursor(problem)


# -- batched execution is bitwise identical ------------------------------


@pytest.mark.parametrize("mode", BATCH_MODES)
@pytest.mark.parametrize("app_name", sorted(APP_BUILDERS))
def test_execute_batch_bitwise_equivalence(app_name, mode):
    K = 3
    build = APP_BUILDERS[app_name]
    apps = [build(seed) for seed in range(K)]
    problems = [a.stencil.prepare(a.steps, a.kernel) for a in apps]
    reports = execute_batch(problems, RunOptions(mode=mode))
    for a, p in zip(apps, problems):
        _finish(a, p)
    refs = [build(seed) for seed in range(K)]
    for r in refs:
        r.run(mode=mode)
    for i, (a, ref) in enumerate(zip(apps, refs)):
        assert np.array_equal(a.result(), ref.result()), (
            f"{app_name} job {i} diverged under batched {mode}"
        )
    for rep in reports:
        assert rep.batch_size == K
        assert rep.mode == mode
        assert not rep.degradations


def test_execute_batch_rejects_mixed_signatures():
    a = build_heat((20, 20), 8, seed=0)
    b = build_heat((24, 24), 8, seed=0)
    with pytest.raises(SpecificationError):
        execute_batch(
            [
                a.stencil.prepare(a.steps, a.kernel),
                b.stencil.prepare(b.steps, b.kernel),
            ],
            RunOptions(mode="split_pointer"),
        )


def test_execute_batch_rejects_checkpoint_options(tmp_path):
    from repro import CheckpointPolicy

    a = build_heat((20, 20), 8, seed=0)
    with pytest.raises(SpecificationError):
        execute_batch(
            [a.stencil.prepare(a.steps, a.kernel)],
            RunOptions(
                mode="split_pointer",
                checkpoint=CheckpointPolicy(dir=tmp_path, every_dt=4),
            ),
        )


# -- the server end to end -----------------------------------------------


def _serve(apps, serve_options=None, run_options=None):
    async def main():
        async with StencilServer(serve_options) as srv:
            reports = await asyncio.gather(
                *(
                    srv.submit(a.stencil, a.steps, a.kernel, run_options)
                    for a in apps
                )
            )
        return srv, reports

    return asyncio.run(main())


@pytest.mark.parametrize("mode", BATCH_MODES)
def test_server_batches_and_matches_direct_runs(mode):
    K = 5
    apps = [build_heat((20, 20), 8, seed=s) for s in range(K)]
    srv, reports = _serve(
        apps,
        ServeOptions(max_batch=8, batch_window=0.05),
        RunOptions(mode=mode),
    )
    assert srv.stats["batches"] == 1
    assert srv.stats["batched_jobs"] == K
    refs = [build_heat((20, 20), 8, seed=s) for s in range(K)]
    for r in refs:
        r.run(mode=mode)
    for a, ref in zip(apps, refs):
        assert np.array_equal(a.result(), ref.result())
    for rep in reports:
        assert rep.batch_size == K
        assert rep.queue_wait >= 0.0
        assert not rep.degradations


def test_server_telemetry_and_registry_hit():
    from repro.autotune import registry
    from repro.autotune.registry import TunedConfig

    app = build_heat((20, 20), 8, seed=0)
    problem = app.stencil.prepare(app.steps, app.kernel)
    mode = BATCH_MODES[-1]
    assert registry.store(
        problem, mode, TunedConfig(space_thresholds=(10, 10), dt_threshold=3)
    )
    try:
        srv, reports = _serve(
            [app],
            ServeOptions(max_batch=1),
            RunOptions(mode=mode, autotune="use"),
        )
        (rep,) = reports
        assert rep.registry_hit
        assert rep.autotune_source == "registry"
        assert rep.batch_size == 1
    finally:
        registry.clear_registry()


def test_server_mixed_signatures_form_separate_batches():
    small = [build_heat((16, 16), 6, seed=s) for s in range(2)]
    large = [build_heat((24, 24), 6, seed=s) for s in range(2)]
    srv, reports = _serve(
        small + large,
        ServeOptions(max_batch=8, batch_window=0.05),
        RunOptions(mode=BATCH_MODES[0]),
    )
    assert srv.stats["batches"] == 2
    assert [r.batch_size for r in reports] == [2, 2, 2, 2]


def test_backpressure_rejects_but_never_drops():
    apps = [build_heat((16, 16), 4, seed=s) for s in range(7)]

    async def main():
        opts = ServeOptions(max_batch=4, batch_window=0.05, max_pending=4)
        async with StencilServer(opts) as srv:
            results = await asyncio.gather(
                *(srv.submit(a.stencil, a.steps, a.kernel) for a in apps),
                return_exceptions=True,
            )
        return srv, results

    srv, results = asyncio.run(main())
    busy = [r for r in results if isinstance(r, ServerBusy)]
    done = [r for r in results if not isinstance(r, BaseException)]
    assert len(busy) == 3
    assert len(done) == 4
    assert srv.stats["rejected"] == 3
    # Rejected is not dropped: nothing was queued, stats balance, and
    # every accepted job produced a report.
    assert srv.stats["completed"] == srv.stats["submitted"] == 4


def test_volume_bound_backpressure():
    apps = [build_heat((16, 16), 4, seed=s) for s in range(3)]
    points = apps[0].stencil.prepare(apps[0].steps, apps[0].kernel).total_points

    async def main():
        opts = ServeOptions(
            max_batch=8,
            batch_window=0.05,
            max_pending_points=2 * points,
        )
        async with StencilServer(opts) as srv:
            return await asyncio.gather(
                *(srv.submit(a.stencil, a.steps, a.kernel) for a in apps),
                return_exceptions=True,
            )

    results = asyncio.run(main())
    assert sum(isinstance(r, ServerBusy) for r in results) == 1
    assert sum(not isinstance(r, BaseException) for r in results) == 2


def test_closed_server_rejects_submissions():
    app = build_heat((16, 16), 4, seed=0)

    async def main():
        srv = StencilServer()
        async with srv:
            await srv.submit(app.stencil, app.steps, app.kernel)
        with pytest.raises(ServerClosed):
            await srv.submit(app.stencil, app.steps, app.kernel)

    asyncio.run(main())


def test_submit_timeout_sheds_queued_job_typed():
    app = build_heat((16, 16), 4, seed=0)

    async def main():
        # The window is wider than the job's budget: the deadline timer
        # sheds it while queued, before any dispatch.
        opts = ServeOptions(max_batch=8, batch_window=0.25)
        async with StencilServer(opts) as srv:
            with pytest.raises(JobExpired) as excinfo:
                await srv.submit(
                    app.stencil, app.steps, app.kernel, timeout=0.05
                )
            assert "serve:expired" in excinfo.value.degradations
            assert srv.stats["expired"] == 1
            assert srv.pending_jobs == 0  # accounting released
            # Capacity freed by the shed job serves the next one.
            rep = await srv.submit(app.stencil, app.steps, app.kernel)
        return srv, rep

    srv, rep = asyncio.run(main())
    assert srv.stats["completed"] == 1
    assert rep.batch_size == 1


def test_nonpositive_timeout_expires_at_admission():
    app = build_heat((16, 16), 4, seed=0)

    async def main():
        async with StencilServer() as srv:
            with pytest.raises(JobExpired):
                await srv.submit(
                    app.stencil, app.steps, app.kernel, timeout=0.0
                )
            assert srv.stats["expired"] == 1
            assert srv.stats["submitted"] == 0  # never queued
        return srv

    srv = asyncio.run(main())
    assert srv.stats["completed"] == 0


def test_server_busy_carries_backpressure_fields():
    apps = [build_heat((16, 16), 4, seed=s) for s in range(2)]

    async def main():
        opts = ServeOptions(max_batch=8, batch_window=0.1, max_pending=1)
        async with StencilServer(opts) as srv:
            first = asyncio.ensure_future(
                srv.submit(apps[0].stencil, apps[0].steps, apps[0].kernel)
            )
            await asyncio.sleep(0)  # the first job reaches its queue
            with pytest.raises(ServerBusy) as excinfo:
                await srv.submit(apps[1].stencil, apps[1].steps, apps[1].kernel)
            busy = excinfo.value
            assert busy.pending_jobs == 1
            assert busy.pending_points > 0
            assert busy.retry_after > 0.0
            await first

    asyncio.run(main())


def test_equal_valued_options_batch_together():
    # Distinct RunOptions objects with equal values must share a batch —
    # this is what lets remote jobs (each unpickling its own options
    # object) reach one batched dispatch.
    apps = [build_heat((16, 16), 4, seed=s) for s in range(2)]

    async def main():
        opts = ServeOptions(max_batch=8, batch_window=0.1)
        async with StencilServer(opts) as srv:
            reports = await asyncio.gather(
                *(
                    srv.submit(
                        a.stencil,
                        a.steps,
                        a.kernel,
                        RunOptions(mode=BATCH_MODES[0]),
                    )
                    for a in apps
                )
            )
        return srv, reports

    srv, reports = asyncio.run(main())
    assert srv.stats["batches"] == 1
    assert [r.batch_size for r in reports] == [2, 2]


def test_supervised_jobs_run_unbatched():
    apps = [build_heat((16, 16), 4, seed=s) for s in range(2)]
    srv, reports = _serve(
        apps,
        ServeOptions(max_batch=4, batch_window=0.05),
        RunOptions(mode=BATCH_MODES[0], executor="procs"),
    )
    assert srv.stats["unbatched_jobs"] == 2
    for rep in reports:
        assert rep.batch_size == 1
        assert "serve:supervised->unbatched" in rep.degradations


def test_no_toolchain_degrades_to_unbatched_numpy(monkeypatch):
    from repro.compiler import codegen_c

    monkeypatch.setattr(codegen_c, "find_c_compiler", lambda: None)
    apps = [build_heat((16, 16), 4, seed=s) for s in range(2)]
    srv, reports = _serve(apps, ServeOptions(max_batch=4, batch_window=0.05))
    refs = [build_heat((16, 16), 4, seed=s) for s in range(2)]
    for r in refs:
        r.run(mode="split_pointer")
    for a, ref in zip(apps, refs):
        assert np.array_equal(a.result(), ref.result())
    for rep in reports:
        assert "serve:no-cc->unbatched-numpy" in rep.degradations
        assert rep.mode == "split_pointer"


def test_serve_options_validation():
    with pytest.raises(SpecificationError):
        ServeOptions(max_batch=0)
    with pytest.raises(SpecificationError):
        ServeOptions(max_pending=0)
    with pytest.raises(SpecificationError):
        ServeOptions(batch_window=-1.0)
    with pytest.raises(SpecificationError):
        from repro import CheckpointPolicy

        ServeOptions(
            run=RunOptions(
                checkpoint=CheckpointPolicy(dir="/tmp/x", every_dt=4)
            )
        )
