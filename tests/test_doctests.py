"""Run the doctests embedded in public-API docstrings.

These examples double as documentation; failing doctests mean the README
style examples have drifted from the code.
"""

import doctest

import pytest

import repro.cachesim.ideal_cache
import repro.language.shape
import repro.language.stencil
import repro.language.kernel
import repro.trap.zoid
import repro.util.tables
import repro.util.timing

MODULES = [
    repro.cachesim.ideal_cache,
    repro.language.shape,
    repro.language.stencil,
    repro.language.kernel,
    repro.trap.zoid,
    repro.util.tables,
    repro.util.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert result.failed == 0, f"{result.failed} doctest failures in {module}"
