"""Setuptools shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package installs in environments whose setuptools predates PEP-660
editable wheels (or that lack the `wheel` package and network access):
``python setup.py develop`` works everywhere ``pip install -e .`` does.
"""

from setuptools import setup

setup()
