"""Conway's Game of Life: gliders on a torus, via the stencil DSL.

A glider translates by (1, 1) every 4 generations; we place one on a
periodic grid, run 4*K generations with the TRAP decomposition, and check
it arrives exactly where theory says — a crisp end-to-end correctness
demonstration for a branchy (non-arithmetic) kernel.

    python examples/life_glider.py
"""

import numpy as np

from repro.apps.life import build_life, life_kernel, life_shape
from repro.language.array import PochoirArray
from repro.language.boundary import PeriodicBoundary
from repro.language.stencil import Stencil

#: The standard glider (moves +1 row, +1 column per 4 generations).
GLIDER = np.array(
    [
        [0, 1, 0],
        [0, 0, 1],
        [1, 1, 1],
    ],
    dtype=np.float64,
)


def main() -> None:
    n = 48
    generations = 4 * 20  # 20 glider periods

    grid = np.zeros((n, n))
    grid[1:4, 1:4] = GLIDER

    u = PochoirArray("u", (n, n)).register_boundary(PeriodicBoundary())
    life = Stencil(2, life_shape(), name="life")
    life.register_array(u)
    u.set_initial(grid)

    report = life.run(generations, life_kernel(u))
    final = u.snapshot(life.cursor)

    shift = generations // 4
    expected = np.zeros((n, n))
    rows = (np.arange(1, 4) + shift) % n
    cols = (np.arange(1, 4) + shift) % n
    expected[np.ix_(rows, cols)] = GLIDER

    print(f"{generations} generations on a {n}x{n} torus "
          f"({report.elapsed:.3f}s, {report.base_cases} base cases)")
    print(f"population: {int(final.sum())} (glider has 5 cells)")
    assert np.array_equal(final, expected), "glider did not translate correctly!"
    print(f"glider translated by ({shift}, {shift}) cells — exactly as theory predicts")

    # Render the neighborhood of the glider's final position.
    r0 = max(0, int(rows[0]) - 1)
    c0 = max(0, int(cols[0]) - 1)
    view = final[r0 : r0 + 6, c0 : c0 + 6]
    print("\nfinal neighborhood:")
    for row in view:
        print("  " + "".join("#" if v else "." for v in row))


if __name__ == "__main__":
    main()
