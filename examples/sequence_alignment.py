"""Sequence alignment as a stencil: the paper's PSA and LCS benchmarks.

Both run on the anti-diagonal "diamond" embedding (time = wavefront
i + j), exercising the DSL's conditional expressions, const arrays, and
multi-array kernels.  Scores are verified against textbook dynamic
programming.

    python examples/sequence_alignment.py
"""

import numpy as np

from repro.apps.lcs import build_lcs, lcs_length, reference_lcs
from repro.apps.psa import alignment_score, build_psa, reference_psa

BASES = "ACGU"


def mutate(seq: np.ndarray, rate: float, rng) -> np.ndarray:
    out = seq.copy()
    hits = rng.random(len(seq)) < rate
    out[hits] = rng.integers(0, 4, size=hits.sum())
    return out


def main() -> None:
    rng = np.random.default_rng(7)
    n = 384

    # Related sequences: b is a 15%-mutated copy of a.
    print(f"aligning related sequences of length {n} (15% mutations)\n")

    lcs_app = build_lcs(n, seed=7)
    a = lcs_app.meta["a"]
    report = lcs_app.run(algorithm="trap")
    got = lcs_length(lcs_app)
    want = reference_lcs(lcs_app.meta["a"], lcs_app.meta["b"])
    print(
        f"LCS  (random pair) : stencil={got}, textbook DP={want} "
        f"({report.elapsed:.3f}s, {report.base_cases} base cases)"
    )
    assert got == want

    psa_app = build_psa(n, seed=7)
    report = psa_app.run(algorithm="trap")
    got_s = alignment_score(psa_app)
    want_s = reference_psa(psa_app.meta["a"], psa_app.meta["b"])
    print(
        f"PSA  (random pair) : stencil={got_s:.1f}, textbook Gotoh={want_s:.1f} "
        f"({report.elapsed:.3f}s)"
    )
    assert abs(got_s - want_s) < 1e-9

    # Expected behaviour on related vs unrelated inputs.
    b_related = mutate(a, 0.15, rng)
    app_rel = build_psa(n, seed=7)
    app_rel.meta["b"] = b_related  # same a; replace b before building? no —
    # build_psa draws internally, so construct directly for the comparison:
    from repro.apps.psa import build_psa as _bp

    def score_pair(seed_a, seed_b):
        app = _bp(n, seed=seed_a)
        return reference_psa(app.meta["a"], mutate(app.meta["a"], seed_b, rng))

    s_related = score_pair(7, 0.15)
    s_unrelated = reference_psa(a, rng.integers(0, 4, size=n))
    print(
        f"\nGotoh score, 15%-mutated copy : {s_related:8.1f}\n"
        f"Gotoh score, unrelated random : {s_unrelated:8.1f}"
    )
    assert s_related > s_unrelated, "related sequences should score higher"
    print("\nrelated >> unrelated, as expected")


if __name__ == "__main__":
    main()
