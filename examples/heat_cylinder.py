"""Heat flow on a cylinder: mixed per-dimension boundary conditions.

Section 4 of the paper motivates the unified boundary treatment with "a
2D cylindrical domain, where one dimension is periodic and the other is
nonperiodic".  This example builds exactly that — periodic around the
circumference (x), Neumann (insulated) along the axis (y) — plus a
time-varying Dirichlet hot rim via a second run with a different
boundary, demonstrating boundary re-registration.

    python examples/heat_cylinder.py
"""

import numpy as np

from repro import (
    DirichletBoundary,
    Kernel,
    MixedBoundary,
    PochoirArray,
    Stencil,
)
from repro.apps.heat import heat_kernel, heat_shape


def main() -> None:
    circumference, length = 128, 96
    u = PochoirArray("u", (circumference, length))
    u.register_boundary(MixedBoundary(modes=("periodic", "clamp")))

    cyl = Stencil(2, heat_shape(2), name="cylinder")
    cyl.register_array(u)
    kern = heat_kernel(u, (0.2, 0.2))

    # A hot stripe wrapped around the cylinder.
    init = np.zeros((circumference, length))
    init[:, length // 3 : length // 3 + 4] = 100.0
    u.set_initial(init)
    total0 = init.sum()

    report = cyl.run(200, kern)
    after = u.snapshot(cyl.cursor)
    print(
        f"cylinder {circumference}x{length}, 200 steps via TRAP "
        f"({report.elapsed:.3f}s, boundary base cases: "
        f"{report.boundary_base_cases}/{report.base_cases})"
    )

    # Insulated ends + periodic wrap conserve total heat exactly-ish.
    drift = abs(after.sum() - total0) / total0
    print(f"heat conservation drift: {drift:.2e} (insulated cylinder)")
    assert drift < 1e-9

    # Periodicity: the solution must be invariant to rotating the initial
    # stripe around the cylinder.
    u.set_initial(np.roll(init, 13, axis=0))
    cyl2 = Stencil(2, heat_shape(2), name="cylinder2")
    u2 = PochoirArray("u2", (circumference, length))
    u2.register_boundary(MixedBoundary(modes=("periodic", "clamp")))
    cyl2.register_array(u2)
    u2.set_initial(np.roll(init, 13, axis=0))
    cyl2.run(200, heat_kernel(u2, (0.2, 0.2)))
    rotated = u2.snapshot(cyl2.cursor)
    assert np.allclose(np.roll(after, 13, axis=0), rotated, atol=1e-12)
    print("rotation equivariance holds (true periodic seam handling)")

    # Re-register a time-varying Dirichlet boundary (Figure 11(a) style)
    # and keep running: the rim now heats up over time.
    u2.register_boundary(DirichletBoundary(base=50.0, per_step=0.25))
    cyl2.run(100, heat_kernel(u2, (0.2, 0.2)))
    reheated = u2.snapshot(cyl2.cursor)
    print(
        f"after 100 more steps with a warming Dirichlet rim: "
        f"mean heat {after.mean():.3f} -> {reheated.mean():.3f}"
    )
    assert reheated.mean() > rotated.mean()


if __name__ == "__main__":
    main()
