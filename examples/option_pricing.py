"""American put option pricing (the paper's APOP benchmark) as a stencil.

Backward induction with an early-exercise max, run through the TRAP
decomposition, then compared with (a) a direct NumPy induction and (b)
the Black-Scholes European put (the American price must dominate it).
Also locates the early-exercise boundary.

    python examples/option_pricing.py
"""

import math

import numpy as np

from repro.apps.apop import build_apop, reference_apop


def black_scholes_put(spot, strike, rate, sigma, maturity):
    """European put value (no early exercise) for comparison."""
    d1 = (np.log(spot / strike) + (rate + 0.5 * sigma**2) * maturity) / (
        sigma * math.sqrt(maturity)
    )
    d2 = d1 - sigma * math.sqrt(maturity)
    from scipy.stats import norm

    return strike * math.exp(-rate * maturity) * norm.cdf(-d2) - spot * norm.cdf(-d1)


def main() -> None:
    n, steps = 8_192, 256
    strike, rate, sigma, maturity = 100.0, 0.05, 0.3, 1.0
    app = build_apop(
        n, steps, strike=strike, rate=rate, sigma=sigma, maturity=maturity
    )
    report = app.run(algorithm="trap")
    values = app.result()
    prices = app.meta["prices"]
    print(
        f"APOP: {n} price points x {steps} steps via TRAP "
        f"({report.elapsed:.3f}s, {report.base_cases} base cases)\n"
    )

    # Cross-check against the direct induction.
    ref = reference_apop(
        build_apop(n, steps, strike=strike, rate=rate, sigma=sigma,
                   maturity=maturity),
        steps,
    )
    assert np.allclose(values, ref, rtol=1e-12), "stencil != direct induction"
    print("stencil result matches direct NumPy backward induction exactly")

    # American >= European everywhere (early-exercise premium).
    mask = (prices > 40) & (prices < 400)
    euro = black_scholes_put(prices[mask], strike, rate, sigma, maturity)
    amer = values[mask]
    # Tolerance covers the O(dt) truncation error of the explicit scheme.
    assert np.all(amer >= euro - 1e-4), "American put below European!"
    premium = (amer - euro).max()
    print(f"early-exercise premium up to {premium:.3f} over the European put")

    # Early-exercise boundary: highest spot where V equals intrinsic value.
    intrinsic = np.maximum(strike - prices, 0.0)
    exercised = np.where(np.isclose(values, intrinsic, atol=1e-9) & (intrinsic > 0))[0]
    boundary = prices[exercised[-1]] if len(exercised) else float("nan")
    print(f"early-exercise boundary at spot ~ {boundary:.2f} (strike {strike})")

    for s in (60, 80, 100, 120):
        i = int(np.argmin(np.abs(prices - s)))
        print(f"  spot {prices[i]:7.2f}:  put value {values[i]:7.3f}")


if __name__ == "__main__":
    main()
