"""Quickstart: the periodic 2D heat equation of the paper's Figure 6.

Runs the same stencil through the Phase-1 checked interpreter (the
template-library path) and Phase-2 compiled TRAP, demonstrates the
Pochoir Guarantee (identical results), then compares TRAP against the
loop baseline.

    python examples/quickstart.py
"""

import time

import numpy as np

from repro import Kernel, PeriodicBoundary, PochoirArray, Shape, Stencil, run_phase1

X = Y = 192
T = 64
CX = CY = 0.125


def build():
    # Pochoir_Shape_2D 2D_five_pt[] = {{1,0,0},{0,0,0},{0,1,0},{0,-1,0},{0,0,-1},{0,0,1}}
    shape = Shape.from_cells(
        [(1, 0, 0), (0, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, -1), (0, 0, 1)]
    )
    u = PochoirArray("u", (X, Y)).register_boundary(PeriodicBoundary())
    heat = Stencil(2, shape, name="heat_2dp")
    heat.register_array(u)

    kern = Kernel(
        2,
        lambda t, x, y: u(t + 1, x, y)
        << (
            CX * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y))
            + CY * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1))
            + u(t, x, y)
        ),
        name="heat_fn",
    )
    u.set_initial(np.random.default_rng(42).random((X, Y)))
    return heat, u, kern


def main() -> None:
    print(f"2D heat, periodic torus, {X}x{Y} grid, {T} steps\n")

    # Phase 1: checked interpreter on a reduced problem (it is slow by design).
    heat, u, kern = build()
    t0 = time.perf_counter()
    run_phase1(heat, 2, kern)
    phase1_time = time.perf_counter() - t0
    phase1_result = u.snapshot(2)
    print(f"Phase 1 (checked template library), 2 steps: {phase1_time:.2f}s")

    # Phase 2: compiled TRAP.  First verify it agrees with Phase 1 ...
    heat, u, kern = build()
    heat.run(2, kern)
    assert np.array_equal(u.snapshot(2), phase1_result), "Pochoir Guarantee violated!"
    print("Phase 2 matches Phase 1 exactly (the Pochoir Guarantee)\n")

    # ... then race TRAP against the loop baseline on the full problem.
    results = {}
    for algorithm in ("trap", "serial_loops"):
        heat, u, kern = build()
        report = heat.run(T, kern, algorithm=algorithm, mode="auto")
        results[algorithm] = (report.elapsed, u.snapshot(T))
        print(
            f"{algorithm:13s}: {report.elapsed:7.3f}s  "
            f"({report.points_per_second / 1e6:7.1f} Mpoints/s, "
            f"{report.base_cases} base cases, mode={report.mode})"
        )
    assert np.array_equal(results["trap"][1], results["serial_loops"][1])
    ratio = results["serial_loops"][0] / results["trap"][0]
    print(f"\nTRAP vs serial loops: {ratio:.2f}x  (identical results)")
    print(f"mean heat: {results['trap'][1].mean():.6f}")


if __name__ == "__main__":
    main()
