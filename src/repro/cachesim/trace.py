"""Serial-order access-trace generation for cache simulation.

The trace engine replays an execution — TRAP/STRAP plan or the loop
baseline — in its exact serial order, emitting one contiguous range
access per (kernel shape cell x grid row), which is precisely the memory
behaviour of the compiled kernels (reads walk the unit-stride dimension
contiguously for every stencil term; writes walk the home row).

Off-domain read coordinates are reduced modulo the grid, i.e. the trace
models the periodic layout for boundary rows regardless of boundary kind;
boundary rows are an O(surface/volume) fraction of the trace and Dirichlet
fills touch *less* memory than wrap-around, so this over-approximation is
conservative and does not affect the miss-ratio ordering Figure 10
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator

from repro.cachesim.ideal_cache import IdealCache
from repro.expr.analysis import kernel_accesses
from repro.language.stencil import Problem
from repro.trap.plan import BaseRegion, PlanNode, iter_base_serial


@dataclass
class CacheStats:
    """Result of one simulated execution."""

    refs: int
    misses: int
    points: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.refs if self.refs else 0.0

    @property
    def misses_per_point(self) -> float:
        return self.misses / self.points if self.points else 0.0


@dataclass(frozen=True)
class _ArrayLayout:
    base: int
    slots: int
    sizes: tuple[int, ...]
    strides: tuple[int, ...]
    spatial: int


def _layouts(problem: Problem) -> dict[str, _ArrayLayout]:
    layouts: dict[str, _ArrayLayout] = {}
    offset = 0
    for name in sorted(problem.arrays):
        arr = problem.arrays[name]
        strides = [1] * arr.ndim
        for i in range(arr.ndim - 2, -1, -1):
            strides[i] = strides[i + 1] * arr.sizes[i + 1]
        layouts[name] = _ArrayLayout(
            base=offset,
            slots=arr.slots,
            sizes=arr.sizes,
            strides=tuple(strides),
            spatial=arr.spatial_points,
        )
        offset += arr.total_points
    return layouts


@dataclass(frozen=True)
class _Cell:
    """One access pattern: (array layout, dt, spatial offsets)."""

    name: str
    dt: int
    offsets: tuple[int, ...]


def _kernel_cells(problem: Problem) -> list[_Cell]:
    summary = kernel_accesses(problem.statements)
    cells: list[_Cell] = []
    for name, reads in summary.reads.items():
        for dt, offs in sorted(reads):
            cells.append(_Cell(name, dt, offs))
    for name in summary.writes:
        cells.append(_Cell(name, 0, (0,) * problem.ndim))
    return cells


def _trace_box(
    cache: IdealCache,
    layouts: dict[str, _ArrayLayout],
    cells: list[_Cell],
    t: int,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
) -> int:
    """Trace one time step over one box; returns points updated."""
    d = len(lo)
    lens = [h - l for l, h in zip(lo, hi)]
    if any(n <= 0 for n in lens):
        return 0
    row_len = lens[-1]
    outer_ranges = [range(l, h) for l, h in zip(lo[:-1], hi[:-1])]
    points = row_len
    for n in lens[:-1]:
        points *= n
    for outer in product(*outer_ranges):
        for cell in cells:
            lay = layouts[cell.name]
            slot = (t + cell.dt) % lay.slots
            addr = lay.base + slot * lay.spatial
            for i, o in enumerate(outer):
                addr += ((o + cell.offsets[i]) % lay.sizes[i]) * lay.strides[i]
            start_last = (lo[-1] + cell.offsets[-1]) % lay.sizes[-1]
            # Split a row segment that wraps the unit-stride dimension.
            n_last = lay.sizes[-1]
            if start_last + row_len <= n_last:
                cache.access_range(addr + start_last, row_len)
            else:
                head = n_last - start_last
                cache.access_range(addr + start_last, head)
                cache.access_range(addr, row_len - head)
    return points


def iter_region_steps(
    region: BaseRegion,
) -> Iterator[tuple[int, tuple[int, ...], tuple[int, ...]]]:
    """Yield (t, lo, hi) boxes of a base region, slopes applied per step."""
    lo = [xa for xa, _, _, _ in region.dims]
    hi = [xb for _, xb, _, _ in region.dims]
    for t in range(region.ta, region.tb):
        yield t, tuple(lo), tuple(hi)
        for i, (_, _, dxa, dxb) in enumerate(region.dims):
            lo[i] += dxa
            hi[i] += dxb


def simulate_plan_cache(
    problem: Problem,
    plan: PlanNode,
    *,
    capacity_points: int,
    line_points: int,
) -> CacheStats:
    """Simulate the serial execution of a TRAP/STRAP plan."""
    cache = IdealCache(capacity_points, line_points)
    layouts = _layouts(problem)
    cells = _kernel_cells(problem)
    points = 0
    for region in iter_base_serial(plan):
        for t, lo, hi in iter_region_steps(region):
            points += _trace_box(cache, layouts, cells, t, lo, hi)
    return CacheStats(refs=cache.refs, misses=cache.misses, points=points)


def simulate_loops_cache(
    problem: Problem,
    *,
    capacity_points: int,
    line_points: int,
) -> CacheStats:
    """Simulate the loop baseline: one full-grid sweep per time step."""
    cache = IdealCache(capacity_points, line_points)
    layouts = _layouts(problem)
    cells = _kernel_cells(problem)
    zero = (0,) * problem.ndim
    points = 0
    for t in range(problem.t_start, problem.t_end):
        points += _trace_box(cache, layouts, cells, t, zero, problem.sizes)
    return CacheStats(refs=cache.refs, misses=cache.misses, points=points)
