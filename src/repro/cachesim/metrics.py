"""Closed-form cache-complexity bounds from Section 3 of the paper.

These are the theory overlays for Figure 10 and the sanity bounds the
property tests check the simulator against:

* both TRAP and STRAP incur ``Theta(h * w^d / (M^{1/d} * B))`` misses on a
  grid of normalized width w and height h (Frigo–Strumpen's bound — the
  paper proves TRAP matches it despite the extra parallelism);
* the loop algorithm incurs ``Theta(h * w^d / B)`` misses whenever the
  spatial grid does not fit in cache (one cold sweep per step).
"""

from __future__ import annotations


def trap_miss_bound(
    sizes: tuple[int, ...],
    height: int,
    *,
    capacity_points: int,
    line_points: int,
) -> float:
    """Leading-order TRAP/STRAP miss count: h * w^d / (M^(1/d) * B)."""
    d = len(sizes)
    vol = 1.0
    for s in sizes:
        vol *= s
    return height * vol / (capacity_points ** (1.0 / d) * line_points)


def loops_miss_bound(
    sizes: tuple[int, ...],
    height: int,
    *,
    capacity_points: int,
    line_points: int,
) -> float:
    """Leading-order loop-algorithm miss count.

    Out of cache (spatial grid larger than M): every sweep streams the
    grid, ``h * w^d / B`` misses.  In cache: only the compulsory misses,
    ``w^d / B``.
    """
    vol = 1.0
    for s in sizes:
        vol *= s
    if vol * 2 <= capacity_points:  # both time copies resident
        return vol / line_points
    return height * vol / line_points
