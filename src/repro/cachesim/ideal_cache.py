"""A fully associative LRU cache over a flat grid-point address space.

Parameters follow the ideal-cache model of Frigo et al. (the model the
paper's Section 3 analysis uses): the cache holds ``M`` grid points in
lines of ``B`` points; replacement is LRU (within a constant factor of
the model's optimal replacement).  Addresses are element indices into the
concatenated storage of all registered arrays.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import SpecificationError


class IdealCache:
    """LRU ideal cache counting references (in points) and line misses.

    >>> c = IdealCache(capacity_points=16, line_points=4)
    >>> c.access_range(0, 8)   # touches lines 0 and 1: 2 misses
    >>> c.refs, c.misses
    (8, 2)
    >>> c.access_range(0, 8)   # both lines resident now
    >>> c.misses
    2
    """

    def __init__(self, capacity_points: int, line_points: int):
        if line_points < 1:
            raise SpecificationError(f"line_points must be >= 1, got {line_points}")
        if capacity_points < line_points:
            raise SpecificationError(
                f"cache must hold at least one line "
                f"({capacity_points=} < {line_points=})"
            )
        self.line_points = int(line_points)
        self.capacity_lines = int(capacity_points) // int(line_points)
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.refs = 0
        self.misses = 0

    def access_range(self, start: int, length: int) -> None:
        """Reference ``length`` consecutive points starting at ``start``."""
        if length <= 0:
            return
        self.refs += length
        B = self.line_points
        lines = self._lines
        first = start // B
        last = (start + length - 1) // B
        cap = self.capacity_lines
        for line in range(first, last + 1):
            if line in lines:
                lines.move_to_end(line)
            else:
                self.misses += 1
                lines[line] = None
                if len(lines) > cap:
                    lines.popitem(last=False)

    @property
    def miss_ratio(self) -> float:
        """Misses per reference — the y-axis of Figure 10."""
        return self.misses / self.refs if self.refs else 0.0

    @property
    def resident_lines(self) -> int:
        return len(self._lines)

    def reset_counters(self) -> None:
        self.refs = 0
        self.misses = 0

    def flush(self) -> None:
        self._lines.clear()
