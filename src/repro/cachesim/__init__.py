"""Ideal-cache simulation: the measurement substrate for Figure 10.

The paper verifies with Linux ``perf`` that TRAP loses no cache
efficiency versus STRAP, and that both beat parallel loops.  Hardware
counters are unavailable here, but Section 3's analysis is stated in the
*ideal-cache model* (fully associative, LRU, optimal replacement
approximated by LRU within a factor of 2): we simulate exactly that model
over the exact serial-order access trace each algorithm generates, and
report the same miss-ratio metric the figure plots.
"""

from repro.cachesim.ideal_cache import IdealCache
from repro.cachesim.trace import CacheStats, simulate_loops_cache, simulate_plan_cache
from repro.cachesim.metrics import loops_miss_bound, trap_miss_bound

__all__ = [
    "CacheStats",
    "IdealCache",
    "loops_miss_bound",
    "simulate_loops_cache",
    "simulate_plan_cache",
    "trap_miss_bound",
]
