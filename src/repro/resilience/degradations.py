"""Run-scoped recording of fired fallbacks (``RunReport.degradations``).

Every graceful-degradation site in the pipeline — compiler fallbacks,
``.so`` cache eviction, registry corruption, checkpoint skips, executor
retries — calls :func:`note` with a short stable tag.  The execution
driver wraps each run in :func:`collect`, which routes those notes into
the run's ``RunReport.degradations`` list; outside any collector a note
is dropped (a library import or a bare ``compile_kernel`` call has no
report to fill).

Tags are deduplicated per sink and ordered by first firing, so a
fallback that fires once per base case still records one line.

The serving layer adds two tag families that ride the same list:
``serve:*`` tags are appended to finished reports by the job server
(e.g. ``serve:no-cc->unbatched-numpy``, ``serve:supervised->unbatched``)
— and ``serve:expired`` travels on the :class:`~repro.serve.server.
JobExpired` exception instead, since a shed job has no report.
``net:*`` tags are appended client-side by
:class:`~repro.serve.client.StencilClient` (``net:retried`` when a job
needed more than one wire attempt), recording transport-level recovery
in the same place execution fallbacks land.

Concurrency: sinks live in a process-global stack guarded by a lock, so
notes from DAG worker threads land in the run that spawned them.  Two
*nested* concurrent runs (a kernel calling ``Stencil.run``) both report
into the innermost active sink — best-effort attribution, matching the
nested-run caveats elsewhere in the executors.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_LOCK = threading.Lock()
_SINKS: list[list[str]] = []


@contextmanager
def collect(sink: list[str]) -> Iterator[list[str]]:
    """Route :func:`note` calls into ``sink`` for the duration."""
    with _LOCK:
        _SINKS.append(sink)
    try:
        yield sink
    finally:
        with _LOCK:
            try:
                _SINKS.remove(sink)
            except ValueError:  # pragma: no cover - defensive
                pass


def note(tag: str) -> None:
    """Record a fired fallback (deduplicated; no-op outside a run)."""
    with _LOCK:
        if not _SINKS:
            return
        sink = _SINKS[-1]
        if tag not in sink:
            sink.append(tag)


def active() -> bool:
    """Is any collector installed?  (Cheap guard for hot paths.)"""
    return bool(_SINKS)
