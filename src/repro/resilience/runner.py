"""The checkpointed block loop the execution driver delegates to.

Splits a run's time range ``[t_start, t_end)`` at
``CheckpointPolicy.every_dt`` boundaries and executes each block through
the driver's range callback, snapshotting the grid after every block.
Between blocks the grid is globally consistent (every array written
through the block's last level), which is the only place a trapezoidal
run can snapshot: mid-walk, different space regions sit at different
time levels.

Blocking the time range this way cannot change results: the top-level
trapezoid decomposition already cuts time first (``dt_threshold``
bounds block height), and every grid point is computed exactly once, by
the same kernel clone, from the same inputs, under *any* decomposition
— so per-point FP sequences are identical and resumed runs finish
bitwise-equal to uninterrupted ones.

**The durable write happens off the compute path.**  At each boundary
the runner copies the live buffers (tens of milliseconds) and hands the
copy to a single background writer thread, which streams it to disk —
checksum, fsync, atomic rename, prune — while the next block computes.
A synchronous durable write of a laptop-scale grid costs hundreds of
milliseconds of fsync; overlapped with the next block it costs only the
in-memory copy.  Writes are strictly FIFO and the runner joins the
writer before returning, so the on-disk history is always a clean
prefix of the run and ``RunReport.checkpoints_written`` is exact.  The
queue is bounded: if the disk cannot keep up with the cadence, the
runner blocks at the *next* boundary rather than buffering unbounded
snapshots.

The boundary snapshot is also the **retry** state: under a checkpoint
policy each block gets one retry (partial execution overwrites the
modular buffer's *input* slots once a block spans ``slots`` levels, so
a failed block cannot simply be re-run).  On any exception the runner
restores the previous boundary's snapshot in place and re-executes the
block once; a second failure propagates — by then a real bug, not a
transient, is the likely cause.  Without a policy no snapshot is taken
and failures propagate immediately, keeping the default path copy-free.

A failed checkpoint *write* (unwritable directory, disk full) never
kills a run that can still compute: the failure is recorded as a
``checkpoint:write-failed`` degradation and the run continues with
whatever durable history it has.  A writer *thread* that dies outright
is surfaced the same way, at the point of failure: the next boundary's
``submit`` notices the dead thread, records ``checkpoint:writer-died``,
and drops the snapshot instead of blocking forever on a queue nobody
drains — durability silently stopping mid-run is precisely the failure
a resilience layer must not hide.

**Graceful shutdown**: while a checkpointed run is executing on the
main thread, SIGTERM and SIGINT are converted into an orderly exit —
the current (partial) block is abandoned, every already-queued boundary
snapshot is flushed durably, a ``shutdown:signal->final-checkpoint``
note is recorded, and the process exits nonzero (``128 + signum``, the
shell convention).  A later run with ``resume_from`` picks up from the
flushed history exactly as after a kill.  The previous handlers are
restored on the way out, and non-main-thread runs (where Python forbids
``signal.signal``) skip installation entirely.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import CheckpointError
from repro.resilience import degradations, faults
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointPolicy,
    load_checkpoint,
    newest_valid,
    problem_signature_of,
    prune,
    write_checkpoint_arrays,
)


def _resolve_resume(problem, resume_from) -> Checkpoint | None:
    """Turn ``RunOptions.resume_from`` into a restorable checkpoint.

    * a :class:`Checkpoint` — used as-is (signature/range checked by
      the caller/restore);
    * a directory — newest valid checkpoint for this problem whose
      ``t_next`` lies in ``(t_start, t_end]``; none found reads as
      "cold start" with a degradation note, never an error;
    * a file — loaded directly; if it is damaged, falls back to the
      newest valid sibling in its directory (note), then cold start
      (note).  A *wrong-problem* file is a caller error and raises.
    """
    if resume_from is None:
        return None
    if isinstance(resume_from, Checkpoint):
        return resume_from
    path = Path(resume_from)
    if path.is_dir():
        ckpt = newest_valid(path, problem)
        if ckpt is None:
            degradations.note("checkpoint:no-valid-checkpoint->cold-start")
        return ckpt
    try:
        return load_checkpoint(path)
    except CheckpointError:
        degradations.note("checkpoint:corrupt-skipped")
        ckpt = newest_valid(path.parent, problem)
        if ckpt is None:
            degradations.note("checkpoint:no-valid-checkpoint->cold-start")
        return ckpt


class _CheckpointWriter:
    """Single background thread flushing boundary snapshots durably.

    FIFO by construction (one thread, one queue), so checkpoint files
    always land in time order and a crash leaves a clean prefix.  The
    ``checkpoint.kill`` fault fires here, right *after* a durable write
    — the kill-resume harness's power-cut moment — and :meth:`close`
    joins the thread, so the kill always lands before the run returns.

    Per-item write failures degrade to ``checkpoint:write-failed`` notes
    and the thread keeps draining.  If the thread itself dies (anything
    escaping the per-item handler), :meth:`submit` surfaces it *at the
    next boundary* as a ``checkpoint:writer-died`` note instead of
    blocking on a queue nobody will ever drain — and :meth:`close` skips
    the sentinel so teardown cannot hang either.
    """

    _QUEUE_DEPTH = 2  # pending snapshots; bounds memory, not history

    def __init__(self, directory: Path, signature: str, keep: int) -> None:
        self._dir = directory
        self._signature = signature
        self._keep = keep
        self._queue: queue.Queue = queue.Queue(maxsize=self._QUEUE_DEPTH)
        self.written = 0
        #: The exception that killed the writer thread, if any (set by
        #: the thread itself; read by submit/close for surfacing).
        self.failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpoint-writer", daemon=True
        )
        self._thread.start()

    def submit(self, arrays: dict[str, np.ndarray], t_next: int) -> None:
        """Enqueue a stable snapshot (blocks if the disk is behind).

        A dead writer thread is reported here — at the point of failure
        — as a ``checkpoint:writer-died`` degradation; the snapshot is
        dropped and the run continues with its existing durable prefix.
        """
        while True:
            if not self._thread.is_alive():
                degradations.note("checkpoint:writer-died")
                return
            try:
                self._queue.put((arrays, t_next), timeout=0.5)
                return
            except queue.Full:
                # Re-check liveness: a thread that died while the queue
                # was full would otherwise block this put forever.
                continue

    def close(self) -> None:
        """Flush every pending snapshot and stop the thread."""
        if self._thread.is_alive():
            self._queue.put(None)
        self._thread.join()
        if self.failure is not None:
            degradations.note("checkpoint:writer-died")

    def _run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:  # the thread is now dead; surface it
            self.failure = exc
            degradations.note("checkpoint:writer-died")

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            arrays, t_next = item
            try:
                write_checkpoint_arrays(
                    self._dir, self._signature, arrays, t_next
                )
                self.written += 1
                if faults.fire("checkpoint.kill"):
                    # Die the way a power cut would, right after a
                    # checkpoint landed.  SIGKILL is not catchable, so
                    # nothing can "clean up" and mask durability bugs.
                    os.kill(os.getpid(), signal.SIGKILL)
                prune(self._dir, self._signature, self._keep)
            except Exception:
                degradations.note("checkpoint:write-failed")


def _snapshot(problem) -> dict[str, np.ndarray]:
    return {name: arr.data.copy() for name, arr in problem.arrays.items()}


class ShutdownRequested(BaseException):
    """Raised by the runner's signal handler mid-block.

    A ``BaseException`` deliberately: the block loop's rollback-retry
    path catches ``Exception``, and a shutdown request must *not* be
    retried — it must abandon the partial block, flush the writer, and
    exit.
    """

    def __init__(self, signum: int):
        super().__init__(f"shutdown requested by signal {signum}")
        self.signum = signum


def _install_shutdown_handlers():
    """Convert SIGTERM/SIGINT into :class:`ShutdownRequested` for the
    duration of a checkpointed run.  Returns the previous handlers to
    restore (or ``None`` off the main thread, where installing is both
    forbidden and unnecessary — the main thread still owns delivery)."""
    if threading.current_thread() is not threading.main_thread():
        return None

    def handler(signum, frame):
        raise ShutdownRequested(signum)

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    return previous


def _restore_shutdown_handlers(previous) -> None:
    if not previous:
        return
    for sig, old in previous.items():
        try:
            signal.signal(sig, old)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass


def execute_blocks(
    problem,
    report,
    run_range: Callable[[int, int], None],
    *,
    policy: CheckpointPolicy | None,
    resume_from=None,
) -> None:
    """Run ``[problem.t_start, problem.t_end)`` as checkpointed blocks.

    ``run_range(a, b)`` executes output levels ``[a, b)`` and
    accumulates into ``report``; this function owns resume, blocking,
    retry, checkpoint writes, and pruning.  With neither a policy nor a
    resume source the whole range runs as one block with no snapshots —
    the exact non-resilient path.
    """
    t_first = problem.t_start
    ckpt = _resolve_resume(problem, resume_from)
    if ckpt is not None:
        if not problem.t_start < ckpt.t_next <= problem.t_end:
            raise CheckpointError(
                f"checkpoint {ckpt.path or ''} resumes at t={ckpt.t_next}, "
                f"outside this run's range "
                f"({problem.t_start}, {problem.t_end}]"
            )
        ckpt.restore_into(problem)
        t_first = ckpt.t_next
        report.resumed_from = ckpt.t_next
    if t_first >= problem.t_end:
        return  # the checkpoint already covers the whole run

    if policy is None:
        run_range(t_first, problem.t_end)
        return

    writer = _CheckpointWriter(
        policy.dir, problem_signature_of(problem), policy.keep
    )
    handlers = _install_shutdown_handlers()
    shutdown: ShutdownRequested | None = None
    try:
        # The boundary snapshot is both the next block's rollback state
        # and the checkpoint payload: one copy serves both, and handing
        # the copy (never the live buffers) to the writer keeps the
        # flush race-free against the next block's compute.
        snap = _snapshot(problem)
        for a in range(t_first, problem.t_end, policy.every_dt):
            b = min(a + policy.every_dt, problem.t_end)
            try:
                run_range(a, b)
            except ShutdownRequested:
                raise
            except Exception:
                # Partial execution has overwritten input slots of the
                # modular buffers; roll back to the block's start (in
                # place — compiled kernels prebind the buffer
                # addresses).
                for name, arr in problem.arrays.items():
                    arr.data[...] = snap[name]
                degradations.note("executor:block-retried")
                run_range(a, b)
            snap = _snapshot(problem)
            writer.submit(snap, b)
    except ShutdownRequested as exc:
        # SIGTERM/SIGINT mid-run: abandon the partial block (its effects
        # are not snapshotted, so durable history stays consistent),
        # flush everything already queued, exit nonzero.  A resume_from
        # run then continues from the flushed prefix, bitwise-identical.
        shutdown = exc
        degradations.note("shutdown:signal->final-checkpoint")
    finally:
        _restore_shutdown_handlers(handlers)
        # Flush even when a block failed twice: the durable history
        # stays a clean prefix of whatever completed.
        writer.close()
        report.checkpoints_written += writer.written
    if shutdown is not None:
        raise SystemExit(128 + shutdown.signum)
