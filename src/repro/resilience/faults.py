"""The fault-injection plan: named failure sites, armed by env or API.

PRs 3-6 grew ad-hoc failure hooks (``REPRO_NO_CC`` hides the toolchain,
``REPRO_WALK_POOL_FAIL`` breaks the in-``.so`` pthread pool).  This
module generalizes them into one registry of *named sites* the
production code consults at each point where reality can fail, so a
single parametrized test matrix can prove every degradation path — and
any *combination* of them — never crashes and never silently corrupts.

Sites (each guarded by :func:`fire` at exactly one code location):

========================  ====================================================
``cc.fail``               the cc subprocess exits nonzero at the ``.so``
                          build site (:mod:`repro.compiler.codegen_c`)
``cc.hang``               the cc subprocess hangs until the build timeout
                          (exercises the timeout + retry + backoff path)
``so.load``               ``ctypes.CDLL`` fails on a cached shared object
                          (truncated write / foreign architecture)
``registry.corrupt``      the autotune registry's bytes are corrupt on read
``checkpoint.corrupt``    a checkpoint file's bytes are corrupt on read
``dag.worker``            a DAG executor worker dies mid-run
``walk.pool``             the compiled walk's pthread pool cannot start
                          (arms the generated C's ``REPRO_WALK_POOL_FAIL``
                          getenv hook, since that site lives below Python)
``checkpoint.kill``       SIGKILL this process immediately after a
                          checkpoint write lands (the kill-resume harness;
                          fired by the resilience runner itself)
``worker.segfault``       a supervised worker subprocess dereferences a
                          null pointer in native code mid-task — a real
                          SIGSEGV, not a Python exception (consumed by the
                          supervisor at dispatch; the doomed task is tagged)
``worker.hang``           a supervised worker subprocess wedges forever
                          mid-task (exercises the zoid-volume-scaled task
                          deadline + heartbeat watchdog)
``shm.attach``            the shared-memory segment for a supervised run
                          cannot be created/attached (the executor degrades
                          to the in-process ``"dag"`` runtime)
``net.accept``            the TCP front-end aborts a just-accepted
                          connection before reading a byte (listener
                          flap; the client reconnects and retries)
``net.torn``              a response frame is torn: the server writes the
                          header and a payload prefix, then drops the
                          connection (the classic half-written wire state)
``net.drop``              the connection drops after the job executed but
                          *before* its response is sent — the
                          retry-ambiguity case idempotent replay resolves
``net.slow``              the server stalls before responding (a slow
                          peer; exercises the client's request deadline)
========================  ====================================================

Arming:

* **API** — ``install(FaultPlan.parse("so.load:1"))`` or the
  :func:`injected` context manager (tests).
* **Environment** — ``REPRO_FAULTS="site[:times][@skip]{,...}"``, parsed
  on first use, so a *subprocess* can be armed without code changes
  (the kill-resume CI leg runs this way).  ``times`` bounds how often
  the site fires (default: unlimited); ``skip`` lets the first N
  arrivals pass unharmed (``checkpoint.kill:1@2`` = die right after the
  third checkpoint).

Sites not named in the active plan never fire, and with no plan armed
:func:`fire` is two dict lookups — safe to leave in production paths.

Specs are validated *at install time*: a malformed ``site[:times][@skip]``
string or an unknown site name raises ``ValueError`` immediately (from
:meth:`FaultSpec.parse`, :meth:`FaultPlan.add`, :func:`install`, or
:func:`injected`) instead of silently arming nothing — a typo'd
``REPRO_FAULTS`` that never fires reads exactly like a passing test.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: The env hook the generated C pool reads (kept from PR 6); the
#: ``walk.pool`` site arms it because the site itself is below Python.
_WALK_POOL_ENV = "REPRO_WALK_POOL_FAIL"

FAULTS_ENV = "REPRO_FAULTS"

KNOWN_SITES = (
    "cc.fail",
    "cc.hang",
    "so.load",
    "registry.corrupt",
    "checkpoint.corrupt",
    "dag.worker",
    "walk.pool",
    "checkpoint.kill",
    "worker.segfault",
    "worker.hang",
    "shm.attach",
    "net.accept",
    "net.torn",
    "net.drop",
    "net.slow",
)


def _check_site(site: str, text: str | None = None) -> None:
    if site not in KNOWN_SITES:
        where = f" in {text!r}" if text is not None else ""
        raise ValueError(
            f"unknown fault site {site!r}{where}; known sites: "
            f"{', '.join(KNOWN_SITES)}"
        )


def _parse_count(token: str, what: str, text: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise ValueError(
            f"bad {what} {token!r} in fault spec {text!r}; expected an "
            f"integer (syntax: site[:times][@skip], times may be '*')"
        ) from None
    if value < 0:
        raise ValueError(f"{what} must be >= 0 in fault spec {text!r}")
    return value


@dataclass
class FaultSpec:
    """One armed site: fire up to ``times`` times after ``skip`` passes."""

    site: str
    times: int | None = None  # None = unlimited
    skip: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        # Every construction path (parse, add, injected, direct) goes
        # through here: an unarmed typo must fail loudly, at arm time.
        _check_site(self.site)
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """``site``, ``site:times`` or ``site:times@skip`` (``times`` may
        be ``*`` for unlimited).  Malformed strings and unknown sites
        raise ``ValueError`` with the offending spec named."""
        site, colon, rest = text.strip().partition(":")
        times: int | None = None
        skip = 0
        if colon:
            count, at, after = rest.partition("@")
            if "@" in after:
                raise ValueError(
                    f"malformed fault spec {text!r}: more than one '@'"
                )
            if count != "*":
                times = _parse_count(count, "times", text)
            if at:
                skip = _parse_count(after, "skip", text)
        if not site:
            raise ValueError(f"empty fault site in {text!r}")
        _check_site(site, text)
        return FaultSpec(site=site, times=times, skip=skip)


@dataclass
class FaultPlan:
    """A set of armed sites (site -> spec)."""

    specs: dict[str, FaultSpec] = field(default_factory=dict)

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` syntax (comma-separated specs)."""
        plan = FaultPlan()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            spec = FaultSpec.parse(part)
            plan.specs[spec.site] = spec
        return plan

    def add(self, site: str, *, times: int | None = None, skip: int = 0):
        self.specs[site] = FaultSpec(site=site, times=times, skip=skip)
        return self


_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None  # None = not yet initialized from env
#: Whether *we* set the walk-pool env hook (so clear() only unsets ours).
_ARMED_WALK_POOL = False


def _sync_walk_pool_env(plan: FaultPlan) -> None:
    """The ``walk.pool`` site lives inside the generated C (getenv at
    pool start), so arming/disarming it means setting the env hook."""
    global _ARMED_WALK_POOL
    if "walk.pool" in plan.specs:
        if not os.environ.get(_WALK_POOL_ENV):
            os.environ[_WALK_POOL_ENV] = "1"
            _ARMED_WALK_POOL = True
    elif _ARMED_WALK_POOL:
        os.environ.pop(_WALK_POOL_ENV, None)
        _ARMED_WALK_POOL = False


def _current() -> FaultPlan:
    """The active plan, initializing from ``$REPRO_FAULTS`` on first use."""
    global _PLAN
    if _PLAN is None:
        text = os.environ.get(FAULTS_ENV, "")
        _PLAN = FaultPlan.parse(text) if text else FaultPlan()
        _sync_walk_pool_env(_PLAN)
    return _PLAN


def install(plan: FaultPlan) -> None:
    """Replace the active plan (API arming)."""
    global _PLAN
    with _LOCK:
        _PLAN = plan
        _sync_walk_pool_env(plan)


def clear() -> None:
    """Disarm everything (and re-read ``$REPRO_FAULTS`` on next use)."""
    global _PLAN
    with _LOCK:
        _PLAN = FaultPlan()
        _sync_walk_pool_env(_PLAN)


def active_sites() -> tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(_current().specs))


def fired(site: str) -> int:
    """How many times ``site`` has fired under the active plan."""
    with _LOCK:
        spec = _current().specs.get(site)
        return spec.fired if spec is not None else 0


def fire(site: str) -> bool:
    """Should this arrival at ``site`` fail?  (The one call sites make.)

    Decrements the spec's budget under the lock, so concurrent workers
    observe exactly ``times`` failures between them.
    """
    with _LOCK:
        spec = _current().specs.get(site)
        if spec is None:
            return False
        if spec.skip > 0:
            spec.skip -= 1
            return False
        if spec.times is not None and spec.fired >= spec.times:
            return False
        spec.fired += 1
        return True


@contextmanager
def injected(
    site: str, *, times: int | None = None, skip: int = 0
) -> Iterator[FaultSpec]:
    """Arm one site for the duration of a ``with`` block (tests).

    Composes with an existing plan: the site is added on entry and
    removed on exit, other armed sites are untouched.
    """
    spec = FaultSpec(site=site, times=times, skip=skip)
    with _LOCK:
        plan = _current()
        previous = plan.specs.get(site)
        plan.specs[site] = spec
        _sync_walk_pool_env(plan)
    try:
        yield spec
    finally:
        with _LOCK:
            plan = _current()
            if previous is None:
                plan.specs.pop(site, None)
            else:
                plan.specs[site] = previous
            _sync_walk_pool_env(plan)
