"""Crash-safe checkpoints of a run's live time window.

A checkpoint is everything needed to restart a killed run mid-history
with a bitwise-identical final grid: the full modular time buffer of
every registered :class:`~repro.language.array.PochoirArray` (all
``depth+1`` slots — the next block reads up to ``depth`` levels back),
the next timestep to compute, and the problem signature (reusing the
autotune registry's :func:`~repro.autotune.registry.problem_signature`)
so a checkpoint is never applied to a different stencil, grid, or
kernel.  Const arrays and scalar params are *not* stored: they are
immutable inputs the resuming program reconstructs, and the signature
already pins their shapes and the kernel that consumed them.

Checkpoints are only taken between top-level time blocks (the
resilience runner splits ``[t_start, t_end)`` at ``every_dt``
boundaries), where the grid is globally consistent — inside a
trapezoidal decomposition different space regions sit at different time
levels, so mid-walk state is never durable.  Because the trapezoidal
runtime computes every grid point exactly once, by the same kernel
clone, from the same input values, regardless of how the time range is
blocked, a resumed run's remaining blocks produce the same bits the
uninterrupted run would have (the equivalence the tier-1 cross-backend
tests pin down).

File format (version :data:`CHECKPOINT_SCHEMA_VERSION`)::

    MAGIC(8) | sha256(rest)(32) | header_len(8, LE) | header JSON | payloads

The digest covers everything after itself, so a torn write (power cut
mid-``write``), a truncated copy, or any flipped bit reads as
:class:`~repro.errors.CheckpointError` — never as silently wrong grid
values.  Files are streamed through
:func:`repro.util.atomic_write_chunks` (same-directory temp file, fsync
file and directory, atomic rename), so a crash *during* checkpointing
leaves the previous checkpoint intact; the loader falls back to the
newest file that validates.

Schema history: 1 — initial layout (this PR).  A version bump reads as
"unusable" with no migration, like the autotune registry: re-running
from the previous valid checkpoint (or cold) is always correct, whereas
misreading a stale layout is not.
"""

from __future__ import annotations

import io
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import CheckpointError, SpecificationError
from repro.resilience import degradations, faults
from repro.util import atomic_write_chunks

CHECKPOINT_SCHEMA_VERSION = 1

MAGIC = b"RPROCKPT"
_DIGEST_LEN = 32  # sha256
_LEN_BYTES = 8

#: ``ckpt-<sig12>-t<t_next>.rpck`` — the signature prefix scopes a
#: directory shared by several problems; the zero-padded timestep makes
#: lexicographic order equal time order.
_FILE_RE = re.compile(r"^ckpt-([0-9a-f]{12})-t(\d{10})\.rpck$")


@dataclass
class CheckpointPolicy:
    """When and where the resilience runner snapshots a run.

    ``dir``:
        directory for checkpoint files (created on first write).
    ``every_dt``:
        timesteps per checkpointed block.  The runner splits the run's
        time range at these boundaries; smaller values bound lost work
        at the cost of more (grid-sized) writes.
    ``keep``:
        newest checkpoints retained per problem signature; older ones
        are pruned after each successful write (``keep >= 2`` tolerates
        the newest file dying with the machine).
    """

    dir: str | Path
    every_dt: int = 64
    keep: int = 3

    def __post_init__(self) -> None:
        if int(self.every_dt) < 1:
            raise SpecificationError(
                f"checkpoint every_dt must be >= 1, got {self.every_dt}"
            )
        if int(self.keep) < 1:
            raise SpecificationError(
                f"checkpoint keep must be >= 1, got {self.keep}"
            )
        self.every_dt = int(self.every_dt)
        self.keep = int(self.keep)
        self.dir = Path(self.dir)


@dataclass
class Checkpoint:
    """One loaded (or about-to-be-written) checkpoint.

    ``arrays`` maps array name to the full modular buffer
    (``(slots, *sizes)``); ``t_next`` is the first time level the
    resumed run must compute.
    """

    signature: str
    t_next: int
    arrays: dict[str, np.ndarray]
    path: Path | None = None
    schema: int = CHECKPOINT_SCHEMA_VERSION
    unix_time: float = 0.0
    meta: dict = field(default_factory=dict)

    def restore_into(self, problem) -> None:
        """Copy the snapshot back into the problem's live arrays.

        Assigns **in place** (``arr.data[...] = ...``): compiled C
        kernels and cached NumPy closures prebind the array's buffer
        address, so rebinding ``arr.data`` to a fresh ndarray would
        silently leave them writing the dead buffer.
        """
        sig = problem_signature_of(problem)
        if sig != self.signature:
            raise CheckpointError(
                f"checkpoint {self.path or ''} was taken from a different "
                f"problem (signature {self.signature[:12]}, expected "
                f"{sig[:12]}): refusing to restore"
            )
        for name, arr in problem.arrays.items():
            stored = self.arrays.get(name)
            if stored is None:  # pragma: no cover - signature pins arrays
                raise CheckpointError(
                    f"checkpoint is missing array {name!r}"
                )
            if stored.shape != arr.data.shape or stored.dtype != arr.data.dtype:
                raise CheckpointError(  # pragma: no cover - signature pins shapes
                    f"checkpoint array {name!r} has shape {stored.shape} "
                    f"{stored.dtype}, live array is {arr.data.shape} "
                    f"{arr.data.dtype}"
                )
            arr.data[...] = stored
            arr._latest = self.t_next - 1


def problem_signature_of(problem) -> str:
    """The autotune registry's problem digest (one notion of identity
    for both stores).  Imported lazily: the registry pulls in the C
    toolchain probe, which this module must not load at import time."""
    from repro.autotune.registry import problem_signature

    return problem_signature(problem)


def checkpoint_filename(signature: str, t_next: int) -> str:
    return f"ckpt-{signature[:12]}-t{t_next:010d}.rpck"


def checkpoint_chunks(
    signature: str, arrays: dict[str, np.ndarray], t_next: int
) -> list:
    """The on-disk representation as a list of buffers, in file order.

    Streaming is what makes checkpointing cheap: the digest is computed
    incrementally over the length prefix, header, and raw array buffers,
    and the chunks are handed to :func:`repro.util.atomic_write_chunks`
    verbatim — a multi-megabyte grid is never concatenated into one
    contiguous blob (the join + ``tobytes`` copies used to cost more
    than the hash and the write combined).
    """
    names = sorted(arrays)
    views = [np.ascontiguousarray(arrays[name]) for name in names]
    header = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "signature": signature,
        "t_next": int(t_next),
        "unix_time": time.time(),
        "arrays": [
            {
                "name": name,
                "shape": list(view.shape),
                "dtype": str(view.dtype),
            }
            for name, view in zip(names, views)
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    length = len(header_bytes).to_bytes(_LEN_BYTES, "little")
    import hashlib

    digest = hashlib.sha256()
    digest.update(length)
    digest.update(header_bytes)
    for view in views:
        digest.update(view)
    return [MAGIC, digest.digest(), length, header_bytes, *views]


def serialize_checkpoint(problem, t_next: int) -> bytes:
    """The on-disk bytes for a checkpoint of ``problem`` at ``t_next``."""
    arrays = {name: arr.data for name, arr in problem.arrays.items()}
    chunks = checkpoint_chunks(problem_signature_of(problem), arrays, t_next)
    body = io.BytesIO()
    for chunk in chunks:
        body.write(chunk)
    return body.getvalue()


def write_checkpoint_arrays(
    directory: str | Path,
    signature: str,
    arrays: dict[str, np.ndarray],
    t_next: int,
) -> Path:
    """Durably stream one checkpoint from a name→buffer mapping.

    The core write path: callers that already hold a stable snapshot
    (the resilience runner's background writer) use this directly so the
    live arrays can keep mutating while the snapshot flushes.
    """
    path = Path(directory) / checkpoint_filename(signature, t_next)
    atomic_write_chunks(path, checkpoint_chunks(signature, arrays, t_next))
    return path


def write_checkpoint(directory: str | Path, problem, t_next: int) -> Path:
    """Durably write one checkpoint of the live arrays; returns its path."""
    arrays = {name: arr.data for name, arr in problem.arrays.items()}
    return write_checkpoint_arrays(
        directory, problem_signature_of(problem), arrays, t_next
    )


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Parse and verify one checkpoint file.

    Raises :class:`CheckpointError` on *any* damage — wrong magic,
    checksum mismatch (torn/corrupt bytes), unknown schema, malformed
    header, short payload.  Never returns partially-restored data.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if faults.fire("checkpoint.corrupt") and len(raw) > MAGIC.__len__() + 48:
        # Flip bytes well inside the digested region: must read as torn.
        mid = len(raw) // 2
        raw = raw[:mid] + bytes([raw[mid] ^ 0xFF]) + raw[mid + 1 :]
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a checkpoint file (bad magic)")
    digest = raw[len(MAGIC) : len(MAGIC) + _DIGEST_LEN]
    payload = raw[len(MAGIC) + _DIGEST_LEN :]
    import hashlib

    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(
            f"{path} failed its checksum (torn or corrupt write)"
        )
    if len(payload) < _LEN_BYTES:
        raise CheckpointError(f"{path} is truncated")
    header_len = int.from_bytes(payload[:_LEN_BYTES], "little")
    header_end = _LEN_BYTES + header_len
    try:
        header = json.loads(payload[_LEN_BYTES:header_end].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path} has a malformed header: {exc}") from exc
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint schema {schema!r}, this build reads "
            f"{CHECKPOINT_SCHEMA_VERSION}"
        )
    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for spec in header.get("arrays", []):
        shape = tuple(int(s) for s in spec["shape"])
        dtype = np.dtype(spec["dtype"])
        nbytes = int(np.prod(shape)) * dtype.itemsize
        chunk = payload[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise CheckpointError(
                f"{path} payload is short for array {spec['name']!r}"
            )
        arrays[str(spec["name"])] = np.frombuffer(chunk, dtype=dtype).reshape(
            shape
        )
        offset += nbytes
    return Checkpoint(
        signature=str(header.get("signature", "")),
        t_next=int(header["t_next"]),
        arrays=arrays,
        path=path,
        schema=int(schema),
        unix_time=float(header.get("unix_time", 0.0)),
    )


def list_checkpoints(
    directory: str | Path, signature: str | None = None
) -> list[Path]:
    """Checkpoint files in ``directory``, newest timestep first.

    ``signature`` (full or 12-hex prefix) filters to one problem.
    """
    directory = Path(directory)
    prefix = signature[:12] if signature else None
    found: list[tuple[int, Path]] = []
    try:
        names = sorted(p.name for p in directory.iterdir())
    except OSError:
        return []
    for name in names:
        m = _FILE_RE.match(name)
        if not m:
            continue
        if prefix is not None and m.group(1) != prefix:
            continue
        found.append((int(m.group(2)), directory / name))
    found.sort(key=lambda item: item[0], reverse=True)
    return [p for _, p in found]


def _iter_valid(
    directory: str | Path, signature: str | None
) -> Iterator[Checkpoint]:
    """Yield loadable checkpoints newest-first, noting skipped damage."""
    for path in list_checkpoints(directory, signature):
        try:
            yield load_checkpoint(path)
        except CheckpointError:
            degradations.note("checkpoint:corrupt-skipped")


def newest_valid(
    directory: str | Path, problem
) -> Checkpoint | None:
    """The newest checkpoint that can resume ``problem``, or ``None``.

    Valid means: loads (checksum + schema), matches the problem's
    signature, and its ``t_next`` lies inside ``(t_start, t_end]`` — a
    checkpoint at or before the run's own start would not save work,
    and one past its end belongs to a longer horizon.  ``t_next ==
    t_end`` means the whole run already completed: zero blocks remain.
    Damaged files are skipped (with a degradation note) in favor of the
    next-newest; no valid file reads as "cold start".
    """
    signature = problem_signature_of(problem)
    for ckpt in _iter_valid(directory, signature):
        if ckpt.signature != signature:  # pragma: no cover - name-filtered
            continue
        if problem.t_start < ckpt.t_next <= problem.t_end:
            return ckpt
    return None


def prune(directory: str | Path, signature: str, keep: int) -> int:
    """Drop all but the ``keep`` newest checkpoints for ``signature``;
    returns how many files were removed.  Best-effort: an unremovable
    file is left behind rather than failing the run."""
    removed = 0
    for path in list_checkpoints(directory, signature)[keep:]:
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - defensive
            pass
    return removed


def resume(path: str | Path) -> Checkpoint:
    """Load a checkpoint for inspection or explicit resumption.

    ``path`` may be a checkpoint file or a checkpoint directory (the
    newest valid file wins; ties across problem signatures go to the
    highest timestep).  The result can be passed as
    ``RunOptions(resume_from=...)`` or examined directly
    (``.t_next``, ``.arrays``, ``.signature``).  Raises
    :class:`CheckpointError` when nothing valid is found.
    """
    path = Path(path)
    if path.is_dir():
        for ckpt in _iter_valid(path, None):
            return ckpt
        raise CheckpointError(f"no valid checkpoint found in {path}")
    return load_checkpoint(path)
