"""Resilience: crash-safe checkpoint/restart and fault injection.

Two pillars (see the module docstrings for the full contracts):

* :mod:`repro.resilience.checkpoint` — durable, checksummed snapshots
  of a run's live time window, taken at trapezoid-time-block
  boundaries by :mod:`repro.resilience.runner`; ``resume`` restarts a
  killed run mid-history with a bitwise-identical final grid.
* :mod:`repro.resilience.faults` — a registry of named failure sites
  (``REPRO_FAULTS`` or API-armed) that production code consults, so a
  test matrix can prove every degradation path holds.

:mod:`repro.resilience.degradations` records which fallbacks actually
fired into ``RunReport.degradations``.

This package imports nothing heavy at import time (no NumPy-free
guarantee — checkpoint needs it — but no compiler/registry probing),
so production modules can import :mod:`~repro.resilience.faults` and
:mod:`~repro.resilience.degradations` without cycles.
"""

from repro.resilience import degradations, faults
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointPolicy,
    list_checkpoints,
    load_checkpoint,
    resume,
    write_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultSpec

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointPolicy",
    "FaultPlan",
    "FaultSpec",
    "degradations",
    "faults",
    "list_checkpoints",
    "load_checkpoint",
    "resume",
    "write_checkpoint",
]
