"""The Phase-2 stencil compiler: kernel IR, clone generation, codegen.

The paper's compiler is a Haskell source-to-source translator emitting
Cilk C++; ours consumes the structured kernel AST and emits, per kernel,
two *clones* (Section 4, "Handling boundary conditions by code cloning"):

* an **interior clone** — no boundary checks, raw array indexing — used
  for zoids all of whose reads stay inside the grid, and
* a **boundary clone** — reduces virtual coordinates modulo the grid and
  resolves off-domain reads through the arrays' boundary functions.

Four backends generate these clones:

==================  ========================================================
``interp``          tree-walking evaluation (checked; the reference)
``macro_shadow``    generated per-point Python, unchecked direct indexing —
                    the ``-split-macro-shadow`` analogue
``split_pointer``   generated vectorized NumPy slice kernels — the
                    ``-split-pointer`` analogue (strength-reduced walking
                    of contiguous memory)
``c``               generated C99, compiled with the system compiler and
                    loaded via ctypes — the closest analogue of Pochoir's
                    optimized postsource
==================  ========================================================

``mode="auto"`` picks ``split_pointer`` (always available); ``"c"`` is an
explicit opt-in since it shells out to a toolchain.
"""

from repro.compiler.frontend import KernelIR, build_ir
from repro.compiler.pipeline import CompiledKernel, available_modes, compile_kernel

__all__ = [
    "CompiledKernel",
    "KernelIR",
    "available_modes",
    "build_ir",
    "compile_kernel",
]
