"""Compiler frontend: lower a language-level Problem to kernel IR.

The IR is simply the normalized statement list with parameters
substituted and constants folded, bundled with the geometric and storage
facts every backend needs (array metadata, shape footprint, boundary
kinds).  Validation already happened in :meth:`Stencil.prepare`; the
frontend re-derives only what codegen consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CompileError
from repro.expr.analysis import kernel_accesses
from repro.expr.nodes import Assign, Let, Statement
from repro.expr.transform import (
    collect_params,
    fold_statements,
    map_statement,
    substitute_params,
)
from repro.language.array import ConstArray, PochoirArray
from repro.language.stencil import Problem


@dataclass(frozen=True)
class ArrayInfo:
    """Storage facts codegen needs for one registered array."""

    name: str
    sizes: tuple[int, ...]
    slots: int
    dts: tuple[int, ...]  # distinct time offsets read/written
    boundary_key: tuple


@dataclass
class KernelIR:
    """Backend-independent compiled-kernel input (see module docstring)."""

    ndim: int
    sizes: tuple[int, ...]
    statements: tuple[Statement, ...]
    arrays: dict[str, PochoirArray]
    const_arrays: dict[str, ConstArray]
    array_infos: tuple[ArrayInfo, ...]
    write_arrays: tuple[str, ...]
    min_off: tuple[int, ...]
    max_off: tuple[int, ...]
    depth: int
    unbound_params: frozenset[str]

    def cache_key(self) -> tuple:
        """Hashable identity for the compiled-kernel cache."""
        return (
            self.statements,
            self.sizes,
            self.array_infos,
            tuple(sorted(self.const_arrays)),
        )


def _boundary_cache_key(arr: PochoirArray) -> tuple:
    from repro.language.boundary import (
        ConstantBoundary,
        DirichletBoundary,
        MixedBoundary,
        PythonBoundary,
    )

    b = arr.boundary
    if b is None:
        return ("none",)
    if isinstance(b, ConstantBoundary):
        return (type(b).__name__, b.value)
    if isinstance(b, DirichletBoundary):
        return (type(b).__name__, b.base, b.per_step)
    if isinstance(b, MixedBoundary):
        return (type(b).__name__, b.modes)
    if isinstance(b, PythonBoundary):
        return (type(b).__name__, id(b.fn))
    return (type(b).__name__,)


def build_ir(problem: Problem, params: dict[str, float] | None = None) -> KernelIR:
    """Lower a Problem to IR: substitute params, fold constants, gather
    per-array storage metadata."""
    bound = dict(problem.params)
    if params:
        bound.update(params)
    stmts: list[Statement] = []
    for st in problem.statements:
        new = map_statement(st, lambda e: None)
        if isinstance(new, Let):
            new = Let(new.name, substitute_params(new.expr, bound))
        elif isinstance(new, Assign):
            new = Assign(new.target, substitute_params(new.expr, bound))
        stmts.append(new)
    stmts = fold_statements(stmts)
    unbound = collect_params(stmts)

    summary = kernel_accesses(stmts)
    min_off, max_off = summary.min_max_offsets()
    if summary.ndim() == 0:
        # Kernel reads no grid (e.g. writes a constant): offsets default.
        min_off = (0,) * problem.ndim
        max_off = (0,) * problem.ndim

    infos: list[ArrayInfo] = []
    for name in sorted(problem.arrays):
        arr = problem.arrays[name]
        dts = set()
        for dt, _ in summary.reads.get(name, ()):
            dts.add(dt)
        if name in summary.writes:
            dts |= summary.writes[name]
        infos.append(
            ArrayInfo(
                name=name,
                sizes=arr.sizes,
                slots=arr.slots,
                dts=tuple(sorted(dts)),
                boundary_key=_boundary_cache_key(arr),
            )
        )

    write_arrays = tuple(sorted(summary.writes))
    if not write_arrays:
        raise CompileError("kernel writes no arrays")

    return KernelIR(
        ndim=problem.ndim,
        sizes=problem.sizes,
        statements=tuple(stmts),
        arrays=dict(problem.arrays),
        const_arrays=dict(problem.const_arrays),
        array_infos=tuple(infos),
        write_arrays=write_arrays,
        min_off=min_off,
        max_off=max_off,
        depth=problem.shape.depth,
        unbound_params=frozenset(unbound),
    )
