"""Per-point backends: the checked ``interp`` clones and the generated
``macro_shadow`` clones.

``interp`` wraps the tree-walking evaluator of :mod:`repro.expr.evalexpr`
in clone-shaped callables — the slowest mode and the semantic reference.

``macro_shadow`` is the analogue of the paper's ``-split-macro-shadow``
option (Figure 12(b)): the kernel is emitted as straight-line Python with
*direct, unchecked* ndarray indexing for the interior clone, eliminating
the boundary-checking accessor exactly as the paper's macro trick does.
The boundary clone keeps the checked accessor (``read_at``) for off-home
reads and reduces virtual coordinates modulo the grid sizes.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Callable

from repro.errors import CompileError, KernelError
from repro.compiler.frontend import KernelIR
from repro.expr.evalexpr import EvalEnv, eval_statements
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    UnOp,
    Where,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]


# ---------------------------------------------------------------------------
# interp clones
# ---------------------------------------------------------------------------


def make_interp_interior(ir: KernelIR) -> CloneFn:
    """Tree-walking interior clone: direct (unchecked) stored reads.

    A fresh :class:`EvalEnv` is allocated per invocation so concurrent
    base cases (the threaded executor, parallel loops) never share
    mutable evaluation state.
    """
    arrays = ir.arrays
    const_arrays = ir.const_arrays
    stmts = ir.statements

    def read_const(name: str, indices: tuple[int, ...]) -> float:
        return const_arrays[name].read(indices)

    def interior(t: int, lo: tuple[int, ...], hi: tuple[int, ...]) -> None:
        def read(name: str, dt: int, point: tuple[int, ...]) -> float:
            arr = arrays[name]
            return float(arr.data[((t + dt) % arr.slots, *point)])

        def write(
            name: str, dt: int, point: tuple[int, ...], value: float
        ) -> None:
            arr = arrays[name]
            arr.data[((t + dt) % arr.slots, *point)] = value

        env = EvalEnv(
            t=t, point=(), read=read, write=write, read_const=read_const
        )
        ranges = [range(l, h) for l, h in zip(lo, hi)]
        for pt in product(*ranges):
            env.point = pt
            eval_statements(stmts, env)

    return interior


def make_interp_boundary(ir: KernelIR) -> CloneFn:
    """Tree-walking boundary clone: modulo write coordinates, boundary-
    resolved reads (the unified periodic/nonperiodic handling of §4)."""
    arrays = ir.arrays
    const_arrays = ir.const_arrays
    stmts = ir.statements
    sizes = ir.sizes

    def read_const(name: str, indices: tuple[int, ...]) -> float:
        return const_arrays[name].read(indices)

    def boundary(t: int, lo: tuple[int, ...], hi: tuple[int, ...]) -> None:
        def read(name: str, dt: int, point: tuple[int, ...]) -> float:
            return arrays[name].read_at(t + dt, point)

        def write(
            name: str, dt: int, point: tuple[int, ...], value: float
        ) -> None:
            arr = arrays[name]
            arr.data[((t + dt) % arr.slots, *point)] = value

        env = EvalEnv(
            t=t, point=(), read=read, write=write, read_const=read_const
        )
        ranges = [range(l, h) for l, h in zip(lo, hi)]
        for vpt in product(*ranges):
            # Virtual -> true coordinates: the kernel sees true coords.
            env.point = tuple(v % n for v, n in zip(vpt, sizes))
            eval_statements(stmts, env)

    return boundary


# ---------------------------------------------------------------------------
# macro_shadow codegen
# ---------------------------------------------------------------------------

_PY_MATH = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "fabs": "fabs",
    "floor": "_floor",
    "ceil": "_ceil",
}


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


class _PointCodegen:
    """Shared expression codegen for per-point Python (both clones)."""

    def __init__(self, ir: KernelIR, boundary_mode: bool):
        self.ir = ir
        self.boundary_mode = boundary_mode

    def axis_name(self, i: int) -> str:
        return f"x{i}"

    def affine(self, index) -> str:
        parts: list[str] = []
        for ax, c in index.terms:
            base = "t" if ax.is_time else self.axis_name(ax.position)
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")"

    def grid_read(self, node: GridRead) -> str:
        idx = []
        for i, off in enumerate(node.offsets):
            name = self.axis_name(i)
            idx.append(name if off == 0 else f"{name}{off:+d}")
        subs = ", ".join(idx)
        if self.boundary_mode:
            return f"R_{node.array}(t{node.dt:+d}, ({subs},))"
        return f"D_{node.array}[s_{node.array}_{_slot_tag(node.dt)}, {subs}]"

    def const_read(self, node: ConstArrayRead) -> str:
        sizes = self.ir.const_arrays[node.array].sizes
        idx = [
            f"min(max({self.affine(ix)}, 0), {n - 1})"
            for ix, n in zip(node.indices, sizes)
        ]
        return f"C_{node.array}[{', '.join(idx)}]"

    def val(self, e: Expr) -> str:
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            return f"float{self.affine(e.index)}"
        if isinstance(e, LocalRead):
            return f"L_{e.name}"
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            return self.const_read(e)
        if isinstance(e, BinOp):
            a, b = self.val(e.left), self.val(e.right)
            if e.op == "min":
                return f"min({a}, {b})"
            if e.op == "max":
                return f"max({a}, {b})"
            if e.op == "%":
                return f"fmod({a}, {b})"
            if e.op == "**":
                return f"({a} ** {b})"
            return f"({a} {e.op} {b})"
        if isinstance(e, UnOp):
            v = self.val(e.operand)
            return f"(-{v})" if e.op == "neg" else f"abs({v})"
        if isinstance(e, (Compare, BoolOp, NotOp)):
            return f"(1.0 if {self.bool(e)} else 0.0)"
        if isinstance(e, Where):
            return (
                f"({self.val(e.if_true)} if {self.bool(e.cond)} "
                f"else {self.val(e.if_false)})"
            )
        if isinstance(e, Call):
            args = ", ".join(self.val(a) for a in e.args)
            return f"{_PY_MATH[e.func]}({args})"
        raise KernelError(f"cannot generate code for {type(e).__name__}")

    def bool(self, e: Expr) -> str:
        if isinstance(e, Compare):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, BoolOp):
            op = "and" if e.op == "and" else "or"
            return f"({self.bool(e.left)} {op} {self.bool(e.right)})"
        if isinstance(e, NotOp):
            return f"(not {self.bool(e.operand)})"
        return f"({self.val(e)} != 0.0)"


def _clone_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    """Generate the source text of one macro_shadow clone."""
    gen = _PointCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "boundary" if boundary_mode else "interior"
    lines = [f"def {name}(t, lo, hi):"]
    empty = " or ".join(f"hi[{i}] <= lo[{i}]" for i in range(d))
    lines.append(f"    if {empty}:")
    lines.append("        return")
    for info in ir.array_infos:
        for dt in info.dts:
            if boundary_mode and dt != 0:
                continue  # off-home reads go through R_<name> accessors
            lines.append(
                f"    s_{info.name}_{_slot_tag(dt)} = (t{dt:+d}) % {info.slots}"
            )
    indent = "    "
    loop_var = "v" if boundary_mode else "x"
    for i in range(d):
        lines.append(
            f"{indent}for {loop_var}{i} in range(lo[{i}], hi[{i}]):"
        )
        indent += "    "
        if boundary_mode:
            lines.append(f"{indent}x{i} = v{i} % {ir.sizes[i]}")
    for st in ir.statements:
        if isinstance(st, Let):
            lines.append(f"{indent}L_{st.name} = {gen.val(st.expr)}")
        elif isinstance(st, Assign):
            arr = st.target.array
            home = ", ".join(f"x{i}" for i in range(d))
            lines.append(
                f"{indent}D_{arr}[s_{arr}_{_slot_tag(0)}, {home}] = "
                f"{gen.val(st.expr)}"
            )
    return "\n".join(lines)


def _namespace(ir: KernelIR) -> dict:
    ns: dict = {
        "exp": math.exp,
        "log": math.log,
        "sqrt": math.sqrt,
        "sin": math.sin,
        "cos": math.cos,
        "tanh": math.tanh,
        "fabs": math.fabs,
        "_floor": math.floor,
        "_ceil": math.ceil,
        "fmod": math.fmod,
    }
    for arr_name, arr in ir.arrays.items():
        ns[f"D_{arr_name}"] = arr.data
        ns[f"R_{arr_name}"] = arr.read_at
    for c_name, c in ir.const_arrays.items():
        ns[f"C_{c_name}"] = c.values
    return ns


def make_macro_shadow_interior(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generated per-point interior clone (returns the function and its
    source text for diagnostics/tests)."""
    src = _clone_source(ir, boundary_mode=False)
    ns = _namespace(ir)
    exec(compile(src, f"<macro_shadow:{'_'.join(ir.write_arrays)}>", "exec"), ns)
    return ns["interior"], src


def make_macro_shadow_boundary(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generated per-point boundary clone (modulo writes, checked reads)."""
    src = _clone_source(ir, boundary_mode=True)
    ns = _namespace(ir)
    exec(compile(src, f"<macro_shadow_bnd:{'_'.join(ir.write_arrays)}>", "exec"), ns)
    return ns["boundary"], src
