"""The ``c`` backend: generated C99 clones compiled with the system cc.

This is the closest analogue of Pochoir's optimized postsource: the
kernel becomes straight-line C with flat pointer arithmetic (strides
baked in as compile-time constants), built as a shared object and loaded
through ctypes.  The interior clone does raw unchecked indexing; the
boundary clone reduces coordinates with a sign-safe ``MOD`` macro — the
same mod trick as Figure 6 line 1 of the paper — and resolves off-domain
reads per the array's boundary kind (periodic wrap, Neumann clamp,
Dirichlet fill).

Compiled objects are cached on disk keyed by a hash of the generated
source, so repeated runs (and repeated test invocations) pay the compiler
cost once.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import CompileError, KernelError
from repro.compiler.frontend import KernelIR
from repro.compiler.codegen_numpy import boundary_fill_expr, boundary_modes
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    UnOp,
    Where,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]

_C_MATH = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "fabs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
}

_PRELUDE = """\
#include <math.h>
#define MOD(a, n) ((((a) % (n)) + (n)) % (n))
#define CLAMP(a, n) ((a) < 0 ? 0L : ((a) >= (n) ? (n) - 1L : (a)))
typedef long long i64;
"""


def find_c_compiler() -> str | None:
    """Path of a usable C compiler, or None."""
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _strides(sizes: tuple[int, ...]) -> tuple[int, ...]:
    out = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        out[i] = out[i + 1] * sizes[i + 1]
    return tuple(out)


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


def _fmt_const(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v)}.0"
    return repr(v)


class _CCodegen:
    """Expression codegen for C (both clones)."""

    def __init__(self, ir: KernelIR, boundary_mode: bool):
        self.ir = ir
        self.boundary_mode = boundary_mode

    def affine(self, index) -> str:
        parts: list[str] = []
        for ax, c in index.terms:
            base = "t" if ax.is_time else f"x{ax.position}"
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")"

    def _flat_index(self, array: str, coord_exprs: list[str]) -> str:
        sizes = self.ir.arrays[array].sizes
        strides = _strides(sizes)
        terms = []
        for expr, stride in zip(coord_exprs, strides):
            terms.append(expr if stride == 1 else f"({expr})*{stride}L")
        return " + ".join(terms) if terms else "0"

    def grid_read(self, node: GridRead) -> str:
        arr = self.ir.arrays[node.array]
        slot = f"s_{node.array}_{_slot_tag(node.dt)}"
        base = f"{slot}*{arr.spatial_points}L"
        if not self.boundary_mode:
            coords = [
                f"x{i}" if off == 0 else f"(x{i}{off:+d})"
                for i, off in enumerate(node.offsets)
            ]
            return f"D_{node.array}[{base} + {self._flat_index(node.array, coords)}]"
        # Boundary clone: x{i} are true coords; map the read coordinate
        # per the array's boundary kind.
        modes = boundary_modes(arr.boundary, self.ir.ndim)
        raw = [
            f"x{i}" if off == 0 else f"(x{i}{off:+d})"
            for i, off in enumerate(node.offsets)
        ]
        if modes is not None:
            mapped = []
            for i, (r, mode) in enumerate(zip(raw, modes)):
                macro = "MOD" if mode == "mod" else "CLAMP"
                mapped.append(f"{macro}({r}, {arr.sizes[i]}L)")
            return (
                f"D_{node.array}[{base} + {self._flat_index(node.array, mapped)}]"
            )
        assert arr.boundary is not None
        # The fill expression from the NumPy backend — e.g. "0.0" or
        # "(100.0 + 0.2 * (t-1))" — is valid C as well: t is an integer
        # variable and mixed arithmetic promotes to double.
        fill = boundary_fill_expr(arr.boundary, node.dt)
        if fill is None:
            raise CompileError(
                f"boundary {arr.boundary.describe()} of array "
                f"{node.array!r} is not expressible in C"
            )
        guard = " && ".join(
            f"({r} >= 0 && {r} < {arr.sizes[i]}L)" for i, r in enumerate(raw)
        )
        in_value = f"D_{node.array}[{base} + {self._flat_index(node.array, raw)}]"
        return f"(({guard}) ? {in_value} : {fill})"

    def const_read(self, node: ConstArrayRead) -> str:
        c = self.ir.const_arrays[node.array]
        sizes = c.sizes
        strides = _strides(tuple(sizes))
        terms = []
        for ix, n, stride in zip(node.indices, sizes, strides):
            clamped = f"CLAMP({self.affine(ix)}, {n}L)"
            terms.append(clamped if stride == 1 else f"({clamped})*{stride}L")
        return f"C_{node.array}[{' + '.join(terms)}]"

    def val(self, e: Expr) -> str:
        if isinstance(e, Const):
            return _fmt_const(e.value)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            return f"((double){self.affine(e.index)})"
        if isinstance(e, LocalRead):
            return f"L_{e.name}"
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            return self.const_read(e)
        if isinstance(e, BinOp):
            a, b = self.val(e.left), self.val(e.right)
            if e.op == "min":
                return f"fmin({a}, {b})"
            if e.op == "max":
                return f"fmax({a}, {b})"
            if e.op == "%":
                return f"fmod({a}, {b})"
            if e.op == "**":
                return f"pow({a}, {b})"
            return f"({a} {e.op} {b})"
        if isinstance(e, UnOp):
            v = self.val(e.operand)
            return f"(-{v})" if e.op == "neg" else f"fabs({v})"
        if isinstance(e, (Compare, BoolOp, NotOp)):
            return f"({self.cond(e)} ? 1.0 : 0.0)"
        if isinstance(e, Where):
            return (
                f"({self.cond(e.cond)} ? {self.val(e.if_true)} : "
                f"{self.val(e.if_false)})"
            )
        if isinstance(e, Call):
            args = ", ".join(self.val(a) for a in e.args)
            return f"{_C_MATH[e.func]}({args})"
        raise KernelError(f"cannot generate C for {type(e).__name__}")

    def cond(self, e: Expr) -> str:
        if isinstance(e, Compare):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, BoolOp):
            op = "&&" if e.op == "and" else "||"
            return f"({self.cond(e.left)} {op} {self.cond(e.right)})"
        if isinstance(e, NotOp):
            return f"(!{self.cond(e.operand)})"
        return f"({self.val(e)} != 0.0)"


def _fn_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    gen = _CCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "boundary_step" if boundary_mode else "interior_step"
    args = []
    for info in ir.array_infos:
        args.append(f"double* D_{info.name}")
    for cname in sorted(ir.const_arrays):
        args.append(f"const double* C_{cname}")
    args.append("i64 t")
    args.append("const i64* lo")
    args.append("const i64* hi")
    lines = [f"void {name}({', '.join(args)}) {{"]
    for info in ir.array_infos:
        for dt in info.dts:
            lines.append(
                f"  const i64 s_{info.name}_{_slot_tag(dt)} = "
                f"MOD(t{dt:+d}, {info.slots}L);"
            )
    indent = "  "
    loop_var = "v" if boundary_mode else "x"
    for i in range(d):
        lines.append(
            f"{indent}for (i64 {loop_var}{i} = lo[{i}]; "
            f"{loop_var}{i} < hi[{i}]; ++{loop_var}{i}) {{"
        )
        indent += "  "
        if boundary_mode:
            lines.append(f"{indent}const i64 x{i} = MOD(v{i}, {ir.sizes[i]}L);")
    for st in ir.statements:
        if isinstance(st, Let):
            lines.append(f"{indent}const double L_{st.name} = {gen.val(st.expr)};")
        elif isinstance(st, Assign):
            arr_name = st.target.array
            arr = ir.arrays[arr_name]
            coords = [f"x{i}" for i in range(d)]
            flat = gen._flat_index(arr_name, coords)
            lines.append(
                f"{indent}D_{arr_name}[s_{arr_name}_{_slot_tag(0)}*"
                f"{arr.spatial_points}L + {flat}] = {gen.val(st.expr)};"
            )
    for i in range(d):
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    lines.append("}")
    return "\n".join(lines)


def generate_c_source(ir: KernelIR, *, include_boundary: bool = True) -> str:
    """The full postsource: prelude + interior (+ boundary) clones."""
    parts = [_PRELUDE, _fn_source(ir, boundary_mode=False)]
    if include_boundary:
        parts.append(_fn_source(ir, boundary_mode=True))
    return "\n\n".join(parts) + "\n"


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CC_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path(tempfile.gettempdir()) / "repro_cc_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def build_shared_object(source: str) -> Path:
    """Compile C source to a cached shared object; return its path."""
    cc = find_c_compiler()
    if cc is None:
        raise CompileError("no C compiler found (tried $CC, cc, gcc, clang)")
    digest = hashlib.sha256(source.encode()).hexdigest()[:24]
    cache = _cache_dir()
    so_path = cache / f"kernel_{digest}.so"
    if so_path.exists():
        return so_path
    c_path = cache / f"kernel_{digest}.c"
    c_path.write_text(source)
    tmp_so = cache / f"kernel_{digest}.{os.getpid()}.tmp.so"
    cmd = [cc, "-O2", "-fPIC", "-shared", "-o", str(tmp_so), str(c_path), "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise CompileError(
            f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr}"
        )
    os.replace(tmp_so, so_path)
    return so_path


def _wrap(
    lib_fn, ir: KernelIR
) -> CloneFn:
    d = ir.ndim
    arr_ptrs = [
        ir.arrays[info.name].data.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        for info in ir.array_infos
    ]
    # Keep contiguous const buffers alive for the lifetime of the clone:
    # ctypes pointers do not hold a reference to their source array.
    const_bufs = [
        np.ascontiguousarray(ir.const_arrays[n].values)
        for n in sorted(ir.const_arrays)
    ]
    const_ptrs = [
        buf.ctypes.data_as(ctypes.POINTER(ctypes.c_double)) for buf in const_bufs
    ]
    IdxArr = ctypes.c_longlong * d

    def clone(
        t: int,
        lo: tuple[int, ...],
        hi: tuple[int, ...],
        _keepalive=const_bufs,
    ) -> None:
        lib_fn(*arr_ptrs, *const_ptrs, t, IdxArr(*lo), IdxArr(*hi))

    return clone


def make_c_clones(ir: KernelIR) -> tuple[CloneFn, CloneFn | None, str]:
    """Compile interior and (if expressible) boundary clones to C.

    Returns (interior, boundary_or_None, source).  A None boundary means
    the array set uses a boundary kind C cannot express (PythonBoundary);
    the pipeline substitutes the per-point Python boundary clone.
    """
    from repro.compiler.codegen_numpy import is_vectorizable_boundary

    boundary_ok = all(
        is_vectorizable_boundary(a.boundary) for a in ir.arrays.values()
    )
    source = generate_c_source(ir, include_boundary=boundary_ok)
    so_path = build_shared_object(source)
    lib = ctypes.CDLL(str(so_path))

    n_ptr_args = len(ir.array_infos) + len(ir.const_arrays)
    argtypes = [ctypes.POINTER(ctypes.c_double)] * n_ptr_args + [
        ctypes.c_longlong,
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_longlong),
    ]
    lib.interior_step.argtypes = argtypes
    lib.interior_step.restype = None
    interior = _wrap(lib.interior_step, ir)
    boundary: CloneFn | None = None
    if boundary_ok:
        lib.boundary_step.argtypes = argtypes
        lib.boundary_step.restype = None
        boundary = _wrap(lib.boundary_step, ir)
    return interior, boundary, source
