"""The ``c`` backend: generated C99 clones compiled with the system cc.

This is the closest analogue of Pochoir's optimized postsource: the
kernel becomes straight-line C with flat pointer arithmetic (strides
baked in as compile-time constants), built as a shared object and loaded
through ctypes.  The interior clone does raw unchecked indexing; the
boundary clone reduces coordinates with a sign-safe ``MOD`` macro — the
same mod trick as Figure 6 line 1 of the paper — and resolves off-domain
reads per the array's boundary kind (periodic wrap, Neumann clamp,
Dirichlet fill).

Four clones are generated per kernel, mirroring the ``split_pointer``
backend:

* ``interior_step`` / ``boundary_step`` — one time step on one region.
* ``leaf`` / ``leaf_boundary`` — the *fused* base-case clones: the whole
  trapezoid (time loop, per-step slope shifting of the bounds, ping-pong
  slot arithmetic, per-point boundary resolution) runs inside one C
  function, invoked once per base case.  Because the per-point MOD/CLAMP
  mapping is exact for any virtual box, the C fused boundary leaf never
  declines a region — unlike the NumPy snapshot leaf, which must fall
  back for wrapped home ranges under clip/fill boundaries.

Every clone takes its bounds as *scalar* ``i64`` arguments (the
dimensionality is a codegen-time constant), so a call marshals a handful
of ints: no per-call ctypes array construction, no shared argument
buffers for DAG workers to contend on.  ``argtypes``/``restype`` are
prebound once at load.  ctypes releases the GIL for the duration of
every call, so parallel executors get true multicore execution out of
these clones.

Compiled objects are cached on disk keyed by a hash of the generated
source *and the compiler's identity* (path + version banner), so
repeated runs pay the compiler cost once and a toolchain upgrade can
never load a stale shared object.  A cache entry that fails to load
(truncated write, foreign architecture) is evicted and rebuilt instead
of erroring.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import CompileError, KernelError
from repro.compiler.frontend import KernelIR
from repro.compiler.codegen_numpy import (
    LeafFn,
    boundary_fill_expr,
    boundary_modes,
    is_vectorizable_boundary,
)
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    UnOp,
    Where,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]

_C_MATH = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "fabs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
}

_PRELUDE = """\
#include <math.h>
#define MOD(a, n) ((((a) % (n)) + (n)) % (n))
#define CLAMP(a, n) ((a) < 0 ? 0L : ((a) >= (n) ? (n) - 1L : (a)))
typedef long long i64;
"""


def find_c_compiler() -> str | None:
    """Path of a usable C compiler, or None.

    ``REPRO_NO_CC`` (any non-empty value) forces None — the hook CI's
    no-toolchain job leg uses to prove the ``c`` mode degrades cleanly
    on machines without a compiler.
    """
    if os.environ.get("REPRO_NO_CC"):
        return None
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


#: cc path -> one-line identity ("basename|version banner"), memoized per
#: process; subprocessing the compiler per compile_kernel call would cost
#: more than the cache lookup it keys.
_CC_IDENTITY: dict[str, str] = {}


def compiler_identity(cc: str) -> str:
    """Stable one-line identity of the toolchain (name + version banner).

    Folded into the on-disk cache digest so that upgrading or switching
    the compiler invalidates every cached shared object built by the old
    one — a stale ``.so`` with a source-only key would silently survive a
    toolchain change.
    """
    ident = _CC_IDENTITY.get(cc)
    if ident is None:
        banner = ""
        try:
            proc = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=10
            )
            out = (proc.stdout or proc.stderr).strip().splitlines()
            if out:
                banner = out[0]
        except (OSError, subprocess.TimeoutExpired):
            pass
        ident = f"{os.path.basename(cc)}|{banner}"
        _CC_IDENTITY[cc] = ident
    return ident


def _strides(sizes: tuple[int, ...]) -> tuple[int, ...]:
    out = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        out[i] = out[i + 1] * sizes[i + 1]
    return tuple(out)


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


def _fmt_const(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v)}.0"
    return repr(v)


class _CCodegen:
    """Expression codegen for C (both clones)."""

    def __init__(self, ir: KernelIR, boundary_mode: bool):
        self.ir = ir
        self.boundary_mode = boundary_mode

    def affine(self, index) -> str:
        parts: list[str] = []
        for ax, c in index.terms:
            base = "t" if ax.is_time else f"x{ax.position}"
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")"

    def _flat_index(self, array: str, coord_exprs: list[str]) -> str:
        sizes = self.ir.arrays[array].sizes
        strides = _strides(sizes)
        terms = []
        for expr, stride in zip(coord_exprs, strides):
            terms.append(expr if stride == 1 else f"({expr})*{stride}L")
        return " + ".join(terms) if terms else "0"

    def grid_read(self, node: GridRead) -> str:
        arr = self.ir.arrays[node.array]
        slot = f"s_{node.array}_{_slot_tag(node.dt)}"
        base = f"{slot}*{arr.spatial_points}L"
        if not self.boundary_mode:
            coords = [
                f"x{i}" if off == 0 else f"(x{i}{off:+d})"
                for i, off in enumerate(node.offsets)
            ]
            return f"D_{node.array}[{base} + {self._flat_index(node.array, coords)}]"
        # Boundary clone: x{i} are true coords; map the read coordinate
        # per the array's boundary kind.
        modes = boundary_modes(arr.boundary, self.ir.ndim)
        raw = [
            f"x{i}" if off == 0 else f"(x{i}{off:+d})"
            for i, off in enumerate(node.offsets)
        ]
        if modes is not None:
            mapped = []
            for i, (r, mode) in enumerate(zip(raw, modes)):
                macro = "MOD" if mode == "mod" else "CLAMP"
                mapped.append(f"{macro}({r}, {arr.sizes[i]}L)")
            return (
                f"D_{node.array}[{base} + {self._flat_index(node.array, mapped)}]"
            )
        assert arr.boundary is not None
        # The fill expression from the NumPy backend — e.g. "0.0" or
        # "(100.0 + 0.2 * (t-1))" — is valid C as well: t is an integer
        # variable and mixed arithmetic promotes to double.
        fill = boundary_fill_expr(arr.boundary, node.dt)
        if fill is None:
            raise CompileError(
                f"boundary {arr.boundary.describe()} of array "
                f"{node.array!r} is not expressible in C"
            )
        guard = " && ".join(
            f"({r} >= 0 && {r} < {arr.sizes[i]}L)" for i, r in enumerate(raw)
        )
        in_value = f"D_{node.array}[{base} + {self._flat_index(node.array, raw)}]"
        return f"(({guard}) ? {in_value} : {fill})"

    def const_read(self, node: ConstArrayRead) -> str:
        c = self.ir.const_arrays[node.array]
        sizes = c.sizes
        strides = _strides(tuple(sizes))
        terms = []
        for ix, n, stride in zip(node.indices, sizes, strides):
            clamped = f"CLAMP({self.affine(ix)}, {n}L)"
            terms.append(clamped if stride == 1 else f"({clamped})*{stride}L")
        return f"C_{node.array}[{' + '.join(terms)}]"

    def val(self, e: Expr) -> str:
        if isinstance(e, Const):
            return _fmt_const(e.value)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            return f"((double){self.affine(e.index)})"
        if isinstance(e, LocalRead):
            return f"L_{e.name}"
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            return self.const_read(e)
        if isinstance(e, BinOp):
            a, b = self.val(e.left), self.val(e.right)
            if e.op == "min":
                return f"fmin({a}, {b})"
            if e.op == "max":
                return f"fmax({a}, {b})"
            if e.op == "%":
                return f"fmod({a}, {b})"
            if e.op == "**":
                return f"pow({a}, {b})"
            return f"({a} {e.op} {b})"
        if isinstance(e, UnOp):
            v = self.val(e.operand)
            return f"(-{v})" if e.op == "neg" else f"fabs({v})"
        if isinstance(e, (Compare, BoolOp, NotOp)):
            return f"({self.cond(e)} ? 1.0 : 0.0)"
        if isinstance(e, Where):
            return (
                f"({self.cond(e.cond)} ? {self.val(e.if_true)} : "
                f"{self.val(e.if_false)})"
            )
        if isinstance(e, Call):
            args = ", ".join(self.val(a) for a in e.args)
            return f"{_C_MATH[e.func]}({args})"
        raise KernelError(f"cannot generate C for {type(e).__name__}")

    def cond(self, e: Expr) -> str:
        if isinstance(e, Compare):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, BoolOp):
            op = "&&" if e.op == "and" else "||"
            return f"({self.cond(e.left)} {op} {self.cond(e.right)})"
        if isinstance(e, NotOp):
            return f"(!{self.cond(e.operand)})"
        return f"({self.val(e)} != 0.0)"


def _ptr_args(ir: KernelIR) -> list[str]:
    """Data-pointer parameters shared by every clone signature."""
    args = [f"double* D_{info.name}" for info in ir.array_infos]
    args.extend(f"const double* C_{c}" for c in sorted(ir.const_arrays))
    return args


def _slot_lines(ir: KernelIR, indent: str) -> list[str]:
    return [
        f"{indent}const i64 s_{info.name}_{_slot_tag(dt)} = "
        f"MOD(t{dt:+d}, {info.slots}L);"
        for info in ir.array_infos
        for dt in info.dts
    ]


def _body_lines(
    ir: KernelIR, gen: _CCodegen, indent: str, *, boundary_mode: bool
) -> list[str]:
    """The per-point loop nest shared by the per-step and fused clones.

    Interior clones loop ``x{i}`` straight over the (in-domain) bounds;
    boundary clones loop virtual ``v{i}`` and reduce to true coordinates
    with the sign-safe MOD.
    """
    d = ir.ndim
    lines: list[str] = []
    loop_var = "v" if boundary_mode else "x"
    for i in range(d):
        lines.append(
            f"{indent}for (i64 {loop_var}{i} = l{i}; "
            f"{loop_var}{i} < h{i}; ++{loop_var}{i}) {{"
        )
        indent += "  "
        if boundary_mode:
            lines.append(f"{indent}const i64 x{i} = MOD(v{i}, {ir.sizes[i]}L);")
    for st in ir.statements:
        if isinstance(st, Let):
            lines.append(f"{indent}const double L_{st.name} = {gen.val(st.expr)};")
        elif isinstance(st, Assign):
            arr_name = st.target.array
            arr = ir.arrays[arr_name]
            coords = [f"x{i}" for i in range(d)]
            flat = gen._flat_index(arr_name, coords)
            lines.append(
                f"{indent}D_{arr_name}[s_{arr_name}_{_slot_tag(0)}*"
                f"{arr.spatial_points}L + {flat}] = {gen.val(st.expr)};"
            )
    for _ in range(d):
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    return lines


def _fn_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    """One-time-step clone: ``(ptrs..., t, l0.., h0..)``, scalar bounds."""
    gen = _CCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "boundary_step" if boundary_mode else "interior_step"
    args = _ptr_args(ir) + ["i64 t"]
    args += [f"i64 l{i}" for i in range(d)]
    args += [f"i64 h{i}" for i in range(d)]
    lines = [f"void {name}({', '.join(args)}) {{"]
    lines.extend(_slot_lines(ir, "  "))
    lines.extend(_body_lines(ir, gen, "  ", boundary_mode=boundary_mode))
    lines.append("}")
    return "\n".join(lines)


def _leaf_fn_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    """The fused base-case clone: the whole trapezoid inside one call.

    ``(ptrs..., ta, tb, l0.., h0.., dl0.., dh0..)`` runs the time loop
    ``[ta, tb)``, shifting each dimension's bounds by its zoid slopes
    after every step (Figure 2, lines 20-28).  Slot arithmetic is
    re-derived per step (the ping-pong MOD); an empty shifted box costs
    one loop-bound test.  Bounds arrive by value, so the slope shift
    mutates the parameters directly.
    """
    gen = _CCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "leaf_boundary" if boundary_mode else "leaf"
    args = _ptr_args(ir) + ["i64 ta", "i64 tb"]
    args += [f"i64 l{i}" for i in range(d)]
    args += [f"i64 h{i}" for i in range(d)]
    args += [f"i64 dl{i}" for i in range(d)]
    args += [f"i64 dh{i}" for i in range(d)]
    lines = [f"void {name}({', '.join(args)}) {{"]
    lines.append("  for (i64 t = ta; t < tb; ++t) {")
    lines.extend(_slot_lines(ir, "    "))
    lines.extend(_body_lines(ir, gen, "    ", boundary_mode=boundary_mode))
    shift = " ".join(f"l{i} += dl{i}; h{i} += dh{i};" for i in range(d))
    lines.append(f"    {shift}")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def generate_c_source(ir: KernelIR, *, include_boundary: bool = True) -> str:
    """The full postsource: prelude + per-step and fused clone pairs."""
    parts = [
        _PRELUDE,
        _fn_source(ir, boundary_mode=False),
        _leaf_fn_source(ir, boundary_mode=False),
    ]
    if include_boundary:
        parts.append(_fn_source(ir, boundary_mode=True))
        parts.append(_leaf_fn_source(ir, boundary_mode=True))
    return "\n\n".join(parts) + "\n"


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CC_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path(tempfile.gettempdir()) / "repro_cc_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


#: Compile flags, part of the cache digest (changing them must not load
#: an object built with the old set).  ``-ffp-contract=off`` pins the
#: floating-point semantics to the expression tree: without it, gcc -O2
#: contracts a*b+c into fused multiply-add on FMA-default targets (e.g.
#: aarch64), breaking the bitwise C-vs-NumPy equivalence contract the
#: tests and CI smoke enforce.
_CFLAGS = ("-O2", "-ffp-contract=off", "-fPIC", "-shared")


def build_shared_object(source: str, *, force: bool = False) -> Path:
    """Compile C source to a cached shared object; return its path.

    The cache key hashes the source, the compile flags *and*
    :func:`compiler_identity`, so a toolchain upgrade (or flag change)
    compiles afresh instead of loading the old object.  ``force``
    recompiles even when a cached object exists (the load-failure
    eviction path).
    """
    cc = find_c_compiler()
    if cc is None:
        raise CompileError("no C compiler found (tried $CC, cc, gcc, clang)")
    digest = hashlib.sha256(
        f"{compiler_identity(cc)}\n{' '.join(_CFLAGS)}\n{source}".encode()
    ).hexdigest()[:24]
    cache = _cache_dir()
    so_path = cache / f"kernel_{digest}.so"
    if so_path.exists() and not force:
        return so_path
    c_path = cache / f"kernel_{digest}.c"
    c_path.write_text(source)
    tmp_so = cache / f"kernel_{digest}.{os.getpid()}.tmp.so"
    cmd = [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path), "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise CompileError(
            f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr}"
        )
    os.replace(tmp_so, so_path)
    return so_path


def load_shared_object(source: str) -> ctypes.CDLL:
    """Build (or reuse) and load the shared object for ``source``.

    A cached object that fails to load — truncated write from a killed
    process, an object built for another architecture carried over in a
    shared cache dir — is *evicted* and rebuilt once, instead of pinning
    the cache in a permanently broken state.
    """
    so_path = build_shared_object(source)
    try:
        return ctypes.CDLL(str(so_path))
    except OSError:
        try:
            so_path.unlink()
        except OSError:
            pass
        return ctypes.CDLL(str(build_shared_object(source, force=True)))


@dataclass
class CClones:
    """The compiled C entry points for one kernel.

    ``boundary``/``leaf_boundary`` are None when some array uses a
    boundary kind C cannot express (PythonBoundary); the pipeline
    substitutes the per-point Python boundary clone and per-step
    fallback, same as the NumPy backend.
    """

    interior: CloneFn
    boundary: CloneFn | None
    leaf: LeafFn
    leaf_boundary: LeafFn | None
    source: str


def make_c_clones(ir: KernelIR) -> CClones:
    """Compile all four clones to C and bind them through ctypes.

    ``argtypes``/``restype`` are prebound here, once per compiled clone;
    calls then marshal plain Python ints into scalar ``i64`` parameters.
    There are no per-call ctypes arrays and no mutable shared argument
    buffers, so DAG workers invoke the same clone concurrently without
    contending — and ctypes drops the GIL for the duration of each call,
    which is what lets the task-DAG runtime scale on multicore hosts.
    """
    boundary_ok = all(
        is_vectorizable_boundary(a.boundary) for a in ir.arrays.values()
    )
    source = generate_c_source(ir, include_boundary=boundary_ok)
    lib = load_shared_object(source)

    d = ir.ndim
    n_ptr_args = len(ir.array_infos) + len(ir.const_arrays)
    ptr_types = [ctypes.POINTER(ctypes.c_double)] * n_ptr_args
    step_argtypes = ptr_types + [ctypes.c_longlong] * (1 + 2 * d)
    leaf_argtypes = ptr_types + [ctypes.c_longlong] * (2 + 4 * d)

    arr_ptrs = [
        ir.arrays[info.name].data.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        for info in ir.array_infos
    ]
    # Keep contiguous const buffers alive for the lifetime of the clones:
    # ctypes pointers do not hold a reference to their source array.
    const_bufs = [
        np.ascontiguousarray(ir.const_arrays[n].values)
        for n in sorted(ir.const_arrays)
    ]
    ptrs = tuple(arr_ptrs) + tuple(
        buf.ctypes.data_as(ctypes.POINTER(ctypes.c_double)) for buf in const_bufs
    )

    def bind_step(fn) -> CloneFn:
        fn.argtypes = step_argtypes
        fn.restype = None

        def clone(t, lo, hi, _keepalive=const_bufs):
            fn(*ptrs, t, *lo, *hi)

        return clone

    def bind_leaf(fn) -> LeafFn:
        fn.argtypes = leaf_argtypes
        fn.restype = None

        def leaf(ta, tb, lo, hi, dlo, dhi, _keepalive=const_bufs):
            fn(*ptrs, ta, tb, *lo, *hi, *dlo, *dhi)
            # Per-point MOD/CLAMP/fill resolution is exact for any
            # virtual box, so the C leaf never declines a region.
            return True

        return leaf

    interior = bind_step(lib.interior_step)
    leaf = bind_leaf(lib.leaf)
    boundary: CloneFn | None = None
    leaf_boundary: LeafFn | None = None
    if boundary_ok:
        boundary = bind_step(lib.boundary_step)
        leaf_boundary = bind_leaf(lib.leaf_boundary)
    return CClones(interior, boundary, leaf, leaf_boundary, source)
