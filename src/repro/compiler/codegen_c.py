"""The ``c`` backend: generated C99 clones compiled with the system cc.

This is the closest analogue of Pochoir's optimized postsource: the
kernel becomes straight-line C with flat pointer arithmetic (strides
baked in as compile-time constants), built as a shared object and loaded
through ctypes.  The interior clone does raw unchecked indexing; the
boundary clone reduces coordinates with a sign-safe ``MOD`` macro — the
same mod trick as Figure 6 line 1 of the paper — and resolves off-domain
reads per the array's boundary kind (periodic wrap, Neumann clamp,
Dirichlet fill).

Five clones are generated per kernel, mirroring and extending the
``split_pointer`` backend:

* ``interior_step`` / ``boundary_step`` — one time step on one region.
* ``leaf`` / ``leaf_boundary`` — the *fused* base-case clones: the whole
  trapezoid (time loop, per-step slope shifting of the bounds, ping-pong
  slot arithmetic, per-point boundary resolution) runs inside one C
  function, invoked once per base case.  Because the per-point MOD/CLAMP
  mapping is exact for any virtual box, the C fused boundary leaf never
  declines a region — unlike the NumPy snapshot leaf, which must fall
  back for wrapped home ranges under clip/fill boundaries.
* ``walk_subtree`` — the compiled *interior recursion*: trisection
  space cuts, hyperspace level grouping, and time cuts, bottoming out
  in ``leaf``, so one ctypes call executes an entire interior subtree
  of the trapezoidal decomposition with the GIL released.  Coarsening
  thresholds and slopes arrive as scalar arguments, so tuned configs
  apply without recompiling.

Every clone takes its bounds as *scalar* ``i64`` arguments (the
dimensionality is a codegen-time constant), so a call marshals a handful
of ints: no per-call ctypes array construction, no shared argument
buffers for DAG workers to contend on.  ``argtypes``/``restype`` are
prebound once at load.  ctypes releases the GIL for the duration of
every call, so parallel executors get true multicore execution out of
these clones.

Compiled objects are cached on disk keyed by a hash of the generated
source *and the compiler's identity* (path + version banner), so
repeated runs pay the compiler cost once and a toolchain upgrade can
never load a stale shared object.  A cache entry that fails to load
(truncated write, foreign architecture) is evicted and rebuilt instead
of erroring.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import CompileError, KernelError
from repro.resilience import degradations, faults
from repro.util import atomic_write_text, durable_replace, interprocess_lock
from repro.compiler.frontend import KernelIR
from repro.compiler.codegen_numpy import (
    LeafFn,
    boundary_fill_expr,
    boundary_modes,
    is_vectorizable_boundary,
)
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    UnOp,
    Where,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]

_C_MATH = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
    "fabs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
}

_PRELUDE = """\
#include <math.h>
#define MOD(a, n) ((((a) % (n)) + (n)) % (n))
#define CLAMP(a, n) ((a) < 0 ? 0L : ((a) >= (n) ? (n) - 1L : (a)))
typedef long long i64;
"""


def find_c_compiler() -> str | None:
    """Path of a usable C compiler, or None.

    ``REPRO_NO_CC`` (any non-empty value) forces None — the hook CI's
    no-toolchain job leg uses to prove the ``c`` mode degrades cleanly
    on machines without a compiler.
    """
    if os.environ.get("REPRO_NO_CC"):
        return None
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


#: cc path -> one-line identity ("basename|version banner"), memoized per
#: process; subprocessing the compiler per compile_kernel call would cost
#: more than the cache lookup it keys.
_CC_IDENTITY: dict[str, str] = {}


def compiler_identity(cc: str) -> str:
    """Stable one-line identity of the toolchain (name + version banner).

    Folded into the on-disk cache digest so that upgrading or switching
    the compiler invalidates every cached shared object built by the old
    one — a stale ``.so`` with a source-only key would silently survive a
    toolchain change.
    """
    ident = _CC_IDENTITY.get(cc)
    if ident is None:
        banner = ""
        try:
            proc = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=10
            )
            out = (proc.stdout or proc.stderr).strip().splitlines()
            if out:
                banner = out[0]
        except (OSError, subprocess.TimeoutExpired):
            pass
        ident = f"{os.path.basename(cc)}|{banner}"
        _CC_IDENTITY[cc] = ident
    return ident


def _strides(sizes: tuple[int, ...]) -> tuple[int, ...]:
    out = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        out[i] = out[i + 1] * sizes[i + 1]
    return tuple(out)


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


def _fmt_const(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v)}.0"
    return repr(v)


class _CCodegen:
    """Expression codegen for C (both clones)."""

    def __init__(self, ir: KernelIR, boundary_mode: bool):
        self.ir = ir
        self.boundary_mode = boundary_mode

    def affine(self, index) -> str:
        parts: list[str] = []
        for ax, c in index.terms:
            base = "t" if ax.is_time else f"x{ax.position}"
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")"

    def _flat_index(self, array: str, coord_exprs: list[str]) -> str:
        sizes = self.ir.arrays[array].sizes
        strides = _strides(sizes)
        terms = []
        for expr, stride in zip(coord_exprs, strides):
            terms.append(expr if stride == 1 else f"({expr})*{stride}L")
        return " + ".join(terms) if terms else "0"

    def grid_read(self, node: GridRead) -> str:
        arr = self.ir.arrays[node.array]
        slot = f"s_{node.array}_{_slot_tag(node.dt)}"
        base = f"{slot}*{arr.spatial_points}L"
        if not self.boundary_mode:
            coords = [
                f"x{i}" if off == 0 else f"(x{i}{off:+d})"
                for i, off in enumerate(node.offsets)
            ]
            return f"D_{node.array}[{base} + {self._flat_index(node.array, coords)}]"
        # Boundary clone: x{i} are true coords; map the read coordinate
        # per the array's boundary kind.
        modes = boundary_modes(arr.boundary, self.ir.ndim)
        raw = [
            f"x{i}" if off == 0 else f"(x{i}{off:+d})"
            for i, off in enumerate(node.offsets)
        ]
        if modes is not None:
            mapped = []
            for i, (r, mode) in enumerate(zip(raw, modes)):
                macro = "MOD" if mode == "mod" else "CLAMP"
                mapped.append(f"{macro}({r}, {arr.sizes[i]}L)")
            return (
                f"D_{node.array}[{base} + {self._flat_index(node.array, mapped)}]"
            )
        assert arr.boundary is not None
        # The fill expression from the NumPy backend — e.g. "0.0" or
        # "(100.0 + 0.2 * (t-1))" — is valid C as well: t is an integer
        # variable and mixed arithmetic promotes to double.
        fill = boundary_fill_expr(arr.boundary, node.dt)
        if fill is None:
            raise CompileError(
                f"boundary {arr.boundary.describe()} of array "
                f"{node.array!r} is not expressible in C"
            )
        guard = " && ".join(
            f"({r} >= 0 && {r} < {arr.sizes[i]}L)" for i, r in enumerate(raw)
        )
        in_value = f"D_{node.array}[{base} + {self._flat_index(node.array, raw)}]"
        return f"(({guard}) ? {in_value} : {fill})"

    def const_read(self, node: ConstArrayRead) -> str:
        c = self.ir.const_arrays[node.array]
        sizes = c.sizes
        strides = _strides(tuple(sizes))
        terms = []
        for ix, n, stride in zip(node.indices, sizes, strides):
            clamped = f"CLAMP({self.affine(ix)}, {n}L)"
            terms.append(clamped if stride == 1 else f"({clamped})*{stride}L")
        return f"C_{node.array}[{' + '.join(terms)}]"

    def val(self, e: Expr) -> str:
        if isinstance(e, Const):
            return _fmt_const(e.value)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            return f"((double){self.affine(e.index)})"
        if isinstance(e, LocalRead):
            return f"L_{e.name}"
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            return self.const_read(e)
        if isinstance(e, BinOp):
            a, b = self.val(e.left), self.val(e.right)
            if e.op == "min":
                return f"fmin({a}, {b})"
            if e.op == "max":
                return f"fmax({a}, {b})"
            if e.op == "%":
                return f"fmod({a}, {b})"
            if e.op == "**":
                return f"pow({a}, {b})"
            return f"({a} {e.op} {b})"
        if isinstance(e, UnOp):
            v = self.val(e.operand)
            return f"(-{v})" if e.op == "neg" else f"fabs({v})"
        if isinstance(e, (Compare, BoolOp, NotOp)):
            return f"({self.cond(e)} ? 1.0 : 0.0)"
        if isinstance(e, Where):
            return (
                f"({self.cond(e.cond)} ? {self.val(e.if_true)} : "
                f"{self.val(e.if_false)})"
            )
        if isinstance(e, Call):
            args = ", ".join(self.val(a) for a in e.args)
            return f"{_C_MATH[e.func]}({args})"
        raise KernelError(f"cannot generate C for {type(e).__name__}")

    def cond(self, e: Expr) -> str:
        if isinstance(e, Compare):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, BoolOp):
            op = "&&" if e.op == "and" else "||"
            return f"({self.cond(e.left)} {op} {self.cond(e.right)})"
        if isinstance(e, NotOp):
            return f"(!{self.cond(e.operand)})"
        return f"({self.val(e)} != 0.0)"


def _ptr_args(ir: KernelIR) -> list[str]:
    """Data-pointer parameters shared by every clone signature.

    Every pointer is ``restrict``-qualified: each registered array and
    each const array owns a distinct buffer (the pipeline never aliases
    them), so the compiler may keep loads in registers across stores to
    other arrays.  Reads and writes *within* one array go through the
    same pointer, so the in-place ping-pong slot scheme stays legal.
    """
    args = [f"double* restrict D_{info.name}" for info in ir.array_infos]
    args.extend(f"const double* restrict C_{c}" for c in sorted(ir.const_arrays))
    return args


def _ptr_names(ir: KernelIR) -> list[str]:
    """The bare pointer identifiers, for forwarding calls between clones."""
    names = [f"D_{info.name}" for info in ir.array_infos]
    names.extend(f"C_{c}" for c in sorted(ir.const_arrays))
    return names


def _slot_lines(ir: KernelIR, indent: str) -> list[str]:
    return [
        f"{indent}const i64 s_{info.name}_{_slot_tag(dt)} = "
        f"MOD(t{dt:+d}, {info.slots}L);"
        for info in ir.array_infos
        for dt in info.dts
    ]


def _body_lines(
    ir: KernelIR, gen: _CCodegen, indent: str, *, boundary_mode: bool
) -> list[str]:
    """The per-point loop nest shared by the per-step and fused clones.

    Interior clones loop ``x{i}`` straight over the (in-domain) bounds;
    boundary clones loop virtual ``v{i}`` and reduce to true coordinates
    with the sign-safe MOD.
    """
    d = ir.ndim
    lines: list[str] = []
    loop_var = "v" if boundary_mode else "x"
    for i in range(d):
        lines.append(
            f"{indent}for (i64 {loop_var}{i} = l{i}; "
            f"{loop_var}{i} < h{i}; ++{loop_var}{i}) {{"
        )
        indent += "  "
        if boundary_mode:
            lines.append(f"{indent}const i64 x{i} = MOD(v{i}, {ir.sizes[i]}L);")
    for st in ir.statements:
        if isinstance(st, Let):
            lines.append(f"{indent}const double L_{st.name} = {gen.val(st.expr)};")
        elif isinstance(st, Assign):
            arr_name = st.target.array
            arr = ir.arrays[arr_name]
            coords = [f"x{i}" for i in range(d)]
            flat = gen._flat_index(arr_name, coords)
            lines.append(
                f"{indent}D_{arr_name}[s_{arr_name}_{_slot_tag(0)}*"
                f"{arr.spatial_points}L + {flat}] = {gen.val(st.expr)};"
            )
    for _ in range(d):
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    return lines


def _fn_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    """One-time-step clone: ``(ptrs..., t, l0.., h0..)``, scalar bounds."""
    gen = _CCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "boundary_step" if boundary_mode else "interior_step"
    args = _ptr_args(ir) + ["i64 t"]
    args += [f"i64 l{i}" for i in range(d)]
    args += [f"i64 h{i}" for i in range(d)]
    lines = [f"void {name}({', '.join(args)}) {{"]
    lines.extend(_slot_lines(ir, "  "))
    lines.extend(_body_lines(ir, gen, "  ", boundary_mode=boundary_mode))
    lines.append("}")
    return "\n".join(lines)


def _leaf_fn_source(ir: KernelIR, *, boundary_mode: bool) -> str:
    """The fused base-case clone: the whole trapezoid inside one call.

    ``(ptrs..., ta, tb, l0.., h0.., dl0.., dh0..)`` runs the time loop
    ``[ta, tb)``, shifting each dimension's bounds by its zoid slopes
    after every step (Figure 2, lines 20-28).  Slot arithmetic is
    re-derived per step (the ping-pong MOD); an empty shifted box costs
    one loop-bound test.  Bounds arrive by value, so the slope shift
    mutates the parameters directly.
    """
    gen = _CCodegen(ir, boundary_mode)
    d = ir.ndim
    name = "leaf_boundary" if boundary_mode else "leaf"
    args = _ptr_args(ir) + ["i64 ta", "i64 tb"]
    args += [f"i64 l{i}" for i in range(d)]
    args += [f"i64 h{i}" for i in range(d)]
    args += [f"i64 dl{i}" for i in range(d)]
    args += [f"i64 dh{i}" for i in range(d)]
    lines = [f"void {name}({', '.join(args)}) {{"]
    lines.append("  for (i64 t = ta; t < tb; ++t) {")
    lines.extend(_slot_lines(ir, "    "))
    lines.extend(_body_lines(ir, gen, "    ", boundary_mode=boundary_mode))
    shift = " ".join(f"l{i} += dl{i}; h{i} += dh{i};" for i in range(d))
    lines.append(f"    {shift}")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _walk_fn_source(ir: KernelIR) -> str:
    """The compiled interior recursion: ``walk_subtree`` + its helper.

    ``walk_rec`` is a self-contained C implementation of the TRAP/STRAP
    control flow for *interior* zoids (Figure 2 minus the boundary
    classification, which the planner already resolved): per-dimension
    trisection space cuts combined into level-ordered hyperspace cuts
    (Lemma 1), then time cuts, bottoming out in the already-generated
    fused ``leaf`` clone.  Circular cuts are deliberately absent — a
    full-circumference extent with nonzero slope always reads across the
    seam, so it can never be interior, and the planner additionally
    guards the corner case (:func:`repro.trap.walker._fits_walk_grain`).

    Coarsening thresholds, slopes, and the hyperspace flag arrive as
    scalar ``i64`` arguments, so tuned configurations from the autotune
    registry apply to the compiled recursion unrebuilt.  Execution
    within one call is depth-first and levels run in order, which is a
    valid serialization of the Seq/Par structure; every point is still
    written exactly once from fully-computed neighbors, so results are
    bitwise identical to the Python walk over the same zoid.
    """
    d = ir.ndim
    ptr_args = _ptr_args(ir)
    ptr_names = _ptr_names(ir)
    pa = ", ".join(ptr_args)
    pn = ", ".join(ptr_names)
    leaf_call = ", ".join(
        [pn, "ta", "tb"]
        + [f"xa[{i}]" for i in range(d)]
        + [f"xb[{i}]" for i in range(d)]
        + [f"dxa[{i}]" for i in range(d)]
        + [f"dxb[{i}]" for i in range(d)]
    )
    lines = [
        "/* Per-dimension trisection cuts: fills the piece lists (np,",
        "   pxa..pbit) and returns whether anything cut.  Shared by the",
        "   serial walk_rec and the parallel walk_rec_par so the two",
        "   recursions can never disagree about the decomposition. */",
        "static int walk_cuts(i64 h, const i64* xa, const i64* xb,",
        "    const i64* dxa, const i64* dxb, const i64* sl, const i64* th,",
        "    i64 hyper, i64* np, i64 (*pxa)[3], i64 (*pxb)[3],",
        "    i64 (*pdxa)[3], i64 (*pdxb)[3], i64 (*pbit)[3]) {",
        "  int cut = 0;",
        f"  for (int i = 0; i < {d}; ++i) {{",
        "    np[i] = 0;",
        "    if (cut && !hyper) continue;  /* STRAP: first cuttable dim only */",
        "    const i64 bottom = xb[i] - xa[i];",
        "    const i64 top = bottom + (dxb[i] - dxa[i]) * h;",
        "    const i64 w = bottom >= top ? bottom : top;",
        "    if (w <= th[i]) continue;",
        "    const i64 sg = sl[i];",
        "    if (sg == 0) {",
        "      /* dependency-free dimension: plain bisection, no gray */",
        "      if (bottom < 2) continue;",
        "      const i64 mid = xa[i] + bottom / 2;",
        "      pxa[i][0] = xa[i]; pxb[i][0] = mid;",
        "      pdxa[i][0] = dxa[i]; pdxb[i][0] = dxb[i]; pbit[i][0] = 0;",
        "      pxa[i][1] = mid; pxb[i][1] = xb[i];",
        "      pdxa[i][1] = dxa[i]; pdxb[i][1] = dxb[i]; pbit[i][1] = 0;",
        "      np[i] = 2; cut = 1;",
        "    } else if (bottom >= top) {",
        "      /* upright: blacks first, inverted gray after (Fig. 7(a)) */",
        "      const i64 l0 = bottom / 2, l1 = bottom - l0;",
        "      i64 needl = (sg + dxa[i]) * h; if (needl < 1) needl = 1;",
        "      i64 needr = (sg - dxb[i]) * h; if (needr < 1) needr = 1;",
        "      if (l0 < needl || l1 < needr) continue;",
        "      const i64 mid = xa[i] + l0;",
        "      pxa[i][0] = xa[i]; pxb[i][0] = mid;",
        "      pdxa[i][0] = dxa[i]; pdxb[i][0] = -sg; pbit[i][0] = 0;",
        "      pxa[i][1] = mid; pxb[i][1] = mid;",
        "      pdxa[i][1] = -sg; pdxb[i][1] = sg; pbit[i][1] = 1;",
        "      pxa[i][2] = mid; pxb[i][2] = xb[i];",
        "      pdxa[i][2] = sg; pdxb[i][2] = dxb[i]; pbit[i][2] = 0;",
        "      np[i] = 3; cut = 1;",
        "    } else {",
        "      /* inverted: upright gray first, blacks after (Fig. 7(b)) */",
        "      const i64 h0 = top / 2, h1 = top - h0;",
        "      i64 needl = (sg - dxa[i]) * h; if (needl < 1) needl = 1;",
        "      i64 needr = (sg + dxb[i]) * h; if (needr < 1) needr = 1;",
        "      if (h0 < needl || h1 < needr) continue;",
        "      const i64 m_top = xa[i] + dxa[i] * h + h0;",
        "      const i64 ga = m_top - sg * h, gb = m_top + sg * h;",
        "      pxa[i][0] = xa[i]; pxb[i][0] = ga;",
        "      pdxa[i][0] = dxa[i]; pdxb[i][0] = sg; pbit[i][0] = 1;",
        "      pxa[i][1] = ga; pxb[i][1] = gb;",
        "      pdxa[i][1] = sg; pdxb[i][1] = -sg; pbit[i][1] = 0;",
        "      pxa[i][2] = gb; pxb[i][2] = xb[i];",
        "      pdxa[i][2] = -sg; pdxb[i][2] = dxb[i]; pbit[i][2] = 1;",
        "      np[i] = 3; cut = 1;",
        "    }",
        "  }",
        "  return cut;",
        "}",
        "",
        "/* Materialize one piece of the cut product (the odometer's idx)",
        "   into cxa..cdxb; returns 0 for empty degenerate pieces",
        "   (zero-point subzoids), which both walkers skip. */",
        "static int walk_piece(i64 h, const i64* xa, const i64* xb,",
        "    const i64* dxa, const i64* dxb, const i64* np, const i64* idx,",
        "    i64 (*pxa)[3], i64 (*pxb)[3], i64 (*pdxa)[3], i64 (*pdxb)[3],",
        "    i64* cxa, i64* cxb, i64* cdxa, i64* cdxb) {",
        f"  for (int i = 0; i < {d}; ++i) {{",
        "    if (np[i] > 0) {",
        "      cxa[i] = pxa[i][idx[i]]; cxb[i] = pxb[i][idx[i]];",
        "      cdxa[i] = pdxa[i][idx[i]]; cdxb[i] = pdxb[i][idx[i]];",
        "    } else {",
        "      cxa[i] = xa[i]; cxb[i] = xb[i];",
        "      cdxa[i] = dxa[i]; cdxb[i] = dxb[i];",
        "    }",
        "    const i64 b = cxb[i] - cxa[i];",
        "    const i64 t = b + (cdxb[i] - cdxa[i]) * h;",
        "    if (b < 0 || t < 0 || (b <= 0 && t <= 0)) return 0;",
        "  }",
        "  return 1;",
        "}",
        "",
        f"static void walk_rec({pa}, i64 ta, i64 tb,",
        "    const i64* xa, const i64* xb, const i64* dxa, const i64* dxb,",
        "    const i64* sl, const i64* th, i64 dt_th, i64 hyper) {",
        "  const i64 h = tb - ta;",
        f"  i64 pxa[{d}][3], pxb[{d}][3], pdxa[{d}][3], pdxb[{d}][3];",
        f"  i64 pbit[{d}][3];",
        f"  i64 np[{d}];",
        "  if (walk_cuts(h, xa, xb, dxa, dxb, sl, th, hyper,",
        "                np, pxa, pxb, pdxa, pdxb, pbit)) {",
        "    /* hyperspace cut: enumerate the piece product, levels in",
        "       sequence (Lemma 1's dependency levels), depth-first. */",
        f"    i64 cxa[{d}], cxb[{d}], cdxa[{d}], cdxb[{d}];",
        f"    i64 idx[{d}];",
        f"    for (i64 level = 0; level <= {d}; ++level) {{",
        f"      for (int i = 0; i < {d}; ++i) idx[i] = 0;",
        "      for (;;) {",
        "        i64 bits = 0;",
        f"        for (int i = 0; i < {d}; ++i)",
        "          if (np[i] > 0) bits += pbit[i][idx[i]];",
        "        if (bits == level &&",
        "            walk_piece(h, xa, xb, dxa, dxb, np, idx,",
        "                       pxa, pxb, pdxa, pdxb, cxa, cxb, cdxa, cdxb))",
        f"          walk_rec({pn}, ta, tb, cxa, cxb, cdxa, cdxb,",
        "                   sl, th, dt_th, hyper);",
        "        /* odometer over the cut dimensions */",
        "        int carry = 1;",
        f"        for (int i = 0; i < {d} && carry; ++i) {{",
        "          if (np[i] == 0) continue;",
        "          if (++idx[i] < np[i]) carry = 0; else idx[i] = 0;",
        "        }",
        "        if (carry) break;",
        "      }",
        "    }",
        "    return;",
        "  }",
        "  if (h > dt_th && h >= 2) {",
        "    /* time cut at the midpoint (Fig. 7(c)) */",
        "    const i64 tm = ta + h / 2;",
        f"    walk_rec({pn}, ta, tm, xa, xb, dxa, dxb, sl, th, dt_th, hyper);",
        f"    i64 nxa[{d}], nxb[{d}];",
        "    const i64 s = tm - ta;",
        f"    for (int i = 0; i < {d}; ++i) {{",
        "      nxa[i] = xa[i] + dxa[i] * s; nxb[i] = xb[i] + dxb[i] * s;",
        "    }",
        f"    walk_rec({pn}, tm, tb, nxa, nxb, dxa, dxb, sl, th, dt_th, hyper);",
        "    return;",
        "  }",
        f"  leaf({leaf_call});",
        "}",
    ]
    # The exported entry point: scalar bounds in, arrays packed here.
    args = _ptr_args(ir) + ["i64 ta", "i64 tb"]
    for prefix in ("l", "h", "dl", "dh", "s", "th"):
        args += [f"i64 {prefix}{i}" for i in range(d)]
    args += ["i64 dt_th", "i64 hyper"]
    pack = []
    for name, prefix in (
        ("xa", "l"),
        ("xb", "h"),
        ("dxa", "dl"),
        ("dxb", "dh"),
        ("sl", "s"),
        ("thr", "th"),
    ):
        init = ", ".join(f"{prefix}{i}" for i in range(d))
        pack.append(f"  i64 {name}[{d}] = {{{init}}};")
    lines += [
        "",
        f"void walk_subtree({', '.join(args)}) {{",
        *pack,
        f"  walk_rec({pn}, ta, tb, xa, xb, dxa, dxb, sl, thr, dt_th, hyper);",
        "}",
    ]
    return "\n".join(lines)


def _walk_par_source(ir: KernelIR) -> str:
    """The parallel compiled recursion: ``walk_subtree_par`` + its pool.

    A shared-deque pthread task pool lives inside the generated ``.so``:
    ``walk_rec_par`` reuses ``walk_cuts``/``walk_piece`` (the exact
    integer logic of the serial walk), collects each hyperspace level's
    valid pieces, spawns all but the last as tasks (Lemma 1 guarantees
    same-level pieces are independent), runs the last inline, and joins
    at the level barrier before the next level starts.  The join *helps*:
    while its own pieces are outstanding it pops and runs any queued task
    — every queued task is same-level-independent ready work — so the
    barrier can never deadlock even with a single worker thread.

    All task state is carved from one preallocated static arena
    (``wq_ring``): bounds are copied by value into fixed slots, the
    shared per-call pointers/knobs live in a ``wjob`` on the caller's
    stack, and per-level join counters live on the spawning frame (safe:
    every spawn is joined before the frame returns).  No heap allocation
    happens anywhere on the parallel path.  When the ring is full a
    spawn degrades to running the piece inline.

    Scheduling freedom cannot change results: each grid point is written
    exactly once, by exactly one task, from neighbors the level barriers
    have already completed, and the FP instruction sequence inside each
    fused leaf is byte-for-byte the serial clone's — so the parallel
    walk is bitwise identical to the serial walk.

    Pool workers are created lazily by ``wq_ensure_pool`` (detached,
    process-lifetime).  If thread creation fails — or the test hook
    ``REPRO_WALK_POOL_FAIL`` is set — ``walk_subtree_par`` falls back to
    the serial ``walk_rec``, bit for bit.  The caller-visible counters
    (spawned/stolen/level barriers) are flushed once per call into an
    optional ``i64[3]`` stats buffer with atomic adds, so concurrent
    DAG workers can share one buffer.
    """
    d = ir.ndim
    ptr_args = _ptr_args(ir)
    ptr_names = _ptr_names(ir)
    pa = ", ".join(ptr_args)
    pn = ", ".join(ptr_names)
    max_combos = 3**d
    field_decls = [f"  double* D_{info.name};" for info in ir.array_infos]
    field_decls += [f"  const double* C_{c};" for c in sorted(ir.const_arrays)]
    jp = ", ".join(f"job->{n}" for n in ptr_names)
    leaf_call = ", ".join(
        [jp, "ta", "tb"]
        + [f"xa[{i}]" for i in range(d)]
        + [f"xb[{i}]" for i in range(d)]
        + [f"dxa[{i}]" for i in range(d)]
        + [f"dxb[{i}]" for i in range(d)]
    )
    lines = [
        "/* ---- parallel walk: shared-deque pthread task pool ---- */",
        "#include <pthread.h>",
        "#include <stdlib.h>",
        "",
        "#define WQ_CAP 512",
        "#define WQ_MAX_WORKERS 64",
        "",
        "/* Per-call shared state: data pointers and tuning knobs.  Lives",
        "   on the walk_subtree_par stack frame; tasks point back at it. */",
        "typedef struct wjob {",
        *field_decls,
        f"  i64 sl[{d}], th[{d}];",
        "  i64 dt_th, hyper;",
        "  i64 spawned, stolen, barriers;  /* guarded by wq_mu */",
        "} wjob;",
        "",
        "/* One spawned black piece: bounds by value, job by pointer.",
        "   sync is the spawning frame's level-barrier counter. */",
        "typedef struct {",
        "  wjob* job;",
        "  i64* sync;",
        "  i64 ta, tb;",
        f"  i64 xa[{d}], xb[{d}], dxa[{d}], dxb[{d}];",
        "} wtask;",
        "",
        "static pthread_mutex_t wq_mu = PTHREAD_MUTEX_INITIALIZER;",
        "static pthread_cond_t wq_work_cv = PTHREAD_COND_INITIALIZER;",
        "static pthread_cond_t wq_done_cv = PTHREAD_COND_INITIALIZER;",
        "/* The preallocated task arena: a fixed ring of value slots; no",
        "   per-task allocation ever happens on the parallel path. */",
        "static wtask wq_ring[WQ_CAP];",
        "static i64 wq_head = 0, wq_tail = 0;  /* monotonic; index % WQ_CAP */",
        "static int wq_workers = 0;",
        "static int wq_failed = 0;",
        "",
        "static void walk_rec_par(wjob* job, i64 ta, i64 tb,",
        "    const i64* xa, const i64* xb, const i64* dxa, const i64* dxb);",
        "",
        "static void wq_run_task(wtask t, int stolen) {",
        "  walk_rec_par(t.job, t.ta, t.tb, t.xa, t.xb, t.dxa, t.dxb);",
        "  pthread_mutex_lock(&wq_mu);",
        "  *t.sync -= 1;",
        "  if (stolen) t.job->stolen += 1;",
        "  pthread_cond_broadcast(&wq_done_cv);",
        "  pthread_mutex_unlock(&wq_mu);",
        "}",
        "",
        "static void* wq_worker(void* arg) {",
        "  (void)arg;",
        "  for (;;) {",
        "    pthread_mutex_lock(&wq_mu);",
        "    while (wq_head == wq_tail)",
        "      pthread_cond_wait(&wq_work_cv, &wq_mu);",
        "    wtask t = wq_ring[wq_head % WQ_CAP];",
        "    wq_head += 1;",
        "    pthread_mutex_unlock(&wq_mu);",
        "    wq_run_task(t, 1);",
        "  }",
        "  return 0;",
        "}",
        "",
        "/* Enqueue one piece; returns 0 when the arena is full (the",
        "   caller then runs the piece inline — graceful, not an error). */",
        "static int wq_spawn(wjob* job, i64 ta, i64 tb, const i64* cxa,",
        "    const i64* cxb, const i64* cdxa, const i64* cdxb, i64* sync) {",
        "  pthread_mutex_lock(&wq_mu);",
        "  if (wq_tail - wq_head >= WQ_CAP) {",
        "    pthread_mutex_unlock(&wq_mu);",
        "    return 0;",
        "  }",
        "  wtask* t = &wq_ring[wq_tail % WQ_CAP];",
        "  t->job = job; t->sync = sync; t->ta = ta; t->tb = tb;",
        f"  for (int i = 0; i < {d}; ++i) {{",
        "    t->xa[i] = cxa[i]; t->xb[i] = cxb[i];",
        "    t->dxa[i] = cdxa[i]; t->dxb[i] = cdxb[i];",
        "  }",
        "  *sync += 1;",
        "  job->spawned += 1;",
        "  wq_tail += 1;",
        "  pthread_cond_signal(&wq_work_cv);",
        "  pthread_mutex_unlock(&wq_mu);",
        "  return 1;",
        "}",
        "",
        "/* The level barrier.  Help-first: while this level's pieces are",
        "   outstanding, pop and run any queued task instead of blocking —",
        "   every queued task is independent ready work (Lemma 1), so the",
        "   join cannot deadlock even with zero idle workers. */",
        "static void wq_join(wjob* job, i64* sync) {",
        "  pthread_mutex_lock(&wq_mu);",
        "  job->barriers += 1;",
        "  while (*sync > 0) {",
        "    if (wq_head != wq_tail) {",
        "      wtask t = wq_ring[wq_head % WQ_CAP];",
        "      wq_head += 1;",
        "      pthread_mutex_unlock(&wq_mu);",
        "      wq_run_task(t, 0);",
        "      pthread_mutex_lock(&wq_mu);",
        "    } else {",
        "      pthread_cond_wait(&wq_done_cv, &wq_mu);",
        "    }",
        "  }",
        "  pthread_mutex_unlock(&wq_mu);",
        "}",
        "",
        "/* Lazily grow the pool to nthreads-1 detached workers; returns",
        "   the live worker count (0 => caller must run serially).  The",
        "   REPRO_WALK_POOL_FAIL env hook forces the failure path so the",
        "   serial-fallback contract stays testable on any host. */",
        "static i64 wq_ensure_pool(i64 nthreads) {",
        "  if (nthreads <= 1) return 0;",
        '  if (getenv("REPRO_WALK_POOL_FAIL")) return 0;',
        "  i64 want = nthreads - 1;",
        "  if (want > WQ_MAX_WORKERS) want = WQ_MAX_WORKERS;",
        "  pthread_mutex_lock(&wq_mu);",
        "  while (!wq_failed && wq_workers < want) {",
        "    pthread_t th;",
        "    if (pthread_create(&th, 0, wq_worker, 0) != 0) {",
        "      if (wq_workers == 0) wq_failed = 1;",
        "      break;",
        "    }",
        "    pthread_detach(th);",
        "    wq_workers += 1;",
        "  }",
        "  i64 live = wq_workers;",
        "  pthread_mutex_unlock(&wq_mu);",
        "  return live;",
        "}",
        "",
        "static void walk_rec_par(wjob* job, i64 ta, i64 tb,",
        "    const i64* xa, const i64* xb, const i64* dxa, const i64* dxb) {",
        "  const i64 h = tb - ta;",
        f"  i64 pxa[{d}][3], pxb[{d}][3], pdxa[{d}][3], pdxb[{d}][3];",
        f"  i64 pbit[{d}][3];",
        f"  i64 np[{d}];",
        "  if (walk_cuts(h, xa, xb, dxa, dxb, job->sl, job->th, job->hyper,",
        "                np, pxa, pxb, pdxa, pdxb, pbit)) {",
        f"    i64 cxa[{d}], cxb[{d}], cdxa[{d}], cdxb[{d}];",
        f"    i64 idx[{d}];",
        f"    i64 combos[{max_combos}][{d}];",
        f"    for (i64 level = 0; level <= {d}; ++level) {{",
        "      /* collect this level's valid pieces ... */",
        "      i64 ncombo = 0;",
        f"      for (int i = 0; i < {d}; ++i) idx[i] = 0;",
        "      for (;;) {",
        "        i64 bits = 0;",
        f"        for (int i = 0; i < {d}; ++i)",
        "          if (np[i] > 0) bits += pbit[i][idx[i]];",
        "        if (bits == level &&",
        "            walk_piece(h, xa, xb, dxa, dxb, np, idx,",
        "                       pxa, pxb, pdxa, pdxb, cxa, cxb, cdxa, cdxb)) {",
        f"          for (int i = 0; i < {d}; ++i) combos[ncombo][i] = idx[i];",
        "          ncombo += 1;",
        "        }",
        "        int carry = 1;",
        f"        for (int i = 0; i < {d} && carry; ++i) {{",
        "          if (np[i] == 0) continue;",
        "          if (++idx[i] < np[i]) carry = 0; else idx[i] = 0;",
        "        }",
        "        if (carry) break;",
        "      }",
        "      if (ncombo == 0) continue;",
        "      /* ... spawn all but the last, run the last inline, and",
        "         join at the level barrier (Lemma 1 independence). */",
        "      i64 sync = 0;",
        "      i64 spawned_here = 0;",
        "      for (i64 c = 0; c + 1 < ncombo; ++c) {",
        "        (void)walk_piece(h, xa, xb, dxa, dxb, np, combos[c],",
        "                         pxa, pxb, pdxa, pdxb, cxa, cxb, cdxa, cdxb);",
        "        if (wq_spawn(job, ta, tb, cxa, cxb, cdxa, cdxb, &sync))",
        "          spawned_here += 1;",
        "        else",
        "          walk_rec_par(job, ta, tb, cxa, cxb, cdxa, cdxb);",
        "      }",
        "      (void)walk_piece(h, xa, xb, dxa, dxb, np, combos[ncombo - 1],",
        "                       pxa, pxb, pdxa, pdxb, cxa, cxb, cdxa, cdxb);",
        "      walk_rec_par(job, ta, tb, cxa, cxb, cdxa, cdxb);",
        "      if (spawned_here > 0) wq_join(job, &sync);",
        "    }",
        "    return;",
        "  }",
        "  if (h > job->dt_th && h >= 2) {",
        "    /* time cut: strictly sequential halves, same as the serial walk */",
        "    const i64 tm = ta + h / 2;",
        "    walk_rec_par(job, ta, tm, xa, xb, dxa, dxb);",
        f"    i64 nxa[{d}], nxb[{d}];",
        "    const i64 s = tm - ta;",
        f"    for (int i = 0; i < {d}; ++i) {{",
        "      nxa[i] = xa[i] + dxa[i] * s; nxb[i] = xb[i] + dxb[i] * s;",
        "    }",
        "    walk_rec_par(job, tm, tb, nxa, nxb, dxa, dxb);",
        "    return;",
        "  }",
        f"  leaf({leaf_call});",
        "}",
    ]
    # The exported entry point mirrors walk_subtree plus nthreads and an
    # optional i64[3] stats buffer (spawned, stolen, level barriers).
    args = _ptr_args(ir) + ["i64 ta", "i64 tb"]
    for prefix in ("l", "h", "dl", "dh", "s", "th"):
        args += [f"i64 {prefix}{i}" for i in range(d)]
    args += ["i64 dt_th", "i64 hyper", "i64 nthreads", "i64* restrict wstats"]
    pack = []
    for name, prefix in (
        ("xa", "l"),
        ("xb", "h"),
        ("dxa", "dl"),
        ("dxb", "dh"),
        ("sl", "s"),
        ("thr", "th"),
    ):
        init = ", ".join(f"{prefix}{i}" for i in range(d))
        pack.append(f"  i64 {name}[{d}] = {{{init}}};")
    job_fill = [f"  job.{n} = {n};" for n in ptr_names]
    lines += [
        "",
        f"void walk_subtree_par({', '.join(args)}) {{",
        *pack,
        "  if (wq_ensure_pool(nthreads) <= 0) {",
        "    /* nthreads<=1, pool-init failure, or the test hook: the",
        "       serial clone, bit for bit */",
        f"    walk_rec({pn}, ta, tb, xa, xb, dxa, dxb, sl, thr, dt_th, hyper);",
        "    return;",
        "  }",
        "  wjob job;",
        *job_fill,
        f"  for (int i = 0; i < {d}; ++i) {{ job.sl[i] = sl[i]; job.th[i] = thr[i]; }}",
        "  job.dt_th = dt_th; job.hyper = hyper;",
        "  job.spawned = 0; job.stolen = 0; job.barriers = 0;",
        "  walk_rec_par(&job, ta, tb, xa, xb, dxa, dxb);",
        "  /* All spawns joined: counters are final (the joins' mutex",
        "     hand-offs order every worker write before these reads). */",
        "  if (wstats) {",
        "    __atomic_fetch_add(&wstats[0], job.spawned, __ATOMIC_RELAXED);",
        "    __atomic_fetch_add(&wstats[1], job.stolen, __ATOMIC_RELAXED);",
        "    __atomic_fetch_add(&wstats[2], job.barriers, __ATOMIC_RELAXED);",
        "  }",
        "}",
    ]
    return "\n".join(lines)


def _array_stride(ir: KernelIR, name: str) -> int:
    """Elements one job occupies in a stacked array buffer: the full
    modular time buffer, ``slots * spatial_points``."""
    info = next(i for i in ir.array_infos if i.name == name)
    points = 1
    for s in info.sizes:
        points *= int(s)
    return int(info.slots) * points


def _const_stride(ir: KernelIR, name: str) -> int:
    points = 1
    for s in ir.const_arrays[name].sizes:
        points *= int(s)
    return points


def _batch_fn_source(ir: KernelIR, *, include_boundary: bool) -> str:
    """Batched entry points: each wraps its single-job clone in a loop
    over ``nb`` jobs laid out contiguously, offsetting every data pointer
    by the job's codegen-constant stride.  One GIL-released call then
    runs a whole batch of same-shape problems.  Bounds pass by value, so
    every job sees fresh copies (the fused leaf mutates its own).  These
    wrappers are always emitted, keeping the source digest — and thus
    the ``.so`` cache entry — shared between batched and single-job
    users of the same kernel."""
    d = ir.ndim
    pa = ", ".join(_ptr_args(ir))
    offs = [
        f"D_{info.name} + b*{_array_stride(ir, info.name)}L"
        for info in ir.array_infos
    ]
    offs.extend(
        f"C_{c} + b*{_const_stride(ir, c)}L" for c in sorted(ir.const_arrays)
    )
    po = ", ".join(offs)
    step_scalars = ["i64 t"] + [f"i64 l{i}" for i in range(d)] + [
        f"i64 h{i}" for i in range(d)
    ]
    leaf_scalars = ["i64 ta", "i64 tb"]
    for prefix in ("l", "h", "dl", "dh"):
        leaf_scalars += [f"i64 {prefix}{i}" for i in range(d)]
    walk_scalars = ["i64 ta", "i64 tb"]
    for prefix in ("l", "h", "dl", "dh", "s", "th"):
        walk_scalars += [f"i64 {prefix}{i}" for i in range(d)]
    walk_scalars += ["i64 dt_th", "i64 hyper"]

    def wrapper(name: str, target: str, scalars: list[str]) -> str:
        args = ", ".join([pa, "i64 nb"] + scalars)
        fwd = ", ".join(s.split()[-1] for s in scalars)
        return (
            f"void {name}({args}) {{\n"
            f"  for (i64 b = 0; b < nb; ++b)\n"
            f"    {target}({po}, {fwd});\n"
            f"}}"
        )

    parts = [
        wrapper("interior_step_batch", "interior_step", step_scalars),
        wrapper("leaf_batch", "leaf", leaf_scalars),
        wrapper("walk_subtree_batch", "walk_subtree", walk_scalars),
    ]
    if include_boundary:
        parts.append(wrapper("boundary_step_batch", "boundary_step", step_scalars))
        parts.append(wrapper("leaf_boundary_batch", "leaf_boundary", leaf_scalars))
    return "\n\n".join(parts)


def generate_c_source(
    ir: KernelIR,
    *,
    include_boundary: bool = True,
    include_parallel: bool = False,
) -> str:
    """The full postsource: prelude, per-step and fused clone pairs, the
    compiled interior recursion (``walk_subtree``) and the batched
    wrappers over all of them, plus — when ``include_parallel`` — the
    pthread task pool and ``walk_subtree_par``."""
    parts = [
        _PRELUDE,
        _fn_source(ir, boundary_mode=False),
        _leaf_fn_source(ir, boundary_mode=False),
        _walk_fn_source(ir),
    ]
    if include_parallel:
        parts.append(_walk_par_source(ir))
    if include_boundary:
        parts.append(_fn_source(ir, boundary_mode=True))
        parts.append(_leaf_fn_source(ir, boundary_mode=True))
    parts.append(_batch_fn_source(ir, include_boundary=include_boundary))
    return "\n\n".join(parts) + "\n"


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CC_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path(tempfile.gettempdir()) / "repro_cc_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


#: Compile flags, part of the cache digest (changing them must not load
#: an object built with the old set).  ``-ffp-contract=off`` pins the
#: floating-point semantics to the expression tree: without it, gcc -O2
#: contracts a*b+c into fused multiply-add on FMA-default targets (e.g.
#: aarch64), breaking the bitwise C-vs-NumPy equivalence contract the
#: tests and CI smoke enforce.  ``-fno-math-errno`` lets sqrt/fabs lower
#: to the hardware instruction instead of a libm call that must set
#: errno; both are correctly rounded, so results stay bitwise identical
#: (the equivalence tests would catch a target where they did not).
#: ``-ffast-math``/``-funsafe-math-optimizations`` stay out for the same
#: reason ``-ffp-contract=off`` is in: value-changing reassociation
#: breaks the bitwise contract.
_CFLAGS = ("-O2", "-ffp-contract=off", "-fno-math-errno", "-fPIC", "-shared")


#: Extra flags for sources embedding the pthread task pool.  Folded into
#: the cache digest through the same mechanism as _CFLAGS.
_PTHREAD_FLAGS = ("-pthread",)


def _cc_timeout() -> float:
    """Wall-clock budget for one cc invocation (``$REPRO_CC_TIMEOUT``,
    seconds).  The default is generous — these are single-file builds
    that normally finish in well under a second — so a hit means a hung
    toolchain (NFS stall, license-server wait, a wedged cc1), not a
    slow machine."""
    try:
        return max(1.0, float(os.environ.get("REPRO_CC_TIMEOUT", "300")))
    except ValueError:
        return 300.0


def _count_cc_invocation() -> None:
    """Test hook: append one line per cc invocation to
    ``$REPRO_CC_COUNT_FILE``.  ``O_APPEND`` of one small write is atomic
    across processes, so the compile-race test asserts "exactly one
    compile for N concurrent requesters" by counting lines."""
    path = os.environ.get("REPRO_CC_COUNT_FILE")
    if not path:
        return
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def _run_cc(cmd: list[str], timeout: float) -> subprocess.CompletedProcess:
    """One cc invocation, with the ``cc.hang``/``cc.fail`` fault sites.

    ``cc.hang`` swaps in a genuinely hanging child so the timeout path
    (kill + reap + retry) is exercised for real, not simulated."""
    _count_cc_invocation()
    run_cmd = cmd
    if faults.fire("cc.hang"):
        run_cmd = [sys.executable, "-c", "import time; time.sleep(2147483)"]
    proc = subprocess.run(run_cmd, capture_output=True, text=True, timeout=timeout)
    if faults.fire("cc.fail"):
        return subprocess.CompletedProcess(
            run_cmd, 1, stdout="", stderr="injected fault: cc.fail"
        )
    return proc


def build_shared_object(
    source: str, *, force: bool = False, extra_flags: tuple[str, ...] = ()
) -> Path:
    """Compile C source to a cached shared object; return its path.

    The cache key hashes the source, the compile flags (base *and*
    extras) *and* :func:`compiler_identity`, so a toolchain upgrade (or
    flag change) compiles afresh instead of loading the old object.
    ``force`` recompiles even when a cached object exists (the
    load-failure eviction path).

    The cc subprocess runs under a timeout (:func:`_cc_timeout`) with
    one short-backoff retry — a wedged toolchain must not hang the run
    when the NumPy backend could serve it.  A second timeout (or any
    nonzero exit) raises :class:`CompileError`, which the pipeline's
    mode fallback turns into a degraded-but-running configuration.
    """
    cc = find_c_compiler()
    if cc is None:
        raise CompileError("no C compiler found (tried $CC, cc, gcc, clang)")
    flags = _CFLAGS + tuple(extra_flags)
    digest = hashlib.sha256(
        f"{compiler_identity(cc)}\n{' '.join(flags)}\n{source}".encode()
    ).hexdigest()[:24]
    cache = _cache_dir()
    so_path = cache / f"kernel_{digest}.so"
    if so_path.exists() and not force:
        return so_path
    # One compiler per digest across processes: a server fanning the
    # same kernel out to many workers must pay cc once, with the herd
    # waiting on the lock and then loading the winner's object.  The
    # re-check under the lock is the usual exit for every waiter; where
    # flock is unavailable this degrades to the old racy-but-atomic
    # compile-twice behavior.
    with interprocess_lock(cache / f"kernel_{digest}.lock"):
        if so_path.exists() and not force:
            return so_path
        c_path = cache / f"kernel_{digest}.c"
        atomic_write_text(c_path, source)
        tmp_so = cache / f"kernel_{digest}.{os.getpid()}.tmp.so"
        cmd = [cc, *flags, "-o", str(tmp_so), str(c_path), "-lm"]
        timeout = _cc_timeout()
        for attempt in (0, 1):
            try:
                proc = _run_cc(cmd, timeout)
            except subprocess.TimeoutExpired:
                if attempt == 0:
                    degradations.note("cc:timeout-retry")
                    time.sleep(min(1.0, timeout / 20))
                    continue
                raise CompileError(
                    f"C compilation timed out twice ({timeout:g}s each) — "
                    f"wedged toolchain? ({' '.join(cmd)})"
                ) from None
            if proc.returncode != 0:
                raise CompileError(
                    f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr}"
                )
            break
        # fsync the object and its directory entry before publishing: a
        # half-written .so surviving a crash would cost a (detected,
        # evicted) load failure on every later process.
        durable_replace(tmp_so, so_path)
    return so_path


def load_shared_object(
    source: str, *, extra_flags: tuple[str, ...] = ()
) -> ctypes.CDLL:
    """Build (or reuse) and load the shared object for ``source``.

    A cached object that fails to load — truncated write from a killed
    process, an object built for another architecture carried over in a
    shared cache dir — is *evicted* and rebuilt once, instead of pinning
    the cache in a permanently broken state.  A rebuild that *still*
    fails to load raises :class:`CompileError` (not a raw ``OSError``),
    so callers' backend fallbacks treat it like any other toolchain
    failure.
    """
    so_path = build_shared_object(source, extra_flags=extra_flags)
    try:
        if faults.fire("so.load"):
            raise OSError("injected fault: so.load")
        return ctypes.CDLL(str(so_path))
    except OSError:
        degradations.note("so-cache:evicted-rebuilt")
        try:
            so_path.unlink()
        except OSError:
            pass
        rebuilt = build_shared_object(source, force=True, extra_flags=extra_flags)
        try:
            if faults.fire("so.load"):
                raise OSError("injected fault: so.load")
            return ctypes.CDLL(str(rebuilt))
        except OSError as exc:
            raise CompileError(
                f"shared object {rebuilt} failed to load even after "
                f"evict-and-rebuild: {exc}"
            ) from exc


#: The compiled-walk entry point: (ta, tb, lo, hi, dlo, dhi, slopes,
#: thresholds, dt_threshold, hyperspace) — one call runs a whole
#: interior subtree of the recursion with the GIL released.  The
#: parallel variant additionally takes a thread count:
#: (..., hyperspace, nthreads).
WalkFn = Callable[..., None]


@dataclass
class CClones:
    """The compiled C entry points for one kernel.

    ``boundary``/``leaf_boundary`` are None when some array uses a
    boundary kind C cannot express (PythonBoundary); the pipeline
    substitutes the per-point Python boundary clone and per-step
    fallback, same as the NumPy backend.  ``walk`` (the compiled
    interior recursion) exists regardless: it only ever touches interior
    zoids, which no boundary kind can reach.  ``walk_par`` is the
    pthread-pool variant; it is None when the parallel source fails to
    build (e.g. a toolchain without pthread support), in which case
    everything degrades to the serial walk.  ``walk_stats`` is the
    shared ``i64[3]`` counter buffer (spawned, stolen, level barriers)
    the parallel walk accumulates into with atomic adds.
    """

    interior: CloneFn
    boundary: CloneFn | None
    leaf: LeafFn
    leaf_boundary: LeafFn | None
    walk: WalkFn
    source: str
    walk_par: WalkFn | None = None
    walk_stats: np.ndarray | None = None


def make_c_clones(ir: KernelIR) -> CClones:
    """Compile all five clones to C and bind them through ctypes.

    ``argtypes``/``restype`` are prebound here, once per compiled clone;
    calls then marshal plain Python ints into scalar ``i64`` parameters.
    There are no per-call ctypes arrays and no mutable shared argument
    buffers, so DAG workers invoke the same clone concurrently without
    contending — and ctypes drops the GIL for the duration of each call,
    which is what lets the task-DAG runtime scale on multicore hosts.
    """
    boundary_ok = all(
        is_vectorizable_boundary(a.boundary) for a in ir.arrays.values()
    )
    # Prefer the source with the embedded pthread pool; if it fails to
    # build (a toolchain without working pthreads), fall back to the
    # serial-only source so the five existing clones survive unchanged.
    source = generate_c_source(
        ir, include_boundary=boundary_ok, include_parallel=True
    )
    try:
        lib = load_shared_object(source, extra_flags=_PTHREAD_FLAGS)
        has_parallel = True
    except CompileError:
        degradations.note("cc:parallel-source-failed->serial-clones")
        source = generate_c_source(ir, include_boundary=boundary_ok)
        lib = load_shared_object(source)
        has_parallel = False

    d = ir.ndim
    n_ptr_args = len(ir.array_infos) + len(ir.const_arrays)
    ptr_types = [ctypes.POINTER(ctypes.c_double)] * n_ptr_args
    step_argtypes = ptr_types + [ctypes.c_longlong] * (1 + 2 * d)
    leaf_argtypes = ptr_types + [ctypes.c_longlong] * (2 + 4 * d)
    walk_argtypes = ptr_types + [ctypes.c_longlong] * (4 + 6 * d)
    walk_par_argtypes = (
        ptr_types
        + [ctypes.c_longlong] * (5 + 6 * d)
        + [ctypes.POINTER(ctypes.c_longlong)]
    )

    arr_ptrs = [
        ir.arrays[info.name].data.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        for info in ir.array_infos
    ]
    # Keep contiguous const buffers alive for the lifetime of the clones:
    # ctypes pointers do not hold a reference to their source array.
    const_bufs = [
        np.ascontiguousarray(ir.const_arrays[n].values)
        for n in sorted(ir.const_arrays)
    ]
    ptrs = tuple(arr_ptrs) + tuple(
        buf.ctypes.data_as(ctypes.POINTER(ctypes.c_double)) for buf in const_bufs
    )

    def bind_step(fn) -> CloneFn:
        fn.argtypes = step_argtypes
        fn.restype = None

        def clone(t, lo, hi, _keepalive=const_bufs):
            fn(*ptrs, t, *lo, *hi)

        return clone

    def bind_leaf(fn) -> LeafFn:
        fn.argtypes = leaf_argtypes
        fn.restype = None

        def leaf(ta, tb, lo, hi, dlo, dhi, _keepalive=const_bufs):
            fn(*ptrs, ta, tb, *lo, *hi, *dlo, *dhi)
            # Per-point MOD/CLAMP/fill resolution is exact for any
            # virtual box, so the C leaf never declines a region.
            return True

        return leaf

    def bind_walk(fn) -> WalkFn:
        fn.argtypes = walk_argtypes
        fn.restype = None

        def walk(
            ta, tb, lo, hi, dlo, dhi, slopes, thresholds, dt_th, hyper,
            _keepalive=const_bufs,
        ):
            fn(
                *ptrs, ta, tb, *lo, *hi, *dlo, *dhi, *slopes, *thresholds,
                dt_th, 1 if hyper else 0,
            )

        return walk

    # One persistent stats buffer per compiled kernel; concurrent calls
    # from DAG workers accumulate into it with C atomic adds, and the
    # driver diffs snapshots around a run to report per-run counters.
    walk_stats = np.zeros(3, dtype=np.int64)
    walk_stats_ptr = walk_stats.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong))

    def bind_walk_par(fn) -> WalkFn:
        fn.argtypes = walk_par_argtypes
        fn.restype = None

        def walk_par(
            ta, tb, lo, hi, dlo, dhi, slopes, thresholds, dt_th, hyper,
            nthreads, _keepalive=(const_bufs, walk_stats),
        ):
            fn(
                *ptrs, ta, tb, *lo, *hi, *dlo, *dhi, *slopes, *thresholds,
                dt_th, 1 if hyper else 0, nthreads, walk_stats_ptr,
            )

        return walk_par

    interior = bind_step(lib.interior_step)
    leaf = bind_leaf(lib.leaf)
    walk = bind_walk(lib.walk_subtree)
    walk_par: WalkFn | None = None
    if has_parallel:
        walk_par = bind_walk_par(lib.walk_subtree_par)
    boundary: CloneFn | None = None
    leaf_boundary: LeafFn | None = None
    if boundary_ok:
        boundary = bind_step(lib.boundary_step)
        leaf_boundary = bind_leaf(lib.leaf_boundary)
    return CClones(
        interior,
        boundary,
        leaf,
        leaf_boundary,
        walk,
        source,
        walk_par=walk_par,
        walk_stats=walk_stats if has_parallel else None,
    )


def make_c_batch_clones(
    ir: KernelIR,
    stacked: dict[str, np.ndarray],
    stacked_consts: dict[str, np.ndarray],
    nb: int,
) -> CClones:
    """Bind the batched entry points against stacked job buffers.

    ``stacked[name]`` is a C-contiguous ``(nb, slots, *sizes)`` float64
    buffer whose slab ``[b]`` is laid out exactly like the single-job
    modular time buffer; ``stacked_consts[name]`` likewise stacks each
    job's const array.  The generated wrappers offset the base pointers
    by codegen-constant strides, so the only extra runtime argument is
    ``nb`` — baked into the returned closures, which therefore satisfy
    the ordinary :class:`CClones` call shapes (and run *every* job per
    call).  The source digest matches :func:`make_c_clones` for the same
    kernel, so a warm ``.so`` cache serves both without recompiling.

    ``walk_par`` stays None: batching already amortizes dispatch, and
    jobs within a call run serially for bitwise reproducibility.
    """
    boundary_ok = all(
        is_vectorizable_boundary(a.boundary) for a in ir.arrays.values()
    )
    source = generate_c_source(
        ir, include_boundary=boundary_ok, include_parallel=True
    )
    try:
        lib = load_shared_object(source, extra_flags=_PTHREAD_FLAGS)
    except CompileError:
        degradations.note("cc:parallel-source-failed->serial-clones")
        source = generate_c_source(ir, include_boundary=boundary_ok)
        lib = load_shared_object(source)

    d = ir.ndim
    n_ptr_args = len(ir.array_infos) + len(ir.const_arrays)
    ptr_types = [ctypes.POINTER(ctypes.c_double)] * n_ptr_args
    step_argtypes = ptr_types + [ctypes.c_longlong] * (2 + 2 * d)
    leaf_argtypes = ptr_types + [ctypes.c_longlong] * (3 + 4 * d)
    walk_argtypes = ptr_types + [ctypes.c_longlong] * (5 + 6 * d)

    for info in ir.array_infos:
        buf = stacked[info.name]
        if not buf.flags["C_CONTIGUOUS"] or buf.dtype != np.float64:
            raise CompileError(f"stacked buffer for {info.name!r} must be "
                               f"C-contiguous float64")
    const_bufs = [
        np.ascontiguousarray(stacked_consts[n], dtype=np.float64)
        for n in sorted(ir.const_arrays)
    ]
    ptrs = tuple(
        stacked[info.name].ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        for info in ir.array_infos
    ) + tuple(
        buf.ctypes.data_as(ctypes.POINTER(ctypes.c_double)) for buf in const_bufs
    )
    nb = int(nb)

    def bind_step(fn) -> CloneFn:
        fn.argtypes = step_argtypes
        fn.restype = None

        def clone(t, lo, hi, _keepalive=const_bufs):
            fn(*ptrs, nb, t, *lo, *hi)

        return clone

    def bind_leaf(fn) -> LeafFn:
        fn.argtypes = leaf_argtypes
        fn.restype = None

        def leaf(ta, tb, lo, hi, dlo, dhi, _keepalive=const_bufs):
            fn(*ptrs, nb, ta, tb, *lo, *hi, *dlo, *dhi)
            return True

        return leaf

    def bind_walk(fn) -> WalkFn:
        fn.argtypes = walk_argtypes
        fn.restype = None

        def walk(
            ta, tb, lo, hi, dlo, dhi, slopes, thresholds, dt_th, hyper,
            _keepalive=const_bufs,
        ):
            fn(
                *ptrs, nb, ta, tb, *lo, *hi, *dlo, *dhi, *slopes,
                *thresholds, dt_th, 1 if hyper else 0,
            )

        return walk

    boundary: CloneFn | None = None
    leaf_boundary: LeafFn | None = None
    if boundary_ok:
        boundary = bind_step(lib.boundary_step_batch)
        leaf_boundary = bind_leaf(lib.leaf_boundary_batch)
    return CClones(
        bind_step(lib.interior_step_batch),
        boundary,
        bind_leaf(lib.leaf_batch),
        leaf_boundary,
        bind_walk(lib.walk_subtree_batch),
        source,
    )
