"""Batched compilation: K same-signature problems as one compiled kernel.

The serving layer's codegen unlock (ROADMAP "stencil-as-a-service"): a
server receiving thousands of small same-shape jobs should not pay K
Python dispatches per region — it should run one compiled call whose
innermost wrapper loops over the jobs.  This module provides the three
pieces the driver's :func:`repro.trap.driver.execute_batch` composes:

* :func:`stack_problems` — validate that the jobs are batchable (same
  problem signature, same time range) and copy each job's arrays into
  one contiguous stacked buffer per array name, ``(nb, slots, *sizes)``,
  whose slab ``[b]`` has exactly the single-job layout;
* :func:`compile_batch_kernel` — compile the template job's IR with the
  batched clones (:func:`repro.compiler.codegen_c.make_c_batch_clones`
  or :func:`repro.compiler.codegen_numpy.make_numpy_batch_clones`) bound
  against the stacked buffers, packaged as an ordinary
  :class:`~repro.compiler.pipeline.CompiledKernel` — so the existing
  event-stream executor runs a whole batch without knowing it;
* :func:`scatter_results` — copy the stacked slabs back into each job's
  own arrays after the run.

Bitwise contract: every batched clone runs the jobs in index order with
the single-job clone's exact instruction sequence per slab (the C
wrappers call the same functions with offset base pointers; the NumPy
clones rebind ``D_``/``C_`` names inside an outer job loop).  Batched
results are therefore bitwise identical to running each job alone, and
the serve tests pin that across apps and backends.

Batched kernels are deliberately *not* cached: they close over the
per-request stacked buffers.  The expensive artifact — the ``.so`` —
is shared with single-job compiles (batch wrappers are always emitted,
so the source digest matches) and cached on disk as usual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompileError, SpecificationError
from repro.compiler import codegen_c, codegen_numpy
from repro.compiler.frontend import KernelIR, build_ir
from repro.compiler.pipeline import CompiledKernel, resolve_mode
from repro.language.stencil import Problem
from repro.resilience import degradations


@dataclass
class BatchStack:
    """K stacked jobs ready for batched compilation/execution."""

    problems: list[Problem]
    signature: str
    #: array name -> (nb, slots, *sizes) float64, C-contiguous.
    stacked: dict[str, np.ndarray]
    #: const array name -> (nb, *sizes), original dtype.
    stacked_consts: dict[str, np.ndarray]

    @property
    def nb(self) -> int:
        return len(self.problems)


def batch_signature(problem: Problem) -> tuple:
    """What must match for two jobs to share one batched kernel: the
    tuning/codegen signature plus the time range (one decomposition
    serves every job, so the trapezoid geometry must be identical)."""
    from repro.autotune.registry import problem_signature

    return (problem_signature(problem), problem.t_start, problem.t_end)


def stack_problems(problems: list[Problem]) -> BatchStack:
    """Validate batchability and stack every job's data.

    Raises :class:`SpecificationError` when the jobs disagree on
    signature or time range — batching is only ever attempted on groups
    the admission layer already keyed by :func:`batch_signature`, so a
    mismatch here is a caller bug, not a degradation.
    """
    if not problems:
        raise SpecificationError("stack_problems needs at least one problem")
    key = batch_signature(problems[0])
    for p in problems[1:]:
        if batch_signature(p) != key:
            raise SpecificationError(
                "batched problems must share signature and time range"
            )
    nb = len(problems)
    template = problems[0]
    stacked: dict[str, np.ndarray] = {}
    for name, arr in template.arrays.items():
        buf = np.empty((nb,) + arr.data.shape, dtype=np.float64)
        for b, p in enumerate(problems):
            buf[b] = p.arrays[name].data
        stacked[name] = buf
    stacked_consts: dict[str, np.ndarray] = {}
    for name, c in template.const_arrays.items():
        stacked_consts[name] = np.stack(
            [np.asarray(p.const_arrays[name].values) for p in problems]
        )
    return BatchStack(list(problems), key[0], stacked, stacked_consts)


def scatter_results(stack: BatchStack) -> None:
    """Copy each job's slab back into its own arrays after the run."""
    for name, buf in stack.stacked.items():
        for b, p in enumerate(stack.problems):
            p.arrays[name].data[...] = buf[b]


def _batchable_ir(ir: KernelIR) -> None:
    for arr in ir.arrays.values():
        if not codegen_numpy.is_vectorizable_boundary(arr.boundary):
            raise CompileError(
                f"array {arr.name!r} uses a non-vectorizable boundary; "
                f"batched clones cannot express it — run the jobs unbatched"
            )


def compile_batch_kernel(stack: BatchStack, mode: str = "auto") -> CompiledKernel:
    """Compile the template job with batched clones over the stack.

    ``"c"`` degrades to batched NumPy on any compile failure (with the
    usual ``cc:compile-failed->split_pointer`` note); modes without
    fused clones (``interp``/``macro_shadow``) and non-vectorizable
    boundaries raise :class:`CompileError` — callers run those jobs
    unbatched instead.
    """
    resolved = resolve_mode(mode)
    ir = build_ir(stack.problems[0])
    _batchable_ir(ir)
    if resolved == "c":
        try:
            clones = codegen_c.make_c_batch_clones(
                ir, stack.stacked, stack.stacked_consts, stack.nb
            )
            return CompiledKernel(
                interior=clones.interior,
                boundary=clones.boundary,
                mode="c",
                boundary_mode="c",
                ir=ir,
                sources={"c": clones.source},
                leaf=clones.leaf,
                leaf_boundary=clones.leaf_boundary,
                walk=clones.walk,
            )
        except CompileError:
            degradations.note("cc:compile-failed->split_pointer")
            resolved = "split_pointer"
    if resolved == "split_pointer":
        clones = codegen_numpy.make_numpy_batch_clones(
            ir, stack.stacked, stack.stacked_consts, stack.nb
        )
        return CompiledKernel(
            interior=clones.interior,
            boundary=clones.boundary,
            mode="split_pointer",
            boundary_mode="split_pointer",
            ir=ir,
            sources=clones.sources,
            leaf=clones.leaf,
            leaf_boundary=clones.leaf_boundary,
        )
    raise CompileError(f"mode {resolved!r} cannot run batched")
