"""The compile driver: pick a backend, build both clones, cache results.

``compile_kernel`` is what the execution driver calls.  Mode semantics:

* ``"auto"`` — ``split_pointer`` (vectorized NumPy; always available).
* ``"c"`` — C interior + C boundary when every boundary kind is
  expressible, else C interior with the per-point Python boundary clone
  (the paper's design survives: the boundary clone is allowed to be slow).
* ``"split_pointer"`` — NumPy clones, falling back to the per-point
  boundary clone for non-vectorizable boundary kinds.
* ``"macro_shadow"`` / ``"interp"`` — per-point clones.

Compiled kernels are cached per (kernel AST, array metadata, mode): the
generated code bakes in array identities, sizes and boundary kinds, so
those form the cache key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import CompileError
from repro.compiler import codegen_c, codegen_numpy, codegen_python
from repro.compiler.codegen_numpy import LeafFn
from repro.compiler.frontend import KernelIR, build_ir
from repro.language.stencil import Problem

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]


@dataclass
class CompiledKernel:
    """The kernel clones plus provenance for reporting and tests.

    ``interior``/``boundary`` apply one time step to one region; they
    exist in every mode.  ``leaf``/``leaf_boundary`` are the *fused*
    base-case clones (whole trapezoid time loop inside generated code),
    generated only by the ``split_pointer`` backend — None in modes that
    cannot fuse (``interp``, ``macro_shadow``, ``c``) and for
    non-vectorizable boundaries, where executors fall back to stepping
    the per-step clones.
    """

    interior: CloneFn
    boundary: CloneFn
    mode: str
    boundary_mode: str
    ir: KernelIR
    sources: dict[str, str] = field(default_factory=dict)
    leaf: LeafFn | None = None
    leaf_boundary: LeafFn | None = None

    def without_fused_leaves(self) -> "CompiledKernel":
        """A copy with every fused clone stripped, so base cases step
        through the per-step clones — the per-step reference used by the
        ``fuse_leaves=False`` ablation knob, the leaf-fusion benchmark,
        and the equivalence tests.  (A copy: the cached original keeps
        its clones.)"""
        return replace(self, leaf=None, leaf_boundary=None)


#: (ir cache key, mode, array tokens) -> CompiledKernel, LRU-ordered.
#: Bounded: compiled kernels close over their arrays' buffers, and cache
#: tokens are never reused, so an unbounded cache would pin one full
#: grid per short-lived stencil forever (e.g. a parameter sweep that
#: builds a fresh array per iteration).  Locked: nested runs make
#: compile_kernel reachable from worker threads, and the LRU's
#: get/move_to_end/evict sequence is not atomic.
_CACHE: "OrderedDict[tuple, CompiledKernel]" = OrderedDict()
_CACHE_LIMIT = 64
_CACHE_LOCK = threading.Lock()


def available_modes() -> tuple[str, ...]:
    """Codegen modes usable on this machine.

    Includes ``"auto"`` (the documented default), so callers that
    validate a user-supplied mode against this list accept it.
    """
    modes = ["auto", "interp", "macro_shadow", "split_pointer"]
    if codegen_c.find_c_compiler() is not None:
        modes.append("c")
    return tuple(modes)


def clear_cache() -> None:
    with _CACHE_LOCK:
        _CACHE.clear()


def compile_kernel(problem: Problem, mode: str = "auto") -> CompiledKernel:
    """Compile the problem's kernel into interior/boundary clones."""
    if mode == "auto":
        mode = "split_pointer"
    ir = build_ir(problem)
    # Keyed on each array's monotonic cache_token, not id(a.data): object
    # ids are reused after garbage collection, and a reused id would
    # silently return a stale kernel closed over a dead array's buffer.
    # Const arrays need the same treatment — kernels close over their
    # values, and ir.cache_key() carries only their names.
    key = (
        ir.cache_key(),
        mode,
        tuple(a.cache_token for a in ir.arrays.values()),
        tuple(c.cache_token for c in ir.const_arrays.values()),
    )
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            return cached
    compiled = _compile_ir(ir, mode)
    with _CACHE_LOCK:
        _CACHE[key] = compiled
        while len(_CACHE) > _CACHE_LIMIT:
            _CACHE.popitem(last=False)
    return compiled


def _compile_ir(ir: KernelIR, mode: str) -> CompiledKernel:
    sources: dict[str, str] = {}
    if mode == "interp":
        interior = codegen_python.make_interp_interior(ir)
        boundary = codegen_python.make_interp_boundary(ir)
        return CompiledKernel(
            interior=interior,
            boundary=boundary,
            mode="interp",
            boundary_mode="interp",
            ir=ir,
            sources=sources,
        )
    if mode == "macro_shadow":
        interior, src_i = codegen_python.make_macro_shadow_interior(ir)
        boundary, src_b = codegen_python.make_macro_shadow_boundary(ir)
        sources["interior"] = src_i
        sources["boundary"] = src_b
        return CompiledKernel(
            interior=interior,
            boundary=boundary,
            mode="macro_shadow",
            boundary_mode="macro_shadow",
            ir=ir,
            sources=sources,
        )
    if mode == "split_pointer":
        interior, src_i = codegen_numpy.make_numpy_interior(ir)
        sources["interior"] = src_i
        leaf, src_l = codegen_numpy.make_numpy_leaf(ir)
        sources["leaf"] = src_l
        leaf_boundary = None
        try:
            boundary, src_b = codegen_numpy.make_numpy_boundary(ir)
            boundary_mode = "split_pointer"
            sources["boundary"] = src_b
            leaf_boundary, src_lb = codegen_numpy.make_numpy_leaf_boundary(ir)
            sources["leaf_boundary"] = src_lb
        except CompileError:
            boundary, src_b = codegen_python.make_macro_shadow_boundary(ir)
            boundary_mode = "macro_shadow"
            sources["boundary"] = src_b
        return CompiledKernel(
            interior=interior,
            boundary=boundary,
            mode="split_pointer",
            boundary_mode=boundary_mode,
            ir=ir,
            sources=sources,
            leaf=leaf,
            leaf_boundary=leaf_boundary,
        )
    if mode == "c":
        interior, boundary, src = codegen_c.make_c_clones(ir)
        sources["c"] = src
        if boundary is None:
            boundary, src_b = codegen_python.make_macro_shadow_boundary(ir)
            boundary_mode = "macro_shadow"
            sources["boundary"] = src_b
        else:
            boundary_mode = "c"
        return CompiledKernel(
            interior=interior,
            boundary=boundary,
            mode="c",
            boundary_mode=boundary_mode,
            ir=ir,
            sources=sources,
        )
    raise CompileError(f"unknown codegen mode {mode!r}")
