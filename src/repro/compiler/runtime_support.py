"""Runtime helpers called from generated NumPy kernel code.

The generated ``split_pointer`` boundary clones gather neighbor values
with fancy indexing; these helpers implement the three gather flavors
(index-remap, masked-fill, const-array) so the generated source stays
small and the tricky broadcasting logic lives in tested library code.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def _reshape_for_dim(a: np.ndarray, i: int, ndim: int) -> np.ndarray:
    """Reshape a 1-D per-dimension index array for outer-product
    broadcasting over an ndim-D region."""
    shape = [1] * ndim
    shape[i] = -1
    return a.reshape(shape)


def gather_remap(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    modes: Sequence[str],
    sizes: Sequence[int],
) -> np.ndarray:
    """Gather with per-dimension coordinate remapping.

    ``coords[i]`` holds the absolute (possibly off-domain) read
    coordinates along dimension i; ``modes[i]`` is ``"mod"`` (periodic)
    or ``"clip"`` (Neumann clamp).
    """
    ndim = len(coords)
    idx = []
    for i, (c, mode, n) in enumerate(zip(coords, modes, sizes)):
        mapped = c % n if mode == "mod" else np.clip(c, 0, n - 1)
        idx.append(_reshape_for_dim(mapped, i, ndim))
    return data[(slot, *idx)]


def gather_fill(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    sizes: Sequence[int],
    fill: float,
) -> np.ndarray:
    """Gather with a scalar fill for off-domain coordinates (Dirichlet)."""
    ndim = len(coords)
    idx = []
    mask: np.ndarray | None = None
    for i, (c, n) in enumerate(zip(coords, sizes)):
        in_range = _reshape_for_dim((c >= 0) & (c < n), i, ndim)
        clipped = _reshape_for_dim(np.clip(c, 0, n - 1), i, ndim)
        idx.append(clipped)
        mask = in_range if mask is None else (mask & in_range)
    values = data[(slot, *idx)]
    assert mask is not None
    return np.where(mask, values, fill)


def gather_const(
    values: np.ndarray, indices: Sequence[np.ndarray | int]
) -> np.ndarray:
    """Clamped gather from a read-only const array.

    ``indices`` are broadcastable integer arrays (or scalars), one per
    const-array dimension; each is clamped into range, matching the
    clamped semantics of :meth:`repro.language.array.ConstArray.read`.
    """
    clamped = []
    for ix, n in zip(indices, values.shape):
        clamped.append(np.clip(ix, 0, n - 1))
    broadcast = np.broadcast_arrays(*clamped) if len(clamped) > 1 else clamped
    return values[tuple(broadcast)]


def scatter_write(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    value: np.ndarray | float,
) -> None:
    """Scatter a region result to (possibly wrapped) true coordinates."""
    ndim = len(coords)
    idx = tuple(_reshape_for_dim(c, i, ndim) for i, c in enumerate(coords))
    shape = tuple(len(c) for c in coords)
    data[(slot, *idx)] = np.broadcast_to(np.asarray(value, dtype=data.dtype), shape)
