"""Runtime helpers called from generated NumPy kernel code.

The generated ``split_pointer`` boundary clones gather neighbor values
with fancy indexing; these helpers implement the three gather flavors
(index-remap, masked-fill, const-array) so the generated source stays
small and the tricky broadcasting logic lives in tested library code.
"""

from __future__ import annotations

import threading
from itertools import product
from typing import Callable, Sequence

import numpy as np


class ScratchPool:
    """A pool of reusable scratch buffers for three-address kernel code.

    Generated clones bind ``T{k} = POOL.view(k, shape, dtype)`` once per
    time step and target every ufunc at those views (``out=``), so a leaf
    invocation performs O(pool slots) allocations instead of one fresh
    temporary per expression node per step.  Slot ``k`` always carries
    the same dtype (fixed at codegen time); capacity only grows, so a
    long run converges to zero allocations.
    """

    __slots__ = ("_bufs", "_min_size")

    def __init__(self) -> None:
        self._bufs: dict[int, np.ndarray] = {}
        self._min_size = 0

    def require(self, size: int) -> None:
        """Pre-size future allocations: every slot allocated from now on
        holds at least ``size`` elements (fused leaves call this with the
        widest step of the trapezoid, so shrinking/growing bounds never
        reallocate mid-leaf)."""
        if size > self._min_size:
            self._min_size = size

    def view(self, slot: int, shape: tuple[int, ...], dtype) -> np.ndarray:
        need = 1
        for n in shape:
            need *= n
        buf = self._bufs.get(slot)
        if buf is None or buf.size < need or buf.dtype != dtype:
            buf = np.empty(max(need, self._min_size), dtype=dtype)
            self._bufs[slot] = buf
        return buf[:need].reshape(shape)


class LocalPools:
    """Per-thread :class:`ScratchPool` factory.

    One instance lives in each compiled clone's namespace; parallel
    executors run the same clone from many workers concurrently, so the
    scratch buffers must be thread-local."""

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def get(self) -> ScratchPool:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = ScratchPool()
            self._local.pool = pool
        return pool


def _reshape_for_dim(a: np.ndarray, i: int, ndim: int) -> np.ndarray:
    """Reshape a 1-D per-dimension index array for outer-product
    broadcasting over an ndim-D region."""
    shape = [1] * ndim
    shape[i] = -1
    return a.reshape(shape)


def gather_remap(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    modes: Sequence[str],
    sizes: Sequence[int],
) -> np.ndarray:
    """Gather with per-dimension coordinate remapping.

    ``coords[i]`` holds the absolute (possibly off-domain) read
    coordinates along dimension i; ``modes[i]`` is ``"mod"`` (periodic)
    or ``"clip"`` (Neumann clamp).
    """
    ndim = len(coords)
    idx = []
    for i, (c, mode, n) in enumerate(zip(coords, modes, sizes)):
        mapped = c % n if mode == "mod" else np.clip(c, 0, n - 1)
        idx.append(_reshape_for_dim(mapped, i, ndim))
    return data[(slot, *idx)]


def gather_fill(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    sizes: Sequence[int],
    fill: float,
) -> np.ndarray:
    """Gather with a scalar fill for off-domain coordinates (Dirichlet)."""
    ndim = len(coords)
    idx = []
    mask: np.ndarray | None = None
    for i, (c, n) in enumerate(zip(coords, sizes)):
        in_range = _reshape_for_dim((c >= 0) & (c < n), i, ndim)
        clipped = _reshape_for_dim(np.clip(c, 0, n - 1), i, ndim)
        idx.append(clipped)
        mask = in_range if mask is None else (mask & in_range)
    values = data[(slot, *idx)]
    assert mask is not None
    return np.where(mask, values, fill)


def gather_const(
    values: np.ndarray, indices: Sequence[np.ndarray | int]
) -> np.ndarray:
    """Clamped gather from a read-only const array.

    ``indices`` are broadcastable integer arrays (or scalars), one per
    const-array dimension; each is clamped into range, matching the
    clamped semantics of :meth:`repro.language.array.ConstArray.read`.
    """
    clamped = []
    for ix, n in zip(indices, values.shape):
        clamped.append(np.clip(ix, 0, n - 1))
    broadcast = np.broadcast_arrays(*clamped) if len(clamped) > 1 else clamped
    return values[tuple(broadcast)]


def _wrap_blocks(lo: int, hi: int, n: int) -> list[tuple[slice, slice]]:
    """Partition the virtual range ``[lo, hi)`` into (dst, src) slice pairs
    of contiguous true-coordinate runs (coordinates reduced modulo ``n``).

    A range that wraps the periodic seam yields one pair per contiguous
    run; ranges wider than ``n`` repeat source runs (reads only).
    """
    out = []
    pos = lo
    while pos < hi:
        r = pos % n
        take = min(hi - pos, n - r)
        out.append((slice(pos - lo, pos - lo + take), slice(r, r + take)))
        pos += take
    return out


def _clip_blocks(lo: int, hi: int, n: int) -> list[tuple[slice, object]]:
    """(dst, src) pairs for the clamped range ``[lo, hi)``: a leading
    strip pinned to coordinate 0, the in-range middle, and a trailing
    strip pinned to ``n - 1``.  Strip sources are length-1 slices (they
    keep the dimension, so assignment broadcasts the edge slab)."""
    out: list[tuple[slice, slice]] = []
    if lo < 0:
        out.append((slice(0, min(hi, 0) - lo), slice(0, 1)))
    mid_lo, mid_hi = max(lo, 0), min(hi, n)
    if mid_lo < mid_hi:
        out.append((slice(mid_lo - lo, mid_hi - lo), slice(mid_lo, mid_hi)))
    if hi > n:
        out.append((slice(max(lo, n) - lo, hi - lo), slice(n - 1, n)))
    return out


def snapshot_remap(
    data: np.ndarray,
    slot: int,
    lo: Sequence[int],
    hi: Sequence[int],
    modes: Sequence[str],
    sizes: Sequence[int],
    out: np.ndarray,
) -> np.ndarray:
    """Assemble ``out`` as the remap-read of the virtual box [lo, hi).

    This is the blockwise (memcpy-speed) equivalent of one
    :func:`gather_remap` per stencil offset: the fused leaf snapshots each
    (array, time-offset) pair once per step and turns every neighbor read
    into a plain slice of the snapshot.  ``"mod"`` dimensions copy
    wrapped runs; ``"clip"`` dimensions replicate the edge slab into the
    out-of-range strips (caller guarantees the *home* range of a clip
    dimension is in-domain).
    """
    dim_blocks = [
        _wrap_blocks(l, h, n) if m == "mod" else _clip_blocks(l, h, n)
        for l, h, m, n in zip(lo, hi, modes, sizes)
    ]
    for combo in product(*dim_blocks):
        dst = tuple(c[0] for c in combo)
        src = tuple(c[1] for c in combo)
        out[dst] = data[(slot, *src)]
    return out


def snapshot_fill(
    data: np.ndarray,
    slot: int,
    lo: Sequence[int],
    hi: Sequence[int],
    sizes: Sequence[int],
    fill: float,
    out: np.ndarray,
) -> np.ndarray:
    """Assemble ``out`` as the fill-read of the box [lo, hi): in-range
    cells copy through, anything off-domain becomes ``fill`` (the
    blockwise equivalent of :func:`gather_fill` for an in-domain home
    box plus its halo)."""
    out[...] = fill
    dst = []
    src = []
    for l, h, n in zip(lo, hi, sizes):
        mid_lo, mid_hi = max(l, 0), min(h, n)
        if mid_lo >= mid_hi:
            return out
        dst.append(slice(mid_lo - l, mid_hi - l))
        src.append(slice(mid_lo, mid_hi))
    out[tuple(dst)] = data[(slot, *src)]
    return out


def scatter_box(
    data: np.ndarray,
    slot: int,
    lo: Sequence[int],
    hi: Sequence[int],
    sizes: Sequence[int],
    value: np.ndarray,
) -> None:
    """Blockwise wrapped write of ``value`` (shape ``hi - lo``) to the
    virtual box [lo, hi) — the slice-assignment equivalent of
    :func:`scatter_write` (zoid boxes never exceed one period, so the
    wrapped runs are disjoint)."""
    shape = tuple(h - l for l, h in zip(lo, hi))
    value = np.broadcast_to(np.asarray(value, dtype=data.dtype), shape)
    dim_blocks = [_wrap_blocks(l, h, n) for l, h, n in zip(lo, hi, sizes)]
    for combo in product(*dim_blocks):
        dst = tuple(c[1] for c in combo)
        src = tuple(c[0] for c in combo)
        data[(slot, *dst)] = value[src]


def scatter_write(
    data: np.ndarray,
    slot: int,
    coords: Sequence[np.ndarray],
    value: np.ndarray | float,
) -> None:
    """Scatter a region result to (possibly wrapped) true coordinates."""
    ndim = len(coords)
    idx = tuple(_reshape_for_dim(c, i, ndim) for i, c in enumerate(coords))
    shape = tuple(len(c) for c in coords)
    data[(slot, *idx)] = np.broadcast_to(np.asarray(value, dtype=data.dtype), shape)
