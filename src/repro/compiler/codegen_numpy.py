"""The ``split_pointer`` backend: vectorized NumPy slice kernels.

This is the analogue of the paper's ``-split-pointer`` optimization
(Figure 12(c)): where Pochoir turns each stencil term into a C pointer
incremented along the unit-stride dimension, we turn each term into a
NumPy *slice view* of the underlying buffer — the same strength reduction
(no per-point index arithmetic, contiguous walks of memory), expressed in
the idiom the platform optimizes.

The interior clone applies one whole time step to a rectangular region
with pure slice arithmetic.  The boundary clone evaluates the same
expressions over *true* (modulo-reduced) coordinates, gathering neighbor
values through the per-array boundary remap/fill helpers of
:mod:`repro.compiler.runtime_support`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import CompileError, KernelError
from repro.compiler.frontend import KernelIR
from repro.compiler import runtime_support
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    UnOp,
    Where,
)
from repro.language.boundary import (
    Boundary,
    ConstantBoundary,
    DirichletBoundary,
    MixedBoundary,
    NeumannBoundary,
    PeriodicBoundary,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]

_NP_MATH = {
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "sin": "np.sin",
    "cos": "np.cos",
    "tanh": "np.tanh",
    "fabs": "np.abs",
    "floor": "np.floor",
    "ceil": "np.ceil",
}


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


def boundary_modes(b: Boundary | None, ndim: int) -> list[str] | None:
    """Per-dimension remap modes for a remap-kind boundary, else None.

    An unregistered boundary degrades to clamp: it is only ever consulted
    for reads that are actually in-domain (a kernel whose shape never
    leaves the grid), where clamping is the identity.
    """
    if b is None:
        return ["clip"] * ndim
    if isinstance(b, PeriodicBoundary):
        return ["mod"] * ndim
    if isinstance(b, NeumannBoundary):
        return ["clip"] * ndim
    if isinstance(b, MixedBoundary):
        modes = []
        for i in range(ndim):
            m = b.modes[i] if i < len(b.modes) else "clamp"
            modes.append("mod" if m == "periodic" else "clip")
        return modes
    return None


def boundary_fill_expr(b: Boundary, dt: int) -> str | None:
    """Source of the scalar fill value at time ``t + dt``, else None."""
    if isinstance(b, ConstantBoundary):
        return repr(b.value)
    if isinstance(b, DirichletBoundary):
        return f"({b.base!r} + {b.per_step!r} * (t{dt:+d}))"
    return None


def is_vectorizable_boundary(b: Boundary | None) -> bool:
    """True when the NumPy boundary clone can handle this boundary kind."""
    return b is None or b.is_index_remap or b.is_fill


class _NumpyCodegen:
    """Expression codegen shared by the two NumPy clones."""

    def __init__(self, ir: KernelIR, boundary_mode: bool):
        self.ir = ir
        self.boundary_mode = boundary_mode
        self.used_axes: set[int] = set()

    # W{i}: 1-D true home coordinates; AX{i}R: reshaped for broadcasting.
    def axis_ref(self, i: int) -> str:
        self.used_axes.add(i)
        return f"AX{i}R"

    def affine(self, index) -> str:
        parts: list[str] = []
        for ax, c in index.terms:
            base = "t" if ax.is_time else self.axis_ref(ax.position)
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")"

    def grid_read(self, node: GridRead) -> str:
        if not self.boundary_mode:
            subs = []
            for i, off in enumerate(node.offsets):
                lo = f"l{i}" if off == 0 else f"l{i}{off:+d}"
                hi = f"h{i}" if off == 0 else f"h{i}{off:+d}"
                subs.append(f"{lo}:{hi}")
            return (
                f"D_{node.array}[s_{node.array}_{_slot_tag(node.dt)}, "
                f"{', '.join(subs)}]"
            )
        arr = self.ir.arrays[node.array]
        coords = ", ".join(
            f"W{i}" if off == 0 else f"W{i}{off:+d}"
            for i, off in enumerate(node.offsets)
        )
        slot = f"s_{node.array}_{_slot_tag(node.dt)}"
        modes = boundary_modes(arr.boundary, self.ir.ndim)
        if modes is not None:
            return (
                f"GR(D_{node.array}, {slot}, ({coords},), {tuple(modes)!r}, "
                f"{arr.sizes!r})"
            )
        assert arr.boundary is not None
        fill = boundary_fill_expr(arr.boundary, node.dt)
        if fill is None:
            raise CompileError(
                f"boundary {arr.boundary.describe()} of array "
                f"{node.array!r} is not vectorizable"
            )
        return (
            f"GF(D_{node.array}, {slot}, ({coords},), {arr.sizes!r}, {fill})"
        )

    def const_read(self, node: ConstArrayRead) -> str:
        idx = ", ".join(self.affine(ix) for ix in node.indices)
        return f"GC(C_{node.array}, ({idx},))"

    def val(self, e: Expr) -> str:
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            return f"({self.affine(e.index)} * 1.0)"
        if isinstance(e, LocalRead):
            return f"L_{e.name}"
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            return self.const_read(e)
        if isinstance(e, BinOp):
            a, b = self.val(e.left), self.val(e.right)
            if e.op == "min":
                return f"np.minimum({a}, {b})"
            if e.op == "max":
                return f"np.maximum({a}, {b})"
            if e.op == "%":
                return f"np.fmod({a}, {b})"
            if e.op == "**":
                return f"({a} ** {b})"
            return f"({a} {e.op} {b})"
        if isinstance(e, UnOp):
            v = self.val(e.operand)
            return f"(-{v})" if e.op == "neg" else f"np.abs({v})"
        if isinstance(e, Compare):
            return f"({self.val(e.left)} {e.op} {self.val(e.right)})"
        if isinstance(e, BoolOp):
            fn = "np.logical_and" if e.op == "and" else "np.logical_or"
            return f"{fn}({self.val(e.left)}, {self.val(e.right)})"
        if isinstance(e, NotOp):
            return f"np.logical_not({self.val(e.operand)})"
        if isinstance(e, Where):
            return (
                f"np.where({self.val(e.cond)}, {self.val(e.if_true)}, "
                f"{self.val(e.if_false)})"
            )
        if isinstance(e, Call):
            args = ", ".join(self.val(a) for a in e.args)
            return f"{_NP_MATH[e.func]}({args})"
        raise KernelError(f"cannot generate code for {type(e).__name__}")


def _interior_source(ir: KernelIR) -> str:
    gen = _NumpyCodegen(ir, boundary_mode=False)
    d = ir.ndim
    body: list[str] = []
    for st in ir.statements:
        if isinstance(st, Let):
            body.append(f"        L_{st.name} = {gen.val(st.expr)}")
        elif isinstance(st, Assign):
            arr = st.target.array
            target = ", ".join(f"l{i}:h{i}" for i in range(d))
            body.append(
                f"        D_{arr}[s_{arr}_{_slot_tag(0)}, {target}] = "
                f"{gen.val(st.expr)}"
            )
    lines = ["def interior(t, lo, hi):"]
    for i in range(d):
        lines.append(f"    l{i} = lo[{i}]; h{i} = hi[{i}]")
    empty = " or ".join(f"h{i} <= l{i}" for i in range(d))
    lines.append(f"    if {empty}:")
    lines.append("        return")
    for info in ir.array_infos:
        for dt in info.dts:
            lines.append(
                f"    s_{info.name}_{_slot_tag(dt)} = (t{dt:+d}) % {info.slots}"
            )
    for i in sorted(gen.used_axes):
        shape = ["1"] * d
        shape[i] = "-1"
        lines.append(
            f"    AX{i}R = np.arange(l{i}, h{i}).reshape({', '.join(shape)})"
        )
    lines.append("    with np.errstate(divide='ignore', invalid='ignore'):")
    lines.extend(body)
    return "\n".join(lines)


def _boundary_source(ir: KernelIR) -> str:
    gen = _NumpyCodegen(ir, boundary_mode=True)
    d = ir.ndim
    body: list[str] = []
    for st in ir.statements:
        if isinstance(st, Let):
            body.append(f"        L_{st.name} = {gen.val(st.expr)}")
        elif isinstance(st, Assign):
            arr = st.target.array
            info = ir.arrays[arr]
            coords = ", ".join(f"W{i}" for i in range(d))
            body.append(
                f"        SW(D_{arr}, s_{arr}_{_slot_tag(0)}, ({coords},), "
                f"{gen.val(st.expr)})"
            )
    lines = ["def boundary(t, lo, hi):"]
    for i in range(d):
        lines.append(f"    l{i} = lo[{i}]; h{i} = hi[{i}]")
    empty = " or ".join(f"h{i} <= l{i}" for i in range(d))
    lines.append(f"    if {empty}:")
    lines.append("        return")
    for info in ir.array_infos:
        for dt in info.dts:
            lines.append(
                f"    s_{info.name}_{_slot_tag(dt)} = (t{dt:+d}) % {info.slots}"
            )
    for i in range(d):
        # True home coordinates (virtual reduced modulo the grid size).
        lines.append(f"    W{i} = np.arange(l{i}, h{i}) % {ir.sizes[i]}")
    for i in sorted(gen.used_axes):
        shape = ["1"] * d
        shape[i] = "-1"
        lines.append(f"    AX{i}R = W{i}.reshape({', '.join(shape)})")
    lines.append("    with np.errstate(divide='ignore', invalid='ignore'):")
    lines.extend(body)
    return "\n".join(lines)


def _namespace(ir: KernelIR) -> dict:
    ns: dict = {
        "np": np,
        "GR": runtime_support.gather_remap,
        "GF": runtime_support.gather_fill,
        "GC": runtime_support.gather_const,
        "SW": runtime_support.scatter_write,
    }
    for arr_name, arr in ir.arrays.items():
        ns[f"D_{arr_name}"] = arr.data
    for c_name, c in ir.const_arrays.items():
        ns[f"C_{c_name}"] = c.values
    return ns


def make_numpy_interior(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generate and compile the vectorized interior clone."""
    src = _interior_source(ir)
    ns = _namespace(ir)
    exec(compile(src, f"<split_pointer:{'_'.join(ir.write_arrays)}>", "exec"), ns)
    return ns["interior"], src


def make_numpy_boundary(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generate and compile the vectorized boundary clone.

    Raises :class:`CompileError` if any array's boundary kind is not
    vectorizable (callers fall back to the per-point boundary clone).
    """
    for arr in ir.arrays.values():
        if not is_vectorizable_boundary(arr.boundary):
            raise CompileError(
                f"array {arr.name!r} uses non-vectorizable boundary "
                f"{arr.boundary.describe() if arr.boundary else None}"
            )
    src = _boundary_source(ir)
    ns = _namespace(ir)
    exec(
        compile(src, f"<split_pointer_bnd:{'_'.join(ir.write_arrays)}>", "exec"),
        ns,
    )
    return ns["boundary"], src
