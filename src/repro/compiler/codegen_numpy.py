"""The ``split_pointer`` backend: vectorized NumPy slice kernels.

This is the analogue of the paper's ``-split-pointer`` optimization
(Figure 12(c)): where Pochoir turns each stencil term into a C pointer
incremented along the unit-stride dimension, we turn each term into a
NumPy *slice view* of the underlying buffer — the same strength reduction
(no per-point index arithmetic, contiguous walks of memory), expressed in
the idiom the platform optimizes.

Three clones are generated:

* **interior** — one time step on a rectangular region, pure slice
  arithmetic (no boundary checks).
* **boundary** — one time step over *true* (modulo-reduced) coordinates,
  gathering neighbor values through the per-array boundary remap/fill
  helpers of :mod:`repro.compiler.runtime_support`.
* **leaf** / **leaf_boundary** — the fused base-case clone: the *whole*
  trapezoid time loop runs inside generated code (Figure 2's base case),
  with the slope-shifted bounds, slot arithmetic, a single ``errstate``
  context, and coordinate vectors hoisted around the loop.

All clone bodies are lowered to **three-address code**: the kernel AST is
first run through common-subexpression elimination
(:func:`repro.expr.transform.cse_statements`) and then flattened into
single-op ufunc calls targeting views of a per-thread scratch-buffer pool
(``np.multiply(a, b, out=T0)``), with liveness-based slot recycling.  A
leaf invocation therefore performs O(pool slots) allocations instead of
one fresh temporary per expression node per time step, and the final op
of each assignment writes straight into the destination slot's slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import CompileError, KernelError
from repro.compiler.frontend import KernelIR
from repro.compiler import runtime_support
from repro.expr.analysis import walk
from repro.expr.transform import cse_statements
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    Statement,
    UnOp,
    Where,
)
from repro.language.boundary import (
    Boundary,
    ConstantBoundary,
    DirichletBoundary,
    MixedBoundary,
    NeumannBoundary,
    PeriodicBoundary,
)

CloneFn = Callable[[int, tuple[int, ...], tuple[int, ...]], None]
#: The fused base-case clone: (ta, tb, lo, hi, dlo, dhi) -> ran?  False
#: means the leaf declined and the caller must step the per-step clones.
LeafFn = Callable[
    [int, int, tuple[int, ...], tuple[int, ...], tuple[int, ...], tuple[int, ...]],
    bool,
]

_NP_MATH = {
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "sin": "np.sin",
    "cos": "np.cos",
    "tanh": "np.tanh",
    "fabs": "np.abs",
    "floor": "np.floor",
    "ceil": "np.ceil",
}

#: Binary operators as ufuncs (the three-address spellings).
_UFUNC = {
    "+": "np.add",
    "-": "np.subtract",
    "*": "np.multiply",
    "/": "np.divide",
    "%": "np.fmod",
    "**": "np.power",
    "min": "np.minimum",
    "max": "np.maximum",
}

_CMP_UFUNC = {
    "<": "np.less",
    "<=": "np.less_equal",
    ">": "np.greater",
    ">=": "np.greater_equal",
    "==": "np.equal",
    "!=": "np.not_equal",
}


def _slot_tag(dt: int) -> str:
    return f"m{-dt}" if dt < 0 else f"p{dt}"


def boundary_modes(b: Boundary | None, ndim: int) -> list[str] | None:
    """Per-dimension remap modes for a remap-kind boundary, else None.

    An unregistered boundary degrades to clamp: it is only ever consulted
    for reads that are actually in-domain (a kernel whose shape never
    leaves the grid), where clamping is the identity.
    """
    if b is None:
        return ["clip"] * ndim
    if isinstance(b, PeriodicBoundary):
        return ["mod"] * ndim
    if isinstance(b, NeumannBoundary):
        return ["clip"] * ndim
    if isinstance(b, MixedBoundary):
        modes = []
        for i in range(ndim):
            m = b.modes[i] if i < len(b.modes) else "clamp"
            modes.append("mod" if m == "periodic" else "clip")
        return modes
    return None


def boundary_fill_expr(b: Boundary, dt: int) -> str | None:
    """Source of the scalar fill value at time ``t + dt``, else None."""
    if isinstance(b, ConstantBoundary):
        return repr(b.value)
    if isinstance(b, DirichletBoundary):
        return f"({b.base!r} + {b.per_step!r} * (t{dt:+d}))"
    return None


def is_vectorizable_boundary(b: Boundary | None) -> bool:
    """True when the NumPy boundary clone can handle this boundary kind."""
    return b is None or b.is_index_remap or b.is_fill


def _check_vectorizable(ir: KernelIR) -> None:
    for arr in ir.arrays.values():
        if not is_vectorizable_boundary(arr.boundary):
            raise CompileError(
                f"array {arr.name!r} uses non-vectorizable boundary "
                f"{arr.boundary.describe() if arr.boundary else None}"
            )


def _woff_name(i: int, off: int) -> str:
    """Name of the precomputed home-coordinate vector for offset ``off``."""
    if off == 0:
        return f"W{i}"
    return f"W{i}_{'m' if off < 0 else 'p'}{abs(off)}"


@dataclass
class _Ref:
    """One lowered operand.

    ``slot`` is the scratch-pool slot this ref *owns* (the consumer must
    release or adopt it); None for borrowed values — scalars, slice
    views, gather results, and Let-bound names.
    """

    text: str
    slot: int | None = None
    scalar: bool = False
    dtype: str = "f"  # 'f' float | 'b' bool


class _Emitter:
    """Three-address lowering of one (CSE'd) kernel body.

    Produces unindented body lines plus the pool/axis bookkeeping the
    source assemblers turn into a clone prologue.  Slot allocation is a
    stack-machine register allocator: each temp dies at the op that
    consumes it, so its slot is recycled immediately; Let-bound temps
    live until the last statement that reads them.
    """

    def __init__(
        self, ir: KernelIR, boundary_mode: bool, snapshot_mode: bool = False
    ):
        self.ir = ir
        self.boundary_mode = boundary_mode
        #: Snapshot mode (the fused boundary leaf): instead of one fancy
        #: gather per neighbor read, assemble one blockwise halo snapshot
        #: per (array, dt) per step and read plain slices of it.
        self.snapshot_mode = snapshot_mode
        self.used_axes: set[int] = set()
        self.used_woffsets: set[tuple[int, int]] = set()
        self.lines: list[str] = []
        self.n_slots = 0
        self.slot_dtypes: dict[int, str] = {}
        self._free: dict[str, list[int]] = {"f": [], "b": []}
        self._let_refs: dict[str, _Ref] = {}
        self._let_slot: dict[str, int] = {}
        # Snapshot bookkeeping: (array, dt) -> dedicated pool slot, the
        # set assembled so far this step, dims whose home range must be
        # in-domain (clip/fill boundaries), and the halo pads.
        self._snap_slots: dict[tuple[str, int], int] = {}
        self._snap_ready: set[tuple[str, int]] = set()
        self.snapshot_slot_ids: set[int] = set()
        self.snap_clip_dims: set[int] = set()
        self.pad_lo = tuple(max(0, -m) for m in ir.min_off)
        self.pad_hi = tuple(max(0, m) for m in ir.max_off)

    # -- slot allocation ---------------------------------------------------
    def _acquire(self, dtype: str) -> int:
        free = self._free[dtype]
        if free:
            return free.pop()
        slot = self.n_slots
        self.n_slots += 1
        self.slot_dtypes[slot] = dtype
        return slot

    def _release(self, ref: _Ref) -> None:
        if ref.slot is not None:
            self._free[ref.dtype].append(ref.slot)
            ref.slot = None

    # -- leaf references ---------------------------------------------------
    def axis_ref(self, i: int) -> str:
        self.used_axes.add(i)
        return f"AX{i}R"

    def affine(self, index) -> tuple[str, bool]:
        """(source text, is_scalar) of an affine index expression."""
        parts: list[str] = []
        scalar = True
        for ax, c in index.terms:
            if ax.is_time:
                base = "t"
            else:
                base = self.axis_ref(ax.position)
                scalar = False
            parts.append(base if c == 1 else f"{c}*{base}")
        if index.const or not parts:
            parts.append(str(index.const))
        return "(" + " + ".join(parts) + ")", scalar

    def _snapshot_ref(self, node: GridRead) -> _Ref:
        """Slice of the per-(array, dt) halo snapshot for one read."""
        arr = self.ir.arrays[node.array]
        key = (node.array, node.dt)
        name = f"SN_{node.array}_{_slot_tag(node.dt)}"
        if key not in self._snap_ready:
            slot = self._snap_slots.get(key)
            if slot is None:
                # Fresh slot, never from the temp free list: recycled ids
                # would collide with the T{k} views bound per step.
                slot = self.n_slots
                self.n_slots += 1
                self.slot_dtypes[slot] = "f"
                self._snap_slots[key] = slot
                self.snapshot_slot_ids.add(slot)
            d = self.ir.ndim
            lo = ", ".join(
                f"l{i}-{p}" if p else f"l{i}" for i, p in enumerate(self.pad_lo)
            )
            hi = ", ".join(
                f"h{i}+{p}" if p else f"h{i}" for i, p in enumerate(self.pad_hi)
            )
            time_slot = f"s_{node.array}_{_slot_tag(node.dt)}"
            self.lines.append(
                f"{name} = POOL.view({slot}, SHPH, {_np_dtype_text(self.ir, 'f')})"
            )
            modes = boundary_modes(arr.boundary, d)
            if modes is not None:
                for i, m in enumerate(modes):
                    if m == "clip":
                        self.snap_clip_dims.add(i)
                self.lines.append(
                    f"SB(D_{node.array}, {time_slot}, ({lo},), ({hi},), "
                    f"{tuple(modes)!r}, {arr.sizes!r}, {name})"
                )
            else:
                assert arr.boundary is not None
                fill = boundary_fill_expr(arr.boundary, node.dt)
                if fill is None:
                    raise CompileError(
                        f"boundary {arr.boundary.describe()} of array "
                        f"{node.array!r} is not vectorizable"
                    )
                self.snap_clip_dims.update(range(d))
                self.lines.append(
                    f"SBF(D_{node.array}, {time_slot}, ({lo},), ({hi},), "
                    f"{arr.sizes!r}, {fill}, {name})"
                )
            self._snap_ready.add(key)
        subs = []
        for i, off in enumerate(node.offsets):
            start = self.pad_lo[i] + off
            stop = off - self.pad_hi[i]  # relative to the snapshot's end
            subs.append(f"{start}:{stop if stop else ''}")
        return _Ref(f"{name}[{', '.join(subs)}]")

    def grid_read(self, node: GridRead) -> _Ref:
        if self.snapshot_mode:
            return self._snapshot_ref(node)
        if not self.boundary_mode:
            subs = []
            for i, off in enumerate(node.offsets):
                lo = f"l{i}" if off == 0 else f"l{i}{off:+d}"
                hi = f"h{i}" if off == 0 else f"h{i}{off:+d}"
                subs.append(f"{lo}:{hi}")
            return _Ref(
                f"D_{node.array}[s_{node.array}_{_slot_tag(node.dt)}, "
                f"{', '.join(subs)}]"
            )
        arr = self.ir.arrays[node.array]
        coords = []
        for i, off in enumerate(node.offsets):
            self.used_woffsets.add((i, off))
            coords.append(_woff_name(i, off))
        coord_text = ", ".join(coords)
        slot = f"s_{node.array}_{_slot_tag(node.dt)}"
        modes = boundary_modes(arr.boundary, self.ir.ndim)
        if modes is not None:
            return _Ref(
                f"GR(D_{node.array}, {slot}, ({coord_text},), "
                f"{tuple(modes)!r}, {arr.sizes!r})"
            )
        assert arr.boundary is not None
        fill = boundary_fill_expr(arr.boundary, node.dt)
        if fill is None:
            raise CompileError(
                f"boundary {arr.boundary.describe()} of array "
                f"{node.array!r} is not vectorizable"
            )
        return _Ref(
            f"GF(D_{node.array}, {slot}, ({coord_text},), {arr.sizes!r}, {fill})"
        )

    # -- expression lowering -----------------------------------------------
    def ref(self, e: Expr) -> _Ref:
        if isinstance(e, Const):
            return _Ref(repr(e.value), scalar=True)
        if isinstance(e, Param):
            raise CompileError(
                f"parameter {e.name!r} is unbound at codegen; call "
                f"stencil.set_param first"
            )
        if isinstance(e, IndexValue):
            text, scalar = self.affine(e.index)
            return _Ref(f"({text} * 1.0)", scalar=scalar)
        if isinstance(e, LocalRead):
            return self._let_refs[e.name]
        if isinstance(e, GridRead):
            return self.grid_read(e)
        if isinstance(e, ConstArrayRead):
            idx = ", ".join(self.affine(ix)[0] for ix in e.indices)
            return _Ref(f"GC(C_{e.array}, ({idx},))")
        if isinstance(e, BinOp):
            return self._op(_UFUNC[e.op], [e.left, e.right], "f", e)
        if isinstance(e, UnOp):
            fn = "np.negative" if e.op == "neg" else "np.abs"
            return self._op(fn, [e.operand], "f", e)
        if isinstance(e, Compare):
            return self._op(_CMP_UFUNC[e.op], [e.left, e.right], "b", e)
        if isinstance(e, BoolOp):
            fn = "np.logical_and" if e.op == "and" else "np.logical_or"
            return self._op(fn, [e.left, e.right], "b", e)
        if isinstance(e, NotOp):
            return self._op("np.logical_not", [e.operand], "b", e)
        if isinstance(e, Where):
            return self._where(e)
        if isinstance(e, Call):
            return self._op(_NP_MATH[e.func], list(e.args), "f", e)
        raise KernelError(f"cannot generate code for {type(e).__name__}")

    def _scalar_text(self, e: Expr, refs: list[_Ref]) -> str:
        """All-scalar operands: keep the seed's nested-expression spelling
        so scalar arithmetic stays in Python-float land, bit for bit."""
        t = [r.text for r in refs]
        if isinstance(e, BinOp):
            if e.op == "min":
                return f"np.minimum({t[0]}, {t[1]})"
            if e.op == "max":
                return f"np.maximum({t[0]}, {t[1]})"
            if e.op == "%":
                return f"np.fmod({t[0]}, {t[1]})"
            if e.op == "**":
                return f"({t[0]} ** {t[1]})"
            return f"({t[0]} {e.op} {t[1]})"
        if isinstance(e, UnOp):
            return f"(-{t[0]})" if e.op == "neg" else f"np.abs({t[0]})"
        if isinstance(e, Compare):
            return f"({t[0]} {e.op} {t[1]})"
        if isinstance(e, BoolOp):
            fn = "np.logical_and" if e.op == "and" else "np.logical_or"
            return f"{fn}({t[0]}, {t[1]})"
        if isinstance(e, NotOp):
            return f"np.logical_not({t[0]})"
        if isinstance(e, Call):
            return f"{_NP_MATH[e.func]}({', '.join(t)})"
        raise KernelError(f"no scalar form for {type(e).__name__}")

    def _op(self, fn: str, operands: list[Expr], dtype: str, e: Expr) -> _Ref:
        refs = [self.ref(o) for o in operands]
        if all(r.scalar for r in refs):
            return _Ref(self._scalar_text(e, refs), scalar=True, dtype=dtype)
        # Operand temps die here; the destination may recycle one of their
        # slots — exact aliasing of a ufunc input with ``out`` is safe.
        for r in refs:
            self._release(r)
        dst = self._acquire(dtype)
        args = ", ".join(r.text for r in refs)
        self.lines.append(f"{fn}({args}, out=T{dst})")
        return _Ref(f"T{dst}", slot=dst, dtype=dtype)

    def _where(self, e: Where) -> _Ref:
        cond = self.ref(e.cond)
        if_true = self.ref(e.if_true)
        if_false = self.ref(e.if_false)
        if cond.scalar and if_true.scalar and if_false.scalar:
            return _Ref(
                f"np.where({cond.text}, {if_true.text}, {if_false.text})",
                scalar=True,
            )
        dtype = "b" if (if_true.dtype == "b" and if_false.dtype == "b") else "f"
        # np.where has no ``out``; lower to a copy + masked copy.  The
        # destination must NOT alias the mask or the taken branch (the
        # first copyto would clobber them), so acquire before releasing.
        dst = self._acquire(dtype)
        mask = cond.text if cond.dtype == "b" else f"({cond.text} != 0)"
        self.lines.append(f"np.copyto(T{dst}, {if_false.text})")
        self.lines.append(f"np.copyto(T{dst}, {if_true.text}, where={mask})")
        for r in (cond, if_true, if_false):
            self._release(r)
        return _Ref(f"T{dst}", slot=dst, dtype=dtype)

    # -- statements ----------------------------------------------------------
    def _emit_let(self, st: Let) -> None:
        r = self.ref(st.expr)
        self.lines.append(f"L_{st.name} = {r.text}")
        if r.slot is not None:
            # Adopt the temp: the slot now lives until the let's last use.
            self._let_slot[st.name] = r.slot
        self._let_refs[st.name] = _Ref(f"L_{st.name}", None, r.scalar, r.dtype)

    def _write_target(self, arr: str) -> str:
        d = self.ir.ndim
        target = ", ".join(f"l{i}:h{i}" for i in range(d))
        return f"D_{arr}[s_{arr}_{_slot_tag(0)}, {target}]"

    def _emit_assign(self, st: Assign) -> None:
        arr = st.target.array
        e = st.expr
        if not self.boundary_mode:
            dest = self._write_target(arr)
            # Fuse the root op into the destination store.  Only float
            # ufunc roots qualify; a dt==0 home read of the written array
            # aliases the destination *exactly*, which ufuncs permit.
            root: tuple[str, list[Expr]] | None = None
            if isinstance(e, BinOp):
                root = (_UFUNC[e.op], [e.left, e.right])
            elif isinstance(e, UnOp):
                root = ("np.negative" if e.op == "neg" else "np.abs", [e.operand])
            elif isinstance(e, Call):
                root = (_NP_MATH[e.func], list(e.args))
            if root is not None:
                fn, operands = root
                refs = [self.ref(o) for o in operands]
                if not all(r.scalar for r in refs):
                    args = ", ".join(r.text for r in refs)
                    self.lines.append(f"{fn}({args}, out={dest})")
                    for r in refs:
                        self._release(r)
                    return
                self.lines.append(f"{dest} = {self._scalar_text(e, refs)}")
                return
            r = self.ref(e)
            self.lines.append(f"{dest} = {r.text}")
            self._release(r)
            return
        d = self.ir.ndim
        if self.snapshot_mode:
            lo = ", ".join(f"l{i}" for i in range(d))
            hi = ", ".join(f"h{i}" for i in range(d))
            r = self.ref(e)
            self.lines.append(
                f"SC(D_{arr}, s_{arr}_{_slot_tag(0)}, ({lo},), ({hi},), "
                f"{self.ir.arrays[arr].sizes!r}, {r.text})"
            )
            self._release(r)
            # The written level changed: a later dt==0 read of this array
            # must re-assemble its snapshot.
            self._snap_ready.discard((arr, 0))
            return
        for i in range(d):
            self.used_woffsets.add((i, 0))
        coords = ", ".join(f"W{i}" for i in range(d))
        r = self.ref(e)
        self.lines.append(
            f"SW(D_{arr}, s_{arr}_{_slot_tag(0)}, ({coords},), {r.text})"
        )
        self._release(r)

    def emit_body(self, stmts: Sequence[Statement]) -> None:
        last_use: dict[str, int] = {}
        for i, st in enumerate(stmts):
            for node in walk(st.expr):
                if isinstance(node, LocalRead):
                    last_use[node.name] = i
        for i, st in enumerate(stmts):
            if isinstance(st, Let):
                self._emit_let(st)
            elif isinstance(st, Assign):
                self._emit_assign(st)
            else:
                raise KernelError(f"unknown statement {type(st).__name__}")
            for name in list(self._let_slot):
                if last_use.get(name, -1) <= i:
                    slot = self._let_slot.pop(name)
                    self._free[self._let_refs[name].dtype].append(slot)


def _lower(
    ir: KernelIR, boundary_mode: bool, snapshot_mode: bool = False
) -> _Emitter:
    """CSE + three-address lowering of the kernel body."""
    em = _Emitter(ir, boundary_mode, snapshot_mode)
    em.emit_body(cse_statements(ir.statements))
    return em


# -- source assembly ----------------------------------------------------------


def _np_dtype_text(ir: KernelIR, kind: str) -> str:
    if kind == "b":
        return "np.bool_"
    dt = np.result_type(*(a.data.dtype for a in ir.arrays.values()))
    return f"np.dtype({dt.name!r})"


def _slot_lines(ir: KernelIR, indent: str) -> list[str]:
    lines = []
    for info in ir.array_infos:
        for dt in info.dts:
            lines.append(
                f"{indent}s_{info.name}_{_slot_tag(dt)} = "
                f"(t{dt:+d}) % {info.slots}"
            )
    return lines


def _pool_lines(ir: KernelIR, em: _Emitter, indent: str) -> list[str]:
    """Bind the scratch views for the current step's region shape.

    Snapshot slots are excluded — the body binds those itself (at halo
    shape ``SHPH``) when it assembles each snapshot.
    """
    if em.n_slots == 0:
        return []
    d = ir.ndim
    shp = ", ".join(f"h{i} - l{i}" for i in range(d))
    lines = [f"{indent}SHP = ({shp},)"]
    if em.snapshot_slot_ids:
        shph = ", ".join(
            f"h{i} - l{i} + {em.pad_lo[i] + em.pad_hi[i]}" for i in range(d)
        )
        lines.append(f"{indent}SHPH = ({shph},)")
    for slot in range(em.n_slots):
        if slot in em.snapshot_slot_ids:
            continue
        dt = _np_dtype_text(ir, em.slot_dtypes[slot])
        lines.append(f"{indent}T{slot} = POOL.view({slot}, SHP, {dt})")
    return lines


def _w_lines(ir: KernelIR, em: _Emitter, indent: str) -> list[str]:
    """True home-coordinate vectors (virtual reduced modulo the grid) plus
    the shifted copies every gather offset needs, computed once."""
    lines = []
    by_dim: dict[int, list[int]] = {}
    for i, off in sorted(em.used_woffsets):
        by_dim.setdefault(i, []).append(off)
    for i in range(ir.ndim):
        lines.append(f"{indent}W{i} = np.arange(l{i}, h{i}) % {ir.sizes[i]}")
        for off in by_dim.get(i, ()):
            if off != 0:
                lines.append(f"{indent}{_woff_name(i, off)} = W{i} {off:+d}")
    for i in sorted(em.used_axes):
        shape = ["1"] * ir.ndim
        shape[i] = "-1"
        lines.append(f"{indent}AX{i}R = W{i}.reshape({', '.join(shape)})")
    return lines


def _batch_bind_lines(ir: KernelIR, indent: str) -> list[str]:
    """Rebind every ``D_``/``C_`` name to job ``_b``'s slab of the
    stacked buffers — the whole batching transform for the clone bodies,
    which reference arrays only through these names."""
    lines = [f"{indent}D_{name} = BD_{name}[_b]" for name in ir.arrays]
    lines.extend(f"{indent}C_{name} = BC_{name}[_b]" for name in ir.const_arrays)
    return lines


def _interior_source(ir: KernelIR, batch: bool = False) -> str:
    em = _lower(ir, boundary_mode=False)
    d = ir.ndim
    lines = ["def interior(t, lo, hi):"]
    for i in range(d):
        lines.append(f"    l{i} = lo[{i}]; h{i} = hi[{i}]")
    empty = " or ".join(f"h{i} <= l{i}" for i in range(d))
    lines.append(f"    if {empty}:")
    lines.append("        return")
    lines.extend(_slot_lines(ir, "    "))
    if em.n_slots:
        lines.append("    POOL = P.get()")
    for i in sorted(em.used_axes):
        shape = ["1"] * d
        shape[i] = "-1"
        lines.append(
            f"    AX{i}R = np.arange(l{i}, h{i}).reshape({', '.join(shape)})"
        )
    lines.extend(_pool_lines(ir, em, "    "))
    lines.append("    with np.errstate(divide='ignore', invalid='ignore'):")
    ind = "        "
    if batch:
        # Everything geometric (slots, axes, pool views) is shared; only
        # the data bindings differ per job.
        lines.append(f"{ind}for _b in range(NB):")
        ind += "    "
        lines.extend(_batch_bind_lines(ir, ind))
    lines.extend(f"{ind}{b}" for b in em.lines)
    return "\n".join(lines)


def _boundary_source(ir: KernelIR, batch: bool = False) -> str:
    em = _lower(ir, boundary_mode=True)
    d = ir.ndim
    lines = ["def boundary(t, lo, hi):"]
    for i in range(d):
        lines.append(f"    l{i} = lo[{i}]; h{i} = hi[{i}]")
    empty = " or ".join(f"h{i} <= l{i}" for i in range(d))
    lines.append(f"    if {empty}:")
    lines.append("        return")
    lines.extend(_slot_lines(ir, "    "))
    if em.n_slots:
        lines.append("    POOL = P.get()")
    lines.extend(_w_lines(ir, em, "    "))
    lines.extend(_pool_lines(ir, em, "    "))
    lines.append("    with np.errstate(divide='ignore', invalid='ignore'):")
    ind = "        "
    if batch:
        lines.append(f"{ind}for _b in range(NB):")
        ind += "    "
        lines.extend(_batch_bind_lines(ir, ind))
    lines.extend(f"{ind}{b}" for b in em.lines)
    return "\n".join(lines)


def _leaf_source(ir: KernelIR, boundary_mode: bool, batch: bool = False) -> str:
    """The fused base-case clone (see module docstring).

    Runs ``[ta, tb)`` time steps over a box whose per-dim bounds shift by
    the zoid slopes after each step.  Everything invariant across steps
    is hoisted: the errstate context, the pool capacity (sized to the
    trapezoid's widest step, so slot views never reallocate mid-leaf),
    and — when a dimension's slopes are zero — its coordinate vectors.

    The boundary leaf uses the *snapshot* strategy: one blockwise halo
    snapshot per (array, dt) per step, every neighbor read a plain slice
    of it.  Clip/fill boundary dimensions require the home range to stay
    in-domain for that to be exact; the generated prologue checks and
    returns False (caller falls back to per-step clones) otherwise.
    Returns True when the leaf ran.
    """
    em = _lower(ir, boundary_mode, snapshot_mode=boundary_mode)
    d = ir.ndim
    name = "leaf_boundary" if boundary_mode else "leaf"
    lines = [f"def {name}(ta, tb, lo, hi, dlo, dhi):"]
    for i in range(d):
        lines.append(
            f"    l{i} = lo[{i}]; h{i} = hi[{i}]; "
            f"d_l{i} = dlo[{i}]; d_h{i} = dhi[{i}]"
        )
    lines.append("    if tb <= ta:")
    lines.append("        return True")
    for i in sorted(em.snap_clip_dims):
        # Clip/fill snapshots are exact only for in-domain home ranges
        # (a wrapped home coordinate would clamp differently); bounds are
        # linear in the step, so checking both ends covers every step.
        lines.append(
            f"    if (min(l{i}, l{i} + d_l{i} * (tb - ta - 1)) < 0 or "
            f"max(h{i}, h{i} + d_h{i} * (tb - ta - 1)) > {ir.sizes[i]}):"
        )
        lines.append("        return False")
    if em.n_slots:
        lines.append("    POOL = P.get()")
        # Widest step of each projection trapezoid: the extent is linear
        # in the step, so the max is at one of the two ends.
        for i in range(d):
            lines.append(
                f"    _m{i} = max(h{i} - l{i}, "
                f"h{i} - l{i} + (d_h{i} - d_l{i}) * (tb - ta - 1))"
            )
        cap = " * ".join(
            f"max(_m{i} + {em.pad_lo[i] + em.pad_hi[i]}, 0)" for i in range(d)
        )
        lines.append(f"    POOL.require({cap})")
    # Per-dimension coordinate caches (IndexValue uses only): rebuilt per
    # step only when the slopes actually move the bounds.  In batch mode
    # they stay valid *across* jobs too — every job restarts from the
    # same bounds, and nonzero slopes force the per-step recompute.
    for i in sorted(em.used_axes):
        lines.append(f"    AX{i}R = None")
    empty = " or ".join(f"h{i} <= l{i}" for i in range(d))
    lines.append("    with np.errstate(divide='ignore', invalid='ignore'):")
    off = ""
    if batch:
        # The decline checks above ran once for the whole batch (pure
        # geometry, before any write), so a False here is all-or-none.
        lines.append("        for _b in range(NB):")
        off = "    "
        lines.extend(_batch_bind_lines(ir, "        " + off))
        for i in range(d):
            # Re-unpack: the time loop below mutates the bounds in place.
            lines.append(f"        {off}l{i} = lo[{i}]; h{i} = hi[{i}]")
    lines.append(f"    {off}    for t in range(ta, tb):")
    lines.append(f"    {off}        if not ({empty}):")
    ind = "            " + off + "    "
    lines.extend(_slot_lines(ir, ind))
    for i in sorted(em.used_axes):
        shape = ["1"] * d
        shape[i] = "-1"
        base = (
            f"(np.arange(l{i}, h{i}) % {ir.sizes[i]})"
            if boundary_mode
            else f"np.arange(l{i}, h{i})"
        )
        lines.append(f"{ind}if AX{i}R is None or d_l{i} != 0 or d_h{i} != 0:")
        lines.append(f"{ind}    AX{i}R = {base}.reshape({', '.join(shape)})")
    lines.extend(_pool_lines(ir, em, ind))
    lines.extend(f"{ind}{b}" for b in em.lines)
    for i in range(d):
        lines.append(f"    {off}        l{i} += d_l{i}; h{i} += d_h{i}")
    lines.append("    return True")
    return "\n".join(lines)


def _namespace(ir: KernelIR) -> dict:
    ns: dict = {
        "np": np,
        "GR": runtime_support.gather_remap,
        "GF": runtime_support.gather_fill,
        "GC": runtime_support.gather_const,
        "SW": runtime_support.scatter_write,
        "SB": runtime_support.snapshot_remap,
        "SBF": runtime_support.snapshot_fill,
        "SC": runtime_support.scatter_box,
        "P": runtime_support.LocalPools(),
    }
    for arr_name, arr in ir.arrays.items():
        ns[f"D_{arr_name}"] = arr.data
    for c_name, c in ir.const_arrays.items():
        ns[f"C_{c_name}"] = c.values
    return ns


def _batch_namespace(
    ir: KernelIR,
    stacked: dict[str, np.ndarray],
    stacked_consts: dict[str, np.ndarray],
    nb: int,
) -> dict:
    """The clone namespace for batched execution: the usual helpers plus
    the stacked ``(nb, slots, *sizes)`` buffers the generated ``_b`` loop
    rebinds per job.  The template ``D_``/``C_`` bindings from
    :func:`_namespace` are shadowed by the loop before any use."""
    ns = _namespace(ir)
    for name, buf in stacked.items():
        ns[f"BD_{name}"] = buf
    for name, buf in stacked_consts.items():
        ns[f"BC_{name}"] = buf
    ns["NB"] = int(nb)
    return ns


def _compile(src: str, tag: str, ir: KernelIR, fn_name: str, ns: dict | None = None):
    if ns is None:
        ns = _namespace(ir)
    exec(compile(src, f"<{tag}:{'_'.join(ir.write_arrays)}>", "exec"), ns)
    return ns[fn_name]


def make_numpy_interior(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generate and compile the vectorized interior clone."""
    src = _interior_source(ir)
    return _compile(src, "split_pointer", ir, "interior"), src


def make_numpy_boundary(ir: KernelIR) -> tuple[CloneFn, str]:
    """Generate and compile the vectorized boundary clone.

    Raises :class:`CompileError` if any array's boundary kind is not
    vectorizable (callers fall back to the per-point boundary clone).
    """
    _check_vectorizable(ir)
    src = _boundary_source(ir)
    return _compile(src, "split_pointer_bnd", ir, "boundary"), src


def make_numpy_leaf(ir: KernelIR) -> tuple[LeafFn, str]:
    """Generate and compile the fused interior base-case clone."""
    src = _leaf_source(ir, boundary_mode=False)
    return _compile(src, "split_pointer_leaf", ir, "leaf"), src


def make_numpy_leaf_boundary(ir: KernelIR) -> tuple[LeafFn, str]:
    """Generate and compile the fused boundary base-case clone.

    Raises :class:`CompileError` for non-vectorizable boundary kinds
    (callers fall back to per-step execution of the per-point clone).
    """
    _check_vectorizable(ir)
    src = _leaf_source(ir, boundary_mode=True)
    return _compile(src, "split_pointer_leaf_bnd", ir, "leaf_boundary"), src


@dataclass
class NumpyBatchClones:
    """Batched split_pointer clones: each call runs every job in the
    stack over the same region/trapezoid, identical geometry and
    identical op sequence to the single-job clones per slab."""

    interior: CloneFn
    boundary: CloneFn
    leaf: LeafFn
    leaf_boundary: LeafFn
    sources: dict[str, str]


def make_numpy_batch_clones(
    ir: KernelIR,
    stacked: dict[str, np.ndarray],
    stacked_consts: dict[str, np.ndarray],
    nb: int,
) -> NumpyBatchClones:
    """Generate and compile the four clones with an outer batch loop.

    ``stacked``/``stacked_consts`` map array name to an ``(nb, ...)``
    stacked buffer whose slab ``[b]`` matches the single-job layout
    exactly — so job ``b`` of a batched call is bitwise the single-job
    clone applied to that slab.  Raises :class:`CompileError` for
    non-vectorizable boundary kinds (callers run the jobs unbatched).
    """
    _check_vectorizable(ir)
    sources = {
        "interior": _interior_source(ir, batch=True),
        "boundary": _boundary_source(ir, batch=True),
        "leaf": _leaf_source(ir, boundary_mode=False, batch=True),
        "leaf_boundary": _leaf_source(ir, boundary_mode=True, batch=True),
    }
    fns = {
        name: _compile(
            src,
            f"split_pointer_batch_{name}",
            ir,
            name,
            ns=_batch_namespace(ir, stacked, stacked_consts, nb),
        )
        for name, src in sources.items()
    }
    return NumpyBatchClones(
        interior=fns["interior"],
        boundary=fns["boundary"],
        leaf=fns["leaf"],
        leaf_boundary=fns["leaf_boundary"],
        sources=sources,
    )
