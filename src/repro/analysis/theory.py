"""Closed-form bounds from Section 3 of the paper.

* Lemma 2:    TRAP span on a minimal zoid:   Theta(d * h^lg(d+2))
* Theorem 3:  TRAP parallelism:              Theta(w^(d - lg(d+2) + 1) / d^2)
* Lemma 4:    STRAP span on a minimal zoid:  Theta(h^lg(2d+1))
* Theorem 5:  STRAP parallelism:             Theta(w^(d - lg(2d+1) + 1) / 2d)

All are Theta-bounds; the functions return the bound's *leading term*
with unit constant, which benchmarks use as overlays (fit a single
constant, compare growth exponents).  The discussion after Theorem 5 is
directly checkable: for d = 1 both give Theta(w^(2 - lg 3)); for d = 2
TRAP gives Theta(w^2) (lg 4 == 2) versus STRAP's Theta(w^(3 - lg 5)).
"""

from __future__ import annotations

import math


def trap_span_bound(height: int, ndim: int) -> float:
    """Lemma 2 leading term: d * h^lg(d+2)."""
    return ndim * height ** math.log2(ndim + 2)


def strap_span_bound(height: int, ndim: int) -> float:
    """Lemma 4 leading term: h^lg(2d+1)."""
    return height ** math.log2(2 * ndim + 1)


def trap_parallelism_bound(width: int, ndim: int) -> float:
    """Theorem 3 leading term: w^(d - lg(d+2) + 1) / d^2."""
    exponent = ndim - math.log2(ndim + 2) + 1
    return width**exponent / (ndim * ndim)


def strap_parallelism_bound(width: int, ndim: int) -> float:
    """Theorem 5 leading term: w^(d - lg(2d+1) + 1) / (2d)."""
    exponent = ndim - math.log2(2 * ndim + 1) + 1
    return width**exponent / (2 * ndim)


def parallelism_growth_exponent(ndim: int, algorithm: str) -> float:
    """The exponent of w in the parallelism bound (for curve fitting)."""
    if algorithm == "trap":
        return ndim - math.log2(ndim + 2) + 1
    if algorithm == "strap":
        return ndim - math.log2(2 * ndim + 1) + 1
    raise ValueError(f"unknown algorithm {algorithm!r}")
