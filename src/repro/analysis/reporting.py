"""Paper-style result tables.

The benchmark harness reports through these helpers so every experiment
prints rows shaped like the paper's own tables (Figure 3's columns,
Figure 9/10/13 series) and EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.tables import Table


@dataclass
class Fig3Row:
    """One benchmark row in the Figure 3 format."""

    benchmark: str
    dims: str
    grid: str
    steps: int
    pochoir_1core: float
    pochoir_pcore: float
    speedup: float
    serial_loops: float
    serial_ratio: float
    parallel_loops: float
    parallel_ratio: float


def fig3_table(rows: Sequence[Fig3Row], *, processors: int) -> str:
    """Render rows in the layout of the paper's Figure 3."""
    t = Table(
        [
            "Benchmark",
            "Dims",
            "Grid",
            "Steps",
            "Pochoir 1c (s)",
            f"{processors}c sim (s)",
            "speedup",
            "Serial loops (s)",
            "ratio",
            f"{processors}c loops (s)",
            "ratio",
        ],
        title=(
            f"Figure 3 (laptop scale): Pochoir vs loops; "
            f"'{processors}c sim' columns use the greedy-scheduler model "
            f"(see DESIGN.md substitutions)"
        ),
    )
    for r in rows:
        t.add_row(
            [
                r.benchmark,
                r.dims,
                r.grid,
                r.steps,
                r.pochoir_1core,
                r.pochoir_pcore,
                r.speedup,
                r.serial_loops,
                r.serial_ratio,
                r.parallel_loops,
                r.parallel_ratio,
            ]
        )
    return t.render()


def series_table(
    title: str,
    x_name: str,
    xs: Sequence[object],
    columns: dict[str, Sequence[float]],
) -> str:
    """Render an x-versus-several-series table (Figures 9, 10, 13)."""
    t = Table([x_name, *columns.keys()], title=title)
    for i, x in enumerate(xs):
        t.add_row([x, *(col[i] for col in columns.values())])
    return t.render()
