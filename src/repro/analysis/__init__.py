"""Theory formulas (Theorems 3 & 5, cache bounds) and result reporting."""

from repro.analysis.theory import (
    strap_parallelism_bound,
    strap_span_bound,
    trap_parallelism_bound,
    trap_span_bound,
)
from repro.analysis.reporting import fig3_table, series_table

__all__ = [
    "fig3_table",
    "series_table",
    "strap_parallelism_bound",
    "strap_span_bound",
    "trap_parallelism_bound",
    "trap_span_bound",
]
