"""Exception hierarchy for the repro (Pochoir reproduction) package.

The paper's *Pochoir Guarantee* promises that a program accepted by the
Phase-1 template library will compile and run under the Phase-2 compiler.
To honor that contract the two phases must reject exactly the same class of
programs, so both raise subclasses of :class:`PochoirError` with stable,
documented meanings.
"""

from __future__ import annotations


class PochoirError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecificationError(PochoirError):
    """The stencil specification is malformed.

    Raised for errors that are detectable from the declaration alone:
    an invalid shape (e.g. home cell with nonzero spatial offsets, a cell
    at a future time), registering arrays of mismatched dimensionality,
    running a stencil with no kernel, and similar misuse of the language
    objects in :mod:`repro.language`.
    """


class ShapeViolationError(PochoirError):
    """A kernel access fell outside the declared Pochoir shape.

    The Phase-1 checked interpreter raises this when the kernel reads a
    grid point whose (time, space) offset from the home cell is not listed
    in the declared :class:`repro.language.Shape`; the Phase-2 compiler
    raises it statically while extracting offsets from the kernel AST.
    """


class BoundaryError(PochoirError):
    """An off-domain access occurred with no boundary function registered,
    or a boundary function itself misbehaved (wrong arity, non-scalar
    return, access outside its contract)."""


class KernelError(PochoirError):
    """The kernel body is not expressible in the Pochoir language.

    Examples: a grid subscript that is not ``axis + constant``; a write to
    a non-home spatial offset; a read of the written time level at a
    nonzero spatial offset (which would make vectorized execution diverge
    from per-point execution); use of an unregistered array.
    """


class CompileError(PochoirError):
    """The Phase-2 compiler failed to generate or build a kernel clone.

    For the C backend this wraps toolchain failures (missing compiler,
    non-zero exit); for the NumPy/Python backends it wraps codegen bugs so
    callers can fall back to a slower mode, mirroring how the Pochoir
    compiler falls back from ``-split-pointer`` to ``-split-macro-shadow``.
    """


class ExecutionError(PochoirError):
    """An executor detected an inconsistent runtime state (e.g. a plan node
    scheduled before its dependency level, or a base-case region outside
    the array's virtual coordinate range)."""


class AutotuneError(PochoirError):
    """The autotuner was given an empty or infeasible search space."""


class CheckpointError(PochoirError):
    """A checkpoint file is unusable: torn or corrupt bytes (checksum
    mismatch), an unknown schema version, a problem-signature mismatch,
    or a time range outside the resuming run.  The resilience loader
    treats this as "skip this file and fall back to the next-newest
    valid checkpoint"; it only propagates from the low-level
    :func:`repro.resilience.checkpoint.load_checkpoint` API."""
