"""Benchmark applications: every workload of the paper's evaluation.

Figure 3's ten benchmarks, each expressed in the repro stencil language:

==========  ====  =========================================================
Benchmark   Dims  Module / notes
==========  ====  =========================================================
Heat        1-4D  :mod:`repro.apps.heat` — periodic and nonperiodic
Life        2Dp   :mod:`repro.apps.life` — Conway's game of life
Wave        3D    :mod:`repro.apps.wave` — depth-2 finite-difference wave
LBM         2D    :mod:`repro.apps.lbm` — D2Q9 lattice Boltzmann (9 state
                  arrays; the paper used a 3D LBM — same "many states,
                  complex kernel" character at laptop scale)
RNA         2D    :mod:`repro.apps.rna` — Nussinov-style interval DP with
                  wavefront time and many branch conditionals (the paper's
                  RNA kernel is likewise a banded, branch-heavy DP)
PSA         1D    :mod:`repro.apps.psa` — Gotoh affine-gap alignment on
                  the anti-diagonal ("diamond") embedding
LCS         1D    :mod:`repro.apps.lcs` — longest common subsequence on
                  the same diamond embedding
APOP        1D    :mod:`repro.apps.apop` — American put option pricing,
                  explicit FD with an early-exercise max
7/27-point  3D    :mod:`repro.apps.points3d` — the Figure 5 kernels
==========  ====  =========================================================

Each module exposes ``build_*`` constructors returning an
:class:`repro.apps.registry.AppInstance`; :func:`repro.apps.registry.build`
builds by name at a chosen scale preset.
"""

from repro.apps.registry import AppInstance, available_apps, build

__all__ = ["AppInstance", "available_apps", "build"]
