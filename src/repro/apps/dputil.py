"""Shared helpers for the diamond-embedded dynamic-programming apps.

PSA and LCS run on the anti-diagonal ("diamond") embedding the paper
uses for its 1-D DP benchmarks: time is the wavefront w = i + j, space is
the diagonal offset x = i - j + N.  These helpers build the recurring
index predicates of that embedding.
"""

from __future__ import annotations

import numpy as np

from repro.expr.builder import eq_, fmath
from repro.expr.nodes import Compare, Expr, as_expr


def is_even(index_expr: object) -> Compare:
    """Elementwise test that an integer-valued expression is even.

    Works on possibly negative values in every backend: ``fmod`` keeps
    the sign of its dividend, so we compare ``|fmod(v, 2)|`` to zero.
    """
    v = as_expr(index_expr)
    return eq_(fmath.fabs(v % 2.0), 0.0)


def doubled(seq: np.ndarray) -> np.ndarray:
    """A2 with A2[2k] = A2[2k+1] = seq[k], for half-integer index tricks."""
    return np.repeat(np.asarray(seq, dtype=np.float64), 2)
