"""RNA secondary-structure DP (Figure 3 row "RNA").

The paper's RNA benchmark (Akutsu's DP) runs on a small 300^2 grid with a
branch-heavy kernel over a triangular domain, and gains little from
parallelization (parallelism ~5).  We reproduce that character with a
**Nussinov-style interval DP without the bifurcation term** (the paper's
kernel is likewise a constant-offset window; full Nussinov's split max is
not a constant-offset stencil — documented substitution in DESIGN.md):

    S(i, j) = max( S(i+1, j), S(i, j-1), S(i+1, j-1) + pair(i, j) )

computed wavefront-by-wavefront over the gap g = j - i, with time as the
wavefront index.  Cells off the active anti-diagonal carry their values
forward, so reads of gap g-2 resolve from the carried level — giving a
depth-1 stencil with slopes (1, 1) and a kernel dominated by index
conditionals, exactly the profile Figure 3 reports for RNA.

Bases are coded 0..3 (A, C, G, U); ``pair(i, j)`` scores 1 when codes sum
to 3 (A-U, C-G — wobble pairs omitted).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import eq_, maximum, where
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import ConstantBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def rna_shape() -> Shape:
    return Shape.from_cells(
        [(1, 0, 0), (0, 0, 0), (0, 1, 0), (0, 0, -1), (0, 1, -1)]
    )


def rna_kernel(s: PochoirArray, seq: ConstArray) -> Kernel:
    def body(t, x, y):
        # Active cells of the wave writing level t+1 have gap y - x == t+1
        # (level g holds all intervals of gap <= g; inactive cells carry).
        active = eq_(y - x, t + 1)
        pair = where(eq_(seq(x) + seq(y), 3.0), 1.0, 0.0)
        best = maximum(
            s(t, x + 1, y),  # i+1, j   (gap g-1, previous wave)
            s(t, x, y - 1),  # i, j-1   (gap g-1, previous wave)
            s(t, x + 1, y - 1) + pair,  # i+1, j-1 (gap g-2, carried)
        )
        return s(t + 1, x, y) << where(active, best, s(t, x, y))

    return Kernel(2, body, name="rna_nussinov")


def build_rna(n: int, steps: int | None = None, *, seed: int = 0) -> AppInstance:
    if steps is None:
        steps = n - 1  # waves for every gap 1..n-1
    s = PochoirArray("s", (n, n)).register_boundary(ConstantBoundary(0.0))
    seq_codes = np.random.default_rng(seed).integers(0, 4, size=n)
    seq = ConstArray("seq", seq_codes.astype(np.float64))
    stencil = Stencil(2, rna_shape(), name="rna")
    stencil.register_array(s)
    stencil.register_const_array(seq)
    kernel = rna_kernel(s, seq)
    s.set_initial(np.zeros((n, n)))
    return AppInstance(
        name="rna",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="s",
        meta={"n": n, "note": "Nussinov without bifurcation (see DESIGN.md)"},
    )


def reference_rna(seq_codes: np.ndarray) -> np.ndarray:
    """Direct interval-DP evaluation of the same recurrence (for tests)."""
    n = len(seq_codes)
    S = np.zeros((n, n))
    for gap in range(1, n):
        for i in range(0, n - gap):
            j = i + gap
            pair = 1.0 if seq_codes[i] + seq_codes[j] == 3 else 0.0
            S[i, j] = max(S[i + 1, j], S[i, j - 1], S[i + 1, j - 1] + pair)
    return S


@register("rna", "paper")
def _rna_paper() -> AppInstance:
    return build_rna(300, 900)


@register("rna", "small")
def _rna_small() -> AppInstance:
    return build_rna(160)


@register("rna", "tiny")
def _rna_tiny() -> AppInstance:
    return build_rna(16)
