"""3D finite-difference wave equation (Figure 3 row "Wave 3").

A depth-2 stencil — the update reads both ``t`` and ``t-1`` — which
exercises the modular time buffer with three slots and per-dimension
slope 1 across two time levels:

    u_{t+1} = 2 u_t - u_{t-1} + c^2 * laplacian(u_t)
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import sum_of
from repro.language.array import PochoirArray
from repro.language.boundary import ConstantBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def wave_shape(ndim: int = 3) -> Shape:
    home = (1,) + (0,) * ndim
    cells = [home, (0,) * (ndim + 1), (-1,) + (0,) * ndim]
    for i in range(ndim):
        for sign in (+1, -1):
            cell = [0] * (ndim + 1)
            cell[1 + i] = sign
            cells.append(tuple(cell))
    return Shape.from_cells(cells)


def wave_kernel(u: PochoirArray, c2: float) -> Kernel:
    ndim = u.ndim

    def body(t, *axes):
        center = u(t, *axes)
        lap_terms = []
        for i in range(ndim):
            plus = list(axes)
            minus = list(axes)
            plus[i] = axes[i] + 1
            minus[i] = axes[i] - 1
            lap_terms.append(u(t, *plus) - 2.0 * center + u(t, *minus))
        return u(t + 1, *axes) << (
            2.0 * center - u(t - 1, *axes) + c2 * sum_of(lap_terms)
        )

    return Kernel(ndim, body, name=f"wave_{ndim}d")


def build_wave(
    sizes: tuple[int, ...], steps: int, *, seed: int = 0, c2: float = 0.2
) -> AppInstance:
    ndim = len(sizes)
    u = PochoirArray("u", sizes, depth=2).register_boundary(ConstantBoundary(0.0))
    stencil = Stencil(ndim, wave_shape(ndim), name="wave")
    stencil.register_array(u)
    kernel = wave_kernel(u, c2)
    rng = np.random.default_rng(seed)
    init = rng.random(sizes)
    u.set_initial(init, t=0)
    u.set_initial(init, t=1)  # zero initial velocity
    return AppInstance(
        name=f"wave_{ndim}d",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="u",
        meta={"c2": c2, "depth": 2},
    )


@register("wave3d", "paper")
def _wave_paper() -> AppInstance:
    return build_wave((1000, 1000, 1000), 500)


@register("wave3d", "small")
def _wave_small() -> AppInstance:
    return build_wave((96, 96, 96), 32)


@register("wave3d", "tiny")
def _wave_tiny() -> AppInstance:
    return build_wave((10, 10, 10), 4)
