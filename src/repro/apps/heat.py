"""Heat-equation benchmarks: the Jacobi stencil of the paper's Section 1.

Covers the Figure 3 rows "Heat 2" (nonperiodic 2D), "Heat 2p" (periodic
2D torus) and "Heat 4" (4D), plus 1D and 3D variants used across the
test suite.  The update is the paper's equation:

    u_{t+1}(x, y) = u_t + CX*(u_t(x±1, y) - 2 u_t) + CY*(u_t(x, y±1) - 2 u_t)

generalized to d dimensions with per-dimension diffusion coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import sum_of
from repro.language.array import PochoirArray
from repro.language.boundary import ConstantBoundary, PeriodicBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def heat_shape(ndim: int) -> Shape:
    """The (2d+2)-cell heat shape: home, center, and ±1 per dimension."""
    home = (1,) + (0,) * ndim
    cells = [home, (0,) * (ndim + 1)]
    for i in range(ndim):
        for sign in (+1, -1):
            cell = [0] * (ndim + 1)
            cell[1 + i] = sign
            cells.append(tuple(cell))
    return Shape.from_cells(cells)


def heat_kernel(u: PochoirArray, coeffs: tuple[float, ...]) -> Kernel:
    """d-dimensional Jacobi heat kernel over array ``u``."""
    ndim = u.ndim

    def body(t, *axes):
        center = u(t, *axes)
        terms = [center]
        for i, c in enumerate(coeffs):
            plus = list(axes)
            minus = list(axes)
            plus[i] = axes[i] + 1
            minus[i] = axes[i] - 1
            terms.append(c * (u(t, *plus) - 2.0 * center + u(t, *minus)))
        return u(t + 1, *axes) << sum_of(terms)

    return Kernel(ndim, body, name=f"heat_{ndim}d")


def build_heat(
    sizes: tuple[int, ...],
    steps: int,
    *,
    periodic: bool = True,
    seed: int = 0,
    alpha: float = 0.1,
) -> AppInstance:
    """General heat builder (any dimensionality, either boundary)."""
    ndim = len(sizes)
    u = PochoirArray("u", sizes)
    u.register_boundary(PeriodicBoundary() if periodic else ConstantBoundary(0.0))
    stencil = Stencil(ndim, heat_shape(ndim), name="heat")
    stencil.register_array(u)
    coeffs = tuple(alpha for _ in range(ndim))
    kernel = heat_kernel(u, coeffs)
    rng = np.random.default_rng(seed)
    u.set_initial(rng.random(sizes))
    return AppInstance(
        name=f"heat_{ndim}d{'p' if periodic else ''}",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="u",
        meta={"periodic": periodic, "alpha": alpha},
    )


# -- Figure 3 rows ---------------------------------------------------------

@register("heat2d", "paper")
def _heat2d_paper() -> AppInstance:
    return build_heat((16_000, 16_000), 500, periodic=False)


@register("heat2d", "small")
def _heat2d_small() -> AppInstance:
    return build_heat((1536, 1536), 64, periodic=False)


@register("heat2d", "tiny")
def _heat2d_tiny() -> AppInstance:
    return build_heat((24, 24), 8, periodic=False)


@register("heat2dp", "paper")
def _heat2dp_paper() -> AppInstance:
    return build_heat((16_000, 16_000), 500, periodic=True)


@register("heat2dp", "small")
def _heat2dp_small() -> AppInstance:
    return build_heat((1536, 1536), 64, periodic=True)


@register("heat2dp", "tiny")
def _heat2dp_tiny() -> AppInstance:
    return build_heat((24, 24), 8, periodic=True)


@register("heat4d", "paper")
def _heat4d_paper() -> AppInstance:
    return build_heat((150, 150, 150, 150), 100, periodic=False)


@register("heat4d", "small")
def _heat4d_small() -> AppInstance:
    return build_heat((24, 24, 24, 24), 16, periodic=False)


@register("heat4d", "tiny")
def _heat4d_tiny() -> AppInstance:
    return build_heat((6, 6, 6, 6), 4, periodic=False)


@register("heat1d", "small")
def _heat1d_small() -> AppInstance:
    return build_heat((65_536,), 256, periodic=True)


@register("heat1d", "tiny")
def _heat1d_tiny() -> AppInstance:
    return build_heat((64,), 12, periodic=True)


@register("heat3d", "small")
def _heat3d_small() -> AppInstance:
    return build_heat((64, 64, 64), 32, periodic=False)


@register("heat3d", "tiny")
def _heat3d_tiny() -> AppInstance:
    return build_heat((10, 10, 10), 4, periodic=False)
