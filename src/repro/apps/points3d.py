"""3D 7-point and 27-point stencils — the Figure 5 kernels.

The paper compares Pochoir to the Berkeley autotuner on exactly these two
kernels (Datta's benchmark suite): the 7-point stencil costs 8 flops per
point, the 27-point stencil 30 flops per point (weighted sums over face /
edge / corner neighbor classes).  Nonperiodic with zero ghost values, as
in the original setup ("ghost cells ... read but never written").
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import sum_of
from repro.language.array import PochoirArray
from repro.language.boundary import ConstantBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def seven_point_shape() -> Shape:
    cells = [(1, 0, 0, 0), (0, 0, 0, 0)]
    for i in range(3):
        for sign in (+1, -1):
            c = [0, 0, 0, 0]
            c[1 + i] = sign
            cells.append(tuple(c))
    return Shape.from_cells(cells)


def twenty_seven_point_shape() -> Shape:
    cells = [(1, 0, 0, 0)]
    for off in product((-1, 0, 1), repeat=3):
        cells.append((0, *off))
    return Shape.from_cells(cells)


def seven_point_kernel(u: PochoirArray, alpha: float = 0.4, beta: float = 0.1) -> Kernel:
    def body(t, x, y, z):
        return u(t + 1, x, y, z) << alpha * u(t, x, y, z) + beta * (
            u(t, x + 1, y, z) + u(t, x - 1, y, z)
            + u(t, x, y + 1, z) + u(t, x, y - 1, z)
            + u(t, x, y, z + 1) + u(t, x, y, z - 1)
        )

    return Kernel(3, body, name="pt7")


def twenty_seven_point_kernel(
    u: PochoirArray,
    alpha: float = 0.25,
    beta: float = 0.06,
    gamma: float = 0.015,
    delta: float = 0.004,
) -> Kernel:
    """Weighted by neighbor class: center / 6 faces / 12 edges / 8 corners."""

    def body(t, x, y, z):
        groups: dict[int, list] = {1: [], 2: [], 3: []}
        for off in product((-1, 0, 1), repeat=3):
            dist = sum(abs(o) for o in off)
            if dist == 0:
                continue
            groups[dist].append(u(t, x + off[0], y + off[1], z + off[2]))
        return u(t + 1, x, y, z) << (
            alpha * u(t, x, y, z)
            + beta * sum_of(groups[1])
            + gamma * sum_of(groups[2])
            + delta * sum_of(groups[3])
        )

    return Kernel(3, body, name="pt27")


def build_points3d(
    n: int, steps: int, *, points: int = 7, seed: int = 0
) -> AppInstance:
    u = PochoirArray("u", (n, n, n)).register_boundary(ConstantBoundary(0.0))
    if points == 7:
        shape, kernel = seven_point_shape(), seven_point_kernel(u)
    elif points == 27:
        shape, kernel = twenty_seven_point_shape(), twenty_seven_point_kernel(u)
    else:
        raise ValueError(f"points must be 7 or 27, got {points}")
    stencil = Stencil(3, shape, name=f"pt{points}")
    stencil.register_array(u)
    rng = np.random.default_rng(seed)
    u.set_initial(rng.random((n, n, n)))
    return AppInstance(
        name=f"pt{points}",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="u",
        meta={"points": points, "flops_per_point": 8 if points == 7 else 30},
    )


@register("pt7", "paper")
def _pt7_paper() -> AppInstance:
    return build_points3d(258, 200, points=7)


@register("pt7", "small")
def _pt7_small() -> AppInstance:
    return build_points3d(192, 8, points=7)


@register("pt7", "tiny")
def _pt7_tiny() -> AppInstance:
    return build_points3d(10, 3, points=7)


@register("pt27", "paper")
def _pt27_paper() -> AppInstance:
    return build_points3d(258, 200, points=27)


@register("pt27", "small")
def _pt27_small() -> AppInstance:
    return build_points3d(128, 6, points=27)


@register("pt27", "tiny")
def _pt27_tiny() -> AppInstance:
    return build_points3d(10, 3, points=27)
