"""Conway's Game of Life (Figure 3 row "Life 2p").

A 9-point Moore-neighborhood stencil over a periodic grid.  Cell states
are 0.0/1.0 doubles; the update rule is expressed with the DSL's
elementwise conditionals:

    alive' = (neighbors == 3) or (alive and neighbors == 2)
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import eq_, sum_of, where
from repro.language.array import PochoirArray
from repro.language.boundary import PeriodicBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def life_shape() -> Shape:
    cells = [(1, 0, 0)]
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            cells.append((0, dx, dy))
    return Shape.from_cells(cells)


def life_kernel(u: PochoirArray) -> Kernel:
    def body(t, x, y):
        neighbors = sum_of(
            u(t, x + dx, y + dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if (dx, dy) != (0, 0)
        )
        alive = u(t, x, y)
        return u(t + 1, x, y) << where(
            eq_(neighbors, 3.0) | ((alive > 0.5) & eq_(neighbors, 2.0)),
            1.0,
            0.0,
        )

    return Kernel(2, body, name="life")


def build_life(n: int, steps: int, *, seed: int = 0, density: float = 0.35) -> AppInstance:
    u = PochoirArray("u", (n, n)).register_boundary(PeriodicBoundary())
    stencil = Stencil(2, life_shape(), name="life")
    stencil.register_array(u)
    kernel = life_kernel(u)
    rng = np.random.default_rng(seed)
    u.set_initial((rng.random((n, n)) < density).astype(np.float64))
    return AppInstance(
        name="life",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="u",
        meta={"density": density},
    )


@register("life", "paper")
def _life_paper() -> AppInstance:
    return build_life(16_000, 500)


@register("life", "small")
def _life_small() -> AppInstance:
    return build_life(1280, 48)


@register("life", "tiny")
def _life_tiny() -> AppInstance:
    return build_life(20, 8)
