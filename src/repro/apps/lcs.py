"""Longest common subsequence (Figure 3 row "LCS").

The classic DP ``L(i,j) = L(i-1,j-1)+1 if a_i == b_j else
max(L(i-1,j), L(i,j-1))`` is not a stencil over (i, j) — the same-row
dependency L(i, j-1) is a same-time read.  The paper runs LCS as a
**1-dimensional** stencil (grid 100,000, 200,000 steps): time is the
anti-diagonal wavefront w = i + j and space is the diagonal offset
x = i - j + N.  Under that embedding,

* L(i-1, j) and L(i, j-1) live on wave w-1 at x -/+ 1 — reads of t at
  x-1 / x+1;
* L(i-1, j-1) lives on wave w-2 at the same x, and because x is inactive
  on wave w-1 (parity alternates) its carried value at t *is* the wave
  w-2 value — a read of t at x;

so the kernel is a depth-1, slope-1, 3-point stencil plus parity/domain
conditionals — the "diamond-shaped domain" the paper describes.

Sequence lookups use *doubled* coordinate arrays (A2[2i] = A2[2i+1] =
a[i]) so the half-integer index (w + x - N)/2 becomes the affine index
w + x - N, evaluated only under the parity guard that makes it even.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dputil import doubled, is_even
from repro.apps.registry import AppInstance, register
from repro.expr.builder import eq_, maximum, where
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import ConstantBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def lcs_shape() -> Shape:
    return Shape.from_cells([(1, 0), (0, 0), (0, 1), (0, -1)])


def lcs_kernel(L: PochoirArray, a2: ConstArray, b2: ConstArray, n: int) -> Kernel:
    def body(t, x):
        w = t + 1  # wave index being computed
        i2 = w + x - n  # == 2i
        j2 = w - x + n  # == 2j
        parity_ok = is_even(i2)
        in_domain = (
            (i2 >= 0) & (j2 >= 0) & (i2 <= 2 * n) & (j2 <= 2 * n)
        )
        interior = (i2 >= 2) & (j2 >= 2)
        # a[i-1] = A2[2(i-1)] = A2[i2 - 2]; likewise for b.
        match = eq_(a2(w + x - n - 2), b2(w - x + n - 2))
        value = where(
            interior,
            where(
                match,
                L(t, x) + 1.0,  # L(i-1, j-1) + 1 via parity carry
                maximum(L(t, x - 1), L(t, x + 1)),
            ),
            0.0,  # i == 0 or j == 0 border
        )
        return L(t + 1, x) << where(parity_ok & in_domain, value, L(t, x))

    return Kernel(1, body, name="lcs_diamond")


def build_lcs(n: int, steps: int | None = None, *, seed: int = 0) -> AppInstance:
    """LCS of two random 4-letter sequences of length ``n`` each."""
    if steps is None:
        steps = 2 * n  # waves w = 1 .. 2n
    width = 2 * n + 1
    L = PochoirArray("L", (width,)).register_boundary(ConstantBoundary(0.0))
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, size=n)
    b = rng.integers(0, 4, size=n)
    a2 = ConstArray("a2", doubled(a))
    b2 = ConstArray("b2", doubled(b))
    stencil = Stencil(1, lcs_shape(), name="lcs")
    stencil.register_array(L)
    stencil.register_const_array(a2)
    stencil.register_const_array(b2)
    kernel = lcs_kernel(L, a2, b2, n)
    L.set_initial(np.zeros(width))
    return AppInstance(
        name="lcs",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="L",
        meta={"n": n, "answer_index": n, "a": a, "b": b},
    )


def lcs_length(app: AppInstance) -> int:
    """Extract LCS(a, b) from a finished run: cell (i, j) = (n, n)."""
    return int(round(app.result()[app.meta["n"]]))


def reference_lcs(a: np.ndarray, b: np.ndarray) -> int:
    """Textbook O(n^2) LCS for verification."""
    n, m = len(a), len(b)
    prev = np.zeros(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cur = np.zeros(m + 1, dtype=np.int64)
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return int(prev[m])


@register("lcs", "paper")
def _lcs_paper() -> AppInstance:
    return build_lcs(50_000, 200_000)


@register("lcs", "small")
def _lcs_small() -> AppInstance:
    return build_lcs(2_048)


@register("lcs", "tiny")
def _lcs_tiny() -> AppInstance:
    return build_lcs(24)
