"""App registry: build any paper benchmark by name at a scale preset.

Scales:

* ``"paper"`` — the published problem sizes (Figure 3).  Provided for
  completeness; several need tens of GB and hours in Python.
* ``"small"`` — laptop-scale defaults preserving each benchmark's
  character (grid >> cache, enough steps for temporal reuse to matter).
* ``"tiny"`` — test-suite scale (seconds via the interp backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import SpecificationError
from repro.language.kernel import Kernel
from repro.language.array import PochoirArray
from repro.language.stencil import Stencil


@dataclass
class AppInstance:
    """One ready-to-run benchmark problem.

    ``steps`` is the benchmark's step count at its scale; ``checksum``
    reads back a stable scalar from the result for cross-backend
    equality checks.
    """

    name: str
    stencil: Stencil
    kernel: Kernel
    steps: int
    result_array: str
    meta: dict = field(default_factory=dict)

    @property
    def sizes(self) -> tuple[int, ...]:
        return self.stencil.sizes

    def run(self, **options) -> object:
        return self.stencil.run(self.steps, self.kernel, **options)

    def result(self) -> np.ndarray:
        arr = self.stencil.arrays[self.result_array]
        assert self.stencil.cursor is not None, "run the app first"
        return arr.snapshot(self.stencil.cursor)

    def checksum(self) -> float:
        return float(np.sum(self.result()))


#: name -> scale -> zero-arg builder
_REGISTRY: dict[str, dict[str, Callable[[], AppInstance]]] = {}


def register(name: str, scale: str):
    def deco(fn: Callable[[], AppInstance]):
        _REGISTRY.setdefault(name, {})[scale] = fn
        return fn

    return deco


def build(name: str, scale: str = "small", **overrides) -> AppInstance:
    """Build a registered app.  ``overrides`` pass through to the builder
    when it supports keyword customization (sizes/steps/seed)."""
    # Builders self-register on first import of their module.
    import repro.apps.heat  # noqa: F401
    import repro.apps.life  # noqa: F401
    import repro.apps.wave  # noqa: F401
    import repro.apps.lbm  # noqa: F401
    import repro.apps.rna  # noqa: F401
    import repro.apps.psa  # noqa: F401
    import repro.apps.lcs  # noqa: F401
    import repro.apps.apop  # noqa: F401
    import repro.apps.points3d  # noqa: F401

    try:
        scales = _REGISTRY[name]
    except KeyError:
        raise SpecificationError(
            f"unknown app {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    try:
        builder = scales[scale]
    except KeyError:
        raise SpecificationError(
            f"app {name!r} has no scale {scale!r}; available: {sorted(scales)}"
        ) from None
    return builder(**overrides) if overrides else builder()


def available_apps() -> list[str]:
    import repro.apps.heat  # noqa: F401
    import repro.apps.life  # noqa: F401
    import repro.apps.wave  # noqa: F401
    import repro.apps.lbm  # noqa: F401
    import repro.apps.rna  # noqa: F401
    import repro.apps.psa  # noqa: F401
    import repro.apps.lcs  # noqa: F401
    import repro.apps.apop  # noqa: F401
    import repro.apps.points3d  # noqa: F401

    return sorted(_REGISTRY)
