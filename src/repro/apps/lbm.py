"""Lattice Boltzmann method (Figure 3 row "LBM").

The paper runs a 3D LBM on a 100x100x130 grid and notes it is "a complex
stencil having many states".  We implement the standard **D2Q9 BGK**
lattice Boltzmann: nine distribution functions f0..f8 (nine registered
Pochoir arrays), each updated by a pull-scheme stream+collide:

    f_i(t+1, x) = (1 - omega) * f_i(t, x - c_i)
                  + omega * feq_i(rho(x - c_i), u(x - c_i))

where rho and u are moments of all nine distributions at the pulled-from
site and feq is the usual second-order equilibrium.  The kernel therefore
carries 9 statements x 9+ grid reads — the "many states" character that
limits LBM's speedup in the paper's Figure 3 (high memory-to-FLOP ratio).
The 2D/3D difference changes constants only; D2Q9 keeps laptop-scale runs
meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import let, local, sum_of
from repro.language.array import PochoirArray
from repro.language.boundary import PeriodicBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil

#: D2Q9 velocities (slowest-varying axis first) and weights.
VELOCITIES: tuple[tuple[int, int], ...] = (
    (0, 0),
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (-1, -1),
    (1, -1),
    (-1, 1),
)
WEIGHTS: tuple[float, ...] = (
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
)


def lbm_shape() -> Shape:
    cells = [(1, 0, 0)]
    for cx, cy in VELOCITIES:
        cells.append((0, -cx, -cy))
    return Shape.from_cells(cells)


def lbm_kernel(fs: list[PochoirArray], omega: float) -> Kernel:
    def body(t, x, y):
        stmts = []
        for i, (cx, cy) in enumerate(VELOCITIES):
            # Moments at the pulled-from site (x - c_i).
            src = lambda j: fs[j](t, x - cx, y - cy)  # noqa: E731
            rho = sum_of(src(j) for j in range(9))
            mx = sum_of(
                VELOCITIES[j][0] * src(j) for j in range(9) if VELOCITIES[j][0]
            )
            my = sum_of(
                VELOCITIES[j][1] * src(j) for j in range(9) if VELOCITIES[j][1]
            )
            stmts.append(let(f"rho{i}", rho))
            stmts.append(let(f"ux{i}", mx / local(f"rho{i}")))
            stmts.append(let(f"uy{i}", my / local(f"rho{i}")))
            cu = cx * local(f"ux{i}") + cy * local(f"uy{i}")
            usq = local(f"ux{i}") * local(f"ux{i}") + local(f"uy{i}") * local(
                f"uy{i}"
            )
            feq = (
                WEIGHTS[i]
                * local(f"rho{i}")
                * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
            )
            stmts.append(
                fs[i](t + 1, x, y) << (1.0 - omega) * src(i) + omega * feq
            )
        return stmts

    return Kernel(2, body, name="lbm_d2q9")


def build_lbm(
    sizes: tuple[int, int], steps: int, *, seed: int = 0, omega: float = 0.6
) -> AppInstance:
    stencil = Stencil(2, lbm_shape(), name="lbm")
    fs = []
    rng = np.random.default_rng(seed)
    # Initialize near-equilibrium at rest with a small density perturbation.
    rho0 = 1.0 + 0.05 * rng.random(sizes)
    for i, w in enumerate(WEIGHTS):
        f = PochoirArray(f"f{i}", sizes).register_boundary(PeriodicBoundary())
        f.set_initial(w * rho0)
        stencil.register_array(f)
        fs.append(f)
    kernel = lbm_kernel(fs, omega)
    return AppInstance(
        name="lbm",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="f0",
        meta={"omega": omega, "model": "D2Q9 BGK (paper used 3D LBM)"},
    )


@register("lbm", "paper")
def _lbm_paper() -> AppInstance:
    # Paper: 100x100x130 grid, 3000 steps (3D).  2D equivalent footprint.
    return build_lbm((1140, 1140), 3000)


@register("lbm", "small")
def _lbm_small() -> AppInstance:
    return build_lbm((128, 128), 48)


@register("lbm", "tiny")
def _lbm_tiny() -> AppInstance:
    return build_lbm((12, 12), 4)
