"""American put option pricing (Figure 3 row "APOP").

Backward induction on a 1-D asset-price lattice: each step discounts the
expected continuation value and applies the early-exercise test,

    v_{k+1}(x) = max( payoff(x),
                      e^{-r dt} * (p_d v_k(x-1) + p_m v_k(x) + p_u v_k(x+1)) )

with ``payoff(x) = max(K - S(x), 0)`` precomputed as a const array over
the price grid.  The kernel is a 3-point stencil plus one branch (the
max), matching the paper's characterization: a huge 1-D grid (2,000,000
points, 10,000 steps) where the cache-oblivious traversal shines
(Figure 3 reports one of the largest ratios, 128.8x over serial loops).
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.registry import AppInstance, register
from repro.expr.builder import maximum
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import NeumannBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil


def apop_shape() -> Shape:
    return Shape.from_cells([(1, 0), (0, 0), (0, 1), (0, -1)])


def apop_kernel(
    v: PochoirArray,
    payoff: ConstArray,
    *,
    p_down: float,
    p_mid: float,
    p_up: float,
    discount: float,
) -> Kernel:
    def body(t, x):
        continuation = discount * (
            p_down * v(t, x - 1) + p_mid * v(t, x) + p_up * v(t, x + 1)
        )
        return v(t + 1, x) << maximum(payoff(x), continuation)

    return Kernel(1, body, name="apop")


def build_apop(
    n: int,
    steps: int,
    *,
    strike: float = 100.0,
    rate: float = 0.05,
    sigma: float = 0.3,
    maturity: float = 1.0,
) -> AppInstance:
    """Price an American put over a log-spaced grid of ``n`` spot prices.

    Grid spacing follows the standard trinomial-lattice choice
    ``dx = sigma * sqrt(3 dt)``, which keeps the explicit scheme stable
    (p_mid = 2/3) for any (n, steps) pairing — the lattice grows with n
    like the paper's 2,000,000-point binomial-style grid.  Log-prices are
    clipped to +/-8 around the strike so deep grid nodes saturate instead
    of overflowing exp.
    """
    dt = maturity / steps
    nu = rate - 0.5 * sigma * sigma
    dx = sigma * math.sqrt(3.0 * dt)
    p_up = 1.0 / 6.0 + nu * dt / (2.0 * dx)
    p_down = 1.0 / 6.0 - nu * dt / (2.0 * dx)
    p_mid = 2.0 / 3.0
    discount = math.exp(-rate * dt)

    log_offsets = np.clip((np.arange(n) - n // 2) * dx, -8.0, 8.0)
    prices = strike * np.exp(log_offsets)
    pay = np.maximum(strike - prices, 0.0)

    v = PochoirArray("v", (n,)).register_boundary(NeumannBoundary())
    payoff = ConstArray("payoff", pay)
    stencil = Stencil(1, apop_shape(), name="apop")
    stencil.register_array(v)
    stencil.register_const_array(payoff)
    kernel = apop_kernel(
        v, payoff, p_down=p_down, p_mid=p_mid, p_up=p_up, discount=discount
    )
    v.set_initial(pay)  # value at maturity is the payoff
    return AppInstance(
        name="apop",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="v",
        meta={
            "strike": strike,
            "prices": prices,
            "weights": (p_down, p_mid, p_up),
            "discount": discount,
        },
    )


def reference_apop(app: AppInstance, steps: int) -> np.ndarray:
    """Direct NumPy backward induction of the same scheme (for tests)."""
    pay = np.asarray(app.stencil.const_arrays["payoff"].values)
    p_down, p_mid, p_up = app.meta["weights"]
    disc = app.meta["discount"]
    v = pay.copy()
    for _ in range(steps):
        down = np.empty_like(v)
        up = np.empty_like(v)
        down[1:] = v[:-1]
        down[0] = v[0]  # Neumann clamp
        up[:-1] = v[1:]
        up[-1] = v[-1]
        v = np.maximum(pay, disc * (p_down * down + p_mid * v + p_up * up))
    return v


@register("apop", "paper")
def _apop_paper() -> AppInstance:
    return build_apop(2_000_000, 10_000)


@register("apop", "small")
def _apop_small() -> AppInstance:
    return build_apop(1_048_576, 256)


@register("apop", "tiny")
def _apop_tiny() -> AppInstance:
    return build_apop(128, 16)
