"""Pairwise sequence alignment with affine gaps — Gotoh (Figure 3 "PSA").

Gotoh's three-matrix recurrence on the diamond embedding (see
:mod:`repro.apps.dputil` and the LCS module for the coordinate system):

    M(i,j) = max(M, X, Y)(i-1, j-1) + s(i, j)
    X(i,j) = max(M(i-1, j) - open,  X(i-1, j) - extend)
    Y(i,j) = max(M(i, j-1) - open,  Y(i, j-1) - extend)

On wave w = i + j with x = i - j + N: (i-1, j) is (t, x-1); (i, j-1) is
(t, x+1); (i-1, j-1) is the parity-carried (t, x).  Three registered
arrays update per step, every update guarded by the diamond-domain
conditionals — the paper notes PSA "employs many conditional branches in
the kernel in order to distinguish interior points from exterior
points", which is exactly the structure here.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dputil import doubled, is_even
from repro.apps.registry import AppInstance, register
from repro.expr.builder import eq_, maximum, where
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import ConstantBoundary
from repro.language.kernel import Kernel
from repro.language.shape import Shape
from repro.language.stencil import Stencil

NEG = -1.0e9  # effectively -infinity for max-plus scores


def psa_shape() -> Shape:
    return Shape.from_cells([(1, 0), (0, 0), (0, 1), (0, -1)])


def psa_kernel(
    M: PochoirArray,
    X: PochoirArray,
    Y: PochoirArray,
    a2: ConstArray,
    b2: ConstArray,
    n: int,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap_open: float = 3.0,
    gap_extend: float = 0.5,
) -> Kernel:
    def body(t, x):
        w = t + 1
        i2 = w + x - n  # == 2i
        j2 = w - x + n  # == 2j
        active = (
            is_even(i2)
            & (i2 >= 0)
            & (j2 >= 0)
            & (i2 <= 2 * n)
            & (j2 <= 2 * n)
        )
        both_pos = (i2 >= 2) & (j2 >= 2)
        s = where(eq_(a2(w + x - n - 2), b2(w - x + n - 2)), match, mismatch)
        m_val = where(
            both_pos,
            maximum(M(t, x), X(t, x), Y(t, x)) + s,
            NEG,  # cells on the i==0 / j==0 borders never start a match
        )
        x_val = where(
            i2 >= 2,  # i >= 1: a gap in b consuming a_i
            maximum(M(t, x - 1) - gap_open, X(t, x - 1) - gap_extend),
            NEG,
        )
        y_val = where(
            j2 >= 2,  # j >= 1: a gap in a consuming b_j
            maximum(M(t, x + 1) - gap_open, Y(t, x + 1) - gap_extend),
            NEG,
        )
        return [
            M(t + 1, x) << where(active, m_val, M(t, x)),
            X(t + 1, x) << where(active, x_val, X(t, x)),
            Y(t + 1, x) << where(active, y_val, Y(t, x)),
        ]

    return Kernel(1, body, name="psa_gotoh")


def build_psa(
    n: int,
    steps: int | None = None,
    *,
    seed: int = 0,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap_open: float = 3.0,
    gap_extend: float = 0.5,
) -> AppInstance:
    if steps is None:
        steps = 2 * n
    width = 2 * n + 1
    M = PochoirArray("M", (width,)).register_boundary(ConstantBoundary(NEG))
    X = PochoirArray("X", (width,)).register_boundary(ConstantBoundary(NEG))
    Y = PochoirArray("Y", (width,)).register_boundary(ConstantBoundary(NEG))
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, size=n)
    b = rng.integers(0, 4, size=n)
    a2 = ConstArray("a2", doubled(a))
    b2 = ConstArray("b2", doubled(b))
    stencil = Stencil(1, psa_shape(), name="psa")
    for arr in (M, X, Y):
        stencil.register_array(arr)
    stencil.register_const_array(a2)
    stencil.register_const_array(b2)
    kernel = psa_kernel(
        M, X, Y, a2, b2, n,
        match=match, mismatch=mismatch,
        gap_open=gap_open, gap_extend=gap_extend,
    )
    init = np.full(width, NEG)
    M.set_initial(init.copy())
    M[0, n] = 0.0  # M(0, 0) = 0: the alignment origin
    X.set_initial(init.copy())
    Y.set_initial(init.copy())
    return AppInstance(
        name="psa",
        stencil=stencil,
        kernel=kernel,
        steps=steps,
        result_array="M",
        meta={
            "n": n, "a": a, "b": b,
            "params": (match, mismatch, gap_open, gap_extend),
        },
    )


def alignment_score(app: AppInstance) -> float:
    """Best global alignment score: max of M/X/Y at cell (n, n)."""
    n = app.meta["n"]
    cursor = app.stencil.cursor
    assert cursor is not None
    return max(
        float(app.stencil.arrays[name].snapshot(cursor)[n])
        for name in ("M", "X", "Y")
    )


def reference_psa(
    a: np.ndarray,
    b: np.ndarray,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap_open: float = 3.0,
    gap_extend: float = 0.5,
) -> float:
    """Textbook O(n m) Gotoh global alignment (for verification)."""
    n, m = len(a), len(b)
    M = np.full((n + 1, m + 1), NEG)
    X = np.full((n + 1, m + 1), NEG)
    Y = np.full((n + 1, m + 1), NEG)
    M[0, 0] = 0.0
    for i in range(1, n + 1):
        X[i, 0] = max(M[i - 1, 0] - gap_open, X[i - 1, 0] - gap_extend)
    for j in range(1, m + 1):
        Y[0, j] = max(M[0, j - 1] - gap_open, Y[0, j - 1] - gap_extend)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            M[i, j] = max(M[i - 1, j - 1], X[i - 1, j - 1], Y[i - 1, j - 1]) + s
            X[i, j] = max(M[i - 1, j] - gap_open, X[i - 1, j] - gap_extend)
            Y[i, j] = max(M[i, j - 1] - gap_open, Y[i, j - 1] - gap_extend)
    return float(max(M[n, m], X[n, m], Y[n, m]))


@register("psa", "paper")
def _psa_paper() -> AppInstance:
    return build_psa(50_000, 200_000)


@register("psa", "small")
def _psa_small() -> AppInstance:
    return build_psa(1_536)


@register("psa", "tiny")
def _psa_tiny() -> AppInstance:
    return build_psa(20)
