"""Driver-side supervisor: shared grids, worker pool, watchdog, retry.

:func:`open_session` promotes the problem's arrays into shared-memory
segments, leases worker subprocesses from a process-wide pool (spawned
once, reused across runs — interpreter startup is paid per worker, not
per ``Stencil.run``), and hands each an *attach* message carrying the
problem pickled as segment descriptors.  The returned
:class:`SupervisedSession` then executes each trapezoid-time-block's
task graph out of process:

* the supervisor owns the ready queue (same dependency-counting
  protocol as the in-process ``"dag"`` executor) and dispatches ready
  regions to idle workers;
* every dispatched task carries a **deadline** scaled to its zoid
  volume; a worker past its deadline, silent beyond the heartbeat
  timeout, or simply dead (exitcode) is declared *lost*;
* a loss aborts the block: every session worker is killed and
  respawned (a half-finished peer may still be writing the shared
  grid, and SIGKILL mid-write is safe only because the block is then
  rolled back), the block-start snapshot is restored into the shared
  segments — the same snapshot discipline PR 7's checkpoint runner
  uses — and the block re-runs after exponential backoff, up to
  ``SuperviseOptions.max_block_retries`` times;
* every event lands in ``RunReport.degradations`` plus the
  ``workers_respawned`` / ``tasks_retried`` counters.

When any of this is unavailable — no shared memory, spawn blocked,
an unpicklable problem, the ``shm.attach`` fault — :func:`open_session`
returns ``None`` with a recorded note and the driver falls back to the
in-process ``"dag"`` executor.

Correctness does not depend on scheduling: every grid point is written
exactly once, by the same kernel clone, from fully-computed inputs,
under *any* assignment of tasks to workers — so supervised runs are
bitwise identical to serial runs, which the stress tests assert while
SIGKILLing random workers mid-run.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import pickle
import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.resilience import degradations, faults
from repro.supervise.options import SuperviseOptions
from repro.supervise.worker import worker_main
from repro.trap.executor import ExecStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.trap.graph import TaskGraph


class _WorkerLost(Exception):
    """A worker crashed or hung mid-block (tag + work to re-execute)."""

    def __init__(self, tag: str, dispatched: int):
        super().__init__(tag)
        self.tag = tag
        self.dispatched = dispatched


class _AttachFailed(Exception):
    pass


class _Worker:
    """One pooled subprocess and its dedicated task pipe.

    Raw ``Pipe`` connections, not ``mp.Queue``: a Queue ``put`` detours
    through a feeder thread (an extra wake-up on both ends of every
    task), where ``Connection.send`` is pickle-plus-``write(2)`` inline.
    The supervisor is the only writer to a task pipe, and it closes its
    read-end copy at spawn — so a send to a crashed worker raises
    ``BrokenPipeError`` instead of buffering into the void, which is how
    dispatch notices a dead worker without waiting for the watchdog.
    """

    def __init__(self, ctx, wid: int, result_w):
        self.wid = wid
        task_r, self._task_w = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=worker_main,
            args=(wid, task_r, result_w),
            name=f"repro-supervise-worker-{wid}",
            daemon=True,
        )
        self.proc.start()
        task_r.close()  # child holds its own copy

    def send(self, msg) -> None:
        """Raises ``OSError`` (``BrokenPipeError``) if the worker died."""
        self._task_w.send(msg)

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except Exception:  # pragma: no cover - already gone
            pass
        self.proc.join(timeout=5.0)
        try:
            self._task_w.close()
        except OSError:  # pragma: no cover - defensive
            pass


class _Pool:
    """Process-wide pool of generic workers for one start method.

    Workers outlive sessions: detach returns a clean worker to ``idle``
    for the next run, so repeated supervised runs cost an attach
    handshake, not an interpreter spawn.
    """

    def __init__(self, method: str):
        self.ctx = multiprocessing.get_context(method)
        # All workers share one result pipe: their messages stay under
        # PIPE_BUF, so concurrent sends are atomic (no torn frames, no
        # lock to leak when a worker is SIGKILLed mid-send).  The pool
        # keeps its writer copy open forever, so the reader never EOFs.
        self.result_r, self.result_w = self.ctx.Pipe(duplex=False)
        self.idle: list[_Worker] = []
        self._wid = itertools.count()

    def take(self, n: int) -> list[_Worker]:
        workers: list[_Worker] = []
        while self.idle and len(workers) < n:
            w = self.idle.pop()
            if w.alive():
                workers.append(w)
            else:  # died while idle; replace below
                w.kill()
        while len(workers) < n:
            workers.append(_Worker(self.ctx, next(self._wid), self.result_w))
        return workers

    def give_back(self, worker: _Worker) -> None:
        if worker.alive():
            self.idle.append(worker)

    def shutdown(self) -> None:
        for w in self.idle:
            try:
                w.send(("exit",))
            except Exception:
                pass
        for w in self.idle:
            w.proc.join(timeout=2.0)
            w.kill()  # no-op if already exited; also closes the pipe
        self.idle.clear()


_POOLS: dict[str, _Pool] = {}
_POOLS_LOCK = threading.Lock()
#: One supervised session at a time per process: the pool's result pipe
#: is shared, and two drainers would steal each other's messages.
_SESSION_LOCK = threading.Lock()
_EPOCH = itertools.count(1)
_LIVE_SESSION: "SupervisedSession | None" = None


def _pool_for(method: str) -> _Pool:
    with _POOLS_LOCK:
        pool = _POOLS.get(method)
        if pool is None:
            pool = _POOLS[method] = _Pool(method)
        return pool


@atexit.register
def shutdown_workers() -> None:
    """Tear down every idle pooled worker (tests; interpreter exit)."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.shutdown()


def live_worker_pids() -> tuple[int, ...]:
    """Pids of the workers attached to the currently running session."""
    session = _LIVE_SESSION
    if session is None:
        return ()
    return tuple(
        w.proc.pid
        for w in session.workers
        if w.proc.pid is not None and w.alive()
    )


def warm_worker_pool(n: int = 1, method: str = "spawn") -> int:
    """Pre-spawn ``n`` idle workers (the serving layer's warm start).

    A server knows supervised jobs are coming before any arrives; paying
    the interpreter spawns up front moves them off the request path —
    the first ``executor="procs"`` run then costs an attach handshake,
    not a cold start.  Returns the pool's idle count afterwards; any
    spawn failure degrades to whatever the pool already had (``0`` at
    worst — supervision itself will then degrade as usual).
    """
    try:
        pool = _pool_for(method)
        for w in pool.take(max(0, int(n))):
            pool.give_back(w)
        return len(pool.idle)
    except Exception:
        return 0


class SupervisedSession:
    """One run's supervised execution context (see module docstring)."""

    def __init__(
        self,
        pool: _Pool,
        workers: list[_Worker],
        epoch: int,
        blob: bytes,
        sup: SuperviseOptions,
        problem,
        report,
    ):
        self.pool = pool
        self.workers = workers
        self.epoch = epoch
        self.blob = blob
        self.sup = sup
        self.problem = problem
        self.report = report
        self._closed = False

    # -- message plumbing --------------------------------------------------
    def _recv(self, timeout: float):
        """Next message belonging to this session's epoch (or None)."""
        reader = self.pool.result_r
        if not reader.poll(timeout):
            return None
        msg = reader.recv()
        if len(msg) < 3 or msg[2] != self.epoch:
            return None  # stale epoch / generic readiness chatter
        return msg

    def _attach_all(self, workers: list[_Worker]) -> None:
        """Send the attach handshake and wait for every acknowledgement."""
        ack_batch = max(1, self.sup.pipeline_depth // 2)
        for w in workers:
            try:
                w.send(
                    (
                        "attach",
                        self.epoch,
                        self.sup.heartbeat_interval,
                        ack_batch,
                        self.blob,
                    )
                )
            except OSError as exc:
                raise _AttachFailed(
                    f"worker died before the attach handshake: {exc}"
                ) from exc
        waiting = {w.wid for w in workers}
        deadline = time.monotonic() + self.sup.attach_timeout
        while waiting:
            msg = self._recv(timeout=0.1)
            if msg is not None:
                kind, wid = msg[0], msg[1]
                if kind == "attached":
                    waiting.discard(wid)
                elif kind == "attach-failed":
                    raise _AttachFailed(msg[3])
            for w in workers:
                if w.wid in waiting and not w.alive():
                    raise _AttachFailed(
                        f"worker exited during attach "
                        f"(exitcode {w.proc.exitcode})"
                    )
            if time.monotonic() > deadline:
                raise _AttachFailed(
                    f"attach timed out after {self.sup.attach_timeout}s"
                )

    # -- block execution ---------------------------------------------------
    def run_graph(self, graph: "TaskGraph") -> ExecStats:
        """Execute one block's task graph with rollback-and-retry.

        The block-start snapshot (a private copy of the shared buffers)
        is the rollback state: any worker loss kills and respawns the
        whole worker set, restores the snapshot into the shared
        segments, and re-runs the graph from scratch — per-task retry
        would be unsound once a block overwrites the modular buffers'
        input slots.
        """
        snap = {
            name: arr.data.copy() for name, arr in self.problem.arrays.items()
        }
        attempt = 0
        t0 = time.perf_counter()
        while True:
            try:
                busy = self._run_once(graph)
            except _WorkerLost as loss:
                attempt += 1
                degradations.note(loss.tag)
                self.report.tasks_retried += loss.dispatched
                self._respawn_all()
                if attempt > self.sup.max_block_retries:
                    raise ExecutionError(
                        f"supervised block failed {attempt} times "
                        f"(last: {loss.tag}); retry budget exhausted"
                    ) from loss
                for name, arr in self.problem.arrays.items():
                    arr.data[...] = snap[name]
                degradations.note("supervise:block-rolled-back")
                if self.sup.retry_backoff > 0:
                    time.sleep(self.sup.retry_backoff * 2 ** (attempt - 1))
            else:
                wall = time.perf_counter() - t0
                return ExecStats(
                    executor="procs",
                    n_workers=len(self.workers),
                    base_cases=graph.n_tasks,
                    wall_time=wall,
                    busy_time=busy,
                )

    def _run_once(self, graph: "TaskGraph") -> float:
        sup = self.sup
        regions = graph.regions
        npred = list(graph.npred)
        ready: deque[int] = deque()
        graph.seed_ready(npred, ready.append)
        by_wid = {w.wid: w for w in self.workers}
        now = time.monotonic()
        # wid -> FIFO of [nid, deadline] the worker is executing/holding.
        # Tasks are *pipelined*: up to ``pipeline_depth`` ready tasks sit
        # in a worker's queue so it runs back-to-back instead of idling a
        # supervisor round trip between base cases.  Only the queue head
        # is executing, so only the head carries an armed deadline; a
        # task's deadline arms when it is promoted to head.
        in_flight: dict[int, deque] = {w.wid: deque() for w in self.workers}
        last_seen = {w.wid: now for w in self.workers}
        pending = graph.n_tasks
        dispatched = 0
        busy = 0.0
        ack_batch = max(1, sup.pipeline_depth // 2)

        def _arm_head(flight: deque, now: float) -> None:
            # The believed head's deadline must budget every task the
            # worker may legitimately run before the head's coalesced
            # ack flushes: up to ``ack_batch`` queued tasks' volumes.
            volume = sum(
                regions[nid].volume()
                for nid, _ in itertools.islice(flight, ack_batch)
            )
            flight[0][1] = now + sup.deadline_for(volume)

        def _dispatch_ready() -> None:
            nonlocal dispatched
            # Round-robin single tasks into per-worker batch lists (so a
            # thin ready queue spreads across workers), then ship each
            # batch as ONE pipe message: on a loaded host the dominant
            # dispatch cost is waking the other process, not the bytes.
            batches: dict[int, list] = {}
            progress = True
            while ready and progress:
                progress = False
                for w in self.workers:
                    if not ready:
                        break
                    flight = in_flight[w.wid]
                    if len(flight) >= sup.pipeline_depth:
                        continue
                    nid = ready.popleft()
                    # The supervisor consumes the worker.* fault budgets
                    # at dispatch (exact `times` semantics even across
                    # respawns) and tags the doomed task; the worker
                    # obeys the tag.
                    inject = None
                    if faults.fire("worker.segfault"):
                        inject = "segfault"
                    elif faults.fire("worker.hang"):
                        inject = "hang"
                    # Deadlines arm lazily once the batch is final (see
                    # ``_arm_head``); queued tasks carry None until they
                    # are promoted to head.
                    flight.append([nid, None])
                    batches.setdefault(w.wid, []).append(
                        (nid, regions[nid], inject)
                    )
                    dispatched += 1
                    progress = True
            arm_now = time.monotonic()
            for wid, batch in batches.items():
                flight = in_flight[wid]
                if flight[0][1] is None:
                    _arm_head(flight, arm_now)
                try:
                    by_wid[wid].send(("tasks", self.epoch, batch))
                except OSError:
                    # Dead reader end: the worker crashed.  The block
                    # retry re-seeds the ready queue from the graph, so
                    # nothing needs requeuing here.
                    raise _WorkerLost(
                        "supervise:worker-crashed->respawned", dispatched
                    ) from None

        while pending > 0:
            _dispatch_ready()
            msg = self._recv(timeout=0.05)
            now = time.monotonic()
            drained = False
            while msg is not None:  # drain, then dispatch once
                drained = True
                kind, wid = msg[0], msg[1]
                last_seen[wid] = now
                if kind == "done-batch":
                    flight = in_flight[wid]
                    for nid, secs in msg[3]:
                        if flight and flight[0][0] == nid:
                            flight.popleft()
                        busy += secs
                        pending -= 1
                        graph.complete(nid, npred, ready.append)
                    if flight and flight[0][1] is None:  # promote next
                        _arm_head(flight, now)
                elif kind == "error":
                    # A Python-level kernel error is deterministic — it
                    # would fail every retry — so it propagates as-is
                    # rather than burning the respawn budget.
                    raise ExecutionError(
                        f"supervised worker task failed: {msg[4]}"
                    )
                msg = self._recv(timeout=0.0)
            if drained:
                continue
            any_flight = False
            for wid, flight in in_flight.items():
                if not flight:
                    continue
                any_flight = True
                w = by_wid[wid]
                if not w.alive():
                    raise _WorkerLost(
                        "supervise:worker-crashed->respawned", dispatched
                    )
                deadline = flight[0][1]
                if (deadline is not None and now > deadline) or (
                    now - last_seen[wid] > sup.heartbeat_timeout
                ):
                    raise _WorkerLost(
                        "supervise:worker-hung->respawned", dispatched
                    )
            if not any_flight and not ready and pending > 0:
                # Nothing running, nothing ready, tasks pending: the
                # graph is inconsistent.  Error out rather than spin.
                raise ExecutionError(  # pragma: no cover - defensive
                    f"supervised execution stalled with {pending} tasks "
                    f"pending (cyclic or inconsistent graph)"
                )
        return busy

    def _respawn_all(self) -> None:
        """Kill every session worker and attach a fresh set.

        Killing the healthy ones too is deliberate: they may be mid-write
        in the shared grid, and the block is about to be rolled back
        anyway — quiescing them gracefully would just hand the watchdog a
        second timeout to wait out.
        """
        for w in self.workers:
            w.kill()
        self.report.workers_respawned += len(self.workers)
        self.epoch = next(_EPOCH)
        replacements = self.pool.take(len(self.workers))
        try:
            self._attach_all(replacements)
        except _AttachFailed as exc:
            for w in replacements:
                w.kill()
            self.workers = []
            raise ExecutionError(
                f"could not respawn supervised workers: {exc}"
            ) from exc
        self.workers = replacements

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Detach workers (clean ones return to the pool), unshare the
        grid, and release the session slot.  Idempotent."""
        global _LIVE_SESSION
        if self._closed:
            return
        self._closed = True
        try:
            waiting: dict[int, _Worker] = {}
            for w in self.workers:
                if not w.alive():
                    continue
                try:
                    w.send(("detach", self.epoch))
                except OSError:  # died between the check and the send
                    continue
                waiting[w.wid] = w
            deadline = time.monotonic() + 10.0
            while waiting and time.monotonic() < deadline:
                msg = self._recv(timeout=0.1)
                if msg is None:
                    for wid, w in list(waiting.items()):
                        if not w.alive():
                            del waiting[wid]
                    continue
                if msg[0] == "detached":
                    w = waiting.pop(msg[1], None)
                    if w is not None:
                        if msg[3]:  # released its mappings: reusable
                            self.pool.give_back(w)
                        else:  # stuck mappings: not worth pooling
                            w.kill()
                elif msg[0] == "done-batch":
                    # Tasks completed between loss detection and close:
                    # the worker is still consistent, keep draining.
                    pass
            for w in waiting.values():  # unresponsive: not worth keeping
                w.kill()
        finally:
            for arr in self.problem.arrays.values():
                arr.unshare()
            self.workers = []
            _LIVE_SESSION = None
            _SESSION_LOCK.release()


def open_session(
    problem, supervise, fuse_leaves: bool, mode: str, n_workers: int, report
) -> SupervisedSession | None:
    """Create a supervised session, or ``None`` (with a degradation note)
    when out-of-process execution is unavailable.

    On ``None`` the caller falls back to the in-process ``"dag"``
    executor; the grid is guaranteed to be back in (or still in) private
    memory, so the caller's compile-after-resolution sees a consistent
    buffer either way.
    """
    global _LIVE_SESSION
    sup = supervise if supervise is not None else SuperviseOptions()
    if not _SESSION_LOCK.acquire(blocking=False):
        # A nested supervised run (e.g. from a user boundary callback)
        # would steal the outer session's result messages.
        degradations.note("supervise:busy->dag")
        return None
    shared: list = []

    def _abort(tag: str) -> None:
        for arr in shared:
            arr.unshare()
        degradations.note(tag)
        _SESSION_LOCK.release()

    try:
        if faults.fire("shm.attach"):
            raise OSError("injected fault: shm.attach")
        for arr in problem.arrays.values():
            arr.share()
            shared.append(arr)
    except Exception:
        _abort("supervise:shm-unavailable->dag")
        return None
    try:
        blob = pickle.dumps(
            {"problem": problem, "mode": mode, "fuse_leaves": fuse_leaves},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception:
        _abort("supervise:pickle-failed->dag")
        return None
    try:
        pool = _pool_for(sup.start_method)
        workers = pool.take(n_workers)
    except Exception:
        _abort("supervise:spawn-failed->dag")
        return None
    session = SupervisedSession(
        pool, workers, next(_EPOCH), blob, sup, problem, report
    )
    try:
        session._attach_all(workers)
    except _AttachFailed:
        for w in workers:
            w.kill()
        session.workers = []
        session._closed = True
        for arr in shared:
            arr.unshare()
        degradations.note("supervise:attach-failed->dag")
        _SESSION_LOCK.release()
        return None
    _LIVE_SESSION = session
    return session
