"""Policy knobs for the supervised (``"procs"``) executor.

Kept in a leaf module so :mod:`repro.language.stencil` can validate a
``RunOptions.supervise`` value without importing the session machinery
(which imports the executor stack and multiprocessing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError


@dataclass(frozen=True)
class SuperviseOptions:
    """How the supervisor watches, kills, and retries its workers.

    ``heartbeat_interval`` / ``heartbeat_timeout``:
        workers emit a heartbeat from a background thread every
        ``heartbeat_interval`` seconds while attached; a worker silent
        for ``heartbeat_timeout`` seconds *while owing a task result* is
        declared lost (catches frozen/SIGSTOP'd processes that are
        technically alive).
    ``task_deadline_floor`` / ``task_deadline_per_mpoint``:
        the hang watchdog's per-task deadline is
        ``floor + per_mpoint * (task zoid volume / 1e6)`` seconds —
        scaled to the work actually dispatched, so a big compiled
        subtree walk is not mistaken for a hang.  The per-Mpoint budget
        defaults far above any backend's real per-point cost.
    ``max_block_retries``:
        how many times one trapezoid-time-block may be rolled back and
        re-run after a worker loss before the run fails.
    ``retry_backoff``:
        sleep before retry ``k`` is ``retry_backoff * 2**(k-1)`` seconds
        (transient resource exhaustion wants breathing room; injected
        faults in tests set this near zero).
    ``attach_timeout``:
        how long to wait for a fresh worker to import, attach the
        shared segments, and compile its kernel before giving up on
        session creation (cold spawn + a cold ``.so`` build can be
        slow; cache hits are not).
    ``pipeline_depth``:
        ready tasks queued to one worker ahead of completion.  At depth
        1 every task costs a full supervisor round trip of idle worker
        time — and, on a host where supervisor and worker share cores,
        a supervisor wake-up per task that steals CPU from the kernel
        itself.  Deeper pipelines amortise both: tasks ship in batched
        messages, and the worker coalesces its completion acks (flushed
        every ``pipeline_depth // 2`` tasks, or the moment it would
        otherwise idle), dividing the per-task supervision tax by the
        batch size.  The watchdog arms a deadline only for the head of
        a worker's queue, budgeted for the whole span of tasks the
        worker may legitimately run before that head's ack flushes — so
        deep pipelines do not misread "acks still coalescing" as a
        hang.
    ``start_method``:
        multiprocessing start method for workers.  ``"spawn"``
        (default) is immune to fork-with-locks hazards; ``"fork"`` is
        faster to start where safe.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    task_deadline_floor: float = 10.0
    task_deadline_per_mpoint: float = 5.0
    max_block_retries: int = 3
    retry_backoff: float = 0.5
    attach_timeout: float = 120.0
    pipeline_depth: int = 16
    start_method: str = "spawn"

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise SpecificationError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise SpecificationError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})"
            )
        if self.task_deadline_floor <= 0 or self.task_deadline_per_mpoint < 0:
            raise SpecificationError("task deadline knobs must be positive")
        if self.max_block_retries < 0:
            raise SpecificationError(
                f"max_block_retries must be >= 0, got {self.max_block_retries}"
            )
        if self.retry_backoff < 0:
            raise SpecificationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.attach_timeout <= 0:
            raise SpecificationError(
                f"attach_timeout must be > 0, got {self.attach_timeout}"
            )
        if self.pipeline_depth < 1:
            raise SpecificationError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise SpecificationError(
                f"unknown start_method {self.start_method!r}; "
                f"choose from ('spawn', 'fork', 'forkserver')"
            )

    def deadline_for(self, volume: int) -> float:
        """Seconds a task covering ``volume`` grid points may take."""
        return self.task_deadline_floor + self.task_deadline_per_mpoint * (
            max(0, volume) / 1e6
        )
