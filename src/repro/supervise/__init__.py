"""Supervised out-of-process execution (the ``"procs"`` executor).

Worker *subprocesses* attach zero-copy views onto shared-memory grid
segments (:meth:`repro.language.array.PochoirArray.share`) and execute
DAG tasks and compiled subtree walks there, while a supervisor in the
driver process owns the task queue and the robustness policy: per-worker
heartbeats, a hang watchdog with zoid-volume-scaled task deadlines,
crash detection, bounded retry with exponential backoff on respawned
workers, and rollback to the last trapezoid-time-block boundary.  A
SIGSEGV, abort, or hang in generated code kills a disposable worker —
never the job.

Public surface:

* :class:`SuperviseOptions` — the policy knobs
  (``RunOptions(supervise=...)``);
* :func:`repro.supervise.session.open_session` — driver-side entry
  (used by :mod:`repro.trap.driver`; returns ``None`` and records a
  degradation when supervision is unavailable);
* :func:`live_worker_pids` — pids of this process's currently attached
  workers (the SIGKILL stress harness aims here);
* :func:`shutdown_workers` — tear down the idle worker pool (tests).
"""

from __future__ import annotations

from repro.supervise.options import SuperviseOptions

__all__ = [
    "SuperviseOptions",
    "live_worker_pids",
    "shutdown_workers",
    "warm_worker_pool",
]


def warm_worker_pool(n: int = 1, method: str = "spawn") -> int:
    """Pre-spawn idle supervised workers (the serving layer's warm
    start); returns the pool's idle count afterwards."""
    from repro.supervise.session import warm_worker_pool as _warm

    return _warm(n, method)


def live_worker_pids() -> tuple[int, ...]:
    """Pids of worker subprocesses currently attached to a session."""
    from repro.supervise.session import live_worker_pids as _pids

    return _pids()


def shutdown_workers() -> None:
    """Terminate every pooled worker subprocess (idle and attached)."""
    from repro.supervise.session import shutdown_workers as _shutdown

    _shutdown()
