"""The supervised worker subprocess: attach, execute tasks, stay disposable.

A worker is spawned *generic* (no problem bound) and then cycles through
attach → tasks → detach sessions, so one long-lived driver process pays
interpreter spawn once per worker, not once per run.  Per session the
worker:

1. unpickles the problem — whose :class:`~repro.language.array.PochoirArray`
   buffers arrive as shared-memory descriptors and attach as zero-copy
   views onto the driver's live grid;
2. compiles its own kernel clones for the driver's resolved mode (the
   on-disk ``.so`` cache makes the C case a hash-keyed reload, not a
   recompile) — pointers are prebound against the *shared* views, so a
   fused leaf or compiled subtree walk writes the driver's physical
   pages directly;
3. executes ``("tasks", ...)`` batches via the same
   :func:`repro.trap.executor.run_base_region` primitive every in-process
   executor uses — bitwise-identical results by construction.
   Completions are acknowledged in *coalesced* ``("done-batch", ...)``
   messages — flushed at the supervisor-chosen threshold, or the moment
   the worker would otherwise idle — because on a loaded host every
   supervisor wake-up steals CPU from this worker's core; batching both
   directions divides that tax by the batch size;
4. emits heartbeats from a background thread while attached, so the
   supervisor can tell "slow" from "gone" even while the GIL is released
   inside a compiled call.

Fault-injection tags ride on the task message (the supervisor consumes
the ``worker.*`` budgets; the worker just obeys): ``"segfault"``
dereferences a null pointer in native code — a *real* SIGSEGV the
interpreter cannot catch — and ``"hang"`` wedges the task forever.

Plumbing is raw ``multiprocessing.Pipe`` connections, not ``mp.Queue``:
a Queue ``put`` hands the message to a background *feeder* thread, so
every task round trip costs four thread wake-ups instead of two — real
money when tasks run low milliseconds.  Worker→supervisor messages are
kept tiny (error text truncated) so each ``Connection.send`` is a single
``write(2)`` under ``PIPE_BUF``, which POSIX makes atomic: concurrent
writers need no cross-process lock, and a worker SIGKILLed mid-send
cannot leave a torn frame for the supervisor to choke on.
"""

from __future__ import annotations

import ctypes
import faulthandler
import gc
import pickle
import signal
import threading
import time
from collections import deque


def _crash_null_deref() -> None:  # pragma: no cover - kills the process
    """Dereference NULL in native code: the injected ``worker.segfault``.

    ``ctypes.memset(0, 0, 1)`` writes through a null pointer inside
    libc — the same SIGSEGV a wild pointer in a generated kernel would
    raise, and equally uncatchable from Python.  (Indexing a NULL ctypes
    pointer would *not* do: ctypes converts that into a ValueError.)
    """
    ctypes.memset(0, 0, 1)


def _hang_forever() -> None:  # pragma: no cover - killed by the watchdog
    while True:
        time.sleep(3600)


class _Heartbeat:
    """Background thread sending ``("hb", wid, epoch)`` up the result
    pipe every ``interval`` seconds until stopped."""

    def __init__(self, put, wid: int, epoch: int, interval: float):
        self._stop = threading.Event()

        def loop() -> None:
            while not self._stop.wait(interval):
                put(("hb", wid, epoch))

        self._thread = threading.Thread(
            target=loop, name="repro-supervise-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class _Attached:
    """One session's worker-side state: the problem and its compiled kernel."""

    def __init__(self, blob: bytes):
        from repro.compiler.pipeline import compile_kernel_resilient

        init = pickle.loads(blob)
        self.problem = init["problem"]
        self.compiled = compile_kernel_resilient(self.problem, init["mode"])
        if not init["fuse_leaves"]:
            self.compiled = self.compiled.without_fused_leaves()

    def release(self) -> bool:
        """Drop every reference to the shared views and close the
        mappings; returns False when a mapping could not be closed (the
        pool then retires this worker instead of letting unlinked
        segments accumulate across sessions)."""
        from repro.compiler.pipeline import clear_cache

        shms = [
            arr._shm
            for arr in self.problem.arrays.values()
            if arr._shm is not None
        ]
        for arr in self.problem.arrays.values():
            arr._shm = None
            arr.data = None
        self.compiled = None
        self.problem = None
        clear_cache()  # the kernel cache pins the shared views
        gc.collect()
        clean = True
        for shm in shms:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - defensive
                clean = False
        return clean


def worker_main(wid: int, task_r, result_w) -> None:
    """Entry point of the worker subprocess (spawn-safe module function)."""
    faulthandler.enable()
    # The supervisor owns interrupt policy; a terminal Ctrl-C must reach
    # the driver's graceful-shutdown handler, not shred the workers first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.trap.executor import run_base_region

    # One lock per *process* (heartbeat thread vs main thread); messages
    # stay under PIPE_BUF so sends from different worker processes are
    # atomic without any cross-process coordination.
    send_lock = threading.Lock()

    def put(msg) -> None:
        try:
            with send_lock:
                result_w.send(msg)
        except (OSError, ValueError):  # supervisor gone: recv() EOFs next
            pass

    attached: _Attached | None = None
    heartbeat: _Heartbeat | None = None
    epoch = -1
    ack_batch = 1
    local: deque = deque()  # dispatched tasks not yet executed
    acks: list = []  # (tid, secs) executed but not yet acknowledged

    def flush_acks() -> None:
        if acks:
            put(("done-batch", wid, epoch, acks.copy()))
            acks.clear()

    put(("ready", wid, -1))
    while True:
        if local:
            tid, region, inject = local.popleft()
            if inject == "segfault":
                _crash_null_deref()
            elif inject == "hang":
                _hang_forever()
            t0 = time.perf_counter()
            try:
                run_base_region(region, attached.compiled)
            except BaseException as exc:
                flush_acks()
                put(("error", wid, epoch, tid, repr(exc)[:512]))
            else:
                acks.append((tid, time.perf_counter() - t0))
                # Flush at the threshold, or the moment there is no more
                # queued work (local and pipe both empty): the held acks
                # are then the only thing standing between the
                # supervisor and the next dispatch.
                if len(acks) >= ack_batch or (
                    not local and not task_r.poll()
                ):
                    flush_acks()
            continue
        try:
            msg = task_r.recv()
        except (EOFError, OSError):  # supervisor closed our pipe: retire
            break
        kind = msg[0]
        if kind == "exit":
            break
        if kind == "attach":
            _, epoch, interval, ack_batch, blob = msg
            try:
                attached = _Attached(blob)
            except BaseException as exc:
                attached = None
                put(("attach-failed", wid, epoch, repr(exc)[:512]))
                continue
            heartbeat = _Heartbeat(put, wid, epoch, interval)
            put(("attached", wid, epoch))
        elif kind == "detach":
            _, epoch = msg
            flush_acks()
            if heartbeat is not None:
                heartbeat.stop()
                heartbeat = None
            clean = attached.release() if attached is not None else True
            attached = None
            put(("detached", wid, epoch, clean))
        elif kind == "tasks":
            local.extend(msg[2])
