"""Cilk-style runtime substrates: work/span analysis and schedulers.

The paper measures scalability with Cilkview (Figure 9), which reports
*work* (T1) and *span* (T-infinity) of the computation DAG.  We compute
the same quantities exactly from the same DAG the walkers generate
(:mod:`repro.runtime.workspan`), and simulate greedy P-processor
schedules over decomposition plans (:mod:`repro.runtime.scheduler`) —
both the barrier-wave model and true task-DAG list scheduling — to
produce the "12-core" columns of Figure 3 on hardware that lacks 12
cores and to quantify the barrier-removal win of the DAG executor.
"""

from repro.runtime.workspan import WorkSpan, analyze_loops, analyze_walk
from repro.runtime.scheduler import (
    brent_time,
    simulate_dag,
    simulate_greedy,
    simulated_dag_speedup,
    simulated_speedup,
)

__all__ = [
    "WorkSpan",
    "analyze_loops",
    "analyze_walk",
    "brent_time",
    "simulate_dag",
    "simulate_greedy",
    "simulated_dag_speedup",
    "simulated_speedup",
]
