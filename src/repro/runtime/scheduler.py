"""Greedy P-processor schedule simulation over decomposition plans.

The paper's Figure 3 reports 12-core wall times from a work-stealing Cilk
runtime.  On a host without 12 cores we *simulate* the schedule instead:

* :func:`brent_time` — the classic greedy-scheduler bound
  ``T_P <= T1/P + T_inf``, evaluated from measured 1-core time and the
  analyzer's work/span ratio.
* :func:`simulate_greedy` — list-schedules the actual base-case regions
  of a plan, wave by wave (waves are the dependency-safe fronts of
  Lemma 1), yielding a tighter estimate that accounts for load imbalance
  among unequal zoids — the effect the paper mentions when scheduling 8
  threads on 12 cores for the Berkeley comparison.
* :func:`simulate_dag` — list-schedules the *true* task DAG
  (:mod:`repro.trap.graph`) with no inter-wave barriers, prioritizing
  the longest remaining critical path.  The gap between this and
  :func:`simulate_greedy` is the barrier-removal win the DAG executor
  realizes — the Figure-9-style analysis for the task-DAG runtime.

All are *models*, clearly labeled as such in the benchmark output; the
threaded executors provide real parallel execution.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Union

from repro.errors import ExecutionError
from repro.trap.graph import TaskGraph, build_task_graph, critical_path_lengths
from repro.trap.plan import PlanNode, linearize_waves, plan_events


def brent_time(t1: float, work: float, span: float, processors: int) -> float:
    """Greedy-scheduler completion-time bound scaled to measured T1.

    ``t1`` is the measured serial wall time; ``work``/``span`` come from
    the work/span analyzer in abstract units.  The bound is
    ``T_P <= T1/P + T_inf`` with ``T_inf = t1 * span / work``.
    """
    if processors < 1:
        raise ExecutionError(f"processors must be >= 1, got {processors}")
    if work <= 0:
        return 0.0
    t_inf = t1 * (span / work)
    return t1 / processors + t_inf


def simulate_greedy(plan: PlanNode, processors: int) -> float:
    """Makespan (in grid-point units) of list-scheduling the plan's base
    regions onto ``processors`` workers, wave by wave.

    Within each wave, regions are assigned longest-processing-time-first
    onto the least-loaded worker; waves are separated by barriers, the
    execution model of :func:`repro.trap.plan.linearize_waves`.
    """
    if processors < 1:
        raise ExecutionError(f"processors must be >= 1, got {processors}")
    total = 0.0
    for wave in linearize_waves(plan):
        costs = sorted((float(r.volume()) for r in wave), reverse=True)
        if not costs:
            continue
        if processors == 1:
            total += sum(costs)
            continue
        loads = [0.0] * min(processors, len(costs))
        heapq.heapify(loads)
        for c in costs:
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + c)
        total += max(loads)
    return total


def simulated_speedup(plan: PlanNode, processors: int) -> float:
    """T1 / T_P under the greedy wave schedule (unit per-point cost)."""
    t1 = simulate_greedy(plan, 1)
    tp = simulate_greedy(plan, processors)
    return t1 / tp if tp > 0 else 0.0


def _topological_depths(graph: TaskGraph) -> list[int]:
    """Longest edge-count distance from any source — the DAG-native
    analogue of a region's wave index (one forward pass; edges always
    point forward in node-id order)."""
    depth = [0] * len(graph.regions)
    for u in range(len(graph.regions)):
        du = depth[u] + 1
        for v in graph.succs[u]:
            if du > depth[v]:
                depth[v] = du
    return depth


def _list_schedule(graph: TaskGraph, priority: list, processors: int) -> float:
    """Event-driven greedy list scheduling of a task DAG: whenever a
    worker is free and tasks are ready, the ready task with the smallest
    priority key starts immediately; zero-cost join nodes propagate the
    instant their predecessors finish."""
    npred = list(graph.npred)
    regions = graph.regions

    ready: list[tuple] = []  # (priority key, node id)
    running: list[tuple[float, int, int]] = []  # (finish time, seq, node id)
    seq = count()

    def push(nid: int) -> None:
        heapq.heappush(ready, (priority[nid], nid))

    graph.seed_ready(npred, push)

    now = 0.0
    free = processors
    while ready or running:
        while ready and free > 0:
            _, nid = heapq.heappop(ready)
            cost = float(regions[nid].volume())  # type: ignore[union-attr]
            heapq.heappush(running, (now + cost, next(seq), nid))
            free -= 1
        if not running:
            raise ExecutionError(
                "DAG simulation stalled with tasks pending (cyclic graph?)"
            )
        now, _, nid = heapq.heappop(running)
        free += 1
        graph.complete(nid, npred, push)
    return now


def simulate_dag(plan: Union[PlanNode, TaskGraph], processors: int) -> float:
    """Makespan (in grid-point units) of list-scheduling the *true* task
    DAG onto ``processors`` workers — no inter-wave barriers.

    Two standard priority rules are tried and the better schedule is
    reported (a plain greedy scheduler is subject to Graham anomalies, so
    a single rule can lose to the barrier schedule by a hair):

    * *longest critical path first* — bottom levels from
      :func:`repro.trap.graph.critical_path_lengths`; exploits the freed
      overlap aggressively;
    * *shallowest-first, largest-first* — topological depth then LPT, the
      barrier-free analogue of the wave order.

    Compare against :func:`simulate_greedy` on the same plan to quantify
    what removing the barriers buys.
    """
    if processors < 1:
        raise ExecutionError(f"processors must be >= 1, got {processors}")
    graph = (
        plan
        if isinstance(plan, TaskGraph)
        else build_task_graph(plan_events(plan))
    )
    bottom = critical_path_lengths(graph)
    lcp = [(-bottom[i],) for i in range(len(graph.regions))]
    depths = _topological_depths(graph)
    wavelike = [
        (
            depths[i],
            -(graph.regions[i].volume() if graph.regions[i] is not None else 0),
        )
        for i in range(len(graph.regions))
    ]
    return min(
        _list_schedule(graph, lcp, processors),
        _list_schedule(graph, wavelike, processors),
    )


def simulated_dag_speedup(
    plan: Union[PlanNode, TaskGraph], processors: int
) -> float:
    """T1 / T_P under the no-barrier DAG schedule (unit per-point cost)."""
    graph = (
        plan
        if isinstance(plan, TaskGraph)
        else build_task_graph(plan_events(plan))
    )
    t1 = simulate_dag(graph, 1)
    tp = simulate_dag(graph, processors)
    return t1 / tp if tp > 0 else 0.0
