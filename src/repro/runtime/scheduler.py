"""Greedy P-processor schedule simulation over decomposition plans.

The paper's Figure 3 reports 12-core wall times from a work-stealing Cilk
runtime.  On a host without 12 cores we *simulate* the schedule instead:

* :func:`brent_time` — the classic greedy-scheduler bound
  ``T_P <= T1/P + T_inf``, evaluated from measured 1-core time and the
  analyzer's work/span ratio.
* :func:`simulate_greedy` — list-schedules the actual base-case regions
  of a plan, wave by wave (waves are the dependency-safe fronts of
  Lemma 1), yielding a tighter estimate that accounts for load imbalance
  among unequal zoids — the effect the paper mentions when scheduling 8
  threads on 12 cores for the Berkeley comparison.

Both are *models*, clearly labeled as such in the benchmark output; the
threaded executor provides real (2-core here) parallel execution.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.trap.plan import PlanNode, linearize_waves

if TYPE_CHECKING:  # pragma: no cover
    pass


def brent_time(t1: float, work: float, span: float, processors: int) -> float:
    """Greedy-scheduler completion-time bound scaled to measured T1.

    ``t1`` is the measured serial wall time; ``work``/``span`` come from
    the work/span analyzer in abstract units.  The bound is
    ``T_P <= T1/P + T_inf`` with ``T_inf = t1 * span / work``.
    """
    if processors < 1:
        raise ExecutionError(f"processors must be >= 1, got {processors}")
    if work <= 0:
        return 0.0
    t_inf = t1 * (span / work)
    return t1 / processors + t_inf


def simulate_greedy(plan: PlanNode, processors: int) -> float:
    """Makespan (in grid-point units) of list-scheduling the plan's base
    regions onto ``processors`` workers, wave by wave.

    Within each wave, regions are assigned longest-processing-time-first
    onto the least-loaded worker; waves are separated by barriers, the
    execution model of :func:`repro.trap.plan.linearize_waves`.
    """
    if processors < 1:
        raise ExecutionError(f"processors must be >= 1, got {processors}")
    total = 0.0
    for wave in linearize_waves(plan):
        costs = sorted((float(r.volume()) for r in wave), reverse=True)
        if not costs:
            continue
        if processors == 1:
            total += sum(costs)
            continue
        loads = [0.0] * min(processors, len(costs))
        heapq.heapify(loads)
        for c in costs:
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + c)
        total += max(loads)
    return total


def simulated_speedup(plan: PlanNode, processors: int) -> float:
    """T1 / T_P under the greedy wave schedule (unit per-point cost)."""
    t1 = simulate_greedy(plan, 1)
    tp = simulate_greedy(plan, processors)
    return t1 / tp if tp > 0 else 0.0
