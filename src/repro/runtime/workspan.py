"""Exact work/span analysis of TRAP/STRAP decompositions (Cilkview analogue).

Cilkview instruments a Cilk execution to report work T1 (total
instructions) and span T-infinity (critical path), whose ratio is the
*parallelism* plotted in Figure 9.  The decomposition DAG of TRAP/STRAP
is fully determined by the zoid geometry, so we compute T1 and T-infinity
analytically:

* **work** of a zoid is its space-time volume (each point costs one
  kernel application, the unit Cilkview would count up to a constant);
* **span** composes by the recursion: a base case contributes its volume
  (executed serially); a time cut sums its halves; a hyperspace cut sums
  over dependency levels the *maximum* child span per level (Lemma 1),
  plus a Theta(lg m) spawn burden per parallel step — the binary spawn
  tree of a parallel-for with m iterations, exactly the term the paper's
  Lemma 2 accounts as Theta(k^2) per cut.

Zoid geometry is translation-invariant, so results are memoized on
:meth:`repro.trap.zoid.Zoid.signature`; paper-scale grids (N = 6400,
T = 1000, uncoarsened) reduce to a few thousand distinct signatures.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.trap.cuts import choose_cut, time_cut_children
from repro.trap.walker import WalkOptions, default_options
from repro.trap.zoid import Zoid, full_grid_zoid


@dataclass(frozen=True)
class WorkSpan:
    """Work/span/parallelism of one decomposition (or loop nest)."""

    work: float
    span: float
    base_cases: int

    @property
    def parallelism(self) -> float:
        return self.work / self.span if self.span > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"WorkSpan(work={self.work:.4g}, span={self.span:.4g}, "
            f"parallelism={self.parallelism:.4g})"
        )


def _canonical(z: Zoid) -> Zoid:
    """Translate each dimension to xa = 0 (geometry is shift-invariant)."""
    return Zoid(
        0,
        z.height,
        tuple((0, xb - xa, dxa, dxb) for xa, xb, dxa, dxb in z.dims),
    )


def analyze_walk(
    sizes: Sequence[int],
    slopes: Sequence[int],
    height: int,
    *,
    algorithm: str = "trap",
    dt_threshold: int = 1,
    space_thresholds: Sequence[int] | None = None,
    protect_unit_stride: bool = False,
    spawn_unit: float = 1.0,
    node_unit: float = 1.0,
    base_unit: float = 1.0,
) -> WorkSpan:
    """Work/span of TRAP (``algorithm="trap"``) or STRAP (``"strap"``)
    on a ``sizes`` grid of ``height`` time steps.

    Defaults analyze the *uncoarsened* recursion, matching the paper's
    Figure 9 measurements ("without base-case coarsening").
    ``spawn_unit`` scales the lg-m parallel-for burden; ``node_unit`` the
    constant per recursion node; ``base_unit`` the per-point kernel cost.
    """
    ndim = len(sizes)
    if space_thresholds is None:
        space_thresholds = (0,) * ndim
    opts = default_options(
        ndim,
        sizes,
        dt_threshold=dt_threshold,
        space_thresholds=tuple(space_thresholds),
        protect_unit_stride=protect_unit_stride,
        hyperspace=(algorithm == "trap"),
    )
    sizes_t = tuple(int(s) for s in sizes)
    slopes_t = tuple(int(s) for s in slopes)
    protect = opts.protect_flags(ndim)

    memo: dict[tuple, tuple[float, float, int]] = {}

    # Deep decompositions (uncoarsened, large T) nest ~log2(T) time cuts
    # plus d*log2(N) space-cut levels; give the recursion headroom.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 100_000))
    try:
        work, span, bases = _analyze(
            _canonical(full_grid_zoid(0, height, sizes_t)),
            sizes_t,
            slopes_t,
            opts,
            protect,
            memo,
            spawn_unit,
            node_unit,
            base_unit,
        )
    finally:
        sys.setrecursionlimit(limit)
    return WorkSpan(work=work, span=span, base_cases=bases)


def _analyze(
    z: Zoid,
    sizes: tuple[int, ...],
    slopes: tuple[int, ...],
    opts: WalkOptions,
    protect: tuple[bool, ...],
    memo: dict,
    spawn_unit: float,
    node_unit: float,
    base_unit: float,
) -> tuple[float, float, int]:
    sig = z.signature()
    hit = memo.get(sig)
    if hit is not None:
        return hit
    decision = choose_cut(
        z,
        sizes=sizes,
        slopes=slopes,
        space_thresholds=opts.space_thresholds,
        dt_threshold=opts.dt_threshold,
        protect_dims=protect,
        hyperspace=opts.hyperspace,
    )
    if decision.kind == "base":
        vol = z.volume() * base_unit
        result = (vol, vol, 1)
    elif decision.kind == "time":
        lower, upper = time_cut_children(z, decision.tm)
        w1, s1, b1 = _analyze(
            _canonical(lower), sizes, slopes, opts, protect, memo,
            spawn_unit, node_unit, base_unit,
        )
        w2, s2, b2 = _analyze(
            _canonical(upper), sizes, slopes, opts, protect, memo,
            spawn_unit, node_unit, base_unit,
        )
        result = (w1 + w2, s1 + s2 + node_unit, b1 + b2)
    else:
        work = 0.0
        span = node_unit
        bases = 0
        for level in decision.levels:
            level_span = 0.0
            for sub in level:
                w, s, b = _analyze(
                    _canonical(sub), sizes, slopes, opts, protect, memo,
                    spawn_unit, node_unit, base_unit,
                )
                work += w
                bases += b
                level_span = max(level_span, s)
            burden = spawn_unit * math.ceil(math.log2(max(2, len(level))))
            span += level_span + burden
        result = (work, span, bases)
    memo[sig] = result
    return result


def analyze_loops(
    sizes: Sequence[int],
    height: int,
    *,
    grain: int = 1,
    spawn_unit: float = 1.0,
    base_unit: float = 1.0,
) -> WorkSpan:
    """Work/span of the parallel-loop algorithm (Figure 1).

    Each time step is a parallel-for over the outermost dimension (the
    paper parallelizes only the outer loop); the span per step is one
    chunk of rows (``grain``) times the inner volume plus the lg spawn
    burden, and steps are serial.
    """
    ndim = len(sizes)
    outer = int(sizes[0])
    inner = 1
    for s in sizes[1:]:
        inner *= int(s)
    per_step_work = outer * inner * base_unit
    iters = max(1, outer // max(1, grain))
    per_step_span = (
        grain * inner * base_unit
        + spawn_unit * math.ceil(math.log2(max(2, iters)))
    )
    work = per_step_work * height
    span = per_step_span * height
    return WorkSpan(work=work, span=span, base_cases=height * iters)
