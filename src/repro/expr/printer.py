"""Pretty-printer for kernel ASTs (diagnostics and error messages).

``to_source`` renders an expression as near-Python text; it is *not* the
codegen path (see :mod:`repro.compiler.codegen_python` /
``codegen_numpy`` / ``codegen_c`` for those), just a stable human-readable
form used in reprs, error messages and tests.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    Statement,
    UnOp,
    Where,
)

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "==": 4,
    "!=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "neg": 7,
    "**": 8,
}


def _paren(text: str, inner: int, outer: int) -> str:
    return f"({text})" if inner < outer else text


def to_source(expr: Expr, _outer: int = 0) -> str:
    """Render an expression to readable near-Python text."""
    if isinstance(expr, Const):
        v = expr.value
        return str(int(v)) if v == int(v) and abs(v) < 1e15 else repr(v)
    if isinstance(expr, Param):
        return f"${expr.name}"
    if isinstance(expr, IndexValue):
        return repr(expr.index)
    if isinstance(expr, LocalRead):
        return expr.name
    if isinstance(expr, GridRead):
        subs = ["t" if expr.dt == 0 else f"t{expr.dt:+d}"]
        axis_names = "xyzw"
        for i, o in enumerate(expr.offsets):
            ax = axis_names[i] if i < 4 else f"x{i}"
            subs.append(ax if o == 0 else f"{ax}{o:+d}")
        return f"{expr.array}({', '.join(subs)})"
    if isinstance(expr, ConstArrayRead):
        subs = ", ".join(repr(i) for i in expr.indices)
        return f"{expr.array}[{subs}]"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return (
                f"{expr.op}({to_source(expr.left)}, {to_source(expr.right)})"
            )
        p = _PRECEDENCE[expr.op]
        left = to_source(expr.left, p)
        right = to_source(expr.right, p + 1)  # left-assoc
        return _paren(f"{left} {expr.op} {right}", p, _outer)
    if isinstance(expr, UnOp):
        if expr.op == "abs":
            return f"abs({to_source(expr.operand)})"
        p = _PRECEDENCE["neg"]
        return _paren(f"-{to_source(expr.operand, p)}", p, _outer)
    if isinstance(expr, Compare):
        p = _PRECEDENCE[expr.op]
        return _paren(
            f"{to_source(expr.left, p)} {expr.op} {to_source(expr.right, p)}",
            p,
            _outer,
        )
    if isinstance(expr, BoolOp):
        p = _PRECEDENCE[expr.op]
        return _paren(
            f"{to_source(expr.left, p)} {expr.op} {to_source(expr.right, p)}",
            p,
            _outer,
        )
    if isinstance(expr, NotOp):
        p = _PRECEDENCE["not"]
        return _paren(f"not {to_source(expr.operand, p)}", p, _outer)
    if isinstance(expr, Where):
        return (
            f"where({to_source(expr.cond)}, {to_source(expr.if_true)}, "
            f"{to_source(expr.if_false)})"
        )
    if isinstance(expr, Call):
        args = ", ".join(to_source(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise KernelError(f"cannot print node {type(expr).__name__}")


def statement_source(st: Statement) -> str:
    """Render a statement to readable text."""
    if isinstance(st, Let):
        return f"{st.name} = {to_source(st.expr)}"
    if isinstance(st, Assign):
        t = "t" if st.target.dt == 0 else f"t{st.target.dt:+d}"
        return f"{st.target.array}({t}, .) = {to_source(st.expr)}"
    raise KernelError(f"unknown statement {type(st).__name__}")
