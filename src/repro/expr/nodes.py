"""AST node definitions for the Pochoir kernel expression language.

Two index/value domains coexist, mirroring the paper's language rules:

* **Index domain** — affine integer expressions over the space-time axes
  (:class:`Axis`, :class:`AffineIndex`).  Grid subscripts are restricted to
  the form ``axis + constant`` (the declared-shape discipline of Section 2);
  general affine combinations are allowed only where they are *values*
  (e.g. ``0.2 * t`` in a Dirichlet boundary, or ``x + y < n`` feeding a
  :class:`Where`).
* **Value domain** — the floating-point expressions the kernel computes
  (:class:`Expr` subclasses).

Nodes are frozen dataclasses: structurally hashable and comparable, which
the compiler relies on for caching and common-subexpression detection.
``==`` is therefore *structural*; use :func:`repro.expr.builder.eq_` to
build a value-level equality comparison node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.errors import KernelError

#: Position tag for the time axis (spatial axes use 0..d-1).
TIME_AXIS = -1

#: Binary operators in the value domain.
BINOPS = ("+", "-", "*", "/", "%", "**", "min", "max")

#: Comparison operators.
CMPOPS = ("<", "<=", ">", ">=", "==", "!=")

#: Supported math calls (each has a NumPy and a C99 spelling).
MATH_FUNCS = (
    "exp",
    "log",
    "sqrt",
    "sin",
    "cos",
    "tanh",
    "fabs",
    "floor",
    "ceil",
)


class _IndexArith:
    """Mixin giving Axis/AffineIndex integer arithmetic and comparisons.

    Arithmetic stays in the index domain; comparisons lift into the value
    domain (a :class:`Compare` over :class:`IndexValue` operands) so they
    can appear inside :class:`Where` conditions.
    """

    def _affine(self) -> "AffineIndex":
        raise NotImplementedError

    def __add__(self, other: object) -> "AffineIndex":
        return self._affine()._add(other, +1)

    def __radd__(self, other: object) -> "AffineIndex":
        return self._affine()._add(other, +1)

    def __sub__(self, other: object) -> "AffineIndex":
        return self._affine()._add(other, -1)

    def __rsub__(self, other: object) -> "AffineIndex":
        return self._affine()._neg()._add(other, +1)

    def __neg__(self) -> "AffineIndex":
        return self._affine()._neg()

    def __mul__(self, other: object) -> Union["AffineIndex", "Expr"]:
        if isinstance(other, int):
            return self._affine()._scale(other)
        if isinstance(other, (float, Expr)):
            return IndexValue(self._affine()) * other
        return NotImplemented

    def __rmul__(self, other: object) -> Union["AffineIndex", "Expr"]:
        return self.__mul__(other)

    # Comparisons lift to the value domain.
    def __lt__(self, other: object) -> "Compare":
        return Compare("<", IndexValue(self._affine()), as_expr(other))

    def __le__(self, other: object) -> "Compare":
        return Compare("<=", IndexValue(self._affine()), as_expr(other))

    def __gt__(self, other: object) -> "Compare":
        return Compare(">", IndexValue(self._affine()), as_expr(other))

    def __ge__(self, other: object) -> "Compare":
        return Compare(">=", IndexValue(self._affine()), as_expr(other))


@dataclass(frozen=True)
class Axis(_IndexArith):
    """A symbolic space-time axis.

    ``position`` is :data:`TIME_AXIS` for time, else the spatial dimension
    index (0 = slowest-varying / leftmost subscript, matching the order of
    ``PochoirArray`` subscripts).
    """

    name: str
    position: int

    def _affine(self) -> "AffineIndex":
        return AffineIndex(terms=((self, 1),), const=0)

    @property
    def is_time(self) -> bool:
        return self.position == TIME_AXIS

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AffineIndex(_IndexArith):
    """An affine integer combination ``sum(coef * axis) + const``.

    ``terms`` is a tuple of (axis, coefficient) pairs sorted by axis
    position with zero coefficients removed — a canonical form, so
    structural equality coincides with mathematical equality.
    """

    terms: tuple[tuple[Axis, int], ...]
    const: int

    def _affine(self) -> "AffineIndex":
        return self

    @staticmethod
    def constant(value: int) -> "AffineIndex":
        return AffineIndex(terms=(), const=int(value))

    @staticmethod
    def _canon(coefs: Mapping[Axis, int], const: int) -> "AffineIndex":
        terms = tuple(
            sorted(
                ((ax, c) for ax, c in coefs.items() if c != 0),
                key=lambda p: (p[0].position, p[0].name),
            )
        )
        return AffineIndex(terms=terms, const=const)

    def _coef_map(self) -> dict[Axis, int]:
        return dict(self.terms)

    def _add(self, other: object, sign: int) -> "AffineIndex":
        coefs = self._coef_map()
        const = self.const
        if isinstance(other, int):
            const += sign * other
        elif isinstance(other, Axis):
            coefs[other] = coefs.get(other, 0) + sign
        elif isinstance(other, AffineIndex):
            for ax, c in other.terms:
                coefs[ax] = coefs.get(ax, 0) + sign * c
            const += sign * other.const
        else:
            raise KernelError(
                f"index arithmetic only supports integers and axes, got {other!r}"
            )
        return AffineIndex._canon(coefs, const)

    def _neg(self) -> "AffineIndex":
        return AffineIndex._canon({ax: -c for ax, c in self.terms}, -self.const)

    def _scale(self, k: int) -> "AffineIndex":
        return AffineIndex._canon({ax: k * c for ax, c in self.terms}, k * self.const)

    def single_axis_offset(self) -> tuple[Axis | None, int]:
        """Decompose as ``axis + const`` if possible, else raise.

        This is the restricted form grid subscripts must take (the paper's
        constant-offset shape cells).  A pure constant decomposes as
        ``(None, const)``.
        """
        if not self.terms:
            return None, self.const
        if len(self.terms) == 1 and self.terms[0][1] == 1:
            return self.terms[0][0], self.const
        raise KernelError(
            f"grid subscript must be 'axis + constant', got affine form {self!r}"
        )

    def __repr__(self) -> str:
        parts = []
        for ax, c in self.terms:
            if c == 1:
                parts.append(ax.name)
            else:
                parts.append(f"{c}*{ax.name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts).replace("+-", "-")


IndexLike = Union[int, Axis, AffineIndex]


def as_affine(idx: IndexLike) -> AffineIndex:
    """Coerce an int/Axis/AffineIndex into canonical affine form."""
    if isinstance(idx, AffineIndex):
        return idx
    if isinstance(idx, Axis):
        return idx._affine()
    if isinstance(idx, int):
        return AffineIndex.constant(idx)
    raise KernelError(f"cannot use {idx!r} as a grid index")


class Expr:
    """Base class for value-domain expressions (operator-overloading mixin)."""

    __slots__ = ()

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: object) -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: object) -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: object) -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: object) -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: object) -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: object) -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: object) -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: object) -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __mod__(self, other: object) -> "Expr":
        return BinOp("%", self, as_expr(other))

    def __pow__(self, other: object) -> "Expr":
        return BinOp("**", self, as_expr(other))

    def __neg__(self) -> "Expr":
        return UnOp("neg", self)

    def __abs__(self) -> "Expr":
        return UnOp("abs", self)

    # -- comparisons (note: == and != are structural; use eq_/ne_) -------
    def __lt__(self, other: object) -> "Compare":
        return Compare("<", self, as_expr(other))

    def __le__(self, other: object) -> "Compare":
        return Compare("<=", self, as_expr(other))

    def __gt__(self, other: object) -> "Compare":
        return Compare(">", self, as_expr(other))

    def __ge__(self, other: object) -> "Compare":
        return Compare(">=", self, as_expr(other))

    # -- boolean combinators ---------------------------------------------
    def __and__(self, other: object) -> "Expr":
        return BoolOp("and", self, as_expr(other))

    def __rand__(self, other: object) -> "Expr":
        return BoolOp("and", as_expr(other), self)

    def __or__(self, other: object) -> "Expr":
        return BoolOp("or", self, as_expr(other))

    def __ror__(self, other: object) -> "Expr":
        return BoolOp("or", as_expr(other), self)

    def __invert__(self) -> "Expr":
        return NotOp(self)

    def children(self) -> tuple["Expr", ...]:
        """Sub-expressions, for generic traversal."""
        return ()


def as_expr(value: object) -> Expr:
    """Coerce a Python scalar / axis / affine index into an Expr node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(1.0 if value else 0.0)
    if isinstance(value, (int, float)):
        return Const(float(value))
    if isinstance(value, (Axis, AffineIndex)):
        return IndexValue(as_affine(value))
    raise KernelError(f"cannot use {value!r} in a kernel expression")


@dataclass(frozen=True)
class Const(Expr):
    """A floating-point literal."""

    value: float

    def __repr__(self) -> str:
        return f"Const({self.value})"


@dataclass(frozen=True)
class Param(Expr):
    """A named scalar runtime parameter, bound when the stencil runs.

    Parameters keep compiled kernels reusable across coefficient values —
    the C backend in particular avoids recompiling when only ``alpha``
    changes.
    """

    name: str


@dataclass(frozen=True)
class IndexValue(Expr):
    """An index-domain expression used as a floating value (e.g. ``0.2*t``)."""

    index: AffineIndex


@dataclass(frozen=True)
class GridRead(Expr):
    """A read of a registered Pochoir array at a constant offset.

    ``dt`` is the time offset and ``offsets`` the per-dimension spatial
    offsets, both relative to the kernel's home point ``(t, x0, …)``.
    """

    array: str
    dt: int
    offsets: tuple[int, ...]

    def __repr__(self) -> str:
        off = ",".join(
            f"t{self.dt:+d}" if self.dt else "t"
            for _ in range(1)
        ) + "".join(f",{o:+d}" for o in self.offsets)
        return f"{self.array}({off})"


@dataclass(frozen=True)
class GridWrite:
    """The target of an assignment: array name + time offset.

    Spatial offsets of writes must all be zero (the home-cell rule of
    Section 2); the front end enforces this before constructing the node.
    """

    array: str
    dt: int


@dataclass(frozen=True)
class ConstArrayRead(Expr):
    """A read of a registered *read-only* coefficient array.

    Unlike :class:`GridRead` these have no time dimension and allow any
    single-axis-plus-constant spatial subscripts — they model inputs such
    as the sequences in PSA/LCS or spatially varying coefficients.
    """

    array: str
    indices: tuple[AffineIndex, ...]


@dataclass(frozen=True)
class LocalRead(Expr):
    """A read of a kernel-local temporary introduced by :class:`Let`."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise KernelError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # 'neg' | 'abs'
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("neg", "abs"):
            raise KernelError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Compare(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in CMPOPS:
            raise KernelError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # 'and' | 'or'
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise KernelError(f"unknown boolean operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Where(Expr):
    """Elementwise conditional: ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)


@dataclass(frozen=True)
class Call(Expr):
    """A math-function call (``exp``, ``sqrt``, …)."""

    func: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in MATH_FUNCS:
            raise KernelError(
                f"unsupported math function {self.func!r}; supported: {MATH_FUNCS}"
            )

    def children(self) -> tuple[Expr, ...]:
        return self.args


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for kernel statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Statement):
    """``array(t + dt, x0, …, xd-1) = expr`` — the home-cell update."""

    target: GridWrite
    expr: Expr


@dataclass(frozen=True)
class Let(Statement):
    """``name = expr`` — a kernel-local temporary visible to later statements."""

    name: str
    expr: Expr
