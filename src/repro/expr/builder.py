"""User-facing helpers for building kernel expressions.

These are the spellings a kernel author uses where Python syntax cannot be
overloaded: elementwise conditionals (:func:`where`), value equality
(:func:`eq_` / :func:`ne_`, since ``==`` on nodes is structural), min/max,
math calls (:func:`fmath`), and kernel-local temporaries
(:func:`let` / :func:`local`).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import KernelError
from repro.expr.nodes import (
    BinOp,
    Call,
    Compare,
    Expr,
    Let,
    LocalRead,
    MATH_FUNCS,
    Where,
    as_expr,
)


def where(cond: object, if_true: object, if_false: object) -> Where:
    """Elementwise conditional select, like ``numpy.where``.

    >>> from repro.expr.nodes import Const
    >>> w = where(Const(1.0) > 0, 2.0, 3.0)
    >>> type(w).__name__
    'Where'
    """
    return Where(as_expr(cond), as_expr(if_true), as_expr(if_false))


def eq_(a: object, b: object) -> Compare:
    """Value-level equality (``==`` on AST nodes is structural equality)."""
    return Compare("==", as_expr(a), as_expr(b))


def ne_(a: object, b: object) -> Compare:
    """Value-level inequality (``!=`` on AST nodes is structural)."""
    return Compare("!=", as_expr(a), as_expr(b))


def minimum(a: object, b: object, *rest: object) -> Expr:
    """Elementwise minimum of two or more expressions."""
    out: Expr = BinOp("min", as_expr(a), as_expr(b))
    for r in rest:
        out = BinOp("min", out, as_expr(r))
    return out


def maximum(a: object, b: object, *rest: object) -> Expr:
    """Elementwise maximum of two or more expressions."""
    out: Expr = BinOp("max", as_expr(a), as_expr(b))
    for r in rest:
        out = BinOp("max", out, as_expr(r))
    return out


class _MathNamespace:
    """``fmath.exp(e)``, ``fmath.sqrt(e)``, … — the supported math calls."""

    def __getattr__(self, name: str):
        if name not in MATH_FUNCS:
            raise KernelError(
                f"unsupported math function {name!r}; supported: {MATH_FUNCS}"
            )

        def call(*args: object) -> Call:
            return Call(name, tuple(as_expr(a) for a in args))

        call.__name__ = name
        return call


#: Math-function namespace: ``fmath.exp(u(t, x))`` etc.
fmath = _MathNamespace()


def let(name: str, expr: object) -> Let:
    """Bind a kernel-local temporary; later statements read it via
    :func:`local`.

    The pair models the local variables a C++ Pochoir kernel would declare
    (LBM kernels lean on them heavily).
    """
    if not name.isidentifier():
        raise KernelError(f"let-binding name must be an identifier, got {name!r}")
    return Let(name, as_expr(expr))


def local(name: str) -> LocalRead:
    """Read a temporary previously bound with :func:`let`."""
    return LocalRead(name)


def sum_of(exprs: Iterable[object]) -> Expr:
    """Sum an iterable of expressions (at least one required)."""
    it = iter(exprs)
    try:
        out = as_expr(next(it))
    except StopIteration:
        raise KernelError("sum_of requires at least one expression") from None
    for e in it:
        out = out + as_expr(e)
    return out
