"""AST transformations: structural map, time shifting, constant folding,
and parameter substitution.

These are the small rewrite passes the Phase-2 compiler applies before
codegen; they correspond to the normalization the Haskell Pochoir compiler
performs while parsing kernel text.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import KernelError
from repro.expr.nodes import (
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    GridWrite,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    Statement,
    UnOp,
    Where,
)

_MATH_IMPL = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tanh": math.tanh,
    "fabs": math.fabs,
    "floor": math.floor,
    "ceil": math.ceil,
}


def map_expr(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Rebuild ``expr`` bottom-up; ``fn`` may replace any node (return None
    to keep the reconstructed node)."""
    rebuilt: Expr
    if isinstance(expr, BinOp):
        rebuilt = BinOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, UnOp):
        rebuilt = UnOp(expr.op, map_expr(expr.operand, fn))
    elif isinstance(expr, Compare):
        rebuilt = Compare(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, BoolOp):
        rebuilt = BoolOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, NotOp):
        rebuilt = NotOp(map_expr(expr.operand, fn))
    elif isinstance(expr, Where):
        rebuilt = Where(
            map_expr(expr.cond, fn),
            map_expr(expr.if_true, fn),
            map_expr(expr.if_false, fn),
        )
    elif isinstance(expr, Call):
        rebuilt = Call(expr.func, tuple(map_expr(a, fn) for a in expr.args))
    else:
        rebuilt = expr
    replaced = fn(rebuilt)
    return rebuilt if replaced is None else replaced


def map_statement(st: Statement, fn: Callable[[Expr], Expr | None]) -> Statement:
    if isinstance(st, Let):
        return Let(st.name, map_expr(st.expr, fn))
    if isinstance(st, Assign):
        return Assign(st.target, map_expr(st.expr, fn))
    raise KernelError(f"unknown statement {type(st).__name__}")


def _shift_affine(index, delta: int):
    """Replace the time axis t by (t + delta) inside an affine index."""
    from repro.expr.nodes import AffineIndex

    const = index.const
    for ax, c in index.terms:
        if ax.is_time:
            const += c * delta
    if const == index.const:
        return index
    return AffineIndex(terms=index.terms, const=const)


def shift_time(st: Statement, delta: int) -> Statement:
    """Shift the kernel's time frame by ``delta``.

    Rewrites grid-access time offsets *and* every value-level use of the
    time index (``IndexValue`` nodes and const-array subscripts), so a
    kernel written as ``a(t+1, .) = f(t, a(t, .))`` means the same thing
    after normalization to write-at-zero: the symbol ``t`` keeps denoting
    the kernel's invocation time in the user's frame.
    """

    def shift(node: Expr) -> Expr | None:
        if isinstance(node, GridRead):
            return GridRead(node.array, node.dt + delta, node.offsets)
        if isinstance(node, IndexValue):
            return IndexValue(_shift_affine(node.index, delta))
        if isinstance(node, ConstArrayRead):
            return ConstArrayRead(
                node.array,
                tuple(_shift_affine(ix, delta) for ix in node.indices),
            )
        return None

    if isinstance(st, Let):
        return Let(st.name, map_expr(st.expr, shift))
    if isinstance(st, Assign):
        return Assign(
            GridWrite(st.target.array, st.target.dt + delta),
            map_expr(st.expr, shift),
        )
    raise KernelError(f"unknown statement {type(st).__name__}")


def substitute_params(expr: Expr, params: dict[str, float]) -> Expr:
    """Replace bound :class:`Param` nodes with constants."""

    def sub(node: Expr) -> Expr | None:
        if isinstance(node, Param) and node.name in params:
            return Const(float(params[node.name]))
        return None

    return map_expr(expr, sub)


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant sub-expressions at compile time.

    Division, ``%`` and math calls fold only when the result is finite, so
    a kernel containing e.g. a constant ``1/0`` guarded behind a
    :class:`Where` is preserved rather than turned into a compile error.
    """

    def fold(node: Expr) -> Expr | None:
        if isinstance(node, BinOp):
            left, right = node.left, node.right
            if isinstance(left, Const) and isinstance(right, Const):
                a, b = left.value, right.value
                try:
                    if node.op == "+":
                        return Const(a + b)
                    if node.op == "-":
                        return Const(a - b)
                    if node.op == "*":
                        return Const(a * b)
                    if node.op == "/":
                        return Const(a / b)
                    if node.op == "%":
                        return Const(math.fmod(a, b))
                    if node.op == "**":
                        return Const(a**b)
                    if node.op == "min":
                        return Const(min(a, b))
                    if node.op == "max":
                        return Const(max(a, b))
                except (ZeroDivisionError, OverflowError, ValueError):
                    return None
            # Identity simplifications that never change IEEE semantics for
            # finite operands the kernel actually produces.
            if node.op == "+" and isinstance(right, Const) and right.value == 0.0:
                return left
            if node.op == "+" and isinstance(left, Const) and left.value == 0.0:
                return right
            if node.op == "*" and isinstance(right, Const) and right.value == 1.0:
                return left
            if node.op == "*" and isinstance(left, Const) and left.value == 1.0:
                return right
            return None
        if isinstance(node, UnOp) and isinstance(node.operand, Const):
            v = node.operand.value
            return Const(-v if node.op == "neg" else abs(v))
        if isinstance(node, Call) and all(
            isinstance(a, Const) for a in node.args
        ):
            try:
                args = [a.value for a in node.args]  # type: ignore[union-attr]
                return Const(float(_MATH_IMPL[node.func](*args)))
            except (ValueError, OverflowError):
                return None
        if isinstance(node, Where) and isinstance(node.cond, Const):
            return node.if_true if node.cond.value != 0.0 else node.if_false
        return None

    return map_expr(expr, fold)


def fold_statements(stmts: Sequence[Statement]) -> list[Statement]:
    """Constant-fold every statement in a kernel body."""
    out: list[Statement] = []
    for st in stmts:
        if isinstance(st, Let):
            out.append(Let(st.name, fold_constants(st.expr)))
        elif isinstance(st, Assign):
            out.append(Assign(st.target, fold_constants(st.expr)))
        else:
            raise KernelError(f"unknown statement {type(st).__name__}")
    return out


#: Node kinds CSE will hoist into a Let.  Values (Const/Param/IndexValue)
#: and LocalReads are free to re-reference; everything else costs work
#: (an op, a math call, or a gather) when evaluated twice.
_CSE_ELIGIBLE = (
    BinOp,
    UnOp,
    Call,
    Where,
    Compare,
    BoolOp,
    NotOp,
    GridRead,
    ConstArrayRead,
)


def _reads_written_level(expr: Expr, array: str) -> bool:
    """True if ``expr`` reads ``array`` at the written time level (dt==0)."""
    from repro.expr.analysis import walk

    return any(
        isinstance(n, GridRead) and n.array == array and n.dt == 0
        for n in walk(expr)
    )


def _cse_use_counts(stmts: Sequence[Statement]) -> dict[Expr, int]:
    """Reference counts over the hash-consed expression DAG.

    Structural equality collapses repeated subtrees into one DAG node, so
    a subexpression that occurs twice only *inside* an already-repeated
    parent counts once — hoisting the parent alone is enough.
    """
    counts: dict[Expr, int] = {}
    visited: set[Expr] = set()

    def visit(e: Expr) -> None:
        if e in visited:
            return
        visited.add(e)
        for c in e.children():
            counts[c] = counts.get(c, 0) + 1
            visit(c)

    for st in stmts:
        expr = st.expr if isinstance(st, (Let, Assign)) else None
        if expr is None:
            raise KernelError(f"unknown statement {type(st).__name__}")
        counts[expr] = counts.get(expr, 0) + 1
        visit(expr)
    return counts


def cse_statements(
    stmts: Sequence[Statement], prefix: str = "_cse"
) -> list[Statement]:
    """Common-subexpression elimination over a kernel body.

    Every repeated eligible subexpression is computed once into a Let and
    re-read via :class:`LocalRead` — e.g. a neighbor sum appearing in two
    assignments, or the same gather feeding several terms.  Statement
    order is respected: an Assign to array ``A`` invalidates cached
    expressions that read ``A`` at the written level (dt == 0), so
    read-after-write kernels keep their semantics.

    Intended for backends that evaluate eagerly (the vectorized NumPy
    clones evaluate both branches of a ``Where`` anyway); hoisting out of
    a ``Where`` branch there never changes observable behavior.
    """
    counts = _cse_use_counts(stmts)
    taken = {st.name for st in stmts if isinstance(st, Let)}
    while any(name.startswith(prefix) for name in taken):
        prefix = "_" + prefix
    available: dict[Expr, str] = {}
    out: list[Statement] = []
    fresh = iter(range(1 << 30))

    def rewrite(e: Expr, pending: list[Statement]) -> Expr:
        if isinstance(e, _CSE_ELIGIBLE) and counts.get(e, 0) >= 2:
            name = available.get(e)
            if name is None:
                name = f"{prefix}{next(fresh)}"
                pending.append(Let(name, rewrite_children(e, pending)))
                available[e] = name
            return LocalRead(name)
        return rewrite_children(e, pending)

    def rewrite_children(e: Expr, pending: list[Statement]) -> Expr:
        if isinstance(e, BinOp):
            return BinOp(e.op, rewrite(e.left, pending), rewrite(e.right, pending))
        if isinstance(e, UnOp):
            return UnOp(e.op, rewrite(e.operand, pending))
        if isinstance(e, Compare):
            return Compare(
                e.op, rewrite(e.left, pending), rewrite(e.right, pending)
            )
        if isinstance(e, BoolOp):
            return BoolOp(
                e.op, rewrite(e.left, pending), rewrite(e.right, pending)
            )
        if isinstance(e, NotOp):
            return NotOp(rewrite(e.operand, pending))
        if isinstance(e, Where):
            return Where(
                rewrite(e.cond, pending),
                rewrite(e.if_true, pending),
                rewrite(e.if_false, pending),
            )
        if isinstance(e, Call):
            return Call(e.func, tuple(rewrite(a, pending) for a in e.args))
        return e

    for st in stmts:
        pending: list[Statement] = []
        if isinstance(st, Let):
            new: Statement = Let(st.name, rewrite(st.expr, pending))
        elif isinstance(st, Assign):
            new = Assign(st.target, rewrite(st.expr, pending))
        else:
            raise KernelError(f"unknown statement {type(st).__name__}")
        out.extend(pending)
        out.append(new)
        if isinstance(st, Assign):
            written = st.target.array
            available = {
                e: n
                for e, n in available.items()
                if not _reads_written_level(e, written)
            }
    return out


def count_nodes(expr: Expr) -> int:
    """Number of AST nodes — used by tests and the compiler's cost model."""
    total = 1
    for c in expr.children():
        total += count_nodes(c)
    return total


def collect_params(stmts: Sequence[Statement]) -> set[str]:
    """Names of all :class:`Param` nodes appearing in a kernel body."""
    names: set[str] = set()

    def visit(node: Expr) -> Expr | None:
        if isinstance(node, Param):
            names.add(node.name)
        return None

    for st in stmts:
        map_statement(st, visit)
    return names
