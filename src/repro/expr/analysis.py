"""Static analyses over kernel ASTs: access extraction, shape inference,
validation, and time normalization.

The paper's compiler "cannot infer the stencil shape from the kernel,
because the kernel can be arbitrary code" — our kernels are structured
ASTs, so we *can* infer the exact footprint, and we use that both ways:

* **validate** the kernel against a user-declared shape (the Phase-1
  compliance check and the Phase-2 static equivalent), and
* **infer** a shape when the user declines to declare one, a convenience
  the C++ system could not offer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import KernelError, ShapeViolationError
from repro.expr.nodes import (
    Assign,
    Expr,
    GridRead,
    GridWrite,
    Let,
    LocalRead,
    Statement,
    ConstArrayRead,
)


def walk(expr: Expr) -> Iterable[Expr]:
    """Yield ``expr`` and every sub-expression, depth first."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


@dataclass
class KernelAccessSummary:
    """The complete access footprint of a kernel body.

    ``reads``:  per-array set of (dt, spatial offsets) relative to the
    normalized home (write at dt=0 … depth-1 reads at negative dt).
    ``writes``: per-array set of write time offsets (pre-normalization).
    ``const_reads``: names of read-only coefficient arrays accessed.
    ``locals_defined`` / ``locals_read``: Let discipline bookkeeping.
    """

    reads: dict[str, set[tuple[int, tuple[int, ...]]]] = field(default_factory=dict)
    writes: dict[str, set[int]] = field(default_factory=dict)
    const_reads: set[str] = field(default_factory=set)
    locals_defined: list[str] = field(default_factory=list)
    locals_read: set[str] = field(default_factory=set)

    @property
    def arrays(self) -> set[str]:
        return set(self.reads) | set(self.writes)

    def all_cells(self) -> set[tuple[int, tuple[int, ...]]]:
        """Union of read cells over all arrays, plus the home write cell."""
        cells: set[tuple[int, tuple[int, ...]]] = set()
        ndim = self.ndim()
        for per_array in self.reads.values():
            cells |= per_array
        cells.add((0, (0,) * ndim))
        return cells

    def ndim(self) -> int:
        for per_array in self.reads.values():
            for _, offs in per_array:
                return len(offs)
        return 0

    def depth(self) -> int:
        """Number of prior time levels the kernel depends on (>= 1)."""
        min_dt = 0
        for per_array in self.reads.values():
            for dt, _ in per_array:
                min_dt = min(min_dt, dt)
        return max(1, -min_dt)

    def slopes(self) -> tuple[int, ...]:
        """Per-dimension stencil slope sigma_i = max ceil(|off_i| / -dt).

        Matches the paper's definition with the home at dt=0 and reads at
        dt < 0.  Reads at dt == 0 (same-time, offset 0 only — enforced by
        validation) contribute nothing.
        """
        ndim = self.ndim()
        sig = [0] * ndim
        for per_array in self.reads.values():
            for dt, offs in per_array:
                if dt >= 0:
                    continue
                gap = -dt
                for i, o in enumerate(offs):
                    sig[i] = max(sig[i], -((-abs(o)) // gap))
        return tuple(sig)

    def min_max_offsets(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-dimension (most negative, most positive) read offsets.

        Drives interior/boundary zoid classification and ghost-cell halo
        widths in the LOOPS baseline.
        """
        ndim = self.ndim()
        lo = [0] * ndim
        hi = [0] * ndim
        for per_array in self.reads.values():
            for _, offs in per_array:
                for i, o in enumerate(offs):
                    lo[i] = min(lo[i], o)
                    hi[i] = max(hi[i], o)
        return tuple(lo), tuple(hi)


def kernel_accesses(stmts: Sequence[Statement]) -> KernelAccessSummary:
    """Extract the access summary of a raw (pre-normalization) kernel body."""
    out = KernelAccessSummary()
    for st in stmts:
        if isinstance(st, Let):
            for node in walk(st.expr):
                _collect(node, out)
            out.locals_defined.append(st.name)
        elif isinstance(st, Assign):
            for node in walk(st.expr):
                _collect(node, out)
            out.writes.setdefault(st.target.array, set()).add(st.target.dt)
        else:
            raise KernelError(f"unknown statement {type(st).__name__}")
    return out


def _collect(node: Expr, out: KernelAccessSummary) -> None:
    if isinstance(node, GridRead):
        out.reads.setdefault(node.array, set()).add((node.dt, node.offsets))
    elif isinstance(node, ConstArrayRead):
        out.const_reads.add(node.array)
    elif isinstance(node, LocalRead):
        out.locals_read.add(node.name)


def normalize_statements(stmts: Sequence[Statement]) -> list[Statement]:
    """Shift time offsets so every write lands at dt == 0.

    The language lets users write either ``a(t, i) = f(a(t-1, …))`` or
    ``a(t+1, i) = f(a(t, …))`` (the paper's Rationale section calls this
    flexibility out explicitly).  Internally everything is canonicalized to
    the second time frame shifted by −write_dt: writes at 0, reads at
    negative dt.  All writes in one kernel must share a single time offset,
    otherwise per-point and region-at-a-time execution could disagree.
    """
    write_dts = {st.target.dt for st in stmts if isinstance(st, Assign)}
    if not write_dts:
        raise KernelError("kernel body contains no assignment")
    if len(write_dts) > 1:
        raise KernelError(
            f"all writes in a kernel must target one time level; saw offsets "
            f"{sorted(write_dts)}"
        )
    shift = write_dts.pop()
    from repro.expr.transform import shift_time

    # Apply the rebuild even for shift == 0: it also canonicalizes
    # front-end GridAccess nodes into plain GridRead nodes, so kernels
    # written in either time frame produce structurally equal ASTs.
    return [shift_time(st, -shift) for st in stmts]


def infer_shape(stmts: Sequence[Statement]) -> list[tuple[int, ...]]:
    """Infer the Pochoir shape cells (home-relative) of a normalized kernel.

    Returns cells as ``(dt, off_0, …, off_{d-1})`` tuples with the home
    cell ``(0, 0, …, 0)`` first, matching the declaration order convention
    of Section 2.
    """
    summary = kernel_accesses(stmts)
    ndim = summary.ndim()
    home = (0,) + (0,) * ndim
    cells = {home}
    for per_array in summary.reads.values():
        for dt, offs in per_array:
            cells.add((dt, *offs))
    rest = sorted(c for c in cells if c != home)
    return [home, *rest]


def validate_kernel(
    stmts: Sequence[Statement],
    *,
    ndim: int,
    declared_cells: Sequence[tuple[int, ...]] | None = None,
    known_arrays: Iterable[str] | None = None,
    known_const_arrays: Iterable[str] | None = None,
) -> KernelAccessSummary:
    """Validate a *normalized* kernel body; return its access summary.

    Enforced rules (each mirrors a rule from Section 2 of the paper):

    1. every grid access has exactly ``ndim`` spatial subscripts;
    2. writes are to the home cell (all spatial offsets zero) — checked by
       the front end when it builds :class:`GridWrite`, re-checked here;
    3. reads at the write time level (dt == 0 after normalization) must be
       at the home cell, so region-at-a-time execution matches per-point;
    4. reads never look into the future (dt <= 0);
    5. locals are defined before use and not redefined;
    6. accesses stay inside the declared shape, when one is declared;
    7. only registered arrays are touched, when a registry is supplied.
    """
    summary = kernel_accesses(stmts)

    for arr, cells in summary.reads.items():
        for dt, offs in cells:
            if len(offs) != ndim:
                raise KernelError(
                    f"array {arr!r} accessed with {len(offs)} spatial subscripts "
                    f"in a {ndim}-D kernel"
                )
            if dt > 0:
                raise ShapeViolationError(
                    f"read of {arr!r} at future time offset +{dt} "
                    f"(writes are at offset 0 after normalization)"
                )
            if dt == 0 and any(o != 0 for o in offs):
                raise KernelError(
                    f"read of {arr!r} at the written time level must be at the "
                    f"home cell; got spatial offsets {offs}"
                )

    seen: set[str] = set()
    for name in summary.locals_defined:
        if name in seen:
            raise KernelError(f"local {name!r} let-bound twice")
        seen.add(name)
    undefined = summary.locals_read - seen
    if undefined:
        raise KernelError(f"locals read but never let-bound: {sorted(undefined)}")

    # A same-level (dt == 0) home read is only meaningful if an earlier
    # statement of this kernel wrote that array — otherwise the modular time
    # buffer would expose a stale level.  Walk statements in order.
    defined_locals: set[str] = set()
    written_arrays: set[str] = set()
    for st in stmts:
        expr = st.expr if isinstance(st, (Let, Assign)) else None
        if expr is not None:
            for node in walk(expr):
                if isinstance(node, GridRead) and node.dt == 0:
                    if node.array not in written_arrays:
                        raise KernelError(
                            f"read of {node.array!r} at the written time level "
                            f"before any statement writes it; reorder the "
                            f"kernel statements"
                        )
                if isinstance(node, LocalRead) and node.name not in defined_locals:
                    raise KernelError(
                        f"local {node.name!r} read before its let-binding"
                    )
        if isinstance(st, Let):
            defined_locals.add(st.name)
        elif isinstance(st, Assign):
            written_arrays.add(st.target.array)

    if known_arrays is not None:
        unknown = summary.arrays - set(known_arrays)
        if unknown:
            raise KernelError(
                f"kernel touches unregistered arrays: {sorted(unknown)}"
            )
    if known_const_arrays is not None:
        unknown = summary.const_reads - set(known_const_arrays)
        if unknown:
            raise KernelError(
                f"kernel reads unregistered const arrays: {sorted(unknown)}"
            )

    if declared_cells is not None:
        declared = {tuple(c) for c in declared_cells}
        for arr, cells in summary.reads.items():
            for dt, offs in cells:
                if (dt, *offs) not in declared:
                    raise ShapeViolationError(
                        f"kernel reads {arr!r} at cell (dt={dt}, offsets={offs}) "
                        f"outside the declared shape"
                    )

    return summary
