"""The Pochoir expression DSL: AST nodes, builder operators, and analyses.

The original Pochoir embeds its stencil language in C++ and treats the
kernel body as mostly-uninterpreted text, extracting only the array
accesses it must transform.  The Python analogue builds a small expression
AST by operator overloading: evaluating the user's kernel function once
with symbolic index objects records every grid access and arithmetic
operation, giving the compiler (``repro.compiler``) a faithful structured
view of the kernel.

Public surface:

* :class:`Axis`, :class:`AffineIndex` — symbolic space-time indices.
* Expression nodes (:class:`Const`, :class:`GridRead`, :class:`BinOp`, …)
  and statements (:class:`Assign`, :class:`Let`).
* Builder helpers — :func:`where`, :func:`eq_`, :func:`ne_`,
  :func:`minimum`, :func:`maximum`, :func:`fmath`, :func:`let`,
  :func:`local`.
* Analyses — :func:`repro.expr.analysis.kernel_accesses`,
  :func:`repro.expr.analysis.infer_shape`, slope/depth computation.
"""

from repro.expr.nodes import (
    AffineIndex,
    Assign,
    Axis,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    GridWrite,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    Statement,
    UnOp,
    Where,
    as_expr,
)
from repro.expr.builder import (
    eq_,
    fmath,
    let,
    local,
    maximum,
    minimum,
    ne_,
    where,
)
from repro.expr.analysis import (
    KernelAccessSummary,
    infer_shape,
    kernel_accesses,
    normalize_statements,
    validate_kernel,
)
from repro.expr.evalexpr import EvalEnv, eval_expr, eval_statements
from repro.expr.printer import to_source
from repro.expr.transform import fold_constants, substitute_params

__all__ = [
    "AffineIndex",
    "Assign",
    "Axis",
    "BinOp",
    "BoolOp",
    "Call",
    "Compare",
    "Const",
    "ConstArrayRead",
    "EvalEnv",
    "Expr",
    "GridRead",
    "GridWrite",
    "IndexValue",
    "KernelAccessSummary",
    "Let",
    "LocalRead",
    "NotOp",
    "Param",
    "Statement",
    "UnOp",
    "Where",
    "as_expr",
    "eq_",
    "eval_expr",
    "eval_statements",
    "fmath",
    "fold_constants",
    "infer_shape",
    "kernel_accesses",
    "let",
    "local",
    "maximum",
    "minimum",
    "ne_",
    "normalize_statements",
    "substitute_params",
    "to_source",
    "validate_kernel",
    "where",
]
