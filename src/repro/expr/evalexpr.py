"""A tree-walking evaluator for kernel expression ASTs.

This is the execution engine of the *Phase-1 template library*: it runs a
kernel one grid point at a time through checked array accessors, which is
slow but validates every access against the declared shape — exactly the
role the C++ template library plays in the paper's two-phase strategy.
The compiled backends in :mod:`repro.compiler` must agree with it bit for
bit; the test suite enforces that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ExecutionError, KernelError
from repro.expr.nodes import (
    AffineIndex,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    ConstArrayRead,
    Expr,
    GridRead,
    IndexValue,
    Let,
    LocalRead,
    NotOp,
    Param,
    Statement,
    UnOp,
    Where,
)

#: Reader callback: (array_name, dt, absolute_point) -> float
GridReader = Callable[[str, int, tuple[int, ...]], float]
#: Writer callback: (array_name, dt, absolute_point, value) -> None
GridWriter = Callable[[str, int, tuple[int, ...], float], None]
#: Const-array reader: (array_name, absolute_indices) -> float
ConstReader = Callable[[str, tuple[int, ...]], float]

_MATH_IMPL: Mapping[str, Callable[..., float]] = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tanh": math.tanh,
    "fabs": math.fabs,
    "floor": math.floor,
    "ceil": math.ceil,
}


@dataclass
class EvalEnv:
    """Evaluation context for one grid point.

    ``t`` and ``point`` are the absolute home coordinates; ``read`` /
    ``write`` / ``read_const`` route grid accesses (the checked accessors
    of :class:`repro.language.PochoirArray` in Phase 1); ``params`` binds
    :class:`Param` nodes; ``locals`` accumulates :class:`Let` bindings.
    """

    t: int
    point: tuple[int, ...]
    read: GridReader
    write: GridWriter
    read_const: ConstReader | None = None
    params: Mapping[str, float] = field(default_factory=dict)
    locals: dict[str, float] = field(default_factory=dict)

    def affine_value(self, idx: AffineIndex) -> int:
        total = idx.const
        for ax, c in idx.terms:
            if ax.is_time:
                total += c * self.t
            else:
                if ax.position >= len(self.point):
                    raise ExecutionError(
                        f"axis {ax.name} (dim {ax.position}) out of range for "
                        f"{len(self.point)}-D point"
                    )
                total += c * self.point[ax.position]
        return total


def eval_expr(expr: Expr, env: EvalEnv) -> float:
    """Evaluate ``expr`` at the point described by ``env``.

    Booleans are represented as 1.0/0.0, matching both the NumPy backend
    (where they are boolean arrays consumed by ``where``) and C (ints).
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        try:
            return float(env.params[expr.name])
        except KeyError:
            raise ExecutionError(f"unbound parameter {expr.name!r}") from None
    if isinstance(expr, IndexValue):
        return float(env.affine_value(expr.index))
    if isinstance(expr, GridRead):
        pt = tuple(p + o for p, o in zip(env.point, expr.offsets))
        return env.read(expr.array, expr.dt, pt)
    if isinstance(expr, ConstArrayRead):
        if env.read_const is None:
            raise ExecutionError(
                f"kernel reads const array {expr.array!r} but none registered"
            )
        idx = tuple(env.affine_value(i) for i in expr.indices)
        return env.read_const(expr.array, idx)
    if isinstance(expr, LocalRead):
        try:
            return env.locals[expr.name]
        except KeyError:
            raise ExecutionError(
                f"local {expr.name!r} read before let-binding"
            ) from None
    if isinstance(expr, BinOp):
        a = eval_expr(expr.left, env)
        b = eval_expr(expr.right, env)
        op = expr.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b
        if op == "%":
            return math.fmod(a, b)
        if op == "**":
            return a**b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise KernelError(f"unknown binop {op!r}")
    if isinstance(expr, UnOp):
        v = eval_expr(expr.operand, env)
        return -v if expr.op == "neg" else abs(v)
    if isinstance(expr, Compare):
        a = eval_expr(expr.left, env)
        b = eval_expr(expr.right, env)
        op = expr.op
        result = (
            a < b
            if op == "<"
            else a <= b
            if op == "<="
            else a > b
            if op == ">"
            else a >= b
            if op == ">="
            else a == b
            if op == "=="
            else a != b
        )
        return 1.0 if result else 0.0
    if isinstance(expr, BoolOp):
        a = eval_expr(expr.left, env)
        b = eval_expr(expr.right, env)
        if expr.op == "and":
            return 1.0 if (a != 0.0 and b != 0.0) else 0.0
        return 1.0 if (a != 0.0 or b != 0.0) else 0.0
    if isinstance(expr, NotOp):
        return 0.0 if eval_expr(expr.operand, env) != 0.0 else 1.0
    if isinstance(expr, Where):
        if eval_expr(expr.cond, env) != 0.0:
            return eval_expr(expr.if_true, env)
        return eval_expr(expr.if_false, env)
    if isinstance(expr, Call):
        args = [eval_expr(a, env) for a in expr.args]
        return float(_MATH_IMPL[expr.func](*args))
    raise KernelError(f"cannot evaluate node {type(expr).__name__}")


def eval_statements(stmts: Sequence[Statement], env: EvalEnv) -> None:
    """Execute a kernel body (Let/Assign sequence) for one grid point."""
    env.locals.clear()
    for st in stmts:
        if isinstance(st, Let):
            env.locals[st.name] = eval_expr(st.expr, env)
        elif isinstance(st, Assign):
            value = eval_expr(st.expr, env)
            env.write(st.target.array, st.target.dt, env.point, value)
        else:
            raise KernelError(f"unknown statement {type(st).__name__}")
