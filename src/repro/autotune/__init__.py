"""Autotuners: ISAT-style coarsening search and the Berkeley-style
blocked-loop comparator.

Section 4 of the paper integrates the ISAT autotuner to pick base-case
coarsening, with heuristics as the fast default; Figure 5 compares
Pochoir to the Berkeley stencil autotuner.  Both roles are reproduced:

* :mod:`repro.autotune.isat` — coordinate-descent over (space, time)
  coarsening thresholds, timing real TRAP runs.
* :mod:`repro.autotune.berkeley` — a cache-blocked loop implementation
  with an exhaustive block-size search, standing in for the closed-source
  Berkeley autotuner as the Figure 5 comparator.
"""

from repro.autotune.isat import CoarseningResult, tune_coarsening
from repro.autotune.berkeley import BlockedLoopResult, tune_blocked_loops

__all__ = [
    "BlockedLoopResult",
    "CoarseningResult",
    "tune_blocked_loops",
    "tune_coarsening",
]
