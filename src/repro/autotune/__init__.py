"""Autotuners: ISAT-style dispatch search, the persistent tuned-config
registry, and the Berkeley-style blocked-loop comparator.

Section 4 of the paper integrates the ISAT autotuner to pick base-case
coarsening, with heuristics as the fast default; Figure 5 compares
Pochoir to the Berkeley stencil autotuner.  Both roles are reproduced,
and the tuner's results now *persist*:

* :mod:`repro.autotune.isat` — coordinate descent over the coarsening
  thresholds (:func:`tune_coarsening`) and over the full dispatch space
  — per-dimension space thresholds, dt threshold, codegen mode, leaf
  fusion, worker count (:func:`tune_dispatch`) — timing real TRAP runs.
* :mod:`repro.autotune.registry` — the on-disk registry keyed on
  (problem signature, backend, machine fingerprint) that
  ``Stencil.run(options=RunOptions(autotune="use"))`` consults.
* :mod:`repro.autotune.berkeley` — a cache-blocked loop implementation
  with an exhaustive block-size search, standing in for the closed-source
  Berkeley autotuner as the Figure 5 comparator.
"""

from repro.autotune.isat import (
    CoarseningResult,
    DispatchResult,
    tune_coarsening,
    tune_dispatch,
    tune_problem,
)
from repro.autotune.berkeley import BlockedLoopResult, tune_blocked_loops
from repro.autotune.registry import (
    TunedConfig,
    clear_registry,
    lookup,
    machine_fingerprint,
    problem_signature,
    registry_path,
    store,
)

__all__ = [
    "BlockedLoopResult",
    "CoarseningResult",
    "DispatchResult",
    "TunedConfig",
    "clear_registry",
    "lookup",
    "machine_fingerprint",
    "problem_signature",
    "registry_path",
    "store",
    "tune_blocked_loops",
    "tune_coarsening",
    "tune_dispatch",
    "tune_problem",
]
