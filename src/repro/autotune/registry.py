"""Persistent tuned-configuration registry (the ISAT role, productionized).

The paper integrates the ISAT autotuner because "choosing the optimal
size of the base case can be difficult" — but a tune is only worth hours
of search if its result *outlives the process*.  This module persists
tuned dispatch configurations to an on-disk JSON registry so that
``Stencil.run`` can transparently reuse a configuration tuned days ago
(or by a different process on the same machine), the way Stencil-HMLS
style frameworks apply per-(kernel, target) tuning records.

Keying
------
An entry is keyed on three components, any of which invalidates it:

* the **problem signature** — a digest of the stencil's ndim, grid
  sizes, shape cells, kernel statements, and per-array metadata
  (dtype, depth, boundary kind) plus const-array shapes;
* the **backend** — the ``RunOptions.mode`` *request* (``"auto"`` is a
  distinct key from an explicit ``"c"``: under ``"auto"`` the tuner is
  free to pick the codegen mode, under an explicit mode it is not).
  Non-TRAP walk algorithms prefix it (``"strap:auto"``) so a config
  tuned by timing TRAP never serves a STRAP run;
* the **machine fingerprint** — CPU count plus the C toolchain identity
  (:func:`repro.compiler.codegen_c.compiler_identity`), so a config
  tuned on another box, after a compiler upgrade, or with a toolchain
  that has since vanished never gets applied.

Robustness mirrors the ``.so`` cache's discipline: the registry file
carries a schema version; a corrupt file is evicted (renamed aside) and
treated as empty; individual entries that fail validation are dropped on
load; all I/O failures degrade to "no tuned config" — no exception from
this module ever reaches ``Stencil.run``.

The file lives at ``$REPRO_TUNE_REGISTRY`` or
``<tempdir>/repro_autotune/registry.json``; wipe it with
:func:`clear_registry` (or just delete the file).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.resilience import degradations, faults
from repro.util import atomic_write_text, interprocess_lock

#: Bump when the entry layout changes; a mismatched file is discarded
#: wholesale (stale tunings are worthless, silently misreading them is
#: worse).  History: 1 — original dispatch space; 2 — ``compiled_walk``
#: knob added (subtree-task planning over the compiled interior
#: recursion); 3 — ``walk_threads`` knob added (the in-.so pthread pool
#: of the parallel compiled walk); 4 — ``executor`` knob added (which
#: task runner dispatches base cases, including the supervised
#: out-of-process ``"procs"`` executor).  There is no in-place
#: migration: a pre-bump file reads as empty and the next tune-on-miss
#: rewrites it at the current version — re-tuning is cheap, misapplying
#: a config tuned without the new knob is not.
SCHEMA_VERSION = 4

_REGISTRY_LOCK = threading.Lock()


@dataclass(frozen=True)
class TunedConfig:
    """One tuned dispatch configuration — the full space the extended
    ISAT search covers, not just the two coarsening thresholds.

    ``mode`` is a concrete codegen mode (or ``"auto"`` meaning "no
    preference"); ``n_workers`` ``None`` keeps the run's default,
    ``compiled_walk`` ``None`` keeps the run's auto rule (on for the C
    backend), ``walk_threads`` ``None`` keeps the run's auto rule
    (detected core count), and ``executor`` ``None`` keeps the run's
    auto rule (a tuned ``"procs"`` is applied only when the run's
    options already permit supervision).  ``best_time``/
    ``evaluations``/``tuned_unix_time`` are provenance for inspection,
    not applied to runs.
    """

    space_thresholds: tuple[int, ...]
    dt_threshold: int
    mode: str = "auto"
    fuse_leaves: bool = True
    n_workers: int | None = None
    compiled_walk: bool | None = None
    walk_threads: int | None = None
    executor: str | None = None
    best_time: float = 0.0
    evaluations: int = 0
    tuned_unix_time: float = 0.0

    def to_json(self) -> dict[str, Any]:
        d = asdict(self)
        d["space_thresholds"] = list(self.space_thresholds)
        return d

    @staticmethod
    def from_json(obj: Any) -> "TunedConfig":
        """Parse and validate one registry entry; raises on anything
        malformed (the loader turns that into entry eviction)."""
        if not isinstance(obj, dict):
            raise ValueError(f"entry is not an object: {obj!r}")
        space = tuple(int(s) for s in obj["space_thresholds"])
        if not space or any(s < 1 for s in space):
            raise ValueError(f"bad space thresholds {space}")
        dt = int(obj["dt_threshold"])
        if dt < 1:
            raise ValueError(f"bad dt threshold {dt}")
        mode = str(obj.get("mode", "auto"))
        if mode not in ("auto", "interp", "macro_shadow", "split_pointer", "c"):
            raise ValueError(f"bad mode {mode!r}")
        workers = obj.get("n_workers")
        if workers is not None:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"bad n_workers {workers}")
        cwalk = obj.get("compiled_walk")
        # isinstance, not `in (None, True, False)`: a hand-edited file
        # may carry 0/1, which equality would admit but the consumer's
        # `is False`/`is None` dispatch would misread as "on".
        if cwalk is not None and not isinstance(cwalk, bool):
            raise ValueError(f"bad compiled_walk {cwalk!r}")
        wthreads = obj.get("walk_threads")
        if wthreads is not None:
            wthreads = int(wthreads)
            if wthreads < 1:
                raise ValueError(f"bad walk_threads {wthreads}")
        executor = obj.get("executor")
        if executor is not None:
            executor = str(executor)
            if executor not in ("serial", "threads", "dag", "procs"):
                raise ValueError(f"bad executor {executor!r}")
        return TunedConfig(
            space_thresholds=space,
            dt_threshold=dt,
            mode=mode,
            fuse_leaves=bool(obj.get("fuse_leaves", True)),
            n_workers=workers,
            compiled_walk=cwalk,
            walk_threads=wthreads,
            executor=executor,
            best_time=float(obj.get("best_time", 0.0)),
            evaluations=int(obj.get("evaluations", 0)),
            tuned_unix_time=float(obj.get("tuned_unix_time", 0.0)),
        )


def registry_path() -> Path:
    """Where the registry lives (``$REPRO_TUNE_REGISTRY`` overrides)."""
    override = os.environ.get("REPRO_TUNE_REGISTRY")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro_autotune" / "registry.json"


def machine_fingerprint() -> str:
    """Available CPU count + C toolchain identity: the "target" half of
    the key.

    The CPU count is affinity/cgroup-aware (:func:`detect_cpu_count`):
    a config tuned inside a 2-CPU container must not serve the same
    image granted 32 CPUs, even on identical hardware.  A missing
    compiler is itself part of the identity (``cc:none``), so a config
    tuned with the C backend available is never applied on a machine
    where ``"c"`` would fail to compile.
    """
    from repro.compiler.codegen_c import compiler_identity, find_c_compiler
    from repro.util import detect_cpu_count

    cc = find_c_compiler()
    cc_id = compiler_identity(cc) if cc else "none"
    return f"cpu{detect_cpu_count()}|cc:{cc_id}"


def problem_signature(problem) -> str:
    """Stable digest of what makes two problems tuning-equivalent.

    Covers the stencil shape, kernel statements, grid geometry, and
    per-array storage metadata — everything that shifts the optimum.
    Deliberately excludes ``t_start``/``t_end`` (a tune at one step
    count applies to any horizon) and array *contents*.
    """
    arrays = sorted(
        (
            a.name,
            tuple(a.sizes),
            a.depth,
            str(a.data.dtype),
            a.boundary.describe() if a.boundary is not None else "none",
        )
        for a in problem.arrays.values()
    )
    consts = sorted(
        (c.name, tuple(c.sizes), str(c.values.dtype))
        for c in problem.const_arrays.values()
    )
    material = repr(
        (
            problem.ndim,
            tuple(problem.sizes),
            tuple(problem.shape.cells),
            tuple(problem.statements),
            arrays,
            consts,
            sorted(problem.params.items()),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()[:32]


def registry_key(signature: str, backend: str) -> str:
    return f"{signature}|{backend}|{machine_fingerprint()}"


def _evict_corrupt(path: Path) -> None:
    """Move a damaged registry file aside (same discipline as evicting a
    truncated ``.so``): the next store starts from a clean slate and the
    corpse stays inspectable."""
    try:
        path.replace(path.with_name(path.name + ".corrupt"))
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass


#: (path -> (stat tag, parsed entries)): a run loop with autotune
#: enabled does one lookup per Stencil.run, and re-reading + re-parsing
#: the whole file each time could cost more than the tuned config saves
#: on tiny runs.  The (mtime_ns, size) tag invalidates on any writer —
#: this process's store() or another's.  Callers must treat the cached
#: dict as read-only (store() copies before mutating).
_LOAD_CACHE: dict[Path, tuple[tuple[int, int], dict[str, dict]]] = {}
_LOAD_CACHE_LIMIT = 32


def _load(path: Path) -> dict[str, dict]:
    """Entries from disk; {} on any damage (file-level eviction) or
    schema mismatch.  Entry-level damage drops just that entry."""
    try:
        stat = path.stat()
        tag = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        _LOAD_CACHE.pop(path, None)
        return {}
    cached = _LOAD_CACHE.get(path)
    if cached is not None and cached[0] == tag:
        return cached[1]
    try:
        raw = path.read_text()
    except OSError:
        return {}
    if faults.fire("registry.corrupt"):
        raw = raw[: len(raw) // 2] + "\x00<injected fault: registry.corrupt>"
    try:
        doc = json.loads(raw)
    except ValueError:
        degradations.note("registry:corrupt-evicted")
        _evict_corrupt(path)
        return {}
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        return {}
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        return {}
    good: dict[str, dict] = {}
    for key, obj in entries.items():
        try:
            TunedConfig.from_json(obj)
        except (KeyError, TypeError, ValueError):
            continue
        good[key] = obj
    if len(_LOAD_CACHE) >= _LOAD_CACHE_LIMIT:
        _LOAD_CACHE.clear()
    _LOAD_CACHE[path] = (tag, good)
    return good


def _dump(path: Path, entries: dict[str, dict]) -> None:
    # Durable, not just atomic: fsync the temp file and the directory
    # entry (repro.util.atomic) so a crash right after a store cannot
    # leave a zero-length or half-written registry for the next process
    # to evict.
    doc = {"schema": SCHEMA_VERSION, "entries": entries}
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def lookup(problem, backend: str) -> TunedConfig | None:
    """The tuned config for (problem, backend) on this machine, or None.

    Never raises: damage, schema drift, and fingerprint mismatch all
    read as "no tuned config" — the caller falls back to heuristics.
    """
    try:
        key = registry_key(problem_signature(problem), backend)
        with _REGISTRY_LOCK:
            obj = _load(registry_path()).get(key)
        if obj is None:
            return None
        config = TunedConfig.from_json(obj)
    except Exception:
        return None
    if len(config.space_thresholds) != problem.ndim:
        # A signature collision across dimensionalities is nearly
        # impossible, but a registry hand-edit is not; never apply
        # thresholds of the wrong arity.
        return None
    return config


def store(problem, backend: str, config: TunedConfig) -> bool:
    """Persist a tuned config; returns False (never raises) on failure.

    Read-modify-write under the process lock *and* an ``fcntl.flock`` on
    a sibling lockfile, so concurrent stores — threads here or tuners in
    other processes (a server's workers all tuning at once) — merge
    instead of last-writer-wins dropping entries.  The ``_load`` cache
    tag is (mtime_ns, size), so the re-read under the lock observes any
    writer that got in first.  Where locking is unavailable the store
    degrades to the old atomic-replace behavior: file integrity always,
    cross-process merge best-effort.
    """
    try:
        key = registry_key(problem_signature(problem), backend)
        with _REGISTRY_LOCK:
            path = registry_path()
            path.parent.mkdir(parents=True, exist_ok=True)
            with interprocess_lock(path.with_name(path.name + ".lock")):
                entries = dict(_load(path))  # copy: the loaded dict may be cached
                entries[key] = config.to_json()
                _dump(path, entries)
        return True
    except Exception:
        return False


def entries() -> dict[str, TunedConfig]:
    """Every valid entry currently on disk (inspection/debugging)."""
    with _REGISTRY_LOCK:
        raw = _load(registry_path())
    return {k: TunedConfig.from_json(v) for k, v in raw.items()}


def clear_registry() -> None:
    """Wipe the registry file (tests; "wipe it" in the README)."""
    with _REGISTRY_LOCK:
        try:
            registry_path().unlink()
        except OSError:
            pass
