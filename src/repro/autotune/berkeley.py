"""A blocked-loop stencil autotuner: the Figure 5 comparator.

The Berkeley autotuner (Datta et al.) generates loop nests with tuned
cache blocking and picks the fastest configuration empirically.  Its code
is not redistributable, so per the substitution rule we built the closest
open equivalent: time-unblocked loop sweeps with spatial cache blocking
over the outer dimensions (never blocking the unit-stride dimension, as
their best configurations do), autotuned by exhaustive search over a
small power-of-two block grid.

What Figure 5 establishes — Pochoir's cache-oblivious code is in the same
throughput class as a tuned cache-*aware* loop nest on 3D 7-point and
27-point kernels — is exactly what this comparator lets the benchmark
check, with GStencil/s replaced by points/s on laptop-scale grids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product
from typing import Callable, Sequence

from repro.errors import AutotuneError
from repro.language.kernel import Kernel
from repro.language.stencil import RunOptions, Stencil


@dataclass
class BlockedLoopResult:
    """Best blocking found and its throughput."""

    block: tuple[int, ...]
    best_time: float
    points_per_second: float
    configurations_tried: int
    history: list[tuple[tuple[int, ...], float]]


def run_blocked_loops(
    stencil: Stencil,
    steps: int,
    kernel: Kernel,
    block: tuple[int, ...],
    *,
    mode: str = "auto",
) -> None:
    """One blocked sweep execution: per step, visit spatial blocks.

    Implemented by running the loop baseline over sub-boxes: each time
    step applies the compiled interior clone block by block and the
    boundary clone on the shell — the same code generation as everything
    else, so the comparison isolates the *traversal* policy.
    """
    from repro.compiler.pipeline import compile_kernel
    from repro.trap.loops import _shell_boxes

    problem = stencil.prepare(steps, kernel)
    compiled = compile_kernel(problem, mode)
    sizes = problem.sizes
    d = problem.ndim
    ir = compiled.ir
    lo = tuple(max(0, -m) for m in ir.min_off)
    hi = tuple(min(n, n - M) for n, M in zip(sizes, ir.max_off))
    has_interior = all(l < h for l, h in zip(lo, hi))
    shells = _shell_boxes(sizes, lo, hi) if has_interior else [((0,) * d, sizes)]

    blocks: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    if has_interior:
        per_dim: list[list[tuple[int, int]]] = []
        for i in range(d):
            b = max(1, block[i])
            spans = [
                (s, min(s + b, hi[i])) for s in range(lo[i], hi[i], b)
            ]
            per_dim.append(spans)
        for combo in product(*per_dim):
            blocks.append(
                (tuple(c[0] for c in combo), tuple(c[1] for c in combo))
            )

    for t in range(problem.t_start, problem.t_end):
        for b_lo, b_hi in blocks:
            compiled.interior(t, b_lo, b_hi)
        for s_lo, s_hi in shells:
            compiled.boundary(t, s_lo, s_hi)
    for arr in problem.arrays.values():
        arr.note_written_through(problem.t_end - 1)
    stencil.advance_cursor(problem)


def tune_blocked_loops(
    make_problem: Callable[[], tuple[Stencil, Kernel]],
    steps: int,
    *,
    block_candidates: Sequence[int] = (8, 16, 32, 64),
    mode: str = "auto",
) -> BlockedLoopResult:
    """Exhaustively search outer-dimension block sizes; unit-stride
    dimension is never blocked (kept full width)."""
    if not block_candidates:
        raise AutotuneError("block_candidates must be non-empty")

    stencil, _ = make_problem()
    d = stencil.ndim
    outer_dims = max(1, d - 1) if d > 1 else 0

    history: list[tuple[tuple[int, ...], float]] = []
    best_block: tuple[int, ...] | None = None
    best_time = float("inf")

    if outer_dims == 0:
        candidates: list[tuple[int, ...]] = [(1 << 30,)]
    else:
        candidates = [
            tuple(combo) + ((1 << 30),)
            for combo in product(block_candidates, repeat=outer_dims)
        ]

    total_points = 0
    for block in candidates:
        st, kern = make_problem()
        n = 1
        for s in st.sizes:
            n *= s
        total_points = n * steps
        t0 = time.perf_counter()
        run_blocked_loops(st, steps, kern, block, mode=mode)
        elapsed = time.perf_counter() - t0
        history.append((block, elapsed))
        if elapsed < best_time:
            best_time, best_block = elapsed, block

    assert best_block is not None
    return BlockedLoopResult(
        block=best_block,
        best_time=best_time,
        points_per_second=total_points / best_time if best_time > 0 else 0.0,
        configurations_tried=len(candidates),
        history=history,
    )
