"""ISAT-style autotuning of the base-case coarsening (Section 4).

The paper: "Since choosing the optimal size of the base case can be
difficult, we integrated the ISAT autotuner into Pochoir … this autotuning
process can take hours", hence the shipped heuristics.  This module
reproduces the autotuner's role at laptop scale: a coordinate-descent
search over the (space threshold, time threshold) grid, each candidate
evaluated by timing a real TRAP run of a small representative problem.

The search space is logarithmic (powers of two around the heuristic
default), so a tune costs tens of runs, not hours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import AutotuneError
from repro.language.kernel import Kernel
from repro.language.stencil import RunOptions, Stencil


@dataclass
class CoarseningResult:
    """Outcome of a coarsening tune."""

    space_threshold: int
    dt_threshold: int
    best_time: float
    evaluations: int
    history: list[tuple[int, int, float]]

    def as_options(self, ndim: int, protect_unit_stride: bool | None = None):
        """WalkOptions-style kwargs for Stencil.run."""
        return {
            "space_thresholds": (self.space_threshold,) * ndim,
            "dt_threshold": self.dt_threshold,
            "protect_unit_stride": protect_unit_stride,
        }


def tune_coarsening(
    make_problem: Callable[[], tuple[Stencil, Kernel]],
    steps: int,
    *,
    space_candidates: Sequence[int] = (16, 32, 64, 128, 256),
    dt_candidates: Sequence[int] = (2, 4, 8, 16, 32),
    mode: str = "auto",
    repeats: int = 1,
    max_sweeps: int = 3,
) -> CoarseningResult:
    """Coordinate-descent over (space, time) coarsening thresholds.

    ``make_problem`` must return a *fresh* (stencil, kernel) pair per call
    (runs mutate array state).  Starts from the middle of each candidate
    list and alternates sweeps over the two axes until a sweep makes no
    improvement.
    """
    if not space_candidates or not dt_candidates:
        raise AutotuneError("candidate lists must be non-empty")

    timings: dict[tuple[int, int], float] = {}
    history: list[tuple[int, int, float]] = []

    def evaluate(space: int, dt: int) -> float:
        key = (space, dt)
        if key in timings:
            return timings[key]
        best = float("inf")
        for _ in range(repeats):
            stencil, kernel = make_problem()
            ndim = stencil.ndim
            opts = RunOptions(
                algorithm="trap",
                mode=mode,
                space_thresholds=(space,) * ndim,
                dt_threshold=dt,
                collect_stats=False,
            )
            t0 = time.perf_counter()
            stencil.run(steps, kernel, opts)
            best = min(best, time.perf_counter() - t0)
        timings[key] = best
        history.append((space, dt, best))
        return best

    space = space_candidates[len(space_candidates) // 2]
    dt = dt_candidates[len(dt_candidates) // 2]
    best_time = evaluate(space, dt)

    for _ in range(max_sweeps):
        improved = False
        for cand in space_candidates:
            t = evaluate(cand, dt)
            if t < best_time:
                best_time, space, improved = t, cand, True
        for cand in dt_candidates:
            t = evaluate(space, cand)
            if t < best_time:
                best_time, dt, improved = t, cand, True
        if not improved:
            break

    return CoarseningResult(
        space_threshold=space,
        dt_threshold=dt,
        best_time=best_time,
        evaluations=len(timings),
        history=history,
    )
