"""ISAT-style autotuning of the base-case coarsening and dispatch space.

The paper: "Since choosing the optimal size of the base case can be
difficult, we integrated the ISAT autotuner into Pochoir … this autotuning
process can take hours", hence the shipped heuristics.  This module
reproduces the autotuner's role at laptop scale with two searches:

* :func:`tune_coarsening` — the original coordinate descent over the
  (space threshold, time threshold) grid, each candidate evaluated by
  timing a real TRAP run of a small representative problem.
* :func:`tune_dispatch` — the same descent extended to the *full*
  dispatch space: per-dimension space thresholds, the dt threshold, the
  codegen mode, leaf fusion, and the worker count.  Its result is a
  :class:`~repro.autotune.registry.TunedConfig`, ready to persist in the
  on-disk registry that ``Stencil.run`` consults.

Both searches memoize evaluated points (coordinate descent revisits the
incumbent on every sweep; re-timing it would waste most of the budget),
so a tune costs tens of runs, not hours.  :func:`tune_problem` is the
driver-level glue for ``RunOptions(autotune="tune-on-miss")``: it tunes
on *cloned* arrays so the user's grids are untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.autotune.registry import TunedConfig
from repro.errors import AutotuneError
from repro.language.kernel import Kernel
from repro.language.stencil import Problem, RunOptions, Stencil


class _Memo:
    """Evaluation cache shared by both searches.

    ``visits`` counts every requested evaluation, ``unique`` only the
    ones actually run; the gap is what memoization saved (asserted by
    the unit tests — the incumbent is revisited on every sweep).
    """

    def __init__(self, run: Callable[[tuple], float]):
        self._run = run
        self._timings: dict[tuple, float] = {}
        self.visits = 0

    def __call__(self, key: tuple) -> float:
        self.visits += 1
        t = self._timings.get(key)
        if t is None:
            t = self._run(key)
            self._timings[key] = t
        return t

    @property
    def unique(self) -> int:
        return len(self._timings)


@dataclass
class CoarseningResult:
    """Outcome of a coarsening tune.

    ``evaluations`` counts distinct configurations actually timed;
    ``visits`` counts all evaluation requests (the surplus was served
    from the memo, not re-run).
    """

    space_threshold: int
    dt_threshold: int
    best_time: float
    evaluations: int
    history: list[tuple[int, int, float]]
    visits: int = 0

    def as_options(self, ndim: int, protect_unit_stride: bool | None = None):
        """WalkOptions-style kwargs for Stencil.run."""
        return {
            "space_thresholds": (self.space_threshold,) * ndim,
            "dt_threshold": self.dt_threshold,
            "protect_unit_stride": protect_unit_stride,
        }


def tune_coarsening(
    make_problem: Callable[[], tuple[Stencil, Kernel]],
    steps: int,
    *,
    space_candidates: Sequence[int] = (16, 32, 64, 128, 256),
    dt_candidates: Sequence[int] = (2, 4, 8, 16, 32),
    mode: str = "auto",
    repeats: int = 1,
    max_sweeps: int = 3,
) -> CoarseningResult:
    """Coordinate-descent over (space, time) coarsening thresholds.

    ``make_problem`` must return a *fresh* (stencil, kernel) pair per call
    (runs mutate array state).  Starts from the middle of each candidate
    list and alternates sweeps over the two axes until a sweep makes no
    improvement.  Already-timed points (the incumbent, every sweep) are
    served from the memo, never re-run.
    """
    if not space_candidates or not dt_candidates:
        raise AutotuneError("candidate lists must be non-empty")

    history: list[tuple[int, int, float]] = []

    def run_point(key: tuple) -> float:
        space, dt = key
        best = float("inf")
        for _ in range(repeats):
            stencil, kernel = make_problem()
            ndim = stencil.ndim
            opts = RunOptions(
                algorithm="trap",
                mode=mode,
                space_thresholds=(space,) * ndim,
                dt_threshold=dt,
                collect_stats=False,
            )
            t0 = time.perf_counter()
            stencil.run(steps, kernel, opts)
            best = min(best, time.perf_counter() - t0)
        history.append((space, dt, best))
        return best

    evaluate = _Memo(run_point)
    space = space_candidates[len(space_candidates) // 2]
    dt = dt_candidates[len(dt_candidates) // 2]
    best_time = evaluate((space, dt))

    for _ in range(max_sweeps):
        improved = False
        for cand in space_candidates:
            t = evaluate((cand, dt))
            if t < best_time:
                best_time, space, improved = t, cand, True
        for cand in dt_candidates:
            t = evaluate((space, cand))
            if t < best_time:
                best_time, dt, improved = t, cand, True
        if not improved:
            break

    return CoarseningResult(
        space_threshold=space,
        dt_threshold=dt,
        best_time=best_time,
        evaluations=evaluate.unique,
        history=history,
        visits=evaluate.visits,
    )


# -- the full dispatch space ---------------------------------------------------


@dataclass
class DispatchResult:
    """Outcome of a full dispatch-space tune.

    ``config`` is directly storable in the registry; ``history`` pairs
    each *timed* configuration with its wall time, in evaluation order.
    """

    config: TunedConfig
    best_time: float
    evaluations: int
    visits: int
    history: list[tuple[TunedConfig, float]]


def _geometric_candidates(center: int, *, floor: int = 1) -> tuple[int, ...]:
    """A log grid around a heuristic default: {c/2, c, 2c} clamped."""
    return tuple(sorted({max(floor, center // 2), center, center * 2}))


def _descent(
    evaluate: _Memo,
    start: dict,
    axes: list[tuple[str, Sequence]],
    max_sweeps: int,
) -> tuple[dict, float]:
    """Generic coordinate descent: sweep each axis, keep improvements,
    stop when a full sweep changes nothing.  ``start`` is always
    evaluated first, so the heuristic default can never lose to noise
    without being measured."""
    config = dict(start)

    def key(cfg: dict) -> tuple:
        return tuple(cfg[name] for name, _ in axes)

    best_time = evaluate(key(config))
    for _ in range(max_sweeps):
        improved = False
        for name, candidates in axes:
            for cand in candidates:
                trial = {**config, name: cand}
                t = evaluate(key(trial))
                if t < best_time:
                    best_time, config, improved = t, trial, True
        if not improved:
            break
    return config, best_time


def tune_dispatch(
    make_problem: Callable[[], tuple[Stencil, Kernel]],
    steps: int,
    *,
    modes: Sequence[str] | None = None,
    space_candidates: Sequence[int] | None = None,
    dt_candidates: Sequence[int] | None = None,
    fuse_candidates: Sequence[bool] = (True, False),
    worker_candidates: Sequence[int | None] | None = None,
    cwalk_candidates: Sequence[bool | None] = (None, False),
    wthreads_candidates: Sequence[int | None] | None = None,
    executor_candidates: Sequence[str | None] = (None,),
    repeats: int = 1,
    max_sweeps: int = 2,
    algorithm: str = "trap",
) -> DispatchResult:
    """Coordinate descent over the full dispatch space.

    Axes: codegen mode, each dimension's space threshold (independently —
    unlike :func:`tune_coarsening`'s single shared threshold), the dt
    threshold, ``fuse_leaves``, ``compiled_walk`` (``None`` = the auto
    rule — on for the C backend — vs forced off; subtree-task planning
    shifts the optimum toward finer base cases, so the axis earns its
    evaluations), ``walk_threads`` (``None`` = auto: the detected core
    count for the compiled walk's in-.so pthread pool, vs pinned serial —
    in-walk threads compete with DAG workers for the same cores, so the
    right split is workload-dependent and worth measuring),
    ``n_workers``, and ``executor`` (``None`` = the run's auto rule;
    include ``"procs"`` in ``executor_candidates`` to measure whether
    supervised out-of-process execution pays for its shared-memory and
    dispatch overhead on this workload — by default the axis is a
    single ``None`` so the search spends nothing on it).  Defaults
    derive from the backend-aware heuristics
    (a log grid around each default), and the descent *starts at* the
    heuristic configuration, so the tuned result can only match or beat
    it on the tuning workload.  ``algorithm`` selects the walk algorithm
    every candidate is timed under — a config destined for STRAP runs
    must be tuned by timing STRAP, not TRAP.
    """
    from repro.compiler.pipeline import available_modes, resolve_mode
    from repro.trap.coarsening import (
        default_dt_threshold,
        default_space_thresholds,
    )

    probe_stencil, _ = make_problem()
    ndim = probe_stencil.ndim
    sizes = probe_stencil.sizes

    if modes is None:
        modes = tuple(m for m in available_modes() if m != "auto" and m != "interp")
    if not modes:
        raise AutotuneError("no codegen modes to tune over")
    start_mode = resolve_mode("auto") if resolve_mode("auto") in modes else modes[0]

    default_space = default_space_thresholds(ndim, sizes, start_mode)
    default_dt = default_dt_threshold(ndim, start_mode)
    if dt_candidates is None:
        dt_candidates = _geometric_candidates(default_dt)

    axes: list[tuple[str, Sequence]] = [("mode", tuple(modes))]
    start: dict = {"mode": start_mode}
    for i in range(ndim):
        cands = (
            tuple(space_candidates)
            if space_candidates is not None
            else _geometric_candidates(default_space[i], floor=2)
        )
        axes.append((f"space{i}", cands))
        start[f"space{i}"] = (
            default_space[i] if default_space[i] in cands else cands[len(cands) // 2]
        )
    axes.append(("dt", tuple(dt_candidates)))
    start["dt"] = default_dt if default_dt in dt_candidates else dt_candidates[0]
    axes.append(("fuse", tuple(fuse_candidates)))
    start["fuse"] = fuse_candidates[0]
    axes.append(("cwalk", tuple(cwalk_candidates)))
    start["cwalk"] = cwalk_candidates[0]
    if wthreads_candidates is None:
        # None = auto (detected core count), 1 = pinned serial walk; on
        # multi-core hosts both deserve a timing, on single-core they
        # coincide so one candidate suffices.
        from repro.util import detect_cpu_count

        wthreads_candidates = (None, 1) if detect_cpu_count() > 1 else (None,)
    axes.append(("wthreads", tuple(wthreads_candidates)))
    start["wthreads"] = wthreads_candidates[0]
    if worker_candidates is None:
        from repro.util import detect_cpu_count

        cpus = detect_cpu_count()
        worker_candidates = tuple(sorted({1, min(4, cpus), cpus}))
    axes.append(("workers", tuple(worker_candidates)))
    start["workers"] = worker_candidates[0]
    for cand in executor_candidates:
        if cand is not None and cand not in ("serial", "threads", "dag", "procs"):
            raise AutotuneError(f"unknown executor candidate {cand!r}")
    axes.append(("executor", tuple(executor_candidates)))
    start["executor"] = executor_candidates[0]

    history: list[tuple[TunedConfig, float]] = []

    def config_of(key: tuple) -> TunedConfig:
        cfg = dict(zip((name for name, _ in axes), key))
        return TunedConfig(
            space_thresholds=tuple(cfg[f"space{i}"] for i in range(ndim)),
            dt_threshold=cfg["dt"],
            mode=cfg["mode"],
            fuse_leaves=cfg["fuse"],
            n_workers=cfg["workers"],
            compiled_walk=cfg["cwalk"],
            walk_threads=cfg["wthreads"],
            executor=cfg["executor"],
        )

    def run_point(key: tuple) -> float:
        config = config_of(key)
        best = float("inf")
        for _ in range(repeats):
            stencil, kernel = make_problem()
            opts = RunOptions(
                algorithm=algorithm,
                mode=config.mode,
                space_thresholds=config.space_thresholds,
                dt_threshold=config.dt_threshold,
                fuse_leaves=config.fuse_leaves,
                executor=config.executor or "auto",
                n_workers=config.n_workers,
                compiled_walk=config.compiled_walk,
                walk_threads=config.walk_threads,
                collect_stats=False,
                autotune="off",
            )
            t0 = time.perf_counter()
            stencil.run(steps, kernel, opts)
            best = min(best, time.perf_counter() - t0)
        history.append((config, best))
        return best

    evaluate = _Memo(run_point)
    best_cfg, best_time = _descent(evaluate, start, axes, max_sweeps)
    key = tuple(best_cfg[name] for name, _ in axes)
    config = replace(
        config_of(key),
        best_time=best_time,
        evaluations=evaluate.unique,
        tuned_unix_time=time.time(),
    )
    return DispatchResult(
        config=config,
        best_time=best_time,
        evaluations=evaluate.unique,
        visits=evaluate.visits,
        history=history,
    )


# -- driver-level tune-on-miss glue -------------------------------------------


def _clone_arrays(problem: Problem) -> dict:
    """Fresh PochoirArrays mirroring the problem's (data copied, same
    boundaries); the tuning runs mutate only these."""
    from repro.language.array import PochoirArray

    clones = {}
    for name, arr in problem.arrays.items():
        clone = PochoirArray(
            name, arr.sizes, depth=arr.depth, dtype=arr.data.dtype
        )
        if arr.boundary is not None:
            clone.register_boundary(arr.boundary)
        clone.data[...] = arr.data
        clone._latest = arr._latest
        clones[name] = clone
    return clones


def tune_problem(
    problem: Problem,
    *,
    backend: str = "auto",
    algorithm: str = "trap",
    steps: int | None = None,
    max_sweeps: int = 1,
    repeats: int = 1,
) -> DispatchResult:
    """Tune the dispatch space for an already-prepared Problem.

    This is what ``autotune="tune-on-miss"`` runs inside the driver: the
    user's arrays are cloned once and restored before every candidate
    run, so tuning is invisible to the caller's state.  The candidate
    grid is deliberately modest (a log grid around the heuristics, one
    sweep) — a registry miss costs tens of short runs, once, and every
    later run in any process hits the stored entry.
    """
    from repro.compiler.pipeline import available_modes, resolve_mode
    from repro.trap.driver import execute_problem

    clones = _clone_arrays(problem)
    saved = {name: arr.data.copy() for name, arr in clones.items()}
    saved_latest = {name: arr._latest for name, arr in clones.items()}
    tune_steps = steps if steps is not None else min(problem.steps, 24)
    tune_steps = max(1, tune_steps)
    tuning_problem = replace(
        problem,
        arrays=clones,
        t_end=problem.t_start + tune_steps,
    )

    if backend == "auto":
        modes = tuple(
            m for m in available_modes() if m not in ("auto", "interp", "macro_shadow")
        )
    else:
        modes = (resolve_mode(backend),)

    class _ProblemRunner:
        """Adapts the cloned Problem to tune_dispatch's (stencil, kernel)
        protocol: ``run`` restores the cloned buffers and times
        ``execute_problem`` directly."""

        ndim = problem.ndim
        sizes = problem.sizes

        def run(self, _steps: int, _kernel, options: RunOptions):
            for name, arr in clones.items():
                arr.data[...] = saved[name]
                arr._latest = saved_latest[name]
            return execute_problem(tuning_problem, options)

    runner = _ProblemRunner()
    return tune_dispatch(
        lambda: (runner, None),
        tune_steps,
        modes=modes,
        max_sweeps=max_sweeps,
        repeats=repeats,
        algorithm=algorithm,
    )
