"""Advisory inter-process file locks.

A long-running server multiplies every cross-process race: the autotune
registry's read-modify-write, the ``.so`` cache's compile-then-rename,
and anything else that assumed "two processes rarely collide" suddenly
collides on every request burst.  This module is the shared fix: an
``fcntl.flock``-based exclusive lock held for the duration of a critical
section, keyed on a lockfile path.

``flock`` (not ``lockf``) deliberately: it locks the *open file
description*, so two threads of one process locking the same path via
separate ``os.open`` calls serialize against each other exactly like two
processes do — one primitive covers both axes.

The lock is advisory and best-effort, matching the degradation
discipline of the stores it protects: on platforms without ``fcntl`` or
filesystems that refuse to lock (some network mounts), the context
manager yields ``False`` and the caller proceeds unlocked — the
pre-existing small race is strictly better than failing the operation.
Lockfiles are left in place after release (unlinking a lockfile that
another process may have just opened reintroduces the race being
fixed).
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

try:  # pragma: no cover - fcntl exists on every POSIX we run on
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]


@contextlib.contextmanager
def interprocess_lock(path: str | os.PathLike) -> Iterator[bool]:
    """Hold an exclusive advisory lock on ``path`` for the block.

    Yields ``True`` while the lock is held, ``False`` when locking is
    unavailable (missing ``fcntl``, unwritable directory, filesystem
    refusing ``flock``) — callers run the critical section either way.
    Blocks until the current holder releases; holders release on close,
    so a crashed process never wedges the lock.
    """
    fd = None
    if fcntl is not None:
        try:
            fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            if fd is not None:
                os.close(fd)
                fd = None
    try:
        yield fd is not None
    finally:
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)
