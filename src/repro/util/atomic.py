"""Crash-durable file writes shared by every on-disk store.

The registry, the ``.so`` cache, and the checkpoint files all follow the
same discipline: write a temp file in the destination directory, flush
it to stable storage, atomically rename it over the destination, then
flush the directory entry.  ``os.replace`` alone guarantees *atomicity*
(readers see the old bytes or the new bytes, never a mix) but not
*durability* — after a power loss the rename can survive while the data
blocks it points at do not, which is exactly the torn state a
checkpoint loader must never trust.  The ``fsync`` pair closes that
window.

All helpers degrade gracefully on filesystems that reject directory
fsync (some network mounts do): durability becomes best-effort there,
atomicity is unaffected.
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_file(path: str | os.PathLike) -> None:
    """Flush a file's data blocks to stable storage (best-effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_dir(path: str | os.PathLike) -> None:
    """Flush a directory entry (the rename itself) to stable storage.

    Windows cannot open directories; network filesystems may refuse the
    fsync.  Both degrade to a no-op — atomic replace still holds.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(tmp: str | os.PathLike, dst: str | os.PathLike) -> None:
    """``os.replace`` with the full fsync discipline around it.

    For temp files produced by an external writer (the C compiler's
    ``.so`` output): fsync the temp file, rename it into place, fsync
    the containing directory so the rename survives power loss.
    """
    fsync_file(tmp)
    os.replace(tmp, dst)
    fsync_dir(Path(dst).parent)


def atomic_write_chunks(path: str | os.PathLike, chunks) -> None:
    """Atomically and durably write an iterable of buffers to ``path``.

    The streaming form of :func:`atomic_write_bytes`: each chunk may be
    any buffer-protocol object (``bytes``, ``memoryview``, a contiguous
    NumPy array), written in order without ever concatenating them —
    checkpoints stream tens of megabytes of grid data this way instead
    of materializing one contiguous blob.  Same discipline: temp file in
    the destination directory (same filesystem, so the rename is
    atomic), ``fsync`` before and ``os.replace`` + directory ``fsync``
    after.  A crash at any instant leaves either the old file or the
    new file — never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as f:
            for chunk in chunks:
                f.write(chunk)
            f.flush()
            try:
                os.fsync(f.fileno())
            except OSError:
                pass
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically and durably write ``data`` to ``path``.

    The single write helper the autotune registry, the ``.so`` cache's
    source files, and the resilience checkpoints share; see
    :func:`atomic_write_chunks` for the discipline.
    """
    atomic_write_chunks(path, (data,))


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"))
