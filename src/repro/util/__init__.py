"""Small shared utilities: timing, ASCII tables, integer math, CPUs,
durable file writes, inter-process locks."""

from repro.util.timing import Timer, measure
from repro.util.tables import Table
from repro.util.intmath import ceil_div, floor_div, ilog2, is_pow2, next_pow2
from repro.util.cpus import detect_cpu_count
from repro.util.locks import interprocess_lock
from repro.util.atomic import (
    atomic_write_bytes,
    atomic_write_chunks,
    atomic_write_text,
    durable_replace,
    fsync_dir,
    fsync_file,
)

__all__ = [
    "Timer",
    "measure",
    "Table",
    "atomic_write_bytes",
    "atomic_write_chunks",
    "atomic_write_text",
    "ceil_div",
    "durable_replace",
    "floor_div",
    "fsync_dir",
    "fsync_file",
    "ilog2",
    "interprocess_lock",
    "is_pow2",
    "next_pow2",
    "detect_cpu_count",
]
