"""Small shared utilities: timing, ASCII tables, integer math, CPUs."""

from repro.util.timing import Timer, measure
from repro.util.tables import Table
from repro.util.intmath import ceil_div, floor_div, ilog2, is_pow2, next_pow2
from repro.util.cpus import detect_cpu_count

__all__ = [
    "Timer",
    "measure",
    "Table",
    "ceil_div",
    "floor_div",
    "ilog2",
    "is_pow2",
    "next_pow2",
    "detect_cpu_count",
]
