"""Integer arithmetic helpers shared by the zoid geometry and analyzers."""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """``ceil(a / b)`` for integers, exact for negatives as well."""
    return -((-a) // b)


def floor_div(a: int, b: int) -> int:
    """``floor(a / b)``; alias of ``//`` kept for symmetry with ceil_div."""
    return a // b


def ilog2(n: int) -> int:
    """``floor(log2 n)`` for ``n >= 1``."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return n.bit_length() - 1


def is_pow2(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()
