"""Core-count detection that respects cgroup/affinity restrictions."""

from __future__ import annotations

import os


def detect_cpu_count() -> int:
    """The number of CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's cores even when a cgroup
    cpuset or ``taskset`` affinity mask restricts the process to fewer —
    the common case in containers — so sizing pools by it oversubscribes
    the restricted set.  ``sched_getaffinity`` reports the real mask;
    fall back to ``cpu_count`` on platforms without it (macOS).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1
