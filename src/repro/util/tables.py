"""Plain-text table rendering for paper-style result tables.

The evaluation harness prints rows shaped like the paper's Figure 3 /
Figure 5 tables; this module owns the column alignment so every benchmark
reports through one code path.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """An ASCII table with a header row and left/right-aligned columns.

    Numeric cells are right-aligned, text cells left-aligned. ``add_row``
    accepts any mix of values; they are rendered with ``format_cell``.

    >>> t = Table(["name", "time"])
    >>> t.add_row(["heat", 1.25])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    name | time
    -----+-----
    heat | 1.25
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []
        self._numeric: list[bool] = [True] * len(self.headers)

    @staticmethod
    def format_cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.2f}"
        return str(value)

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self.format_cell(v) for v in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        for i, v in enumerate(row):
            if not isinstance(v, (int, float)):
                self._numeric[i] = False
        self.rows.append(cells)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]

        def fmt_row(cells: Sequence[str], numeric_align: bool) -> str:
            out = []
            for i, c in enumerate(cells):
                if numeric_align and self._numeric[i]:
                    out.append(c.rjust(widths[i]))
                else:
                    out.append(c.ljust(widths[i]))
            return " | ".join(out).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers, numeric_align=False))
        lines.append("-+-".join("-" * w for w in widths))
        for r in self.rows:
            lines.append(fmt_row(r, numeric_align=True))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
