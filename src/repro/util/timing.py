"""Wall-clock timing helpers used by the benchmark harness.

``pytest-benchmark`` handles the statistically careful measurement in the
``benchmarks/`` tree; these helpers serve the standalone harness
(``benchmarks/harness.py``) and the autotuners, which need quick
best-of-``repeat`` timings rather than full calibration runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    >>> with Timer() as tm:
    ...     sum(range(10))
    45
    >>> tm.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed += time.perf_counter() - self._t0


def measure(
    fn: Callable[[], Any],
    *,
    repeat: int = 3,
    warmup: int = 1,
) -> float:
    """Return the best-of-``repeat`` wall time of ``fn()`` in seconds.

    ``warmup`` extra calls run first (and are discarded) so one-time costs
    such as kernel compilation or NumPy buffer faulting do not pollute the
    measurement — the same discipline the paper applies by timing steady
    state on a warm cache.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
