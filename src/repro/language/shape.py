"""Pochoir shapes: the declared space-time footprint of a stencil kernel.

A shape is a list of cells, each ``(dt, off_0, …, off_{d-1})``.  Following
Section 2 of the paper, the first cell is the *home cell* whose spatial
coordinates are all zero; every other cell must have a time offset
strictly smaller than the home's.  Internally cells are normalized so the
home sits at time offset 0, i.e. reads live at negative dt — this matches
the normalized kernel ASTs of :mod:`repro.expr.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Shape:
    """An immutable, normalized stencil shape.

    >>> s = Shape.from_cells([(1, 0, 0), (0, 0, 0), (0, 1, 0), (0, -1, 0),
    ...                       (0, 0, 1), (0, 0, -1)])
    >>> s.ndim, s.depth, s.slopes
    (2, 1, (1, 1))
    """

    cells: tuple[tuple[int, ...], ...]  # normalized: home == (0, 0, ..., 0)
    ndim: int

    @staticmethod
    def from_cells(cells: Sequence[Sequence[int]]) -> "Shape":
        """Build a shape from declaration-order cells (home first).

        Accepts either convention seen in the paper — home at ``t+1``
        reading ``t`` (Figure 6) or home at ``t`` reading ``t-1``
        (Section 2) — and normalizes to home-at-zero.
        """
        if not cells:
            raise SpecificationError("a shape needs at least the home cell")
        raw = [tuple(int(c) for c in cell) for cell in cells]
        ndim = len(raw[0]) - 1
        if ndim < 1:
            raise SpecificationError(
                f"shape cells need a time plus >=1 spatial coordinate, got {raw[0]}"
            )
        for cell in raw:
            if len(cell) != ndim + 1:
                raise SpecificationError(
                    f"inconsistent cell arity in shape: {cell} vs {ndim + 1} coords"
                )
        home = raw[0]
        if any(o != 0 for o in home[1:]):
            raise SpecificationError(
                f"home cell (first in the shape) must have zero spatial "
                f"coordinates, got {home}"
            )
        t_home = home[0]
        normalized = []
        seen: set[tuple[int, ...]] = set()
        for cell in raw:
            norm = (cell[0] - t_home, *cell[1:])
            if norm in seen:
                continue
            seen.add(norm)
            normalized.append(norm)
        for cell in normalized[1:]:
            if cell[0] >= 0 and any(o != 0 for o in cell[1:]):
                raise SpecificationError(
                    f"non-home cell {cell} must be at a strictly earlier time "
                    f"than the home cell (read-only history)"
                )
            if cell[0] > 0:
                raise SpecificationError(
                    f"non-home cell {cell} lies in the future of the home cell"
                )
        return Shape(cells=tuple(normalized), ndim=ndim)

    @property
    def depth(self) -> int:
        """Number of prior time levels the stencil depends on (k >= 1).

        The user must initialize levels 0..k-1 before running (Section 2).
        """
        min_dt = min((c[0] for c in self.cells), default=0)
        return max(1, -min_dt)

    @property
    def slopes(self) -> tuple[int, ...]:
        """Per-dimension slope sigma_i = max over cells ceil(|off_i| / -dt)."""
        sig = [0] * self.ndim
        for cell in self.cells[1:]:
            dt = cell[0]
            if dt >= 0:
                continue
            gap = -dt
            for i, o in enumerate(cell[1:]):
                sig[i] = max(sig[i], -((-abs(o)) // gap))
        return tuple(sig)

    @property
    def min_max_offsets(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-dim (most negative, most positive) spatial offsets over cells."""
        lo = [0] * self.ndim
        hi = [0] * self.ndim
        for cell in self.cells:
            for i, o in enumerate(cell[1:]):
                lo[i] = min(lo[i], o)
                hi[i] = max(hi[i], o)
        return tuple(lo), tuple(hi)

    def contains(self, dt: int, offsets: Sequence[int]) -> bool:
        """True iff (dt, offsets) is a declared cell (home-relative)."""
        return (dt, *offsets) in self.cells

    def union(self, other: "Shape") -> "Shape":
        """Smallest shape containing both (for multi-kernel stencils)."""
        if other.ndim != self.ndim:
            raise SpecificationError(
                f"cannot union shapes of dims {self.ndim} and {other.ndim}"
            )
        home = (0,) * (self.ndim + 1)
        rest = sorted(
            (set(self.cells) | set(other.cells)) - {home}
        )
        return Shape(cells=(home, *rest), ndim=self.ndim)

    @staticmethod
    def infer_from(cells: Iterable[tuple[int, ...]], ndim: int) -> "Shape":
        """Build a shape from inferred (dt, offsets) cells (home-relative)."""
        home = (0,) * (ndim + 1)
        rest = sorted(set(tuple(c) for c in cells) - {home})
        return Shape(cells=(home, *rest), ndim=ndim)

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return f"Shape(ndim={self.ndim}, depth={self.depth}, cells={list(self.cells)})"
