"""Pochoir arrays: d-dimensional spatial grids with a modular time buffer.

A :class:`PochoirArray` owns ``depth + 1`` copies of the spatial grid,
reused modulo ``depth + 1`` as the computation proceeds — exactly the
storage discipline of Section 2 (the user "may not obtain an alias to the
Pochoir array", so the layout is ours to choose; we keep time-major
C-contiguous ``float64`` so compiled kernels and the cache simulator agree
on addresses).

The same object plays three roles, mirroring the paper's API:

* **concrete indexing** ``u[t, x, y]`` (get/set) for initialization and
  reading results (Figure 6 lines 15–21);
* **symbolic calls** ``u(t+1, x, y)`` inside a kernel function, which build
  AST nodes (:class:`GridAccess`) for the compiler;
* **checked runtime access** ``read_at`` / ``write_at``, the Phase-1
  accessors that route off-domain reads through the registered boundary
  function.

**The grid-as-view refactor** (supervised execution / sharding): the
modular buffer is normally a private ndarray, but :meth:`PochoirArray.share`
can rebind it as a *view onto an attachable* ``multiprocessing.shared_memory``
segment.  A shared array pickles as a segment descriptor (name + shape,
no payload bytes), and unpickling in another process attaches a zero-copy
view onto the same physical pages — which is how the supervised executor
hands worker subprocesses the live grid without serializing it.  Every
rebind bumps :attr:`cache_token`, because compiled kernels prebind raw
buffer addresses at compile time and must never be served against a
buffer the array no longer owns.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import BoundaryError, KernelError, SpecificationError
from repro.expr.nodes import (
    AffineIndex,
    Assign,
    Axis,
    ConstArrayRead,
    Expr,
    GridRead,
    GridWrite,
    as_affine,
    as_expr,
)
from repro.language.boundary import Boundary

#: Serializes the legacy (< 3.13) shared-memory attach shim: it patches
#: the *process-global* ``resource_tracker.register``, so two concurrent
#: attaches interleaving save/patch/restore can leave tracking pointed at
#: the no-op forever (every later segment leaks) or re-enable it while
#: the other attach is mid-constructor (the attachment gets tracked and
#: the tracker unlinks a live segment at exit).
_TRACKER_SHIM_LOCK = threading.Lock()


@dataclass(frozen=True)
class GridAccess(GridRead):
    """A symbolic grid access; usable as a read or, via ``<<``, a write.

    ``u(t+1, x, y) << expr`` is the repro spelling of the paper's
    ``u(t+1, x, y) = expr`` (Python cannot overload assignment-to-call).
    """

    def __lshift__(self, value: object) -> Assign:
        if any(o != 0 for o in self.offsets):
            raise KernelError(
                f"writes must target the home cell: {self.array} written at "
                f"spatial offsets {self.offsets}"
            )
        return Assign(GridWrite(self.array, self.dt), as_expr(value))


def _is_symbolic(args: Sequence[object]) -> bool:
    return any(isinstance(a, (Axis, AffineIndex)) for a in args)


class PochoirArray:
    """A registered stencil state array (see module docstring).

    Parameters
    ----------
    name:
        Identifier used in kernel ASTs and compiled code; must be unique
        within a stencil.
    sizes:
        Spatial extents, slowest-varying first (``(X, Y)`` for 2D, with Y
        the unit-stride dimension).
    depth:
        How many prior time levels the array must retain (the ``depth``
        parameter of ``Pochoir_Array_dimD``); the buffer holds ``depth+1``
        time slots.
    """

    #: Process-wide monotonic id source for :attr:`cache_token`.
    _token_counter = itertools.count()

    def __init__(
        self,
        name: str,
        sizes: Sequence[int],
        *,
        depth: int = 1,
        dtype: np.dtype | type = np.float64,
    ):
        if not name.isidentifier():
            raise SpecificationError(f"array name must be an identifier: {name!r}")
        sizes = tuple(int(s) for s in sizes)
        if not sizes or any(s <= 0 for s in sizes):
            raise SpecificationError(f"array sizes must be positive, got {sizes}")
        if depth < 1:
            raise SpecificationError(f"array depth must be >= 1, got {depth}")
        self.name = name
        self.sizes = sizes
        self.ndim = len(sizes)
        self.depth = depth
        self.slots = depth + 1
        self.data = np.zeros((self.slots, *sizes), dtype=dtype)
        self.boundary: Boundary | None = None
        #: Process-unique, never-reused identity for compiled-kernel
        #: caching.  ``id(self.data)`` is NOT usable for that purpose: CPython
        #: reuses addresses after garbage collection, which would silently
        #: serve a stale compiled kernel (closed over a dead buffer) to a
        #: new array that happens to land at the same address.
        self.cache_token = next(PochoirArray._token_counter)
        #: Highest time level written so far (levels 0..depth-1 are assumed
        #: to be initialized by the user before the first run).
        self._latest = depth - 1
        #: Shared-memory backing when promoted via :meth:`share`
        #: (``None`` = private buffer).  ``_shm_owner`` distinguishes the
        #: creating process (unlinks the segment) from attachers (close
        #: only).
        self._shm = None
        self._shm_owner = False

    # -- shared-memory backing (grid-as-view) --------------------------------
    @property
    def is_shared(self) -> bool:
        """Whether the buffer currently lives in an attachable segment."""
        return self._shm is not None

    def share(self) -> "PochoirArray":
        """Move the modular buffer into a shared-memory segment (idempotent).

        The contents are preserved; ``self.data`` becomes a view onto the
        segment and :attr:`cache_token` is bumped so previously compiled
        kernels (bound to the old private buffer) can never be served for
        this array again.  Raises ``OSError`` where shared memory is
        unavailable — callers degrade, they do not crash.
        """
        if self._shm is not None:
            return self
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=self.data.nbytes)
        view = np.ndarray(self.data.shape, dtype=self.data.dtype, buffer=shm.buf)
        view[...] = self.data
        self.data = view
        self._shm = shm
        self._shm_owner = True
        self.cache_token = next(PochoirArray._token_counter)
        return self

    def unshare(self) -> "PochoirArray":
        """Copy the buffer back to private memory and release the segment.

        The owner unlinks the segment name; attachers only close their
        mapping.  Compiled kernels cached against the shared view keep it
        mapped until they are evicted, so a failing ``close`` (exported
        views still alive) is tolerated — the segment is unlinked either
        way and the pages go away with the last mapping.
        """
        if self._shm is None:
            return self
        shm, owner = self._shm, self._shm_owner
        self._shm = None
        self._shm_owner = False
        self.data = self.data.copy()  # private again, contents preserved
        self.cache_token = next(PochoirArray._token_counter)
        try:
            shm.close()
        except BufferError:
            pass  # a cached compiled kernel still holds the old view
        if owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        return self

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if self._shm is not None:
            # Pickle as a descriptor: the receiver attaches a zero-copy
            # view onto the same segment instead of moving payload bytes.
            state["data"] = None
            state["_shm"] = None
            state["_shm_owner"] = False
            state["_shm_descriptor"] = (
                self._shm.name,
                self.data.shape,
                str(self.data.dtype),
            )
        return state

    def __setstate__(self, state: dict) -> None:
        descriptor = state.pop("_shm_descriptor", None)
        self.__dict__.update(state)
        if descriptor is None:
            return
        from multiprocessing import shared_memory

        name, shape, dtype = descriptor
        # Attach WITHOUT resource-tracker registration: the creator owns
        # the segment's lifetime.  CPython < 3.13 tracks mere
        # attachments too, so an attaching process's exit would unlink
        # (or double-unregister) live state the creator still owns;
        # 3.13+ exposes track=False, older versions need the register
        # shim.
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            # The shim mutates process-global state; hold the module
            # lock so concurrent attaches (a server unpickling many
            # jobs at once) cannot interleave patch/restore.
            with _TRACKER_SHIM_LOCK:
                orig_register = resource_tracker.register
                resource_tracker.register = lambda *a, **kw: None
                try:
                    shm = shared_memory.SharedMemory(name=name)
                finally:
                    resource_tracker.register = orig_register
        self.data = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        self._shm = shm
        self._shm_owner = False

    # -- registration ------------------------------------------------------
    def register_boundary(self, boundary: Boundary) -> "PochoirArray":
        """Associate the boundary function supplying off-domain values.

        Each array has exactly one boundary at a time; re-registering
        replaces it (Section 2 allows this).  Returns self for chaining.
        """
        if not isinstance(boundary, Boundary):
            raise SpecificationError(
                f"register_boundary expects a Boundary, got {type(boundary).__name__}"
            )
        self.boundary = boundary
        return self

    # paper-style alias
    Register_Boundary = register_boundary

    # -- symbolic access (kernel building) ----------------------------------
    def __call__(self, *indices: object) -> GridAccess | float:
        if len(indices) != self.ndim + 1:
            raise KernelError(
                f"{self.name} is {self.ndim}-D: expected {self.ndim + 1} "
                f"subscripts (t first), got {len(indices)}"
            )
        if not _is_symbolic(indices):
            # Concrete call: a read, like the paper's `cout << u(T, x, y)`.
            t = int(indices[0])  # type: ignore[arg-type]
            pt = tuple(int(i) for i in indices[1:])  # type: ignore[arg-type]
            return self.get(t, pt)
        t_axis, dt = as_affine(indices[0]).single_axis_offset()  # type: ignore[arg-type]
        if t_axis is None or not t_axis.is_time:
            raise KernelError(
                f"first subscript of {self.name} must be the time axis "
                f"(t + constant), got {indices[0]!r}"
            )
        offsets = []
        for i, idx in enumerate(indices[1:]):
            axis, off = as_affine(idx).single_axis_offset()  # type: ignore[arg-type]
            if axis is None:
                raise KernelError(
                    f"spatial subscript {i} of {self.name} is a bare constant; "
                    f"kernel accesses must be relative to the home point"
                )
            if axis.is_time or axis.position != i:
                raise KernelError(
                    f"subscript {i} of {self.name} uses axis {axis.name!r} "
                    f"(dim {axis.position}); subscripts must follow "
                    f"declaration order"
                )
            offsets.append(off)
        return GridAccess(self.name, dt, tuple(offsets))

    # -- concrete access (init / results) -----------------------------------
    def _slot(self, t: int) -> int:
        return t % self.slots

    def _check_window(self, t: int) -> None:
        if t > self._latest or t <= self._latest - self.slots:
            raise SpecificationError(
                f"time level {t} of {self.name!r} is not live: the modular "
                f"buffer holds levels "
                f"[{max(0, self._latest - self.depth)}..{self._latest}]"
            )

    def get(self, t: int, point: tuple[int, ...]) -> float:
        """Read a stored value (in-domain, live time window only)."""
        self._check_window(t)
        for p, n in zip(point, self.sizes):
            if not 0 <= p < n:
                raise BoundaryError(
                    f"concrete read of {self.name} at off-domain point {point}; "
                    f"use read_at for boundary-resolved reads"
                )
        return float(self.data[(self._slot(t), *point)])

    def __getitem__(self, key: tuple[int, ...]) -> float:
        t, *pt = key
        return self.get(int(t), tuple(int(p) for p in pt))

    def __setitem__(self, key: tuple[int, ...], value: float) -> None:
        t, *pt = key
        t = int(t)
        point = tuple(int(p) for p in pt)
        for p, n in zip(point, self.sizes):
            if not 0 <= p < n:
                raise BoundaryError(
                    f"write to {self.name} at off-domain point {point}"
                )
        self.data[(self._slot(t), *point)] = value
        self._latest = max(self._latest, t)

    # -- checked runtime access (Phase 1 / per-point clones) ----------------
    def read_at(self, t: int, point: tuple[int, ...]) -> float:
        """Read with boundary resolution: the Phase-1 accessor."""
        if all(0 <= p < n for p, n in zip(point, self.sizes)):
            return float(self.data[(self._slot(t), *point)])
        if self.boundary is None:
            raise BoundaryError(
                f"kernel read {self.name} off-domain at {point} but no "
                f"boundary function is registered"
            )
        return self.boundary.resolve(self._stored_read, t, point, self.sizes)

    def _stored_read(self, t: int, point: tuple[int, ...]) -> float:
        return float(self.data[(self._slot(t), *point)])

    def write_at(self, t: int, point: tuple[int, ...], value: float) -> None:
        """Write a computed value (always in-domain by construction)."""
        self.data[(self._slot(t), *point)] = value

    def note_written_through(self, t: int) -> None:
        """Record that compiled execution has produced levels up to ``t``."""
        self._latest = max(self._latest, t)

    # -- bulk helpers --------------------------------------------------------
    def set_initial(self, values: np.ndarray, t: int = 0) -> None:
        """Initialize one whole time level from an ndarray."""
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.sizes:
            raise SpecificationError(
                f"initial values for {self.name} have shape {values.shape}, "
                f"expected {self.sizes}"
            )
        self.data[self._slot(t)] = values
        self._latest = max(self._latest, t)

    def fill_initial(self, fn: Callable[..., float], t: int = 0) -> None:
        """Initialize one time level pointwise from ``fn(*coords)``."""
        grids = np.meshgrid(
            *[np.arange(n) for n in self.sizes], indexing="ij", sparse=False
        )
        vec = np.vectorize(fn, otypes=[self.data.dtype])
        self.set_initial(vec(*grids), t=t)

    def snapshot(self, t: int) -> np.ndarray:
        """A copy of one stored time level (for reading results)."""
        self._check_window(t)
        return self.data[self._slot(t)].copy()

    @property
    def total_points(self) -> int:
        """Points across all time slots — the array's address-space extent
        in grid points (used by the cache simulator and C codegen)."""
        return int(self.data.size)

    @property
    def spatial_points(self) -> int:
        return int(np.prod(self.sizes))

    def strides_points(self) -> tuple[int, ...]:
        """Strides of (slot, *spatial) in units of elements."""
        item = self.data.itemsize
        return tuple(s // item for s in self.data.strides)

    def __repr__(self) -> str:
        b = self.boundary.describe() if self.boundary else "none"
        return (
            f"PochoirArray({self.name!r}, sizes={self.sizes}, "
            f"depth={self.depth}, boundary={b})"
        )


class ConstArray:
    """A registered read-only coefficient/input array (no time dimension).

    Models inputs like the sequences of the PSA/LCS benchmarks or
    spatially varying PDE coefficients.  Symbolic calls build
    :class:`ConstArrayRead` nodes whose subscripts may be any affine index
    expression (they are read-only, so no home-cell discipline applies).
    """

    def __init__(self, name: str, values: np.ndarray):
        if not name.isidentifier():
            raise SpecificationError(f"array name must be an identifier: {name!r}")
        self.name = name
        self.values = np.asarray(values, dtype=np.float64)
        #: Same never-reused identity discipline as PochoirArray: compiled
        #: kernels close over these values, so the cache must distinguish
        #: const arrays beyond their names.
        self.cache_token = next(PochoirArray._token_counter)

    @property
    def sizes(self) -> tuple[int, ...]:
        return self.values.shape

    def __call__(self, *indices: object) -> ConstArrayRead | float:
        if len(indices) != self.values.ndim:
            raise KernelError(
                f"{self.name} is {self.values.ndim}-D, got {len(indices)} subscripts"
            )
        if not _is_symbolic(indices):
            return float(self.values[tuple(int(i) for i in indices)])
        return ConstArrayRead(
            self.name, tuple(as_affine(i) for i in indices)  # type: ignore[arg-type]
        )

    def read(self, indices: tuple[int, ...]) -> float:
        """Concrete read with *clamped* indices.

        Const-array subscripts are clamped into range in every backend,
        because ``where``-guarded kernels evaluate both branches under
        vectorized execution; clamping makes a guarded out-of-range
        subscript well-defined (and identical) everywhere.
        """
        clamped = tuple(
            min(max(i, 0), n - 1) for i, n in zip(indices, self.values.shape)
        )
        return float(self.values[clamped])

    def __repr__(self) -> str:
        return f"ConstArray({self.name!r}, shape={self.values.shape})"
