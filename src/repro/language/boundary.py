"""Boundary functions: what a kernel sees when it reads off the grid.

The paper's key design point (Section 4, "Unifying periodic and
nonperiodic boundary conditions") is that *all* boundary behaviour — torus
wrap-around, Dirichlet values, Neumann reflection, cylinders mixing both —
lives in a per-array boundary function invoked only by the slow *boundary
clone* of the kernel; interior clones never check.

Each boundary kind here supports two protocols:

* ``resolve(reader, t, point, sizes)`` — the per-point contract used by the
  Phase-1 interpreter and the per-point boundary clone.  ``reader(t, pt)``
  fetches a stored in-domain value.
* an optional *vectorizable* description used by the NumPy boundary clone:
  either a pure **index remap** (``map_index``: off-domain coordinates map
  to in-domain ones — periodic mod, Neumann clamp) or a **fill value**
  (Dirichlet/constant), possibly time-dependent.

:class:`PythonBoundary` wraps an arbitrary user callable, exactly like the
paper's ``Pochoir_Boundary_dimD`` construct; it only supports the
per-point protocol, so arrays using it steer the compiler to the
per-point boundary clone (slower, still correct).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import BoundaryError

#: Reader callback handed to boundary functions: (t, point) -> stored value.
StoredReader = Callable[[int, tuple[int, ...]], float]


class Boundary:
    """Base class: every boundary kind resolves off-domain reads."""

    #: True when off-domain reads are a pure coordinate remap into the
    #: domain (periodic, clamp) — the fast vectorizable case.
    is_index_remap: bool = False
    #: True when off-domain reads are a (possibly time-dependent) scalar.
    is_fill: bool = False

    def resolve(
        self,
        reader: StoredReader,
        t: int,
        point: tuple[int, ...],
        sizes: tuple[int, ...],
    ) -> float:
        raise NotImplementedError

    def map_index(self, idx: np.ndarray, size: int, dim: int) -> np.ndarray:
        """Vectorized coordinate remap for dimension ``dim`` (remap kinds)."""
        raise BoundaryError(f"{type(self).__name__} is not an index remap")

    def fill_value(self, t: int) -> float:
        """Scalar used for off-domain reads at time ``t`` (fill kinds)."""
        raise BoundaryError(f"{type(self).__name__} is not a fill boundary")

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class PeriodicBoundary(Boundary):
    """Torus topology: coordinates wrap modulo the grid size.

    This is the boundary of Figure 6's ``heat_bv``.
    """

    is_index_remap = True

    def resolve(self, reader, t, point, sizes):
        wrapped = tuple(p % n for p, n in zip(point, sizes))
        return reader(t, wrapped)

    def map_index(self, idx, size, dim):
        return idx % size


@dataclass
class NeumannBoundary(Boundary):
    """Zero-derivative boundary: off-domain reads clamp to the nearest edge
    point (Figure 11(b) of the paper)."""

    is_index_remap = True

    def resolve(self, reader, t, point, sizes):
        clamped = tuple(min(max(p, 0), n - 1) for p, n in zip(point, sizes))
        return reader(t, clamped)

    def map_index(self, idx, size, dim):
        return np.clip(idx, 0, size - 1)


@dataclass
class ConstantBoundary(Boundary):
    """Dirichlet condition with a fixed value on the boundary.

    With ``value=0`` this models the ghost-cell-of-zeros setup the paper's
    nonperiodic loop baselines use.
    """

    value: float = 0.0
    is_fill = True

    def resolve(self, reader, t, point, sizes):
        return self.value

    def fill_value(self, t):
        return self.value


def ZeroBoundary() -> ConstantBoundary:
    """Convenience: a Dirichlet boundary fixed at zero."""
    return ConstantBoundary(0.0)


@dataclass
class DirichletBoundary(Boundary):
    """Dirichlet condition whose value varies with time: ``a + b * t``.

    Models Figure 11(a) (``return 100 + 0.2 * t``).  Arbitrary functions of
    space need :class:`PythonBoundary`; keeping this kind affine-in-time
    lets the NumPy and C boundary clones stay vectorized.
    """

    base: float = 0.0
    per_step: float = 0.0
    is_fill = True

    def resolve(self, reader, t, point, sizes):
        return self.base + self.per_step * t

    def fill_value(self, t):
        return self.base + self.per_step * t


@dataclass
class MixedBoundary(Boundary):
    """Different behaviour per dimension — e.g. a 2D cylinder with a
    periodic x and clamped y, the example Section 4 calls out.

    ``modes`` holds one of ``"periodic"`` / ``"clamp"`` per dimension.
    Both are index remaps, so the combination stays vectorizable.
    """

    modes: tuple[str, ...] = ()
    is_index_remap = True

    def __post_init__(self) -> None:
        for m in self.modes:
            if m not in ("periodic", "clamp"):
                raise BoundaryError(
                    f"MixedBoundary modes must be 'periodic' or 'clamp', got {m!r}"
                )

    def resolve(self, reader, t, point, sizes):
        mapped = []
        for i, (p, n) in enumerate(zip(point, sizes)):
            mode = self.modes[i] if i < len(self.modes) else "clamp"
            mapped.append(p % n if mode == "periodic" else min(max(p, 0), n - 1))
        return reader(t, tuple(mapped))

    def map_index(self, idx, size, dim):
        mode = self.modes[dim] if dim < len(self.modes) else "clamp"
        if mode == "periodic":
            return idx % size
        return np.clip(idx, 0, size - 1)


class PythonBoundary(Boundary):
    """An arbitrary user boundary function — the fully general construct.

    ``fn(reader, t, *point)`` may compute anything, including reading
    in-domain stored values through ``reader.get(t, *pt)`` (the paper's
    ``arr.get``).  Reading off-domain from inside a boundary function is an
    error (it would recurse), matching Pochoir's contract that boundary
    functions supply values *from* the domain or from thin air.
    """

    def __init__(self, fn: Callable[..., float], name: str | None = None):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "boundary")

    def resolve(self, reader, t, point, sizes):
        guard = _GuardedReader(reader, sizes)
        value = self.fn(guard, t, *point)
        if not isinstance(value, (int, float, np.integer, np.floating)):
            raise BoundaryError(
                f"boundary function {self.name!r} returned non-scalar {value!r}"
            )
        return float(value)

    def describe(self) -> str:
        return f"PythonBoundary({self.name})"


class _GuardedReader:
    """The ``arr``-like object passed to user boundary functions.

    Exposes ``get(t, *point)`` for stored values and ``size(i)`` for
    dimension sizes, with ``size(0)`` the *last* (unit-stride) dimension to
    match the paper's convention in Figure 6 (``a.size(1)`` is x,
    ``a.size(0)`` is y for a 2D array).
    """

    def __init__(self, reader: StoredReader, sizes: tuple[int, ...]):
        self._reader = reader
        self._sizes = sizes

    def size(self, i: int) -> int:
        if not 0 <= i < len(self._sizes):
            raise BoundaryError(
                f"size({i}) out of range for {len(self._sizes)}-D array"
            )
        return self._sizes[len(self._sizes) - 1 - i]

    def get(self, t: int, *point: int) -> float:
        if len(point) != len(self._sizes):
            raise BoundaryError(
                f"get() needs {len(self._sizes)} spatial coords, got {len(point)}"
            )
        for p, n in zip(point, self._sizes):
            if not 0 <= p < n:
                raise BoundaryError(
                    f"boundary function read off-domain point {point} "
                    f"(sizes {self._sizes}); boundary functions must read "
                    f"in-domain values only"
                )
        return self._reader(t, tuple(point))


def periodic() -> PeriodicBoundary:
    """Convenience constructor matching example code style."""
    return PeriodicBoundary()


def neumann() -> NeumannBoundary:
    """Convenience constructor matching example code style."""
    return NeumannBoundary()
