"""The Pochoir specification language, embedded in Python.

This package is the analogue of the constructs in Section 2 of the paper:

=====================================  =======================================
Paper construct                        repro equivalent
=====================================  =======================================
``Pochoir_Shape_dimD name[] = {...}``  :class:`Shape` (list of cells)
``Pochoir_dimD name(shape)``           :class:`Stencil`
``Pochoir_Array_dimD(type) u(...)``    :class:`PochoirArray`
``Pochoir_Boundary_dimD ...``          :mod:`repro.language.boundary` kinds
``Pochoir_Kernel_dimD ...``            :class:`Kernel`
``name.Register_Array(array)``         :meth:`Stencil.register_array`
``name.Register_Boundary(bdry)``       :meth:`PochoirArray.register_boundary`
``name.Run(T, kern)``                  :meth:`Stencil.run`
=====================================  =======================================

Phase 1 of the two-phase strategy is :func:`repro.language.phase1.run_phase1`
— a checked, loop-based interpreter that validates every kernel access
against the declared shape (the template library's job in the paper).
Phase 2 is :meth:`Stencil.run`, which compiles and executes through
:mod:`repro.compiler` and :mod:`repro.trap`.
"""

from repro.language.shape import Shape
from repro.language.array import ConstArray, PochoirArray
from repro.language.boundary import (
    Boundary,
    ConstantBoundary,
    DirichletBoundary,
    MixedBoundary,
    NeumannBoundary,
    PeriodicBoundary,
    PythonBoundary,
    ZeroBoundary,
)
from repro.language.kernel import Kernel
from repro.language.stencil import RunOptions, RunReport, Stencil
from repro.language.phase1 import run_phase1

__all__ = [
    "Boundary",
    "ConstArray",
    "ConstantBoundary",
    "DirichletBoundary",
    "Kernel",
    "MixedBoundary",
    "NeumannBoundary",
    "PeriodicBoundary",
    "PochoirArray",
    "PythonBoundary",
    "RunOptions",
    "RunReport",
    "Shape",
    "Stencil",
    "ZeroBoundary",
    "run_phase1",
]
