"""Kernel functions: the update rule applied at every space-time point.

``Kernel(ndim, fn)`` wraps a user function of signature
``fn(t, x0, …, x_{ndim-1}) -> Statement | list[Statement]``.  Building the
kernel calls ``fn`` exactly once with symbolic axes, recording the
statements it constructs — the Python analogue of the paper's
``Pochoir_Kernel_dimD … Pochoir_Kernel_End`` block, with the difference
that the recorded AST is fully structured rather than uninterpreted text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import KernelError
from repro.expr.analysis import (
    KernelAccessSummary,
    infer_shape,
    kernel_accesses,
    normalize_statements,
)
from repro.expr.nodes import Assign, Axis, Let, Statement, TIME_AXIS
from repro.expr.printer import statement_source

_AXIS_NAMES = "xyzw"


def make_axes(ndim: int) -> tuple[Axis, ...]:
    """Fresh symbolic axes ``(t, x, y, …)`` for an ndim-D kernel."""
    if ndim < 1:
        raise KernelError(f"kernels need >= 1 spatial dimension, got {ndim}")
    spatial = tuple(
        Axis(_AXIS_NAMES[i] if i < len(_AXIS_NAMES) else f"x{i}", i)
        for i in range(ndim)
    )
    return (Axis("t", TIME_AXIS), *spatial)


@dataclass(frozen=True)
class BuiltKernel:
    """The immutable result of tracing a kernel function once.

    ``statements`` are time-normalized (writes at dt == 0, reads at
    negative dt); ``raw_statements`` preserve the user's chosen time frame.
    """

    ndim: int
    name: str
    statements: tuple[Statement, ...]
    raw_statements: tuple[Statement, ...]
    summary: KernelAccessSummary

    def inferred_cells(self) -> list[tuple[int, ...]]:
        """Home-relative shape cells actually used by this kernel."""
        return infer_shape(self.statements)

    def source(self) -> str:
        """Readable rendering of the kernel body (diagnostics)."""
        return "\n".join(statement_source(s) for s in self.statements)


class Kernel:
    """A stencil kernel specification (see module docstring).

    >>> from repro.language.array import PochoirArray
    >>> u = PochoirArray("u", (8,))
    >>> k = Kernel(1, lambda t, x: u(t+1, x) << 0.5 * (u(t, x-1) + u(t, x+1)))
    >>> built = k.build()
    >>> built.summary.slopes()
    (1,)
    """

    def __init__(
        self,
        ndim: int,
        fn: Callable[..., object],
        *,
        name: str | None = None,
    ):
        self.ndim = int(ndim)
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "kernel")
        if self.name == "<lambda>":
            self.name = "kernel"
        self._built: BuiltKernel | None = None

    def build(self) -> BuiltKernel:
        """Trace the kernel function once; cached thereafter."""
        if self._built is not None:
            return self._built
        axes = make_axes(self.ndim)
        result = self.fn(*axes)
        raw = _coerce_statements(result, self.name)
        statements = tuple(normalize_statements(raw))
        summary = kernel_accesses(statements)
        if summary.ndim() not in (0, self.ndim):
            raise KernelError(
                f"kernel {self.name!r} declared {self.ndim}-D but accesses "
                f"{summary.ndim()}-D arrays"
            )
        self._built = BuiltKernel(
            ndim=self.ndim,
            name=self.name,
            statements=statements,
            raw_statements=tuple(raw),
            summary=summary,
        )
        return self._built

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, ndim={self.ndim})"


def _coerce_statements(result: object, name: str) -> list[Statement]:
    if isinstance(result, Statement):
        return [result]
    if isinstance(result, Sequence) and not isinstance(result, (str, bytes)):
        stmts: list[Statement] = []
        for item in result:
            if not isinstance(item, Statement):
                raise KernelError(
                    f"kernel {name!r} returned a non-statement {item!r}; did "
                    f"you forget '<<' on an assignment?"
                )
            stmts.append(item)
        if not stmts:
            raise KernelError(f"kernel {name!r} returned no statements")
        if not any(isinstance(s, Assign) for s in stmts):
            raise KernelError(f"kernel {name!r} contains no assignment")
        return stmts
    raise KernelError(
        f"kernel {name!r} must return a statement or list of statements, "
        f"got {type(result).__name__}"
    )
