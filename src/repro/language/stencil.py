"""The Pochoir stencil object: registration, validation, and execution.

``Stencil`` is the paper's ``Pochoir_dimD`` object.  It holds the static
information — shape, registered arrays, boundary associations, scalar
parameters — and its :meth:`Stencil.run` drives Phase 2: kernel AST
validation, clone compilation (:mod:`repro.compiler`), trapezoidal
decomposition (:mod:`repro.trap`), and execution.

The time convention follows Section 2 exactly: for a shape of depth ``k``
the user initializes levels ``0 .. k-1``; ``run(T, kern)`` then computes
levels ``k .. T+k-1``, so results live at level ``T + k - 1``; a
subsequent ``run(T', kern)`` resumes from there.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import SpecificationError
from repro.expr.analysis import validate_kernel
from repro.expr.nodes import Statement
from repro.language.array import ConstArray, PochoirArray
from repro.language.kernel import BuiltKernel, Kernel
from repro.language.shape import Shape


@dataclass
class RunOptions:
    """Tuning knobs for Phase-2 execution.

    ``algorithm``:
        ``"trap"`` — TRAP with hyperspace cuts (the paper's algorithm);
        ``"strap"`` — serial space cuts (Frigo–Strumpen style comparison);
        ``"loops"`` — the parallel-loop baseline of Figure 1;
        ``"serial_loops"`` — the serial loop baseline;
        ``"phase1"`` — the checked interpreter (template library).
    ``mode``:
        kernel codegen: ``"interp"`` (tree-walking, checked),
        ``"macro_shadow"`` (generated per-point Python, unchecked interior
        — the ``-split-macro-shadow`` analogue),
        ``"split_pointer"`` (vectorized NumPy slice kernels — the
        ``-split-pointer`` analogue), ``"c"`` (generated C compiled with
        the system compiler: per-step *and* fused-leaf clones, invoked
        with the GIL released), or ``"auto"`` (the NumPy backend —
        always available; see ``pipeline.resolve_mode``).
    ``dt_threshold`` / ``space_thresholds``:
        base-case coarsening (Section 4); ``None`` applies the paper's
        heuristics (2D: 100x100x5; >=3D: never cut the unit-stride
        dimension, small blocks, 3 time steps).
    ``executor``:
        ``"serial"`` (serial elision, streamed off the walker),
        ``"threads"`` (thread pool over barrier-separated waves),
        ``"dag"`` (ready-queue task-DAG runtime: no inter-wave barriers),
        ``"procs"`` (the supervised out-of-process executor: worker
        subprocesses attach zero-copy views onto shared-memory grid
        segments and a driver-side supervisor enforces heartbeats, hang
        deadlines, crash detection, and block rollback+retry — a
        segfault in generated code kills a disposable worker, never the
        job; degrades to ``"dag"`` with a recorded note when shared
        memory or subprocess spawn is unavailable),
        or ``"auto"`` (the default: ``"procs"`` when ``supervise`` is
        set, else ``"dag"`` for ``algorithm="trap"`` with
        ``n_workers > 1``, ``"threads"`` for other plan algorithms
        with ``n_workers > 1``, else ``"serial"``).
    ``supervise``:
        a :class:`repro.supervise.SuperviseOptions` tuning the
        supervised executor's policy (heartbeat cadence, task-deadline
        scaling, retry budget/backoff, start method).  Setting it
        implies ``executor="procs"`` when the executor is left at
        ``"auto"``; ``executor="procs"`` with ``supervise=None`` uses
        the defaults.  Ignored (harmlessly) by in-process executors.
    ``fuse_leaves``:
        run base cases through the backend's fused leaf clone (the whole
        trapezoid time loop inside generated code — NumPy three-address
        bodies in ``split_pointer``, one GIL-released compiled call in
        ``c``) when one exists.  On by default; ``False`` forces
        per-step clone invocation — the ablation knob the leaf-fusion
        and C-backend benchmarks and the equivalence tests use.  Modes
        without a leaf clone (``interp``, ``macro_shadow``) ignore it.
    ``compiled_walk``:
        subtree-task planning over the compiled interior recursion.
        ``None`` (default) resolves to *on* exactly when the resolved
        codegen mode is ``"c"`` (the only backend that compiles a
        ``walk_subtree`` clone) and ``fuse_leaves`` is on; ``False``
        forces it off, ``True`` forces it on — except under
        ``fuse_leaves=False``, which always wins: the per-step ablation
        must measure per-step dispatch, and the walk bottoms out in the
        fused leaf it just disabled.  When on, interior zoids that fit the walk
        grain are planned as single atomic tasks whose execution is one
        GIL-released C call running every cut and fused leaf below the
        subtree root; when the backend lacks a walk clone the same plan
        degrades to a Python replay of the recursion (bitwise
        identical).  Forcing ``True`` without the C backend therefore
        changes granularity, never results.
    ``walk_threads``:
        thread count for the compiled walk's embedded pthread pool
        (``walk_subtree_par``): same-level hyperspace-cut pieces of each
        subtree task run in parallel *inside* one GIL-released C call.
        ``None`` (default) resolves to the detected available core count
        when the parallel walk exists; ``1`` pins the serial walk clone
        (unchanged behavior); values are bitwise-equivalent by
        construction, so this knob trades only time, never results.
        Ignored (harmlessly) when the compiled walk is off or the
        backend has no parallel clone.
    ``autotune``:
        the persistent tuned-config registry
        (:mod:`repro.autotune.registry`).  ``"off"`` (default) never
        consults it; ``"use"`` applies a stored configuration for this
        (stencil, backend, machine) when one exists, falling back to
        the heuristics on a miss; ``"tune-on-miss"`` additionally runs
        a short dispatch-space tune on a miss (against *cloned* arrays
        — user state is untouched), stores the result, and applies it.
        Tuned values fill only knobs left at their defaults: explicit
        ``space_thresholds``/``dt_threshold``/``mode``/``n_workers``
        always win, and ``fuse_leaves=False`` (the ablation setting) is
        never overridden.  ``RunReport.autotune_source`` records which
        source won.  Registry damage of any kind degrades silently to
        the heuristics — no exception from the registry reaches
        ``run``.
    ``checkpoint``:
        a :class:`repro.resilience.CheckpointPolicy` makes the driver
        split the run into ``every_dt``-step blocks and durably
        checkpoint the live time window after each one (plus one
        in-memory rollback-and-retry per block on executor failure);
        ``None`` (default) runs the whole range in one block with no
        snapshots.  Not supported under ``algorithm="phase1"`` (the
        checked interpreter has its own driver).
    ``resume_from``:
        restart a killed run mid-history: a checkpoint *directory* (the
        newest valid checkpoint for this problem wins; none found means
        a recorded cold start), a checkpoint *file* (damaged files fall
        back to the newest valid sibling), or a loaded
        :class:`repro.resilience.Checkpoint` from :func:`repro.resume`.
        The restored run recomputes exactly the remaining levels and
        finishes bitwise-identical to the uninterrupted run;
        ``RunReport.resumed_from`` records the first recomputed level.
    """

    algorithm: str = "trap"
    mode: str = "auto"
    dt_threshold: int | None = None
    space_thresholds: tuple[int, ...] | None = None
    protect_unit_stride: bool | None = None
    executor: str = "auto"
    n_workers: int | None = None
    collect_stats: bool = True
    fuse_leaves: bool = True
    compiled_walk: bool | None = None
    walk_threads: int | None = None
    autotune: str = "off"
    checkpoint: object | None = None
    resume_from: object | None = None
    supervise: object | None = None

    def __post_init__(self) -> None:
        algorithms = ("trap", "strap", "loops", "serial_loops", "phase1")
        if self.algorithm not in algorithms:
            raise SpecificationError(
                f"unknown algorithm {self.algorithm!r}; choose from {algorithms}"
            )
        modes = ("auto", "interp", "macro_shadow", "split_pointer", "c")
        if self.mode not in modes:
            raise SpecificationError(
                f"unknown mode {self.mode!r}; choose from {modes}"
            )
        executors = ("auto", "serial", "threads", "dag", "procs")
        if self.executor not in executors:
            raise SpecificationError(
                f"unknown executor {self.executor!r}; choose from {executors}"
            )
        if self.supervise is not None:
            from repro.supervise import SuperviseOptions

            if not isinstance(self.supervise, SuperviseOptions):
                raise SpecificationError(
                    f"supervise must be a SuperviseOptions or None, "
                    f"got {type(self.supervise).__name__}"
                )
        if self.n_workers is not None and self.n_workers < 1:
            raise SpecificationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.walk_threads is not None and self.walk_threads < 1:
            raise SpecificationError(
                f"walk_threads must be >= 1, got {self.walk_threads}"
            )
        autotune = ("off", "use", "tune-on-miss")
        if self.autotune not in autotune:
            raise SpecificationError(
                f"unknown autotune policy {self.autotune!r}; "
                f"choose from {autotune}"
            )
        if self.checkpoint is not None:
            from repro.resilience.checkpoint import CheckpointPolicy

            if not isinstance(self.checkpoint, CheckpointPolicy):
                raise SpecificationError(
                    f"checkpoint must be a CheckpointPolicy or None, "
                    f"got {type(self.checkpoint).__name__}"
                )
            if self.algorithm == "phase1":
                raise SpecificationError(
                    "checkpointing is not supported under algorithm='phase1'"
                )
        if self.resume_from is not None and self.algorithm == "phase1":
            raise SpecificationError(
                "resume_from is not supported under algorithm='phase1'"
            )
        # Identity-checked, not `in (None, True, False)`: 0 == False, so
        # an equality test would admit int 0 here while the `is False`
        # dispatch below treated it as "not explicitly off" — silently
        # forcing the walk ON for a caller who asked for it off.
        if self.compiled_walk is not None and not isinstance(
            self.compiled_walk, bool
        ):
            raise SpecificationError(
                f"compiled_walk must be None (auto), True or False, "
                f"got {self.compiled_walk!r}"
            )

    def resolve_compiled_walk(self, resolved_mode: str) -> bool:
        """Concrete compiled-walk setting for a resolved codegen mode.

        The single source of the ``None``-means-auto rule: on exactly
        when the backend that will run base cases compiles a
        ``walk_subtree`` clone (mode ``"c"``) and fused leaves (which
        the walk bottoms out in) are enabled.  An explicit ``False``
        always wins; an explicit ``True`` is still gated on
        ``fuse_leaves`` — the per-step ablation must measure per-step
        dispatch, not a compiled recursion.
        """
        if not self.fuse_leaves or self.compiled_walk is False:
            return False
        if self.compiled_walk is None:
            return resolved_mode == "c"
        return True

    def resolve_walk_threads(self) -> int:
        """Concrete thread count for the compiled walk's pthread pool.

        The single source of the ``None``-means-auto rule: the detected
        *available* core count (cgroup/affinity aware).  The executor
        only consults this when the parallel walk clone exists, and the
        generated pool itself degrades to the serial recursion when it
        cannot start, so over-asking is harmless.
        """
        if self.walk_threads is not None:
            return max(1, int(self.walk_threads))
        from repro.util import detect_cpu_count

        return max(1, detect_cpu_count())

    def resolve_executor(self) -> tuple[str, int]:
        """Concrete (executor, worker count) for this option set.

        ``"auto"`` picks the supervised out-of-process executor when
        ``supervise`` is set, else the task-DAG runtime for TRAP
        whenever more than one worker is requested; with ``n_workers``
        unset the serial elision runs (parallel execution is opt-in via
        ``n_workers`` or ``supervise``).
        """
        from repro.trap.executor import default_workers

        executor = self.executor
        requested = self.n_workers
        if executor == "auto":
            if self.supervise is not None:
                executor = "procs"
            elif requested is not None and requested > 1:
                executor = "dag" if self.algorithm == "trap" else "threads"
            else:
                executor = "serial"
        if executor == "serial":
            return executor, 1
        return executor, default_workers(requested)


@dataclass
class RunReport:
    """What a Phase-2 run did: timings, executor, and decomposition stats.

    ``elapsed`` covers decomposition + schedule construction + execution
    under one clock for every executor (the serial stream interleaves
    walking with running, so the parallel executors' plan/graph builds
    are included to keep the numbers comparable).  ``executor`` /
    ``n_workers`` record the *resolved* execution strategy (after
    ``"auto"`` dispatch); ``busy_time`` sums wall time the workers spent
    inside base-case kernels, so ``idle_fraction`` measures the
    scheduling overhead (barrier stalls, ready-queue contention,
    plan construction).

    ``autotune_source`` records which configuration source won the
    dispatch knobs: ``"heuristic"`` (backend-aware defaults),
    ``"explicit"`` (caller-supplied thresholds), ``"registry"`` (a
    stored tuned config was applied), or ``"tuned"`` (tuned this run
    under ``autotune="tune-on-miss"`` and stored for the next process).

    ``degradations`` lists every graceful fallback that fired during
    the run (short stable tags, deduplicated, ordered by first firing):
    compiler fallbacks, ``.so``-cache evictions, registry corruption,
    checkpoint skips, executor retries.  Empty means the run took
    exactly the path it was asked for.  ``checkpoints_written`` counts
    durable snapshots taken under a ``checkpoint`` policy, and
    ``resumed_from`` is the first recomputed time level when the run
    restarted from a checkpoint (``None`` for a cold start).
    """

    algorithm: str
    mode: str
    t_start: int
    t_end: int
    elapsed: float = 0.0
    points_updated: int = 0
    base_cases: int = 0
    boundary_base_cases: int = 0
    interior_base_cases: int = 0
    #: Scheduled tasks that were whole compiled-walk subtrees (each one
    #: covers many would-be base cases; requires ``collect_stats``).
    subtree_tasks: int = 0
    executor: str = "serial"
    n_workers: int = 1
    busy_time: float = 0.0
    autotune_source: str = "heuristic"
    #: Resolved thread count the compiled walk's pthread pool ran with
    #: (1 when the parallel walk was off or unavailable).
    walk_threads: int = 1
    #: Parallel-walk pool counters for this run (diffed from the
    #: kernel's shared C stats buffer): tasks spawned into the pool,
    #: tasks executed by pool workers (vs. joins helping inline), and
    #: level barriers joined.  All zero on the serial path.
    walk_spawned: int = 0
    walk_stolen: int = 0
    walk_barriers: int = 0
    #: Graceful fallbacks that fired during this run (stable tags,
    #: deduplicated, ordered by first firing); see the class docstring.
    degradations: list[str] = field(default_factory=list)
    #: Durable snapshots written under a ``checkpoint`` policy.
    checkpoints_written: int = 0
    #: First recomputed time level when resuming from a checkpoint.
    resumed_from: int | None = None
    #: Supervised-executor counters: worker subprocesses killed and
    #: replaced after a crash/hang (the whole worker set is respawned on
    #: any loss, so one crash among N workers counts N), and task
    #: dispatches whose effects were discarded by a block rollback and
    #: re-executed.  Both zero on a clean run and for in-process
    #: executors.
    workers_respawned: int = 0
    tasks_retried: int = 0
    #: Serving telemetry (filled by :mod:`repro.serve`; defaults for
    #: direct runs): seconds the job waited in the admission queue
    #: before its batch launched, how many same-signature jobs shared
    #: the compiled dispatch that ran it, whether its kernel was already
    #: warm (served from the in-process compile cache / a prior flight
    #: instead of compiled for this request), and whether a tuned config
    #: from the autotune registry was applied.
    queue_wait: float = 0.0
    batch_size: int = 1
    compile_cache_hit: bool = False
    registry_hit: bool = False
    #: Networked-serving telemetry (filled by :mod:`repro.serve.client`;
    #: defaults for local runs): which transport served the job
    #: (``"local"`` in-process, ``"tcp"`` over the framed socket
    #: protocol), how many wire attempts the client's retry loop made
    #: (1 = first try succeeded), and whether the response was served
    #: from the server's idempotent result journal instead of a fresh
    #: execution (a retry arrived after the job already ran).
    transport: str = "local"
    attempts: int = 1
    replayed: bool = False

    @property
    def points_per_second(self) -> float:
        return self.points_updated / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker capacity spent not running kernels."""
        capacity = self.elapsed * self.n_workers
        if capacity <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time / capacity)


@dataclass
class Problem:
    """Everything downstream stages need to run one stencil invocation.

    Produced by :meth:`Stencil.prepare`; consumed by the compiler, the
    walkers and the Phase-1 interpreter.  ``t_start``/``t_end`` are the
    absolute output levels to compute (``[t_start, t_end)``).
    """

    ndim: int
    sizes: tuple[int, ...]
    shape: Shape
    statements: tuple[Statement, ...]
    kernel_name: str
    arrays: dict[str, PochoirArray]
    const_arrays: dict[str, ConstArray]
    params: dict[str, float]
    t_start: int
    t_end: int

    @property
    def steps(self) -> int:
        return self.t_end - self.t_start

    @property
    def slopes(self) -> tuple[int, ...]:
        return self.shape.slopes

    @property
    def total_points(self) -> int:
        n = 1
        for s in self.sizes:
            n *= s
        return n * self.steps


class Stencil:
    """The Pochoir object (see module docstring).

    >>> import numpy as np
    >>> from repro.language import PochoirArray, Kernel, PeriodicBoundary
    >>> u = PochoirArray("u", (16,)).register_boundary(PeriodicBoundary())
    >>> heat = Stencil(1)
    >>> _ = heat.register_array(u)
    >>> k = Kernel(1, lambda t, x: u(t+1, x) << 0.25*u(t, x-1)
    ...                            + 0.5*u(t, x) + 0.25*u(t, x+1))
    >>> u.set_initial(np.arange(16.0))
    >>> _ = heat.run(4, k)
    >>> u.snapshot(4).shape
    (16,)
    """

    def __init__(
        self,
        ndim: int,
        shape: Shape | Sequence[Sequence[int]] | None = None,
        *,
        name: str = "stencil",
    ):
        if ndim < 1:
            raise SpecificationError(f"stencil needs >= 1 dimension, got {ndim}")
        self.ndim = int(ndim)
        self.name = name
        if shape is not None and not isinstance(shape, Shape):
            shape = Shape.from_cells(shape)
        if shape is not None and shape.ndim != self.ndim:
            raise SpecificationError(
                f"shape is {shape.ndim}-D but stencil is {self.ndim}-D"
            )
        self.shape: Shape | None = shape
        self.arrays: dict[str, PochoirArray] = {}
        self.const_arrays: dict[str, ConstArray] = {}
        self.params: dict[str, float] = {}
        #: Last computed time level (None until the first run fixes depth).
        self.cursor: int | None = None

    # -- registration --------------------------------------------------------
    def register_array(self, array: PochoirArray) -> "Stencil":
        if array.ndim != self.ndim:
            raise SpecificationError(
                f"array {array.name!r} is {array.ndim}-D but stencil is "
                f"{self.ndim}-D"
            )
        if self.arrays and array.sizes != next(iter(self.arrays.values())).sizes:
            raise SpecificationError(
                f"all arrays of one stencil must share spatial sizes; "
                f"{array.name!r} has {array.sizes}"
            )
        if array.name in self.arrays:
            raise SpecificationError(f"array {array.name!r} registered twice")
        self.arrays[array.name] = array
        return self

    Register_Array = register_array

    def register_const_array(self, array: ConstArray) -> "Stencil":
        if array.name in self.const_arrays or array.name in self.arrays:
            raise SpecificationError(f"array name {array.name!r} already in use")
        self.const_arrays[array.name] = array
        return self

    def set_param(self, name: str, value: float) -> "Stencil":
        """Bind a scalar :class:`~repro.expr.nodes.Param` for future runs."""
        self.params[name] = float(value)
        return self

    @property
    def sizes(self) -> tuple[int, ...]:
        if not self.arrays:
            raise SpecificationError("no arrays registered")
        return next(iter(self.arrays.values())).sizes

    # -- preparation (shared by all execution paths) --------------------------
    def prepare(self, steps: int, kernel: Kernel) -> Problem:
        """Validate the kernel against this stencil; return the Problem.

        This is the Phase-2 static compliance check: it enforces the same
        rules the Phase-1 checked interpreter enforces dynamically, which
        is what makes the Pochoir Guarantee hold.
        """
        if steps < 0:
            raise SpecificationError(f"steps must be >= 0, got {steps}")
        if not self.arrays:
            raise SpecificationError("no arrays registered with this stencil")
        if kernel.ndim != self.ndim:
            raise SpecificationError(
                f"kernel {kernel.name!r} is {kernel.ndim}-D but stencil is "
                f"{self.ndim}-D"
            )
        built: BuiltKernel = kernel.build()
        summary = validate_kernel(
            built.statements,
            ndim=self.ndim,
            declared_cells=self.shape.cells if self.shape else None,
            known_arrays=self.arrays,
            known_const_arrays=self.const_arrays,
        )
        shape = self.shape or Shape.infer_from(
            ((dt, *offs) for cells in summary.reads.values() for dt, offs in cells),
            self.ndim,
        )
        for arr in self.arrays.values():
            if arr.slots < shape.depth + 1:
                raise SpecificationError(
                    f"array {arr.name!r} holds {arr.slots} time slots but the "
                    f"stencil shape has depth {shape.depth} "
                    f"(needs >= {shape.depth + 1})"
                )
        t_start = (self.cursor + 1) if self.cursor is not None else shape.depth
        return Problem(
            ndim=self.ndim,
            sizes=self.sizes,
            shape=shape,
            statements=built.statements,
            kernel_name=built.name,
            arrays=dict(self.arrays),
            const_arrays=dict(self.const_arrays),
            params=dict(self.params),
            t_start=t_start,
            t_end=t_start + steps,
        )

    def advance_cursor(self, problem: Problem) -> None:
        """Record that levels up to ``problem.t_end - 1`` now exist."""
        if problem.steps > 0:
            self.cursor = problem.t_end - 1

    # -- execution -------------------------------------------------------------
    def run(
        self,
        steps: int,
        kernel: Kernel,
        options: RunOptions | None = None,
        **overrides: object,
    ) -> RunReport:
        """Execute ``steps`` time steps of ``kernel`` (Phase 2).

        Keyword overrides are applied on top of ``options``; e.g.
        ``stencil.run(100, k, algorithm="strap", mode="split_pointer")``.
        """
        if options is None:
            options = RunOptions()
        if overrides:
            options = RunOptions(
                **{**options.__dict__, **overrides}  # type: ignore[arg-type]
            )
        if options.algorithm == "phase1":
            from repro.language.phase1 import run_phase1

            t0 = time.perf_counter()
            run_phase1(self, steps, kernel)
            elapsed = time.perf_counter() - t0
            sizes_prod = 1
            for s in self.sizes:
                sizes_prod *= s
            return RunReport(
                algorithm="phase1",
                mode="interp",
                t_start=(self.cursor or 0) - steps + 1,
                t_end=(self.cursor or 0) + 1,
                elapsed=elapsed,
                points_updated=sizes_prod * steps,
            )

        from repro.trap.driver import execute_problem

        problem = self.prepare(steps, kernel)
        report = execute_problem(problem, options)
        for arr in problem.arrays.values():
            arr.note_written_through(problem.t_end - 1)
        self.advance_cursor(problem)
        return report

    Run = run

    def __repr__(self) -> str:
        return (
            f"Stencil({self.name!r}, ndim={self.ndim}, "
            f"arrays={list(self.arrays)}, cursor={self.cursor})"
        )
