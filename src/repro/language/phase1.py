"""Phase 1 of the two-phase Pochoir strategy: the checked interpreter.

In the paper, Phase 1 compiles the user's program against the Pochoir
*template library*, which executes the stencil with unoptimized but
functionally correct loop code while verifying Pochoir compliance — in
particular that every kernel access falls inside the declared shape.  This
module is that library: :func:`run_phase1` executes the kernel one grid
point at a time through checked accessors, raising
:class:`~repro.errors.ShapeViolationError` on the first undeclared access
and routing off-domain reads through the registered boundary functions.

Every compiled backend must agree with this interpreter bit for bit; the
integration tests enforce exactly that, which is how the repo honors the
Pochoir Guarantee.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING

from repro.errors import ShapeViolationError, SpecificationError
from repro.expr.evalexpr import EvalEnv, eval_statements
from repro.language.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.language.stencil import Stencil


def run_phase1(stencil: "Stencil", steps: int, kernel: Kernel) -> None:
    """Run ``steps`` time steps through the checked template-library path.

    Identical observable semantics to :meth:`Stencil.run`; slower by
    orders of magnitude, by design — its job is verification and
    debugging, not speed.
    """
    problem = stencil.prepare(steps, kernel)
    shape = problem.shape
    arrays = problem.arrays
    sizes = problem.sizes

    def read(name: str, dt: int, point: tuple[int, ...]) -> float:
        arr = arrays[name]
        offsets = tuple(p - h for p, h in zip(point, env.point))
        if not shape.contains(dt, offsets):
            raise ShapeViolationError(
                f"kernel read {name!r} at cell (dt={dt}, offsets={offsets}) "
                f"outside the declared shape {list(shape.cells)}"
            )
        return arr.read_at(env.t + dt, point)

    def write(name: str, dt: int, point: tuple[int, ...], value: float) -> None:
        arrays[name].write_at(env.t + dt, point, value)

    def read_const(name: str, indices: tuple[int, ...]) -> float:
        return problem.const_arrays[name].read(indices)

    env = EvalEnv(
        t=0,
        point=(0,) * len(sizes),
        read=read,
        write=write,
        read_const=read_const,
        params=problem.params,
    )

    ranges = [range(n) for n in sizes]
    for t_out in range(problem.t_start, problem.t_end):
        env.t = t_out
        for point in product(*ranges):
            env.point = point
            eval_statements(problem.statements, env)
        for arr in arrays.values():
            arr.note_written_through(t_out)
    stencil.advance_cursor(problem)
