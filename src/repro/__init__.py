"""repro — a Python reproduction of the Pochoir stencil compiler (SPAA'11).

Quickstart (the periodic 2D heat equation of the paper's Figure 6)::

    import numpy as np
    from repro import Kernel, PeriodicBoundary, PochoirArray, Shape, Stencil

    X = Y = 256
    u = PochoirArray("u", (X, Y)).register_boundary(PeriodicBoundary())
    heat = Stencil(2, Shape.from_cells(
        [(1, 0, 0), (0, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, -1), (0, 0, 1)]
    ))
    heat.register_array(u)

    CX = CY = 0.125
    kern = Kernel(2, lambda t, x, y: u(t + 1, x, y) << (
        u(t, x, y)
        + CX * (u(t, x + 1, y) - 2 * u(t, x, y) + u(t, x - 1, y))
        + CY * (u(t, x, y + 1) - 2 * u(t, x, y) + u(t, x, y - 1))
    ))

    u.set_initial(np.random.default_rng(0).random((X, Y)))
    heat.run(100, kern)              # TRAP, hyperspace cuts, NumPy kernels
    result = u.snapshot(100)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.errors import (
    AutotuneError,
    BoundaryError,
    CheckpointError,
    CompileError,
    ExecutionError,
    KernelError,
    PochoirError,
    ShapeViolationError,
    SpecificationError,
)
from repro.resilience import Checkpoint, CheckpointPolicy, resume
from repro.serve import (
    DeadlineExceeded,
    JobExpired,
    ServeOptions,
    ServerBusy,
    ServerClosed,
    StencilClient,
    StencilServer,
    serve_tcp,
)
from repro.supervise import SuperviseOptions
from repro.expr import (
    Param,
    eq_,
    fmath,
    let,
    local,
    maximum,
    minimum,
    ne_,
    where,
)
from repro.language import (
    Boundary,
    ConstArray,
    ConstantBoundary,
    DirichletBoundary,
    Kernel,
    MixedBoundary,
    NeumannBoundary,
    PeriodicBoundary,
    PochoirArray,
    PythonBoundary,
    RunOptions,
    RunReport,
    Shape,
    Stencil,
    ZeroBoundary,
    run_phase1,
)

__version__ = "0.1.0"

__all__ = [
    "AutotuneError",
    "Boundary",
    "BoundaryError",
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "CompileError",
    "ConstArray",
    "ConstantBoundary",
    "DeadlineExceeded",
    "DirichletBoundary",
    "ExecutionError",
    "JobExpired",
    "Kernel",
    "KernelError",
    "MixedBoundary",
    "NeumannBoundary",
    "Param",
    "PeriodicBoundary",
    "PochoirArray",
    "PochoirError",
    "PythonBoundary",
    "RunOptions",
    "RunReport",
    "ServeOptions",
    "ServerBusy",
    "ServerClosed",
    "Shape",
    "ShapeViolationError",
    "SpecificationError",
    "Stencil",
    "StencilClient",
    "StencilServer",
    "SuperviseOptions",
    "serve_tcp",
    "ZeroBoundary",
    "eq_",
    "fmath",
    "let",
    "local",
    "maximum",
    "minimum",
    "ne_",
    "resume",
    "run_phase1",
    "where",
    "__version__",
]
