"""(d+1)-dimensional space-time hypertrapezoids ("zoids").

Following Section 3 of the paper, a zoid
``Z = (ta, tb; xa0, xb0, dxa0, dxb0; …)`` is the set of integer grid
points ``(t, x0, …, x_{d-1})`` with ``ta <= t < tb`` and
``xai + dxai*(t - ta) <= xi < xbi + dxbi*(t - ta)``.

Coordinates are *virtual*: they may exceed the grid size in a dimension
(never by more than one full period) to represent regions that wrap around
a periodic seam; the base-case executor reduces them modulo the grid size.
This is the unified periodic/nonperiodic representation of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

#: Per-dimension extent: (xa, xb, dxa, dxb).
DimExtent = tuple[int, int, int, int]


def _power_sum(n: int, k: int) -> int:
    """Exact ``sum(s**k for s in range(n))`` via Faulhaber's recurrence.

    Telescoping ``(s+1)**(k+1) - s**(k+1)`` over ``s < n`` gives
    ``n**(k+1) = sum_j C(k+1, j) * S_j(n)``; solving for ``S_k`` needs
    only the lower power sums, and the division is exact.
    """
    from math import comb

    sums = [n]  # S_0
    for m in range(1, k + 1):
        acc = n ** (m + 1)
        for j in range(m):
            acc -= comb(m + 1, j) * sums[j]
        sums.append(acc // (m + 1))
    return sums[k]


@dataclass(frozen=True, slots=True)
class Zoid:
    """An immutable zoid (see module docstring).

    >>> z = Zoid(0, 4, ((0, 16, 0, 0),))
    >>> z.height, z.width(0), z.upright(0)
    (4, 16, True)
    """

    ta: int
    tb: int
    dims: tuple[DimExtent, ...]

    @property
    def height(self) -> int:
        return self.tb - self.ta

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def bottom_len(self, i: int) -> int:
        """Base length at time ta (the paper's delta-x_i)."""
        xa, xb, _, _ = self.dims[i]
        return xb - xa

    def top_len(self, i: int) -> int:
        """Base length at time tb (the paper's nabla-x_i)."""
        xa, xb, dxa, dxb = self.dims[i]
        return (xb - xa) + (dxb - dxa) * self.height

    def len_at(self, i: int, t: int) -> int:
        """Extent length at absolute time ``t`` (ta <= t <= tb)."""
        xa, xb, dxa, dxb = self.dims[i]
        s = t - self.ta
        return (xb - xa) + (dxb - dxa) * s

    def bounds_at(self, t: int) -> tuple[tuple[int, int], ...]:
        """Per-dim (lo, hi) box at absolute time ``t``."""
        s = t - self.ta
        return tuple(
            (xa + dxa * s, xb + dxb * s) for xa, xb, dxa, dxb in self.dims
        )

    def width(self, i: int) -> int:
        """The paper's w_i: the longer of the two bases."""
        return max(self.bottom_len(i), self.top_len(i))

    def upright(self, i: int) -> bool:
        """True iff the longer base of projection trapezoid i is at ta."""
        return self.bottom_len(i) >= self.top_len(i)

    def minimal(self, i: int) -> bool:
        """Projection trapezoid i is minimal: upright with empty top, or
        inverted with empty bottom."""
        b, t = self.bottom_len(i), self.top_len(i)
        return (b >= t and t == 0) or (t > b and b == 0)

    def is_minimal(self) -> bool:
        return all(self.minimal(i) for i in range(self.ndim))

    def well_defined(self) -> bool:
        """Positive height, positive widths, nonnegative bases (Section 3)."""
        if self.height <= 0:
            return False
        for i in range(self.ndim):
            b, t = self.bottom_len(i), self.top_len(i)
            if b < 0 or t < 0 or max(b, t) <= 0:
                return False
        return True

    def volume(self) -> int:
        """Number of space-time grid points in the zoid (its work).

        Closed form: the per-step point count is the polynomial
        ``prod_i (b_i + c_i*s)`` in the step ``s`` (``b_i`` the bottom
        length, ``c_i`` the slope sum), so the volume is its power-sum
        evaluation — O(d^2) instead of O(height * d), which matters
        because plan statistics call this for every base region of deep
        plans.  Lengths that go negative (ill-defined zoids) clamp the
        step product to zero; that case falls back to the step loop.
        """
        h = self.height
        if h <= 0:
            return 0
        coeffs = [1]
        for xa, xb, dxa, dxb in self.dims:
            b = xb - xa
            c = dxb - dxa
            if b < 0 or b + c * (h - 1) < 0:
                # A length is negative at one end (lengths are linear in
                # s, so negativity shows up at an endpoint): the seed's
                # clamping semantics apply.
                return self._volume_clamped()
            nxt = [0] * (len(coeffs) + 1)
            for k, a in enumerate(coeffs):
                nxt[k] += a * b
                nxt[k + 1] += a * c
            coeffs = nxt
        return sum(a * _power_sum(h, k) for k, a in enumerate(coeffs) if a)

    def _volume_clamped(self) -> int:
        """Step-loop volume with negative step products clamped to 0."""
        total = 0
        for t in range(self.ta, self.tb):
            prod = 1
            for i in range(self.ndim):
                length = self.len_at(i, t)
                if length <= 0:
                    prod = 0
                    break
                prod *= length
            total += prod
        return total

    def points(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Iterate (t, point) over all zoid grid points (tests only —
        exponential in dimensions; keep zoids tiny)."""
        from itertools import product

        for t in range(self.ta, self.tb):
            ranges = [range(lo, hi) for lo, hi in self.bounds_at(t)]
            for pt in product(*ranges):
                yield t, pt

    def signature(self) -> tuple:
        """Translation-invariant shape key for work/span memoization.

        Two zoids with equal signatures have identical decomposition
        geometry (lengths, slopes, height), hence identical work and span.
        """
        return (
            self.height,
            tuple((xb - xa, dxa, dxb) for xa, xb, dxa, dxb in self.dims),
        )

    def replace_dim(self, i: int, extent: DimExtent) -> "Zoid":
        dims = list(self.dims)
        dims[i] = extent
        return Zoid(self.ta, self.tb, tuple(dims))

    def __repr__(self) -> str:
        dims = "; ".join(
            f"[{xa},{xb})+({dxa},{dxb})t" for xa, xb, dxa, dxb in self.dims
        )
        return f"Zoid(t=[{self.ta},{self.tb}); {dims})"


def full_grid_zoid(t_start: int, t_end: int, sizes: Sequence[int]) -> Zoid:
    """The top-level zoid covering the whole spatial grid for
    ``[t_start, t_end)`` output levels (slopes all zero)."""
    return Zoid(
        t_start,
        t_end,
        tuple((0, int(n), 0, 0) for n in sizes),
    )
