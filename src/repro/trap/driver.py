"""Execution driver: Problem + RunOptions -> compiled, decomposed, run.

This is the glue :meth:`repro.language.Stencil.run` calls for Phase-2
execution.  It owns nothing algorithmic — it wires the compiler pipeline,
the walkers, the loop baseline and the executors together and fills in a
:class:`~repro.language.stencil.RunReport`.

Executor dispatch (``RunOptions.resolve_executor``):

* ``"serial"`` — streams base regions straight off the walker's event
  generator; no plan or graph is ever materialized.
* ``"threads"`` — materializes the plan tree and runs barrier waves.
* ``"dag"`` — folds the event stream into a dependency-counted
  :class:`~repro.trap.graph.TaskGraph` (still no tree) and runs the
  ready-queue executor.
* ``"procs"`` — the same task graph, dispatched by a driver-side
  supervisor to worker *subprocesses* attached to shared-memory grid
  segments (:mod:`repro.supervise`); degrades to ``"dag"`` with a
  recorded note when shared memory or spawn is unavailable.

It also owns the autotune-registry integration
(``RunOptions.autotune``): before compiling, a ``"use"`` or
``"tune-on-miss"`` run looks up the persistent tuned-config registry
(:mod:`repro.autotune.registry`) under (problem signature, requested
mode, machine fingerprint) and folds a hit into the options —
caller-explicit knobs always win, and every registry failure degrades
silently to the heuristics.  ``"tune-on-miss"`` runs the dispatch-space
search (:func:`repro.autotune.isat.tune_problem`, against cloned
arrays) and stores the winner for every later process on this machine.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import replace as _dc_replace

from repro.errors import SpecificationError
from repro.language.stencil import Problem, RunOptions, RunReport
from repro.resilience import degradations
from repro.resilience.runner import execute_blocks
from repro.trap.loops import run_loops
from repro.trap.executor import (
    default_workers,
    execute_dag,
    execute_serial_stream,
    execute_waves,
)
from repro.trap.graph import build_task_graph
from repro.trap.plan import plan_stats, stats_from_regions
from repro.trap.walker import (
    decompose,
    decompose_events,
    default_options,
    walk_spec_for,
)
from repro.trap.zoid import full_grid_zoid


def _walk_setup(problem: Problem, options: RunOptions):
    """Shared geometry for both walker output paths."""
    from repro.compiler.pipeline import resolve_mode

    if options.algorithm not in ("trap", "strap"):
        raise SpecificationError(
            f"build_plan only handles trap/strap, got {options.algorithm!r}"
        )
    min_off, max_off = problem.shape.min_max_offsets
    spec = walk_spec_for(problem.sizes, problem.slopes, min_off, max_off)
    resolved = resolve_mode(options.mode)
    opts = default_options(
        problem.ndim,
        problem.sizes,
        dt_threshold=options.dt_threshold,
        space_thresholds=options.space_thresholds,
        protect_unit_stride=options.protect_unit_stride,
        hyperspace=(options.algorithm == "trap"),
        # Coarsening defaults are tuned per backend: the cheap fused C
        # leaves want smaller zoids than the NumPy leaves (and the extra
        # base cases feed the DAG runtime's parallelism).
        codegen_mode=resolved,
        # Subtree-task planning: interior zoids that fit the walk grain
        # become single tasks executed by the compiled walk_subtree
        # clone (or its Python replay), one GIL-released call each.
        compiled_walk=options.resolve_compiled_walk(resolved),
        # Rides along in the emitted WalkParams; the executor only acts
        # on it when the compiled kernel has a parallel walk clone.
        walk_threads=options.resolve_walk_threads(),
    )
    top = full_grid_zoid(problem.t_start, problem.t_end, problem.sizes)
    return top, spec, opts


def build_plan(problem: Problem, options: RunOptions):
    """Decompose the problem's space-time grid per the selected algorithm
    into a materialized plan tree."""
    top, spec, opts = _walk_setup(problem, options)
    return decompose(top, spec, opts)


def build_events(problem: Problem, options: RunOptions):
    """The streaming counterpart of :func:`build_plan`: a lazy plan-event
    generator (no tree)."""
    top, spec, opts = _walk_setup(problem, options)
    return decompose_events(top, spec, opts)


def _apply_tuned(problem: Problem, options: RunOptions, tuned) -> RunOptions:
    """Fold a registry TunedConfig into the options.

    Only knobs still at their defaults are filled: explicit
    ``space_thresholds``/``dt_threshold``/``mode``/``n_workers``/
    ``compiled_walk``/``executor`` win over the tuned values, and
    ``fuse_leaves=False`` (the ablation setting) is never overridden.  Threshold merging (including the
    grid clamp) lives in :func:`repro.trap.coarsening.tuned_thresholds`
    so the walker and the registry agree on the final geometry.
    """
    from dataclasses import replace as _replace

    from repro.compiler.pipeline import available_modes
    from repro.trap.coarsening import tuned_thresholds

    space, dt = tuned_thresholds(
        problem.ndim, problem.sizes, tuned, codegen_mode=None
    )
    updates: dict = {}
    if options.space_thresholds is None:
        updates["space_thresholds"] = space
    if options.dt_threshold is None:
        updates["dt_threshold"] = dt
    if (
        options.mode == "auto"
        and tuned.mode != "auto"
        and tuned.mode in available_modes()
    ):
        updates["mode"] = tuned.mode
    if options.n_workers is None and tuned.n_workers is not None:
        updates["n_workers"] = tuned.n_workers
    if options.fuse_leaves and not tuned.fuse_leaves:
        updates["fuse_leaves"] = False
    if options.compiled_walk is None and tuned.compiled_walk is not None:
        updates["compiled_walk"] = tuned.compiled_walk
    if options.walk_threads is None and tuned.walk_threads is not None:
        updates["walk_threads"] = tuned.walk_threads
    if options.executor == "auto" and tuned.executor is not None:
        updates["executor"] = tuned.executor
    return _replace(options, **updates) if updates else options


def _consult_registry(
    problem: Problem, options: RunOptions
) -> tuple[RunOptions, str]:
    """Resolve the autotune policy: (effective options, winning source).

    Never raises: a broken registry, a failed tune, or a failed store
    all degrade to the heuristic/explicit configuration the run would
    have used with ``autotune="off"``.
    """
    explicit = (
        options.space_thresholds is not None or options.dt_threshold is not None
    )
    source = "explicit" if explicit else "heuristic"
    if options.autotune == "off" or options.algorithm not in ("trap", "strap"):
        return options, source
    try:
        from repro.autotune import registry

        # TRAP (the default algorithm) keys on the bare mode; other
        # walk algorithms get their own entries — their optima differ,
        # and a config tuned by timing TRAP must never serve STRAP.
        backend_key = (
            options.mode
            if options.algorithm == "trap"
            else f"{options.algorithm}:{options.mode}"
        )
        tuned = registry.lookup(problem, backend_key)
        if tuned is not None:
            applied = _apply_tuned(problem, options, tuned)
            return applied, "registry" if applied is not options else source
        if options.autotune == "tune-on-miss":
            from repro.autotune.isat import tune_problem

            result = tune_problem(
                problem, backend=options.mode, algorithm=options.algorithm
            )
            registry.store(problem, backend_key, result.config)
            applied = _apply_tuned(problem, options, result.config)
            return applied, "tuned" if applied is not options else source
    except Exception as exc:  # pragma: no cover - defensive: see docstring
        degradations.note("autotune:registry-unavailable->heuristics")
        warnings.warn(
            f"autotune registry unavailable ({exc!r}); "
            f"falling back to heuristics",
            RuntimeWarning,
            stacklevel=2,
        )
    return options, source


def _execute_range(
    problem: Problem,
    options: RunOptions,
    compiled,
    report: RunReport,
    executor: str,
    n_workers: int,
    session=None,
) -> None:
    """Decompose and execute one time range, *accumulating* into the
    report — the resilience runner calls this once per checkpointed
    block (once total when checkpointing is off)."""
    # One timing window for every executor: decomposition + scheduling
    # structure + execution.  The serial stream interleaves walking with
    # running, so including plan/graph construction for the parallel
    # executors is what keeps `elapsed` comparable across them.
    t0 = time.perf_counter()
    if executor == "serial":
        stats = execute_serial_stream(
            build_events(problem, options),
            compiled,
            collect_stats=options.collect_stats,
        )
    elif executor == "dag":
        graph = build_task_graph(build_events(problem, options))
        stats = execute_dag(graph, compiled, n_workers)
    elif executor == "procs":
        # The supervised session owns compilation (each worker binds its
        # own kernel against the shared segments); the driver only
        # builds the graph and supervises.
        graph = build_task_graph(build_events(problem, options))
        stats = session.run_graph(graph)
    elif executor == "threads":
        plan = build_plan(problem, options)
        stats = execute_waves(plan, compiled, n_workers)
    else:  # pragma: no cover - resolve_executor guarantees the above
        raise SpecificationError(f"unknown executor {executor!r}")
    elapsed = time.perf_counter() - t0

    # Region statistics are reporting: for the parallel executors they
    # are collected outside the timed window; the serial stream exists
    # only once, so its (cheap) accounting runs inline above.
    region_stats = stats.region_stats
    if region_stats is None and options.collect_stats:
        if executor in ("dag", "procs"):
            region_stats = stats_from_regions(graph.iter_regions())
        elif executor == "threads":
            region_stats = plan_stats(plan)

    report.executor = stats.executor
    # max, not last-wins: a short final block may degenerate to the
    # serial elision (n_workers=1) without changing the run's strategy.
    report.n_workers = max(report.n_workers, stats.n_workers)
    report.elapsed += elapsed
    report.busy_time += stats.busy_time
    base_cases = stats.base_cases
    if options.collect_stats and region_stats is not None:
        report.points_updated += region_stats.points
        base_cases = region_stats.base_cases
        report.interior_base_cases += region_stats.interior_base_cases
        report.boundary_base_cases += region_stats.boundary_base_cases
        report.subtree_tasks += region_stats.subtree_tasks
    else:
        report.points_updated += problem.total_points
    report.base_cases += base_cases


def execute_problem(problem: Problem, options: RunOptions) -> RunReport:
    """Compile, decompose (or loop), execute; return the run report.

    Degradation notes fired anywhere below (compiler fallbacks, cache
    evictions, registry damage, checkpoint skips, executor retries) are
    collected into ``report.degradations``; under a
    ``RunOptions.checkpoint`` policy (or ``resume_from``) the time range
    runs as checkpointed blocks via
    :func:`repro.resilience.runner.execute_blocks`.
    """
    from repro.compiler.pipeline import compile_kernel_resilient, resolve_mode

    report = RunReport(
        algorithm=options.algorithm,
        mode="",
        t_start=problem.t_start,
        t_end=problem.t_end,
    )
    if problem.steps == 0:
        return report
    with degradations.collect(report.degradations):
        options, report.autotune_source = _consult_registry(problem, options)

        compiled = compile_kernel_resilient(problem, options.mode)
        report.mode = compiled.mode
        if resolve_mode(options.mode) != compiled.mode:
            # The compile degraded (C backend unusable): rewrite the
            # requested mode so coarsening geometry, compiled-walk
            # resolution, and any later per-block compile all follow
            # the backend that will actually run.
            options = _dc_replace(options, mode=compiled.mode)
        if not options.fuse_leaves:
            compiled = compiled.without_fused_leaves()

        if options.algorithm in ("loops", "serial_loops"):
            parallel = options.algorithm == "loops"
            if parallel:
                report.n_workers = default_workers(options.n_workers)
            report.executor = "loops" if parallel else "serial"

            def run_loop_range(a: int, b: int) -> None:
                sub = _dc_replace(problem, t_start=a, t_end=b)
                t0 = time.perf_counter()
                invocations, busy = run_loops(
                    sub,
                    compiled,
                    parallel=parallel,
                    n_workers=options.n_workers,
                )
                report.elapsed += time.perf_counter() - t0
                report.busy_time += busy
                report.points_updated += sub.total_points
                report.base_cases += invocations

            execute_blocks(
                problem,
                report,
                run_loop_range,
                policy=options.checkpoint,
                resume_from=options.resume_from,
            )
            return report

        executor, n_workers = options.resolve_executor()
        session = None
        if executor == "procs":
            # Promote the grid into shared segments and lease worker
            # subprocesses.  On any unavailability (no shm, spawn
            # blocked, unpicklable problem) this returns None with a
            # recorded note and the run degrades to the in-process DAG
            # executor.  Either way the arrays may have been rebound
            # (share bumps cache tokens), so recompile on the degrade
            # path — a no-op cache hit when nothing was rebound.
            from repro.supervise.session import open_session

            session = open_session(
                problem,
                options.supervise,
                options.fuse_leaves,
                compiled.mode,
                n_workers,
                report,
            )
            if session is None:
                executor = "dag"
                compiled = compile_kernel_resilient(problem, options.mode)
                if not options.fuse_leaves:
                    compiled = compiled.without_fused_leaves()
        if compiled.walk_par is not None:
            report.walk_threads = options.resolve_walk_threads()
        # Pool counters are accumulated in a per-kernel C buffer; diffing
        # a snapshot around the run yields this run's share (best-effort
        # under concurrent runs of the same kernel, exact otherwise;
        # supervised runs execute the walk in worker processes, so their
        # pool counters stay zero here).
        walk_stats0 = compiled.walk_stats_snapshot()

        def run_range(a: int, b: int) -> None:
            sub = _dc_replace(problem, t_start=a, t_end=b)
            _execute_range(
                sub, options, compiled, report, executor, n_workers,
                session=session,
            )

        try:
            execute_blocks(
                problem,
                report,
                run_range,
                policy=options.checkpoint,
                resume_from=options.resume_from,
            )
        finally:
            if session is not None:
                session.close()

        walk_stats1 = compiled.walk_stats_snapshot()
        report.walk_spawned = walk_stats1[0] - walk_stats0[0]
        report.walk_stolen = walk_stats1[1] - walk_stats0[1]
        report.walk_barriers = walk_stats1[2] - walk_stats0[2]
        if report.walk_threads > 1 and os.environ.get("REPRO_WALK_POOL_FAIL"):
            # The generated pool reads this env at start and degrades to
            # the serial recursion inside the .so; Python only sees the
            # env, so record the fallback here (covers both direct env
            # arming and the faults registry's walk.pool site).
            degradations.note("walk-pool:start-failed->serial")
    return report


def execute_batch(
    problems: list[Problem], options: RunOptions
) -> list[RunReport]:
    """Run K same-signature problems through ONE decomposition.

    The batch path of the serving layer: the jobs' arrays are stacked
    into contiguous per-array buffers, the template job's kernel is
    compiled with batched clones bound against the stack
    (:mod:`repro.compiler.batch`), and a single serial event stream then
    executes every region once — each leaf/step/walk call covering all K
    jobs, GIL-released for the C backend.  Results are scattered back
    into each job's own arrays, bitwise identical to running the jobs
    one at a time.

    Returns one :class:`RunReport` per job, in order.  ``elapsed`` /
    ``base_cases`` describe the shared batched run (identical across
    the reports, with ``batch_size`` recording the sharing);
    ``points_updated`` is per job.  A ``"c"`` request degrades to
    batched NumPy with the usual note; a mode/boundary that cannot
    batch raises :class:`~repro.errors.CompileError` — the serving
    layer falls back to unbatched sequential execution instead of
    calling this.  Checkpointing, resume, and the parallel executors
    are deliberately unsupported here: batches are small and short, and
    the per-job supervised path remains available unbatched.
    """
    from repro.compiler.batch import (
        compile_batch_kernel,
        scatter_results,
        stack_problems,
    )
    from repro.compiler.pipeline import resolve_mode

    if not problems:
        return []
    if options.checkpoint is not None or options.resume_from is not None:
        raise SpecificationError(
            "batched execution does not support checkpoint/resume"
        )
    template = problems[0]
    reports = [
        RunReport(
            algorithm=options.algorithm,
            mode="",
            t_start=p.t_start,
            t_end=p.t_end,
            batch_size=len(problems),
        )
        for p in problems
    ]
    if template.steps == 0:
        return reports
    shared_degradations: list[str] = []
    with degradations.collect(shared_degradations):
        options, autotune_source = _consult_registry(template, options)
        stack = stack_problems(problems)
        compiled = compile_batch_kernel(stack, options.mode)
        if resolve_mode(options.mode) != compiled.mode:
            options = _dc_replace(options, mode=compiled.mode)
        if not options.fuse_leaves:
            compiled = compiled.without_fused_leaves()
        t0 = time.perf_counter()
        stats = execute_serial_stream(
            build_events(template, options),
            compiled,
            collect_stats=options.collect_stats,
        )
        elapsed = time.perf_counter() - t0
        scatter_results(stack)
    for p, report in zip(problems, reports):
        report.mode = compiled.mode
        report.autotune_source = autotune_source
        report.registry_hit = autotune_source == "registry"
        report.executor = stats.executor
        report.elapsed = elapsed
        report.busy_time = stats.busy_time
        report.base_cases = stats.base_cases
        report.points_updated = p.total_points
        report.degradations = list(shared_degradations)
    return reports
