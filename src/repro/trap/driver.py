"""Execution driver: Problem + RunOptions -> compiled, decomposed, run.

This is the glue :meth:`repro.language.Stencil.run` calls for Phase-2
execution.  It owns nothing algorithmic — it wires the compiler pipeline,
the walkers, the loop baseline and the executors together and fills in a
:class:`~repro.language.stencil.RunReport`.
"""

from __future__ import annotations

import time

from repro.errors import SpecificationError
from repro.language.stencil import Problem, RunOptions, RunReport
from repro.trap.loops import run_loops
from repro.trap.executor import execute_plan
from repro.trap.plan import plan_stats
from repro.trap.walker import decompose, default_options, walk_spec_for
from repro.trap.zoid import full_grid_zoid


def build_plan(problem: Problem, options: RunOptions):
    """Decompose the problem's space-time grid per the selected algorithm."""
    if options.algorithm not in ("trap", "strap"):
        raise SpecificationError(
            f"build_plan only handles trap/strap, got {options.algorithm!r}"
        )
    min_off, max_off = problem.shape.min_max_offsets
    spec = walk_spec_for(problem.sizes, problem.slopes, min_off, max_off)
    opts = default_options(
        problem.ndim,
        problem.sizes,
        dt_threshold=options.dt_threshold,
        space_thresholds=options.space_thresholds,
        protect_unit_stride=options.protect_unit_stride,
        hyperspace=(options.algorithm == "trap"),
    )
    top = full_grid_zoid(problem.t_start, problem.t_end, problem.sizes)
    return decompose(top, spec, opts)


def execute_problem(problem: Problem, options: RunOptions) -> RunReport:
    """Compile, decompose (or loop), execute; return the run report."""
    from repro.compiler.pipeline import compile_kernel

    report = RunReport(
        algorithm=options.algorithm,
        mode="",
        t_start=problem.t_start,
        t_end=problem.t_end,
    )
    if problem.steps == 0:
        return report

    compiled = compile_kernel(problem, options.mode)
    report.mode = compiled.mode

    if options.algorithm in ("loops", "serial_loops"):
        parallel = options.algorithm == "loops"
        t0 = time.perf_counter()
        invocations = run_loops(
            problem,
            compiled,
            parallel=parallel,
            n_workers=options.n_workers,
        )
        report.elapsed = time.perf_counter() - t0
        report.points_updated = problem.total_points
        report.base_cases = invocations
        return report

    plan = build_plan(problem, options)
    t0 = time.perf_counter()
    execute_plan(
        plan,
        compiled,
        executor=options.executor,
        n_workers=options.n_workers,
    )
    report.elapsed = time.perf_counter() - t0
    if options.collect_stats:
        stats = plan_stats(plan)
        report.points_updated = stats.points
        report.base_cases = stats.base_cases
        report.interior_base_cases = stats.interior_base_cases
        report.boundary_base_cases = stats.boundary_base_cases
    else:
        report.points_updated = problem.total_points
    return report
