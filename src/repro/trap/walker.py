"""The recursive TRAP/STRAP walkers: zoid in, plan tree (or stream) out.

``decompose`` implements the control flow of Figure 2: hyperspace cut if
any dimension admits a parallel space cut, else time cut, else base case —
with base-case coarsening (Section 4) folded into the cut thresholds.
STRAP (the Frigo–Strumpen-style comparison algorithm of Section 3's
analysis) is the same walker with ``hyperspace=False``: it cuts only the
first cuttable dimension per recursion step, so a cascade of k space cuts
costs 2^k parallel steps instead of k+1.

The walker has two output paths over one recursion:

* :func:`decompose_events` — the *generator* path: a depth-first stream of
  structure events (see :mod:`repro.trap.plan`) that never materializes
  the tree.  The serial executor and the task-DAG builder
  (:mod:`repro.trap.graph`) both consume this stream, so huge plans run
  with O(frontier) memory instead of O(plan).
* :func:`decompose` — folds the same event stream into a materialized
  :class:`~repro.trap.plan.PlanNode` tree (wave executor, cache tracer,
  schedule simulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import SpecificationError
from repro.trap.coarsening import default_dt_threshold, default_space_thresholds
from repro.trap.cuts import choose_cut, time_cut_children
from repro.trap.plan import BaseRegion, PlanEvent, PlanNode, plan_from_events
from repro.trap.zoid import Zoid


@dataclass(frozen=True)
class WalkSpec:
    """Immutable problem geometry the walker needs.

    ``min_off`` / ``max_off`` are the per-dimension extreme *read* offsets
    of the stencil shape; they drive interior/boundary classification: a
    zoid is interior iff every read of every contained point stays inside
    the true grid, evaluated at the extreme time slices (extents are
    linear in t, so the endpoints suffice).
    """

    sizes: tuple[int, ...]
    slopes: tuple[int, ...]
    min_off: tuple[int, ...]
    max_off: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.sizes)

    def is_interior(self, z: Zoid) -> bool:
        for t in (z.ta, z.tb - 1):
            for i, (lo, hi) in enumerate(z.bounds_at(t)):
                if lo + self.min_off[i] < 0:
                    return False
                if hi - 1 + self.max_off[i] > self.sizes[i] - 1:
                    return False
        return True


#: Threshold sentinel for dimensions the walker must never cut
#: (protected unit-stride dims).  Large enough that no width exceeds it,
#: small enough to fit a C ``i64`` argument.
NEVER_CUT = 1 << 62

#: Compiled-walk grain: an interior zoid is handed to the compiled
#: walker as one subtree task once every spatial width fits within
#: ``WALK_GRAIN_SPACE`` coarsening thresholds and its height within
#: ``WALK_GRAIN_TIME`` time thresholds.  Each subtree then contains up
#: to ``WALK_GRAIN_SPACE^d * WALK_GRAIN_TIME`` base cases whose cuts and
#: leaf calls all run below Python — the dispatch reduction the
#: compiled-walk mode exists for — while zoids above the grain keep
#: decomposing in Python, so the task DAG still sees enough independent
#: tasks to feed its workers.  The time grain is deliberately much
#: taller than the space grain: time cuts are Seq-ordered (little
#: parallelism to lose by folding them into one task), while the space
#: grain is what bounds the DAG's independent-task supply (heat2d /
#: life / psa sweeps at the paper's thresholds: 4x16 matches 8x16 and
#: 16x32 within noise while keeping the spatial task count of 4x4).
WALK_GRAIN_SPACE = 4
WALK_GRAIN_TIME = 16


@dataclass(frozen=True)
class WalkOptions:
    """Decomposition tuning: coarsening thresholds and cut strategy.

    ``compiled_walk`` enables subtree-task planning: interior zoids that
    fit the walk grain are emitted as single atomic regions carrying
    their recursion parameters (see :class:`repro.trap.plan.BaseRegion`)
    instead of being decomposed here.  The driver turns it on only when
    the backend compiles a ``walk_subtree`` clone.

    ``walk_threads`` is the thread count the compiled walk's embedded
    pthread pool runs with (1 = the serial clone, unchanged).  It rides
    along in the emitted :data:`WalkParams`, so tuned values apply
    per-plan without recompiling anything.
    """

    dt_threshold: int = 1
    space_thresholds: tuple[int, ...] = ()
    protect_unit_stride: bool = False
    hyperspace: bool = True
    compiled_walk: bool = False
    walk_threads: int = 1

    def protect_flags(self, ndim: int) -> tuple[bool, ...]:
        flags = [False] * ndim
        if self.protect_unit_stride and ndim >= 2:
            flags[ndim - 1] = True
        return tuple(flags)

    def effective_thresholds(self, ndim: int) -> tuple[int, ...]:
        """Per-dim thresholds with protected dims folded in as
        :data:`NEVER_CUT` — the form both the compiled walker and the
        Python subtree fallback consume (one knob fewer to thread)."""
        return tuple(
            NEVER_CUT if protect else th
            for th, protect in zip(self.space_thresholds, self.protect_flags(ndim))
        )


def walk_spec_for(
    sizes: Sequence[int],
    slopes: Sequence[int],
    min_off: Sequence[int],
    max_off: Sequence[int],
) -> WalkSpec:
    sizes = tuple(int(s) for s in sizes)
    if any(s <= 0 for s in sizes):
        raise SpecificationError(f"grid sizes must be positive: {sizes}")
    return WalkSpec(
        sizes=sizes,
        slopes=tuple(int(s) for s in slopes),
        min_off=tuple(int(o) for o in min_off),
        max_off=tuple(int(o) for o in max_off),
    )


def default_options(
    ndim: int,
    sizes: Sequence[int],
    *,
    dt_threshold: int | None = None,
    space_thresholds: Sequence[int] | None = None,
    protect_unit_stride: bool | None = None,
    hyperspace: bool = True,
    codegen_mode: str | None = None,
    compiled_walk: bool = False,
    walk_threads: int = 1,
) -> WalkOptions:
    """Fill unset knobs with the Section-4 style coarsening heuristics.

    ``codegen_mode`` (the *resolved* backend, not ``"auto"``) selects the
    coarsening table tuned for the kernel that will run the base cases;
    explicit thresholds always win over either table.
    """
    if space_thresholds is None:
        space_thresholds = default_space_thresholds(ndim, sizes, codegen_mode)
    if dt_threshold is None:
        dt_threshold = default_dt_threshold(ndim, codegen_mode)
    if protect_unit_stride is None:
        protect_unit_stride = ndim >= 3
    st = tuple(int(s) for s in space_thresholds)
    if len(st) != ndim:
        raise SpecificationError(
            f"space_thresholds needs {ndim} entries, got {len(st)}"
        )
    return WalkOptions(
        dt_threshold=max(1, int(dt_threshold)),
        space_thresholds=st,
        protect_unit_stride=bool(protect_unit_stride),
        hyperspace=hyperspace,
        compiled_walk=bool(compiled_walk),
        walk_threads=max(1, int(walk_threads)),
    )


def decompose(z: Zoid, spec: WalkSpec, opts: WalkOptions) -> PlanNode:
    """Recursively decompose ``z`` into a plan tree (Figure 2).

    This folds :func:`decompose_events` into a materialized tree, so the
    two paths can never disagree about the decomposition.
    """
    return plan_from_events(decompose_events(z, spec, opts))


def decompose_events(
    z: Zoid, spec: WalkSpec, opts: WalkOptions
) -> Iterator[PlanEvent]:
    """Stream the decomposition of ``z`` as plan events (generator path).

    Yields the event vocabulary of :mod:`repro.trap.plan` in depth-first
    order without building any tree nodes.  Single-child Seq/Par groups
    are collapsed exactly as the :class:`PlanNode` constructors collapse
    them, so ``plan_events(decompose(...))`` and ``decompose_events(...)``
    produce identical streams.

    Interior/boundary classification is *inherited*: all subzoids of an
    interior zoid are interior (the observation Section 4 exploits), so
    the predicate is evaluated once per interior subtree, not per leaf.
    """
    return _events(z, spec, opts, known_interior=False)


def _fits_walk_grain(z: Zoid, spec: WalkSpec, opts: WalkOptions) -> bool:
    """Is ``z`` small enough to hand to the compiled walker whole?

    The subtree must fit the walk grain (a few coarsening thresholds per
    axis — see :data:`WALK_GRAIN_SPACE`), and no dimension may qualify
    for a *circular* cut anywhere below it: the compiled walker
    implements trisection and time cuts only.  An interior zoid can
    never need a circular cut (a full-circumference extent with nonzero
    slope always reads off-domain), so the check is a belt-and-braces
    guard, not a planning constraint.
    """
    if z.height > WALK_GRAIN_TIME * max(1, opts.dt_threshold):
        return False
    protect = opts.protect_flags(z.ndim)
    for i in range(z.ndim):
        if protect[i]:
            continue
        if z.width(i) > WALK_GRAIN_SPACE * max(1, opts.space_thresholds[i]):
            return False
    for i, (xa, xb, dxa, dxb) in enumerate(z.dims):
        if (
            spec.slopes[i] > 0
            and (xb - xa) == spec.sizes[i]
            and dxa == 0
            and dxb == 0
        ):
            return False  # pragma: no cover - impossible for interior zoids
    return True


def _events(
    z: Zoid, spec: WalkSpec, opts: WalkOptions, known_interior: bool
) -> Iterator[PlanEvent]:
    interior = known_interior or spec.is_interior(z)
    decision = choose_cut(
        z,
        sizes=spec.sizes,
        slopes=spec.slopes,
        space_thresholds=opts.space_thresholds,
        dt_threshold=opts.dt_threshold,
        protect_dims=opts.protect_flags(z.ndim),
        hyperspace=opts.hyperspace,
    )
    if (
        decision.kind != "base"
        and interior
        and opts.compiled_walk
        and _fits_walk_grain(z, spec, opts)
    ):
        # A whole interior subtree becomes one atomic task; the
        # recursion below it runs inside the compiled walk clone (or
        # the Python fallback replays it from these params).  A zoid
        # that is already a base case stays a plain region — one leaf
        # call needs no recursion.
        yield (
            "base",
            BaseRegion(
                ta=z.ta,
                tb=z.tb,
                dims=z.dims,
                interior=True,
                walk=(
                    spec.slopes,
                    opts.effective_thresholds(z.ndim),
                    opts.dt_threshold,
                    opts.hyperspace,
                    opts.walk_threads,
                ),
            ),
        )
        return
    if decision.kind == "base":
        yield ("base", BaseRegion(ta=z.ta, tb=z.tb, dims=z.dims, interior=interior))
        return
    if decision.kind == "time":
        lower, upper = time_cut_children(z, decision.tm)
        yield ("open", "seq")
        yield from _events(lower, spec, opts, interior)
        yield from _events(upper, spec, opts, interior)
        yield ("close", "seq")
        return
    # Hyperspace (or single, for STRAP) space cut: levels run in sequence,
    # zoids within one level in parallel (Lemma 1).
    levels = decision.levels
    if len(levels) == 1:
        yield from _level_events(levels[0], z, spec, opts, interior)
        return
    yield ("open", "seq")
    for level in levels:
        yield from _level_events(level, z, spec, opts, interior)
    yield ("close", "seq")


def _level_events(
    level: tuple[Zoid, ...],
    z: Zoid,
    spec: WalkSpec,
    opts: WalkOptions,
    interior: bool,
) -> Iterator[PlanEvent]:
    if len(level) == 1:
        yield from _events(level[0], spec, opts, interior)
        return
    yield ("open", "par")
    for sub in level:
        yield from _events(sub, spec, opts, interior)
    yield ("close", "par")
