"""Plan executors: serial elision and thread-pool wave execution.

The Cilk runtime of the paper schedules the spawned subzoids with work
stealing.  Here the serial executor is the "serial elision" (depth-first,
one thread), and the threaded executor runs the plan's dependency-safe
*waves* (:func:`repro.trap.plan.linearize_waves`) on a thread pool with a
barrier between waves — exactly the "k+1 parallel steps" execution model
Lemma 1 proves sufficient.  NumPy and C kernels release the GIL for the
bulk of their work, so threads provide real parallelism on multi-core
hosts; the *scalability analysis* for Figure 9, however, comes from the
work/span analyzer (:mod:`repro.runtime.workspan`), not from wall-clock
threading, mirroring how the paper separates Cilkview measurements from
runtime measurements.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.trap.plan import BaseRegion, PlanNode, iter_base_serial, linearize_waves

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.pipeline import CompiledKernel


def run_base_region(region: BaseRegion, compiled: "CompiledKernel") -> None:
    """Execute one base case: step time forward, shifting the box by the
    zoid slopes after each step (Figure 2, lines 20–28)."""
    clone = compiled.interior if region.interior else compiled.boundary
    d = len(region.dims)
    lo = [xa for xa, _, _, _ in region.dims]
    hi = [xb for _, xb, _, _ in region.dims]
    dlo = [dxa for _, _, dxa, _ in region.dims]
    dhi = [dxb for _, _, _, dxb in region.dims]
    for t in range(region.ta, region.tb):
        clone(t, tuple(lo), tuple(hi))
        for i in range(d):
            lo[i] += dlo[i]
            hi[i] += dhi[i]


def execute_serial(plan: PlanNode, compiled: "CompiledKernel") -> int:
    """Depth-first serial execution; returns the number of base cases."""
    count = 0
    for region in iter_base_serial(plan):
        run_base_region(region, compiled)
        count += 1
    return count


def execute_threads(
    plan: PlanNode, compiled: "CompiledKernel", n_workers: int
) -> int:
    """Wave-parallel execution with a barrier between waves."""
    if n_workers < 1:
        raise ExecutionError(f"n_workers must be >= 1, got {n_workers}")
    waves = linearize_waves(plan)
    count = 0
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        for wave in waves:
            count += len(wave)
            if len(wave) == 1:
                run_base_region(wave[0], compiled)
            else:
                futures = [
                    pool.submit(run_base_region, region, compiled)
                    for region in wave
                ]
                for f in futures:
                    f.result()  # propagate exceptions
    return count


def execute_plan(
    plan: PlanNode,
    compiled: "CompiledKernel",
    *,
    executor: str = "serial",
    n_workers: int | None = None,
) -> int:
    """Run a plan with the selected executor; returns base-case count."""
    if executor == "serial":
        return execute_serial(plan, compiled)
    if executor == "threads":
        import os

        workers = n_workers or max(1, (os.cpu_count() or 2))
        return execute_threads(plan, compiled, workers)
    raise ExecutionError(f"unknown executor {executor!r}")
