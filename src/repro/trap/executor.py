"""Plan executors: serial elision, barrier waves, and the task-DAG runtime.

The Cilk runtime of the paper schedules the spawned subzoids with work
stealing.  Three executors approximate it at different fidelities:

* ``"serial"`` — the serial elision: depth-first, one thread, streamed
  straight off the walker's event generator (no plan materialized).
* ``"threads"`` — the barrier-wave executor: the plan's dependency-safe
  *waves* (:func:`repro.trap.plan.linearize_waves`) on a thread pool with
  a barrier between waves — Lemma 1's "k+1 parallel steps" model.  Each
  wave waits for its slowest zoid; retained as the comparison baseline.
* ``"dag"`` — the ready-queue task-DAG runtime: workers pull any region
  whose predecessor count (:class:`repro.trap.graph.TaskGraph`) hits
  zero.  No inter-wave barriers — a region runs the moment its actual
  dependencies finish, the closest analogue of Cilk's greedy execution
  of the spawn tree.

NumPy kernels release the GIL for the bulk of their work and the C
backend's fused leaves release it for the *entire* base-case trapezoid
(one ctypes call per region), so threads provide real parallelism on
multi-core hosts; the *scalability analysis* for Figure 9 comes from the
work/span analyzer
(:mod:`repro.runtime.workspan`) and the schedule simulators
(:mod:`repro.runtime.scheduler`), mirroring how the paper separates
Cilkview measurements from runtime measurements.

Worker threads live in one process-wide pool (:func:`get_pool`) that
repeated ``Stencil.run`` calls reuse; it grows on demand and is never
recreated per call.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Iterable

from repro.errors import ExecutionError
from repro.resilience import degradations, faults
from repro.trap.graph import TaskGraph, build_task_graph
from repro.trap.plan import (
    BaseRegion,
    PlanEvent,
    PlanNode,
    PlanStats,
    iter_base_events,
    iter_base_serial,
    linearize_waves,
    plan_events,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.pipeline import CompiledKernel


def default_workers(n_workers: int | None) -> int:
    """The worker count a ``None`` request resolves to (one per
    *available* core — cgroup/affinity aware).

    The single source of the default: executor dispatch, the loop
    baseline, and the run report all use this, so the reported count is
    always the count that actually ran.
    """
    from repro.util import detect_cpu_count

    return n_workers or max(1, detect_cpu_count())


# -- the shared worker pool ---------------------------------------------------

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
#: Outgrown pools still leased by an in-flight run: shutting one down
#: under that run would raise "cannot schedule new futures after
#: shutdown" mid-flight.  Each entry is dropped — and the pool shut
#: down — the moment its last lease is released (see
#: :func:`release_pool`); a retired pool with no leases never enters
#: the list at all, so this no longer grows across pool regrowths.
_retired_pools: list[ThreadPoolExecutor] = []
#: pool -> number of executors currently using it (the lease window
#: spans acquire_pool .. release_pool, covering every submit).
_pool_leases: dict[ThreadPoolExecutor, int] = {}
#: Pools handed out via bare :func:`get_pool` (no lease, so no signal
#: for when the caller is done).  These keep the old conservative
#: never-shutdown-until-shutdown_pool guarantee; only pools used purely
#: through the lease API are eligible for drain-time shutdown.
_bare_pools: set[ThreadPoolExecutor] = set()


def _get_pool_locked(n_workers: int) -> ThreadPoolExecutor:
    """Grow/return the shared pool; caller holds ``_pool_lock``."""
    global _pool, _pool_size
    if _pool is None or _pool_size < n_workers:
        if _pool is not None:
            if _pool_leases.get(_pool, 0) > 0 or _pool in _bare_pools:
                _retired_pools.append(_pool)
            else:
                _pool.shutdown(wait=False)
        _pool = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-worker"
        )
        _pool_size = n_workers
    return _pool


def get_pool(n_workers: int) -> ThreadPoolExecutor:
    """The process-wide worker pool, grown to at least ``n_workers``.

    Hoisted out of the executors so repeated runs reuse threads instead
    of paying pool construction per call.  A pool returned here is never
    shut down before :func:`shutdown_pool` (there is no signal for when
    a bare caller is done with it), so the executors use
    :func:`acquire_pool`/:func:`release_pool` instead — the lease tells
    the retirement logic exactly when an outgrown pool has drained.
    """
    if n_workers < 1:
        raise ExecutionError(f"n_workers must be >= 1, got {n_workers}")
    with _pool_lock:
        pool = _get_pool_locked(n_workers)
        _bare_pools.add(pool)
        return pool


def acquire_pool(n_workers: int) -> ThreadPoolExecutor:
    """``get_pool`` plus a lease: the pool cannot be shut down (even if
    a concurrent run outgrows it) until the matching
    :func:`release_pool`."""
    if n_workers < 1:
        raise ExecutionError(f"n_workers must be >= 1, got {n_workers}")
    with _pool_lock:
        pool = _get_pool_locked(n_workers)
        _pool_leases[pool] = _pool_leases.get(pool, 0) + 1
        return pool


def release_pool(pool: ThreadPoolExecutor) -> None:
    """Release a lease; the last release of a *retired* pool shuts it
    down and drops it, so outgrown pools stop holding threads the
    moment their in-flight work drains.  A pool some caller also holds
    bare (via :func:`get_pool`) is exempt — it waits for
    :func:`shutdown_pool` like it always did."""
    with _pool_lock:
        remaining = _pool_leases.get(pool, 0) - 1
        if remaining > 0:
            _pool_leases[pool] = remaining
            return
        _pool_leases.pop(pool, None)
        if pool in _retired_pools and pool not in _bare_pools:
            _retired_pools.remove(pool)
            pool.shutdown(wait=False)


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; interpreter exit does it too)."""
    global _pool, _pool_size
    with _pool_lock:
        for old in _retired_pools:
            old.shutdown(wait=True)
        _retired_pools.clear()
        _pool_leases.clear()
        _bare_pools.clear()
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_size = 0


def _in_worker_thread() -> bool:
    """True when called from a shared-pool worker — i.e. a *nested* run
    (a user kernel or boundary function invoking ``Stencil.run``).  A
    nested parallel run must not wait on the pool that is running it
    (deadlock: the outer workers occupy every slot), so parallel paths
    degrade to inline execution here, as the old per-call pools
    effectively allowed."""
    return threading.current_thread().name.startswith("repro-worker")


# -- execution statistics -----------------------------------------------------


@dataclass
class ExecStats:
    """What one plan execution did (feeds ``RunReport``).

    ``busy_time`` sums the wall time workers spent inside base-case
    kernels.  ``wall_time`` covers *execution only*; the driver's
    ``RunReport.elapsed`` uses its own window that additionally includes
    plan/graph construction, and ``RunReport.idle_fraction`` divides
    ``busy_time`` by that wider window — so the reported idle fraction
    counts schedule construction as overhead, by design.
    """

    executor: str
    n_workers: int = 1
    base_cases: int = 0
    wall_time: float = 0.0
    busy_time: float = 0.0
    region_stats: PlanStats | None = None


def join_all(futures) -> list:
    """Wait for *every* future, then re-raise the first exception.

    The shared pool outlives any one call, so propagating an exception
    before the siblings finish would leave them still writing the grid
    while the caller inspects it.
    """
    results = []
    error: BaseException | None = None
    for f in futures:
        try:
            results.append(f.result())
        except BaseException as exc:
            error = error or exc
    if error is not None:
        raise error
    return results


def run_bounded(
    pool: ThreadPoolExecutor, fns: list, n_workers: int
) -> float:
    """Run zero-arg callables (each returning busy seconds) with at most
    ``n_workers`` executing concurrently; returns summed busy time.

    The shared pool may be wider than this run's request (it grows to
    the largest count ever asked for), so the per-run cap is enforced
    here: ``min(n_workers, len(fns))`` puller loops drain a shared
    queue.  On an exception the pullers stop taking new work, finish
    what is in flight, and the first error propagates.
    """
    if not fns:
        return 0.0
    if len(fns) == 1 or n_workers == 1 or _in_worker_thread():
        return sum(fn() for fn in fns)
    work: deque = deque(fns)
    lock = threading.Lock()
    failed: list[bool] = []

    def puller() -> float:
        busy = 0.0
        while True:
            with lock:
                if not work or failed:
                    return busy
                fn = work.popleft()
            try:
                busy += fn()
            except BaseException:
                failed.append(True)
                raise

    futures = [pool.submit(puller) for _ in range(min(n_workers, len(fns)))]
    return sum(join_all(futures))


def _run_subtree_python(region: BaseRegion, compiled: "CompiledKernel") -> None:
    """The compiled-walk degradation path: replay the interior recursion
    in Python from the region's carried :data:`~repro.trap.plan.WalkParams`
    and run each produced base case.

    Exercised when a subtree-task plan meets a kernel without a walk
    clone — the ``fuse_leaves=False`` ablation, a NumPy-compiled kernel
    handed a C-planned tree, or a toolchain that vanished between
    planning and execution.  Bitwise identical to the compiled walk: the
    decomposition logic is the same and every point is written once from
    fully-computed neighbors.
    """
    from repro.trap.walker import WalkOptions, WalkSpec, _events

    degradations.note("compiled-walk:python-replay")
    assert region.walk is not None
    slopes, thresholds, dt_threshold, hyperspace = region.walk[:4]
    ndim = len(slopes)
    # min/max offsets are irrelevant below a known-interior root (the
    # classification is inherited), so zeros suffice.
    spec = WalkSpec(
        sizes=compiled.ir.sizes,
        slopes=slopes,
        min_off=(0,) * ndim,
        max_off=(0,) * ndim,
    )
    opts = WalkOptions(
        dt_threshold=dt_threshold,
        space_thresholds=thresholds,
        protect_unit_stride=False,  # already folded into the thresholds
        hyperspace=hyperspace,
        compiled_walk=False,  # decompose fully: no re-delegation loop
    )
    for sub in iter_base_events(_events(region.zoid(), spec, opts, True)):
        run_base_region(sub, compiled)


def run_base_region(region: BaseRegion, compiled: "CompiledKernel") -> None:
    """Execute one base case: step time forward, shifting the box by the
    zoid slopes after each step (Figure 2, lines 20–28).

    Subtree tasks (``region.walk`` set) run their whole interior subtree
    through the backend's compiled ``walk_subtree`` clone — one
    GIL-released ctypes call executes every cut and fused leaf below the
    root — or through the Python replay when no walk clone exists.

    When the backend generated a fused leaf clone (``split_pointer``'s
    NumPy leaves or ``c``'s compiled leaves) the whole time loop runs
    inside generated code — one Python call per base case instead of one
    per time step; the C leaves additionally release the GIL for the
    whole trapezoid, so DAG workers execute base cases truly in
    parallel.  Modes that cannot fuse (``interp``, ``macro_shadow``,
    non-vectorizable boundaries) take the per-step path below.
    """
    if region.walk is not None:
        walk = compiled.walk
        if walk is not None:
            slopes, thresholds, dt_threshold, hyperspace = region.walk[:4]
            threads = region.walk[4] if len(region.walk) > 4 else 1
            lo, hi, dlo, dhi = zip(*region.dims)
            if threads > 1 and compiled.walk_par is not None:
                # The in-.so pthread pool runs the subtree's same-level
                # pieces in parallel; bitwise identical to the serial
                # walk (and it falls back to it internally when the pool
                # cannot start).
                compiled.walk_par(
                    region.ta, region.tb, lo, hi, dlo, dhi,
                    slopes, thresholds, dt_threshold, hyperspace, threads,
                )
            else:
                walk(
                    region.ta, region.tb, lo, hi, dlo, dhi,
                    slopes, thresholds, dt_threshold, hyperspace,
                )
        else:
            _run_subtree_python(region, compiled)
        return
    fused = compiled.leaf if region.interior else compiled.leaf_boundary
    if fused is not None:
        # One zip(*...) instead of four generator-expression tuples:
        # this dispatch is the per-base-case hot path for compiled
        # leaves, where the kernel itself may cost only microseconds.
        lo, hi, dlo, dhi = zip(*region.dims)
        if fused(region.ta, region.tb, lo, hi, dlo, dhi):
            return
        # A falsy return means the leaf declined this region (e.g. a
        # NumPy snapshot leaf given a wrapped home range under a
        # clip/fill boundary) — step it below.
    clone = compiled.interior if region.interior else compiled.boundary
    d = len(region.dims)
    lo = [xa for xa, _, _, _ in region.dims]
    hi = [xb for _, xb, _, _ in region.dims]
    dlo = [dxa for _, _, dxa, _ in region.dims]
    dhi = [dxb for _, _, _, dxb in region.dims]
    for t in range(region.ta, region.tb):
        clone(t, tuple(lo), tuple(hi))
        for i in range(d):
            lo[i] += dlo[i]
            hi[i] += dhi[i]


# -- serial -------------------------------------------------------------------


def execute_serial(plan: PlanNode, compiled: "CompiledKernel") -> int:
    """Depth-first serial execution; returns the number of base cases."""
    count = 0
    for region in iter_base_serial(plan):
        run_base_region(region, compiled)
        count += 1
    return count


def execute_serial_stream(
    events: Iterable[PlanEvent],
    compiled: "CompiledKernel",
    *,
    collect_stats: bool = True,
) -> ExecStats:
    """Serial elision straight off an event stream: regions execute as the
    walker produces them, so the plan is never materialized.

    With ``collect_stats`` the per-region accounting runs inline (the
    stream exists only once, so it cannot happen outside the timed
    window); ``collect_stats=False`` pays only a counter.
    """
    stats = PlanStats() if collect_stats else None
    count = 0
    t0 = time.perf_counter()
    for region in iter_base_events(events):
        run_base_region(region, compiled)
        count += 1
        if stats is not None:
            stats.note_region(region)
    wall = time.perf_counter() - t0
    return ExecStats(
        executor="serial",
        n_workers=1,
        base_cases=count,
        wall_time=wall,
        busy_time=wall,
        region_stats=stats,
    )


# -- barrier waves ------------------------------------------------------------


def execute_threads(
    plan: PlanNode, compiled: "CompiledKernel", n_workers: int
) -> int:
    """Wave-parallel execution with a barrier between waves."""
    return execute_waves(plan, compiled, n_workers).base_cases


def execute_waves(
    plan: PlanNode, compiled: "CompiledKernel", n_workers: int
) -> ExecStats:
    """Wave-parallel execution (barrier between waves) with stats."""
    if n_workers < 1:
        raise ExecutionError(f"n_workers must be >= 1, got {n_workers}")
    waves = linearize_waves(plan)
    count = 0
    busy = 0.0
    # Honest reporting for degenerate runs: when every wave is a single
    # region, or this is a nested run inside a worker thread, execution
    # is effectively serial — report one worker, like execute_dag does.
    widest = max((len(w) for w in waves), default=1)
    eff_workers = 1 if (_in_worker_thread() or widest <= 1) else n_workers
    pool = acquire_pool(n_workers) if eff_workers > 1 else None

    def timed(region: BaseRegion) -> float:
        t0 = time.perf_counter()
        run_base_region(region, compiled)
        return time.perf_counter() - t0

    t0 = time.perf_counter()
    try:
        for wave in waves:
            count += len(wave)
            if pool is None:
                busy += sum(timed(region) for region in wave)
            else:
                busy += run_bounded(
                    pool, [partial(timed, region) for region in wave], n_workers
                )
    finally:
        if pool is not None:
            release_pool(pool)
    wall = time.perf_counter() - t0
    return ExecStats(
        executor="threads",
        n_workers=eff_workers,
        base_cases=count,
        wall_time=wall,
        busy_time=busy,
    )


# -- the task-DAG runtime -----------------------------------------------------


def execute_dag(
    graph: TaskGraph, compiled: "CompiledKernel", n_workers: int
) -> ExecStats:
    """Ready-queue execution of a task DAG: no inter-wave barriers.

    ``n_workers`` workers (from the shared pool) repeatedly pull a region
    whose predecessor count reached zero, run it, and decrement its
    successors' counts; zero-cost join nodes propagate instantly.  With
    one worker this degenerates to node-id order — the serial elision.
    """
    if n_workers < 1:
        raise ExecutionError(f"n_workers must be >= 1, got {n_workers}")

    npred = list(graph.npred)
    regions = graph.regions

    if n_workers == 1 or graph.n_tasks <= 1 or _in_worker_thread():
        # Node-id order is a valid serial schedule (edges point forward).
        # Also the nested-run path: see _in_worker_thread.
        t0 = time.perf_counter()
        for region in graph.iter_regions():
            run_base_region(region, compiled)
        wall = time.perf_counter() - t0
        return ExecStats(
            executor="dag",
            n_workers=1,
            base_cases=graph.n_tasks,
            wall_time=wall,
            busy_time=wall,
        )

    ready: deque[int] = deque()
    cond = threading.Condition()
    state = {"remaining": graph.n_tasks, "in_flight": 0, "error": None}
    graph.seed_ready(npred, ready.append)

    def _worker_loop() -> float:
        busy = 0.0
        while True:
            with cond:
                while (
                    not ready
                    and state["remaining"] > 0
                    and state["error"] is None
                    and state["in_flight"] > 0
                ):
                    cond.wait()
                if state["remaining"] <= 0 or state["error"] is not None:
                    return busy
                if not ready:
                    # Nothing ready, nothing running, tasks pending: the
                    # graph is inconsistent (a predecessor count that can
                    # never reach zero).  Error out rather than hang.
                    state["error"] = ExecutionError(
                        f"DAG execution stalled with {state['remaining']} "
                        f"tasks pending (cyclic or inconsistent graph)"
                    )
                    cond.notify_all()
                    return busy
                nid = ready.popleft()
                state["in_flight"] += 1
            t0 = time.perf_counter()
            try:
                if faults.fire("dag.worker"):
                    raise ExecutionError(
                        "injected fault: dag.worker — worker died mid-task"
                    )
                run_base_region(regions[nid], compiled)
            except BaseException as exc:  # propagate to the caller
                with cond:
                    state["error"] = exc
                    cond.notify_all()
                return busy
            busy += time.perf_counter() - t0
            with cond:
                state["remaining"] -= 1
                state["in_flight"] -= 1
                graph.complete(nid, npred, ready.append)
                if (
                    ready
                    or state["remaining"] == 0
                    or state["in_flight"] == 0
                ):
                    cond.notify_all()

    def worker() -> float:
        try:
            return _worker_loop()
        except BaseException as exc:
            # A crash in the loop's own bookkeeping (not a kernel error —
            # the loop handles those): record it and wake the peers, or
            # they would wait forever on a notify that never comes.
            with cond:
                if state["error"] is None:
                    state["error"] = exc
                cond.notify_all()
            raise

    pool = acquire_pool(n_workers)
    t0 = time.perf_counter()
    try:
        busy = sum(join_all([pool.submit(worker) for _ in range(n_workers)]))
    finally:
        release_pool(pool)
    wall = time.perf_counter() - t0
    if state["error"] is not None:
        raise state["error"]
    return ExecStats(
        executor="dag",
        n_workers=n_workers,
        base_cases=graph.n_tasks,
        wall_time=wall,
        busy_time=busy,
    )


# -- dispatch -----------------------------------------------------------------


def execute_plan(
    plan: PlanNode,
    compiled: "CompiledKernel",
    *,
    executor: str = "serial",
    n_workers: int | None = None,
) -> ExecStats:
    """Run a materialized plan with the selected executor."""
    if executor == "serial":
        return execute_serial_stream(plan_events(plan), compiled)
    if executor in ("threads", "dag"):
        workers = default_workers(n_workers)
        if executor == "threads":
            return execute_waves(plan, compiled, workers)
        return execute_dag(build_task_graph(plan_events(plan)), compiled, workers)
    raise ExecutionError(f"unknown executor {executor!r}")
