"""The LOOPS baseline of Figure 1: sweep the whole grid once per step.

Each time step applies the interior clone to the largest box whose reads
cannot leave the grid and the boundary clone to the surrounding shell —
the moral equivalent of the ghost-cell trick the paper's nonperiodic loop
baselines use (bulk untested, edges handled separately).  Options:

* ``parallel=True`` — chunk the bulk across a thread pool, the
  ``cilk_for`` analogue ("12-core loops" in Figure 3);
* ``modulo_everywhere=True`` — apply the *boundary* clone to the whole
  grid, i.e. pay the index-mod/boundary cost at every point.  This is the
  strawman the code-cloning ablation of Section 4 measures against (the
  paper reports a 2.3x penalty for it on the 2D torus heat equation).
"""

from __future__ import annotations

import time
from functools import partial
from typing import TYPE_CHECKING

from repro.language.stencil import Problem
from repro.trap.executor import (
    acquire_pool,
    default_workers,
    release_pool,
    run_bounded,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.pipeline import CompiledKernel


def _shell_boxes(
    sizes: tuple[int, ...],
    lo: tuple[int, ...],
    hi: tuple[int, ...],
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Partition grid-minus-interior-box into slabs.

    Slab i fixes dimension i outside [lo_i, hi_i), restricts dimensions
    j < i to their interior ranges, and leaves dimensions j > i full —
    every exterior point lands in exactly one slab (indexed by its first
    out-of-box dimension).
    """
    boxes = []
    d = len(sizes)
    for i in range(d):
        base_lo = [lo[j] if j < i else 0 for j in range(d)]
        base_hi = [hi[j] if j < i else sizes[j] for j in range(d)]
        if lo[i] > 0:
            b_lo, b_hi = list(base_lo), list(base_hi)
            b_lo[i], b_hi[i] = 0, lo[i]
            boxes.append((tuple(b_lo), tuple(b_hi)))
        if hi[i] < sizes[i]:
            b_lo, b_hi = list(base_lo), list(base_hi)
            b_lo[i], b_hi[i] = hi[i], sizes[i]
            boxes.append((tuple(b_lo), tuple(b_hi)))
    return boxes


def run_loops(
    problem: Problem,
    compiled: "CompiledKernel",
    *,
    parallel: bool = False,
    n_workers: int | None = None,
    modulo_everywhere: bool = False,
) -> tuple[int, float]:
    """Run the loop baseline.

    Returns ``(clone invocations, busy seconds)`` — busy time sums the
    wall time spent inside kernel clones across all workers, feeding the
    run report's idle-fraction accounting like the plan executors do.
    """
    sizes = problem.sizes
    d = problem.ndim

    def timed(clone, t, lo, hi) -> float:
        t0 = time.perf_counter()
        clone(t, lo, hi)
        return time.perf_counter() - t0

    zero = (0,) * d

    def fused_whole_grid() -> tuple[int, float] | None:
        """One fused leaf call covering grid x all steps, or None if the
        leaf declined (caller falls back to per-step clones).

        Legal exactly when every step is a *single* whole-grid region:
        step t+1's neighbor reads then stay inside the region written at
        step t, so no per-step interleaving with other regions is
        needed.  Both fusing backends profit: the NumPy leaf caches its
        snapshots' coordinate blocks across the zero-slope run, and the
        C leaf runs the entire time loop in one GIL-released call.
        """
        t0 = time.perf_counter()
        if compiled.leaf_boundary(
            problem.t_start, problem.t_end, zero, sizes, zero, zero
        ):
            return 1, time.perf_counter() - t0
        return None

    if modulo_everywhere:
        # Never fuse here: this branch is the Section 4 strawman ("pay
        # the index modulo at every access"), and the fused snapshot
        # leaf would dodge exactly the per-step cost it exists to
        # measure.
        count = 0
        busy = 0.0
        for t in range(problem.t_start, problem.t_end):
            busy += timed(compiled.boundary, t, zero, sizes)
            count += 1
        return count, busy

    # Largest interior box: reads at offset range [min_off, max_off] must
    # stay inside [0, N).
    ir = compiled.ir
    lo = tuple(max(0, -m) for m in ir.min_off)
    hi = tuple(min(n, n - M) for n, M in zip(sizes, ir.max_off))
    has_interior = all(l < h for l, h in zip(lo, hi))

    if not has_interior and compiled.leaf_boundary is not None:
        # Degenerate grid (no box avoids the halo): every step is one
        # whole-grid boundary sweep (and the parallel path has nothing
        # to chunk), so run the whole time loop as one fused leaf call.
        fused = fused_whole_grid()
        if fused is not None:
            return fused

    count = 0
    if parallel:
        workers = default_workers(n_workers)
        chunks: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        if has_interior:
            n_chunks = max(1, min(workers * 2, hi[0] - lo[0]))
            step = (hi[0] - lo[0] + n_chunks - 1) // n_chunks
            for start in range(lo[0], hi[0], step):
                c_lo = (start,) + lo[1:]
                c_hi = (min(start + step, hi[0]),) + hi[1:]
                chunks.append((c_lo, c_hi))
        shells = _shell_boxes(sizes, lo, hi) if has_interior else [
            ((0,) * d, sizes)
        ]
        pool = acquire_pool(workers)  # shared, reused across runs
        busy = 0.0
        try:
            for t in range(problem.t_start, problem.t_end):
                busy += run_bounded(
                    pool,
                    [
                        partial(timed, compiled.interior, t, c_lo, c_hi)
                        for c_lo, c_hi in chunks
                    ],
                    workers,
                )
                for s_lo, s_hi in shells:
                    busy += timed(compiled.boundary, t, s_lo, s_hi)
                count += len(chunks) + len(shells)
        finally:
            release_pool(pool)
        return count, busy

    shells = _shell_boxes(sizes, lo, hi) if has_interior else [((0,) * d, sizes)]
    busy = 0.0
    for t in range(problem.t_start, problem.t_end):
        if has_interior:
            busy += timed(compiled.interior, t, lo, hi)
            count += 1
        for s_lo, s_hi in shells:
            busy += timed(compiled.boundary, t, s_lo, s_hi)
            count += 1
    return count, busy
