"""Space cuts, circular cuts, hyperspace cuts and time cuts.

The geometric heart of TRAP (Figure 7 of the paper):

* :func:`trisect` — the parallel space cut.  An upright projection
  trapezoid splits into two *black* subtrapezoids processed first and a
  *gray* inverted triangle processed after (Figure 7(a)); an inverted one
  splits into a gray upright triangle processed first and two blacks
  after (Figure 7(b)).
* :func:`circular_cut` — the variant applied when a zoid spans an entire
  dimension with flat sides (the whole torus circumference): two blacks
  plus *two* grays, one of which straddles the periodic seam in virtual
  coordinates.  Always used for full-width dimensions, periodic boundary
  or not — that is what unifies the control structure (Section 4).
* :func:`hyperspace_cut` — apply the per-dimension cuts to every cuttable
  dimension at once and assign each of the resulting subzoids the Lemma-1
  dependency level ``sum((u_i + I_i) mod 2)``.
* time cuts — handled by :func:`choose_cut`, halving the height.

Feasibility is checked exactly (every subzoid must be well-defined with
the gray contained between the blacks at every time slice), rather than
with the simplified ``w >= 2*sigma*dt`` test of the paper's pseudocode;
this matches what the released Pochoir implementation does and guarantees
the recursion never produces a malformed zoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.errors import ExecutionError
from repro.trap.zoid import DimExtent, Zoid

#: One labeled piece of a per-dimension cut: (extent, dependency_bit).
#: dependency_bit is 0 for pieces processed in the first parallel step of
#: this dimension and 1 for pieces processed in the second.
DimPiece = tuple[DimExtent, int]


def trisect(z: Zoid, i: int, sigma: int) -> list[DimPiece] | None:
    """Parallel space cut of dimension ``i`` (Figure 7(a)/(b)).

    Returns the labeled pieces, or None when the cut is infeasible (a
    subzoid would be ill-defined).  With ``sigma == 0`` the dimension
    carries no dependencies, so the cut degenerates to two independent
    halves and no gray.
    """
    xa, xb, dxa, dxb = z.dims[i]
    dt = z.height
    bottom = z.bottom_len(i)
    top = z.top_len(i)

    if sigma == 0:
        # No dependencies along this dimension: plain bisection, both
        # halves independent (dependency bit 0).
        if bottom < 2:
            return None
        mid = xa + bottom // 2
        return [((xa, mid, dxa, dxb), 0), ((mid, xb, dxa, dxb), 0)]

    if bottom >= top:
        # Upright: blacks on the bottom halves, inverted gray in the middle.
        l0 = bottom // 2
        l1 = bottom - l0
        if l0 < max(1, (sigma + dxa) * dt):
            return None
        if l1 < max(1, (sigma - dxb) * dt):
            return None
        mid = xa + l0
        return [
            ((xa, mid, dxa, -sigma), 0),  # black (left)
            ((mid, mid, -sigma, sigma), 1),  # gray (inverted triangle)
            ((mid, xb, sigma, dxb), 0),  # black (right)
        ]

    # Inverted: upright gray triangle in the middle processed first,
    # blacks after.  Split the top base in half; the gray's apex sits at
    # the split point.
    h0 = top // 2
    h1 = top - h0
    if h0 < max(1, (sigma - dxa) * dt):
        return None
    if h1 < max(1, (sigma + dxb) * dt):
        return None
    m_top = xa + dxa * dt + h0
    ga = m_top - sigma * dt
    gb = m_top + sigma * dt
    return [
        ((xa, ga, dxa, sigma), 1),  # black (left)
        ((ga, gb, sigma, -sigma), 0),  # gray (upright triangle)
        ((gb, xb, -sigma, dxb), 1),  # black (right)
    ]


def circular_cut(
    z: Zoid, i: int, sigma: int, size: int
) -> list[DimPiece] | None:
    """Cut a full-circumference dimension (Figure 7 adapted to a circle).

    Applicable when the projection covers the entire dimension with flat
    sides (``xb - xa == size``, ``dxa == dxb == 0``).  Produces two blacks
    and two inverted grays; the seam gray is expressed in virtual
    coordinates ``(size, size)`` so its widening extent wraps around the
    torus, which the boundary-clone base case resolves with a modulo.
    """
    xa, xb, dxa, dxb = z.dims[i]
    dt = z.height
    if xb - xa != size or dxa != 0 or dxb != 0:
        return None
    if sigma == 0:
        return trisect(z, i, sigma)
    half = size // 2
    need = max(1, 2 * sigma * dt)
    if half < need or (size - half) < need:
        return None
    mid = xa + half
    return [
        ((xa, mid, sigma, -sigma), 0),  # black (low half)
        ((mid, xb, sigma, -sigma), 0),  # black (high half)
        ((mid, mid, -sigma, sigma), 1),  # gray (interior seam)
        ((xb, xb, -sigma, sigma), 1),  # gray (periodic seam, virtual coords)
    ]


def cut_dimension(
    z: Zoid, i: int, sigma: int, size: int
) -> list[DimPiece] | None:
    """Best applicable space cut of dimension ``i`` (circular for
    full-circumference flat extents, else trisection)."""
    xa, xb, dxa, dxb = z.dims[i]
    if sigma > 0 and (xb - xa) == size and dxa == 0 and dxb == 0:
        return circular_cut(z, i, sigma, size)
    return trisect(z, i, sigma)


@dataclass(frozen=True)
class CutDecision:
    """The walker's decision for one zoid.

    ``kind``:
      * ``"base"`` — emit a base-case region;
      * ``"time"`` — recurse on the lower then upper halves (``tm`` set);
      * ``"space"`` — hyperspace cut; ``levels[s]`` holds the subzoids of
        dependency level ``s`` (Lemma 1: same-level subzoids are
        independent and may run in parallel).
    """

    kind: str
    tm: int = 0
    levels: tuple[tuple[Zoid, ...], ...] = ()
    cut_dims: tuple[int, ...] = ()


def hyperspace_cut(
    z: Zoid, pieces_per_dim: dict[int, list[DimPiece]]
) -> CutDecision:
    """Combine per-dimension cuts into level-grouped subzoids (Lemma 1).

    Every combination of one piece per cut dimension yields a subzoid
    whose dependency level is the sum of the pieces' dependency bits —
    exactly ``sum((u_i + I_i) mod 2)`` from the paper, since each piece's
    bit already encodes its position in the two parallel steps of its
    dimension's cut.
    """
    cut_dims = sorted(pieces_per_dim)
    option_lists = [pieces_per_dim[i] for i in cut_dims]
    max_level = len(cut_dims)
    buckets: list[list[Zoid]] = [[] for _ in range(max_level + 1)]
    for combo in product(*option_lists):
        level = sum(bit for _, bit in combo)
        dims = list(z.dims)
        for dim_index, (extent, _) in zip(cut_dims, combo):
            dims[dim_index] = extent
        sub = Zoid(z.ta, z.tb, tuple(dims))
        if not sub.well_defined():
            # Degenerate pieces (zero-width grays of a sigma==0 bisection,
            # or a gray whose widening never materializes) are skipped --
            # they contain no grid points.
            if sub.volume() != 0:
                raise ExecutionError(
                    f"hyperspace cut produced ill-defined non-empty subzoid "
                    f"{sub} from {z}"
                )
            continue
        buckets[level].append(sub)
    levels = tuple(tuple(b) for b in buckets if b)
    return CutDecision(kind="space", levels=levels, cut_dims=tuple(cut_dims))


def choose_cut(
    z: Zoid,
    *,
    sizes: Sequence[int],
    slopes: Sequence[int],
    space_thresholds: Sequence[int],
    dt_threshold: int,
    protect_dims: Sequence[bool],
    hyperspace: bool,
) -> CutDecision:
    """Decide how TRAP/STRAP processes zoid ``z`` (Figure 2, lines 4–20).

    Mirrors the paper's control flow with base-case coarsening folded in:

    1. try a space cut on every dimension wider than its coarsening
       threshold (``hyperspace=False`` restricts to the first cuttable
       dimension — the STRAP comparison algorithm);
    2. otherwise a time cut while the height exceeds ``dt_threshold``;
    3. otherwise emit the base case.
    """
    pieces: dict[int, list[DimPiece]] = {}
    for i in range(z.ndim):
        if protect_dims[i]:
            continue
        if z.width(i) <= space_thresholds[i]:
            continue
        cut = cut_dimension(z, i, slopes[i], sizes[i])
        if cut is not None:
            pieces[i] = cut
            if not hyperspace:
                break
    if pieces:
        return hyperspace_cut(z, pieces)
    dt = z.height
    if dt > dt_threshold and dt >= 2:
        return CutDecision(kind="time", tm=z.ta + dt // 2)
    return CutDecision(kind="base")


def time_cut_children(z: Zoid, tm: int) -> tuple[Zoid, Zoid]:
    """Lower and upper subzoids of a time cut at ``tm`` (Figure 7(c))."""
    if not z.ta < tm < z.tb:
        raise ExecutionError(f"time cut at {tm} outside zoid height {z}")
    lower = Zoid(z.ta, tm, z.dims)
    s = tm - z.ta
    upper_dims = tuple(
        (xa + dxa * s, xb + dxb * s, dxa, dxb) for xa, xb, dxa, dxb in z.dims
    )
    upper = Zoid(tm, z.tb, upper_dims)
    return lower, upper
